"""Tests for the fixed-shape analysis and the bulk decoding paths.

Locks down :mod:`repro.core.shapes` — width/layout inference (struct format
strings, covered prefixes, nesting, fixed-count arrays) and its conservative
bail-outs on anything interval-dependent — plus the engine-level contract:
bulk-on, bulk-off, one-shot-decoder and chunked-streaming executions all
produce identical trees, including at adversarial record-boundary chunk
sizes.
"""

import struct as pystruct

import pytest

from engine_matrix import EngineMatrix, format_sample, matrix_for
from repro import Parser
from repro.core.compiler import Optimizations, compile_grammar
from repro.core.errors import ParseFailure
from repro.core.interpreter import prepare_grammar
from repro.core.shapes import (
    alternative_shape,
    alternative_suffix,
    explain_shapes,
    linear_stride,
    make_decoder,
    rule_shape,
)
from repro.formats import registry


def plan_for(grammar_text, rule, alt=0, width=None, flat_only=False):
    return alternative_shape(
        prepare_grammar(grammar_text), rule, alt, width=width, flat_only=flat_only
    )


class TestLayoutInference:
    def test_elf_sym_layout(self):
        plan = plan_for(registry["elf"].grammar_text, "Sym")
        assert plan.full
        assert plan.fmt == "<IBBHQQ"
        assert (plan.needed, plan.size, plan.nslots) == (24, 24, 6)
        assert plan.touch and (plan.start, plan.end) == (0, 24)

    def test_elf_header_layout_with_gaps_and_guard(self):
        plan = plan_for(registry["elf"].grammar_text, "H")
        assert plan.full
        # "\x7fELF", three U8s, pad to 16, two U16LE, pad to 24, three
        # U64LE, pad to 52, six U16LE.
        assert plan.fmt == "<4sBBB9xHH4xQQQ4xHHHHHH"
        assert plan.needed == 64
        assert plan.has_lits and plan.has_guards

    def test_zip_cde_fixed_prefix(self):
        plan = plan_for(registry["zip"].grammar_text, "CDE")
        assert not plan.full
        assert plan.fmt == "<4sHHHHHHIIIHHHHHII"
        assert plan.needed == 46
        assert "FileName" in plan.stop_reason

    def test_dns_header_big_endian(self):
        plan = plan_for(registry["dns"].grammar_text, "Header")
        assert plan.full
        assert plan.fmt == ">HHHHHH"

    def test_mixed_endianness_stops_the_walk(self):
        plan = plan_for("S -> U16LE {a = U16LE.val} U16BE {b = U16BE.val} ;", "S")
        assert plan.covered < plan.total
        assert "byte order" in plan.stop_reason

    def test_nested_fixed_rule_flattens(self):
        plan = plan_for(registry["pe"].grammar_text, "SectionHeader")
        assert plan.full
        # NameField[8] (a rule wrapping Bytes) flattens into an 8s slot.
        assert plan.fmt == "<8sIIIIIIHHI"
        assert plan.needed == 40

    def test_fixed_count_array_unrolls(self):
        plan = plan_for(
            "S -> U16LE {tag = U16LE.val} for i = 0 to 3 do R[2 + 4 * i, 2 + 4 * (i + 1)] ;"
            "R -> U16LE {a = U16LE.val} U16LE {b = U16LE.val} ;",
            "S",
        )
        assert plan.full
        assert plan.fmt == "<HHHHHHH"
        assert plan.needed == 14

    def test_raw_fields_become_pads(self):
        plan = plan_for(registry["pe"].grammar_text, "DOSHeader")
        assert plan.full
        assert plan.fmt == "<2s58xI"

    def test_interval_dependent_width_bails(self):
        plan = plan_for(
            "S -> U8 {n = U8.val} Bytes[n] U8[0, 1] ;", "S"
        )
        assert plan.covered == 2  # U8 + attr def
        assert "Bytes" in plan.stop_reason

    def test_eoi_relative_right_bails_parametrically_but_not_at_width(self):
        grammar = "S -> U16LE {a = U16LE.val} Raw[2, EOI] ;"
        parametric = plan_for(grammar, "S")
        assert not parametric.full
        instantiated = plan_for(grammar, "S", width=10)
        assert instantiated.full
        assert instantiated.fmt == "<H8x"

    def test_switch_and_where_rules_bail(self):
        assert plan_for(registry["elf"].grammar_text, "ELF").covered == 0
        plan = plan_for(registry["gif"].grammar_text, "LSD")
        assert not plan.full
        assert "switch" in plan.stop_reason

    def test_flat_only_stops_at_nested_rules(self):
        plan = plan_for(registry["pe"].grammar_text, "SectionHeader", flat_only=True)
        assert not plan.full and plan.covered == 0
        assert "flat-only" in plan.stop_reason

    def test_rebinding_a_special_bails(self):
        plan = plan_for("S -> U8 {v = U8.val} {EOI = 4} U8[1, 2] ;", "S")
        assert "EOI" in plan.stop_reason

    def test_rule_shape_rejects_multi_alternative_rules(self):
        grammar = prepare_grammar('S -> "a"[0, 1] / "b"[0, 1] ;')
        assert rule_shape(grammar, "S") is None

    def test_explain_shapes_reports_all_rules(self):
        grammar = prepare_grammar(registry["elf"].grammar_text)
        report = dict(explain_shapes(grammar))
        assert "'<IBBHQQ'" in report["Sym"]
        assert report["ELF"].startswith("not fixed")


def suffix_for(grammar_text, rule, alt=0, flat_only=False):
    return alternative_suffix(
        prepare_grammar(grammar_text), rule, alt, flat_only=flat_only
    )


#: Fixed tail behind a variable-width gap, with a guard, a window-relative
#: EOI read, and a post-suffix term whose interval chains off a tail record.
SUFFIX_GRAMMAR = """
S -> Hdr[0, 4] Var
     U32BE {tag = U32BE.val} guard(tag < 4000000000)
     U16BE {b = U16BE.val}
     U16BE {rest = U16BE.EOI}
     Payload[U16BE.end, U16BE.end + U16BE.val] ;
Hdr -> U16BE {a = U16BE.val} U16BE {b = U16BE.val} ;
Var -> U8 {n = U8.val} Bytes[n] ;
Payload -> Raw ;
"""


class TestAnchoredSuffix:
    """Multi-segment plans: fixed prefix + variable gap + anchored tail."""

    def test_dns_rr_layout(self):
        suffix = suffix_for(registry["dns"].grammar_text, "RR")
        assert suffix is not None
        assert (suffix.gap_index, suffix.gap_name) == (0, "Name")
        plan = suffix.plan
        # The 10-byte type/class/ttl/rdlength tail, one big-endian unpack.
        assert plan.fmt == ">HHIH"
        assert (plan.needed, plan.nslots) == (10, 4)
        assert [step.name for step in plan.attr_steps] == [
            "rtype", "rclass", "ttl", "rdlength",
        ]
        # Stops where the tail turns interval-dependent (RData's width).
        assert plan.covered == 8 and not plan.full

    def test_small_tails_are_not_worthwhile(self):
        # Question's 2-slot tail does not amortize the struct call.
        assert suffix_for(registry["dns"].grammar_text, "Question") is None

    def test_custom_suffix_plan_with_prefix(self):
        suffix = suffix_for(SUFFIX_GRAMMAR, "S")
        assert suffix is not None
        assert (suffix.gap_index, suffix.gap_name) == (1, "Var")
        assert suffix.plan.fmt == ">IHH"
        assert suffix.plan.has_guards

    def test_frame_absolute_tail_interval_rejected(self):
        # [4, 8] is frame-absolute: it cannot share the anchored base.
        grammar = """
        S -> Var U32LE[4, 8] {a = U32LE.val} U16LE {b = U16LE.val}
             U16LE {c = U16LE.val} ;
        Var -> U8 {n = U8.val} Bytes[n] ;
        """
        assert suffix_for(grammar, "S") is None

    def test_nonlinear_anchor_use_rejected(self):
        grammar = """
        S -> Var U32LE[Var.end * 2, Var.end * 2 + 4] {a = U32LE.val}
             U32LE {b = U32LE.val} U32LE {c = U32LE.val} ;
        Var -> U8 {n = U8.val} Bytes[n] ;
        """
        assert suffix_for(grammar, "S") is None

    def test_specials_in_tail_stop_the_walk(self):
        grammar = """
        S -> Var U32LE {a = end} U32LE {b = U32LE.val} U32LE {c = U32LE.val} ;
        Var -> U8 {n = U8.val} Bytes[n] ;
        """
        suffix = suffix_for(grammar, "S")
        # The running `end` special mixes pre-gap state; only the first
        # field (before the attr) can be covered — not worthwhile.
        assert suffix is None

    def test_arrays_in_tail_are_not_absorbed(self):
        grammar = """
        S -> Var for i = 0 to 3 do R[Var.end + 2 * i, Var.end + 2 * (i + 1)] ;
        Var -> U8 {n = U8.val} Bytes[n] ;
        R -> U16BE {v = U16BE.val} ;
        """
        assert suffix_for(grammar, "S") is None

    def test_suffix_reported_by_explain_shapes(self):
        grammar = prepare_grammar(registry["dns"].grammar_text)
        report = dict(explain_shapes(grammar))
        assert "anchored tail after Name" in report["RR"]
        assert "'>HHIH'" in report["RR"]

    def test_compiled_source_carries_the_fused_tail(self):
        compiled = compile_grammar(registry["dns"].grammar_text)
        assert ">HHIH" in compiled.source
        assert "RR" in compiled.shaped_rules
        off = compile_grammar(
            registry["dns"].grammar_text,
            optimizations=Optimizations(bulk_fixed_shape=False),
        )
        assert ">HHIH" not in off.source

    def test_cross_engine_agreement_on_custom_grammar(self):
        matrix = matrix_for(SUFFIX_GRAMMAR)
        base = (
            pystruct.pack(">HH", 7, 9)
            + b"\x03abc"
            + pystruct.pack(">IHH", 123456, 2, 4)
            + b"\x01\x02\x03\x04"
        )
        matrix.assert_agree(base)
        # Truncation at every byte boundary (the anchored bounds check and
        # the per-term path must fail identically), plus a failing guard.
        for i in range(len(base) + 1):
            matrix.assert_agree(base[:i])
        hostile = bytearray(base)
        hostile[8:12] = pystruct.pack(">I", 4000000001)
        matrix.assert_agree(bytes(hostile))

    def test_dns_truncations_agree(self):
        data = format_sample("dns")
        matrix = matrix_for(registry["dns"].grammar_text)
        matrix.assert_agree(data)
        for i in range(0, len(data) + 1, 3):
            matrix.assert_agree(data[:i])


class TestLinearStride:
    def parse_interval(self, text):
        from repro.core.grammar_parser import parse_expression

        left, right = text.split(";")
        return parse_expression(left), parse_expression(right)

    def test_simple_stride(self):
        left, right = self.parse_interval("24 * i ; 24 * (i + 1)")
        assert linear_stride(left, right, "i") == 24

    def test_runtime_base_offset(self):
        left, right = self.parse_interval(
            "shofs + 40 * i ; shofs + 40 * (i + 1)"
        )
        assert linear_stride(left, right, "i") == 40

    def test_mismatched_bases_rejected(self):
        left, right = self.parse_interval("a + 8 * i ; b + 8 * (i + 1)")
        assert linear_stride(left, right, "i") is None

    def test_runtime_stride_rejected(self):
        left, right = self.parse_interval("w * i ; w * (i + 1)")
        assert linear_stride(left, right, "i") is None

    def test_window_gap_rejected(self):
        # right - left != stride: records would not be contiguous.
        left, right = self.parse_interval("8 * i ; 8 * i + 4")
        assert linear_stride(left, right, "i") is None

    def test_loop_variant_atoms_rejected(self):
        # Bulk lowering evaluates the base once before the loop, so an
        # atom that reads array contents (or the running start/end
        # specials) — which the per-term path re-evaluates per iteration —
        # must disqualify the array.
        for atom in ("(exists j . E(j).val = 9 ? 100 : 0)", "E(0).val", "end"):
            left, right = self.parse_interval(
                f"{atom} + 4 * i ; {atom} + 4 * (i + 1)"
            )
            assert linear_stride(left, right, "i") is None, atom

    def test_exists_atom_does_not_hoist(self):
        # Regression: an exists over the array being built flips once the
        # first element decodes; hoisting it out of the loop accepted
        # inputs the reference semantics reject.
        grammar = """
        S -> for i = 0 to 2 do E[(exists j . E(j).val = 9 ? 100 : 0) + 4 * i,
                                 (exists j . E(j).val = 9 ? 100 : 0) + 4 * (i + 1)] ;
        E -> U32LE {val = U32LE.val} ;
        """
        data = pystruct.pack("<II", 9, 2)
        bulk = Parser(grammar)
        assert "E" not in bulk._compiled.bulk_arrays
        matrix_for(grammar).assert_agree(data)

    def test_raising_attr_steps_are_never_skipped(self):
        # Regression: a division in an attribute step is itself a check
        # (EvaluationError fails the parse); validate-only bulk decoding
        # must not skip the loop that evaluates it.
        grammar = """
        S -> for i = 0 to 2 do R[4 * i, 4 * (i + 1)] ;
        R -> U32LE {q = 8 / U32LE.val} ;
        """
        bad = pystruct.pack("<II", 2, 0)
        good = pystruct.pack("<II", 2, 4)
        parser = Parser(grammar)
        assert "R" in parser._compiled.bulk_arrays
        plan = rule_shape(prepare_grammar(grammar), "R")
        assert plan.has_raising_attrs and plan.checks_anything
        assert parser.try_parse(bad) is None
        assert parser.try_parse(bad, emit=None) is None
        assert parser.try_parse(good, emit=None) is True
        matrix = matrix_for(grammar)
        matrix.assert_agree(bad)
        matrix.assert_agree(good)


#: A bulk-eligible fixed-stride array directly under the (EOI-bounded)
#: start window: streaming decodes records incrementally through the
#: resumable per-parse state, suspending at record boundaries.
BULK_STREAM_GRAMMAR = """
S -> Hdr[0, 4] for i = 0 to Hdr.n do Rec[4 + 8 * i, 4 + 8 * (i + 1)]
     Tail[4 + 8 * Hdr.n, EOI] ;
Hdr -> U16BE {n = U16BE.val} U16BE {tag = U16BE.val} ;
Rec -> U32BE {a = U32BE.val} U16BE {b = U16BE.val} U16BE {c = U16BE.val}
       guard(c < 60000) ;
Tail -> Raw[0, EOI] ;
"""

#: The same records behind an integer-bounded sub-window: the caller's
#: interval-validity check makes the window available all at once (the
#: per-term engines behave identically), exercising the one-shot bulk
#: decode on a stream.
NESTED_WINDOW_GRAMMAR = """
S -> Hdr[0, 4] Body[4, 4 + 8 * Hdr.n] Tail[4 + 8 * Hdr.n, EOI] ;
Hdr -> U16BE {n = U16BE.val} U16BE {tag = U16BE.val} ;
Body -> for i = 0 to EOI / 8 do Rec[8 * i, 8 * (i + 1)] ;
Rec -> U32BE {a = U32BE.val} U16BE {b = U16BE.val} U16BE {c = U16BE.val}
       guard(c < 60000) ;
Tail -> Raw[0, EOI] ;
"""


def build_bulk_stream_input(count=25, tail=b"xyz"):
    records = b"".join(
        pystruct.pack(">IHH", i * 3, i * 5, i * 7) for i in range(count)
    )
    return pystruct.pack(">HH", count, 1) + records + tail


class TestBulkDifferential:
    @pytest.mark.parametrize("fmt", ["elf", "pe"])
    def test_bulk_formats_match_across_engines(self, fmt):
        spec = registry[fmt]
        matrix = matrix_for(spec.grammar_text, dict(spec.blackboxes))
        assert matrix.compiled._compiled.bulk_arrays
        matrix.assert_agree(format_sample(fmt))

    def test_bulk_array_reported(self):
        spec = registry["elf"]
        compiled = compile_grammar(spec.grammar_text)
        assert {"Sym", "DynEntry"} <= compiled.bulk_arrays
        off = compile_grammar(
            spec.grammar_text,
            optimizations=Optimizations(bulk_fixed_shape=False),
        )
        assert off.bulk_arrays == frozenset()
        assert off.shaped_rules == frozenset()

    @pytest.mark.parametrize(
        "grammar", [BULK_STREAM_GRAMMAR, NESTED_WINDOW_GRAMMAR]
    )
    def test_truncated_and_corrupt_records(self, grammar):
        data = build_bulk_stream_input()
        matrix = matrix_for(grammar)
        matrix.assert_agree(data)
        # Truncation mid-record, guard failure in record 5, empty input.
        matrix.assert_agree(data[: 4 + 8 * 3 + 5])
        corrupt = bytearray(data)
        corrupt[4 + 8 * 5 + 6 : 4 + 8 * 5 + 8] = b"\xff\xff"
        matrix.assert_agree(bytes(corrupt))
        matrix.assert_agree(b"")
        matrix.assert_agree(pystruct.pack(">HH", 0, 1))

    def test_interpreter_one_shot_decoder_used_and_equal(self):
        spec = registry["elf"]
        with_shapes = spec.build_parser(backend="interpreted")
        without = spec.build_parser(backend="interpreted", bulk_fixed_shape=False)
        assert with_shapes._shape_decoders(True)
        assert "Sym" in with_shapes._shape_decoders(True)
        assert without._shape_decoders(True) is None
        data = format_sample("elf")
        assert with_shapes.parse(data) == without.parse(data)

    def test_decoder_matches_term_path_on_short_windows(self):
        grammar = prepare_grammar(registry["elf"].grammar_text)
        plan = alternative_shape(grammar, "Sym", 0)
        decoder = make_decoder(plan, build_tree=True)
        reference = Parser(
            registry["elf"].grammar_text,
            backend="interpreted",
            bulk_fixed_shape=False,
        )
        from repro.core.interpreter import FAIL

        data = bytes(range(64))
        for hi in (0, 5, 23, 24, 30, 64):
            got = decoder(data, 0, hi)
            expected = reference.try_parse(data[:hi], start="Sym")
            if expected is None:
                assert got is FAIL
            else:
                assert got == expected


class TestBulkStreaming:
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 8, 9, 16, 17, 1000])
    @pytest.mark.parametrize(
        "grammar", [BULK_STREAM_GRAMMAR, NESTED_WINDOW_GRAMMAR]
    )
    def test_chunked_streaming_matches_batch(self, grammar, chunk_size):
        # Record width is 8: the chunk sizes straddle, align with, and span
        # multiple record boundaries.
        data = build_bulk_stream_input()
        parser = Parser(grammar)
        assert "Rec" in parser._compiled.bulk_arrays
        expected = parser.parse(data)
        chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]
        assert parser.parse_stream(iter(chunks), force=True) == expected
        assert (
            parser.parse_stream(
                [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)],
                force=True,
                emit=None,
            )
            is True
        )

    def test_streaming_consumes_records_incrementally(self):
        # The record-aligned bulk path must decode floor(available/width)
        # records per re-entry and compact behind itself: peak buffered
        # bytes stay near two chunks + one record, not the stream size.
        data = build_bulk_stream_input(count=200)
        parser = Parser(BULK_STREAM_GRAMMAR)
        session = parser.stream(force=True)
        for i in range(0, len(data), 16):
            session.feed(data[i : i + 16])
        tree = session.finish()
        assert tree == parser.parse(data)
        assert session.attempts > 10  # genuinely incremental
        assert session.max_buffered < len(data) / 10

    def test_streaming_rejects_mid_array_guard_failure(self):
        data = bytearray(build_bulk_stream_input())
        data[4 + 8 * 5 + 6 : 4 + 8 * 5 + 8] = b"\xff\xff"
        parser = Parser(BULK_STREAM_GRAMMAR)
        with pytest.raises(ParseFailure):
            parser.parse_stream(
                [bytes(data[i : i + 5]) for i in range(0, len(data), 5)], force=True
            )

    def test_streaming_interpreter_agrees(self):
        data = build_bulk_stream_input(count=9)
        parser = Parser(BULK_STREAM_GRAMMAR, backend="interpreted")
        expected = parser.parse(data)
        chunks = [data[i : i + 7] for i in range(0, len(data), 7)]
        assert parser.parse_stream(chunks, force=True) == expected


class TestGoldenAgreement:
    """Plans against golden trees: every format, every engine pair."""

    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_formats_agree_with_plain_reference(self, fmt):
        spec = registry[fmt]
        data = format_sample(fmt)
        plain = spec.build_parser(
            backend="interpreted", first_byte_dispatch=False, bulk_fixed_shape=False
        )
        expected = plain.parse(data)
        assert spec.build_parser(backend="compiled").parse(data) == expected
        assert spec.build_parser(backend="interpreted").parse(data) == expected
