"""Failure diagnosis: classify *why* and *where* a parse failed.

The engines parse fast: biased choice is implemented with a ``FAIL``
sentinel and no bookkeeping, so a failed parse initially knows nothing
beyond "the start symbol produced Fail".  When a raising entry point
(:meth:`Parser.parse`, an AOT module's ``parse``, a streaming session's
``finish``) needs a structured error, it re-runs the input through the
**diagnostic interpreter** in this module: a subclass of the reference
interpreter's ``_Run`` that records every primitive failure it
encounters and keeps the *furthest* one (the classic furthest-failure
heuristic of PEG error reporting).

Because every engine funnels failures through this one implementation —
run in a canonical configuration (no first-byte dispatch, no fixed-shape
plans, memoized) — the error class and byte offset are identical across
the interpreter, the staged compiler, AOT modules and streaming by
construction; ``tests/engine_matrix.py::assert_error_agree`` locks that
in.

Classification (ties at the same offset resolved by priority
truncation > bounds > guard):

* :class:`TruncatedInput` — the parse needed bytes past the end of the
  received input (interval reaching past EOF, terminal or fixed-width
  builtin hanging over the end).  Offset = input length.
* :class:`BoundsViolation` — an interval invalid *within* the data:
  negative/inverted, overrunning its enclosing window although the
  underlying bytes exist (the length-field-lie case), or an interval
  expression that failed to evaluate.
* :class:`GuardRejected` — bytes present but wrong: terminal literal
  mismatch (offset = first differing byte), guard false, builtin
  content rejection, blackbox refusal, no switch case.

:class:`LimitExceeded` is *not* produced here — engines raise it
natively when a budget trips (it aborts the parse rather than failing
an alternative); its ``offset`` is always ``None`` so engines trivially
agree on it.  The diagnosis itself runs under the parser's budgets: an
input that exhausts them during re-analysis surfaces as the same
``LimitExceeded`` from every engine.

Diagnosis is a cold path: it costs one reference-interpreter run over
the failing input, only ever after a parse already failed.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .ast import Grammar, TermAttrDef, TermGuard
from .buffers import as_buffer
from .builtins import BUILTINS, BlackboxCallable
from .env import upd_start_end_in_place
from .errors import (
    BoundsViolation,
    EvaluationError,
    GuardRejected,
    LimitExceeded,
    ParseFailure,
    TruncatedInput,
)
from .interpreter import FAIL, Parser, _Run, prepare_grammar
from .limits import ParseLimits
from .parsetree import Leaf

__all__ = ["diagnose_parser", "diagnose_failure"]

#: Tie-break priority at equal offsets.
_RANK_GUARD = 1
_RANK_BOUNDS = 2
_RANK_TRUNCATED = 3


class _DiagRun(_Run):
    """Reference-interpreter run instrumented for furthest-failure tracking.

    ``_win`` holds the absolute window ``(lo, hi)`` of the term currently
    executing (saved/restored around every term so array loops see their
    own window after parsing an element); ``rstack`` is an always-on
    rule-name stack (independent of the budget machinery, which only
    tracks it when limits are active and only keeps it on abort).
    """

    __slots__ = ("rstack", "best", "_win")

    def __init__(self, parser, data, build_tree=False):
        super().__init__(parser, data, build_tree=build_tree)
        # Canonical configuration: the fast paths change *where* work
        # happens but not the semantics; diagnosis must visit failure
        # sites itself, so it runs the plain per-term interpreter.
        self.dispatch = None
        self.dispatch_cache = None
        self.shapes = None
        self.memoize = True
        self.rstack = []
        self.best = None
        self._win = (0, len(data))

    # -- recording ----------------------------------------------------------
    def _record(self, offset, rank, cls, message, interval=None):
        best = self.best
        if best is not None and (offset, rank) <= (best[0], best[1]):
            return
        nonterminal = self.rstack[-1] if self.rstack else ""
        self.best = (offset, rank, cls, message, nonterminal, tuple(self.rstack), interval)

    def _as_exception(self, start: str) -> ParseFailure:
        if self.best is None:
            return ParseFailure(
                f"input of length {len(self.data)} does not match nonterminal "
                f"{start!r}",
                nonterminal=start,
            )
        offset, _rank, cls, message, in_rule, rule_stack, interval = self.best
        # ``nonterminal`` stays the *requested* start symbol — "parsing
        # {start} failed" — matching what callers asked for; the rule the
        # failure happened inside lives in the message and rule_stack.
        return cls(
            f"{message} (in rule {in_rule!r} at offset {offset})"
            if in_rule
            else f"{message} (at offset {offset})",
            nonterminal=start,
            offset=offset,
            rule_stack=rule_stack,
            interval=interval,
        )

    # -- instrumented execution ---------------------------------------------
    def _parse_rule(self, rule, lo, hi, outer_ctx, local_rules):
        rstack = self.rstack
        rstack.append(rule.name)
        try:
            return super()._parse_rule(rule, lo, hi, outer_ctx, local_rules)
        finally:
            rstack.pop()

    def _exec_term(self, term, ctx, children, lo, hi, local_rules):
        # _win must be restored on exit: an array loop evaluates element
        # intervals *between* element parses, and the nested parse ran
        # terms in a different window.
        saved = self._win
        self._win = (lo, hi)
        try:
            if isinstance(term, TermGuard):
                return self._exec_guard(term, ctx, lo)
            if isinstance(term, TermAttrDef):
                try:
                    ctx.bind(term.name, term.expr.evaluate(ctx))
                except EvaluationError:
                    self._record(
                        lo + ctx.env.get("end", 0),
                        _RANK_GUARD,
                        GuardRejected,
                        f"attribute {term.name!r} failed to evaluate",
                    )
                    raise
                return True
            return super()._exec_term(term, ctx, children, lo, hi, local_rules)
        finally:
            self._win = saved

    def _exec_guard(self, term, ctx, lo):
        try:
            value = term.expr.evaluate(ctx)
        except EvaluationError:
            self._record(
                lo + ctx.env.get("end", 0),
                _RANK_GUARD,
                GuardRejected,
                "guard expression failed to evaluate",
            )
            raise
        if value == 0:
            self._record(
                lo + ctx.env.get("end", 0),
                _RANK_GUARD,
                GuardRejected,
                "a where-guard evaluated false",
            )
            return False
        return True

    def _interval(self, term, ctx, length):
        lo, _hi = self._win
        data_len = len(self.data)
        try:
            left = term.interval.left.evaluate(ctx)
            right = term.interval.right.evaluate(ctx)
        except EvaluationError:
            self._record(
                lo,
                _RANK_BOUNDS,
                BoundsViolation,
                "interval expression failed to evaluate",
            )
            raise
        if left < 0 or right < left:
            self._record(
                lo,
                _RANK_BOUNDS,
                BoundsViolation,
                f"invalid interval [{left}, {right})",
                interval=(lo + left, lo + right),
            )
            return None
        if right > length:
            if lo + right > data_len:
                self._record(
                    data_len,
                    _RANK_TRUNCATED,
                    TruncatedInput,
                    f"interval [{left}, {right}) needs "
                    f"{lo + right - data_len} bytes past end of input",
                    interval=(lo + left, lo + right),
                )
            else:
                self._record(
                    lo + min(left, length),
                    _RANK_BOUNDS,
                    BoundsViolation,
                    f"interval [{left}, {right}) overruns its "
                    f"{length}-byte enclosing window",
                    interval=(lo + left, lo + right),
                )
            return None
        return left, right

    def _exec_terminal(self, term, ctx, children, lo, hi):
        bounds = self._interval(term, ctx, hi - lo)
        if bounds is None:
            return False
        left, right = bounds
        literal = term.value
        absolute = lo + left
        if right - left < len(literal):
            if absolute + len(literal) > len(self.data):
                self._record(
                    len(self.data),
                    _RANK_TRUNCATED,
                    TruncatedInput,
                    f"terminal {literal!r} needs "
                    f"{absolute + len(literal) - len(self.data)} bytes past "
                    f"end of input",
                )
            else:
                self._record(
                    absolute,
                    _RANK_BOUNDS,
                    BoundsViolation,
                    f"window [{left}, {right}) too small for terminal "
                    f"{literal!r}",
                    interval=(absolute, lo + right),
                )
            return False
        window = self.data[absolute : absolute + len(literal)]
        if window != literal:
            diff = 0
            while literal[diff] == window[diff]:
                diff += 1
            self._record(
                absolute + diff,
                _RANK_GUARD,
                GuardRejected,
                f"expected {literal!r}, found byte 0x{window[diff]:02x}",
            )
            return False
        upd_start_end_in_place(ctx.env, left, left + len(literal), literal != b"")
        if self.build:
            children.append(Leaf(literal))
        return True

    def _exec_switch(self, term, ctx, children, lo, hi, local_rules):
        for case in term.cases:
            if case.condition is None or case.condition.evaluate(ctx) != 0:
                return self._exec_nonterminal(
                    case.target, ctx, children, lo, hi, local_rules
                )
        self._record(
            lo + ctx.env.get("end", 0),
            _RANK_GUARD,
            GuardRejected,
            "no switch case applied",
        )
        return False

    def _parse_builtin(self, name, lo, hi):
        result = super()._parse_builtin(name, lo, hi)
        if result is FAIL:
            size = BUILTINS[name].size
            if size is not None and hi - lo < size:
                if lo + size > len(self.data):
                    self._record(
                        len(self.data),
                        _RANK_TRUNCATED,
                        TruncatedInput,
                        f"builtin {name} needs {size} bytes, "
                        f"{len(self.data) - lo} available",
                    )
                else:
                    self._record(
                        lo,
                        _RANK_BOUNDS,
                        BoundsViolation,
                        f"window of {hi - lo} bytes too small for "
                        f"{size}-byte builtin {name}",
                        interval=(lo, hi),
                    )
            else:
                self._record(
                    lo,
                    _RANK_GUARD,
                    GuardRejected,
                    f"builtin {name} rejected its {hi - lo}-byte window",
                )
        return result

    def _parse_blackbox(self, name, lo, hi):
        result = super()._parse_blackbox(name, lo, hi)
        if result is FAIL:
            self._record(
                lo,
                _RANK_GUARD,
                GuardRejected,
                f"blackbox {name} rejected its {hi - lo}-byte window",
            )
        return result


def _run_diagnosis(parser: Parser, data: bytes, start: str) -> ParseFailure:
    import sys

    run = _DiagRun(parser, data, build_tree=False)
    previous_limit = sys.getrecursionlimit()
    if parser.recursion_limit > previous_limit:
        sys.setrecursionlimit(parser.recursion_limit)
    try:
        result = run.parse_nonterminal(start, 0, len(data), None, None)
    except LimitExceeded as exc:
        return exc
    except (RecursionError, MemoryError) as exc:
        return LimitExceeded(
            f"{type(exc).__name__} while diagnosing the failed parse of "
            f"{start!r}",
            limit="recursion",
            nonterminal=start,
        )
    finally:
        if parser.recursion_limit > previous_limit:
            sys.setrecursionlimit(previous_limit)
    if result is not FAIL:
        # Defensive: the fast engine failed but the reference run
        # succeeded.  Report the failure without a bogus classification.
        return ParseFailure(
            f"input of length {len(data)} does not match nonterminal "
            f"{start!r} (diagnosis disagreed; engines out of sync?)",
            nonterminal=start,
        )
    return run._as_exception(start)


def diagnose_parser(parser: Parser, data: bytes, start: str) -> ParseFailure:
    """Diagnose a failed ``parser.parse(data, start)``; returns the exception.

    The caller raises the result (keeping the raise site in the engine's
    own entry point).
    """
    return _run_diagnosis(parser, as_buffer(data), start)


#: Prepared grammars keyed by source text (AOT modules re-diagnose
#: through their embedded ``GRAMMAR_SOURCE`` — parse the text once).
_PREPARED: Dict[str, Grammar] = {}


def diagnose_failure(
    grammar: Union[Grammar, str],
    data: bytes,
    start: Optional[str] = None,
    blackboxes: Optional[Dict[str, BlackboxCallable]] = None,
    limits: Optional[ParseLimits] = None,
) -> ParseFailure:
    """Diagnose a failed parse given only the grammar (text or object).

    Used by ahead-of-time emitted modules, which embed their grammar
    source and call back into this function (when the ``repro`` package
    is importable) to produce the same structured error the in-process
    engines raise.
    """
    if isinstance(grammar, str):
        prepared = _PREPARED.get(grammar)
        if prepared is None:
            prepared = _PREPARED[grammar] = prepare_grammar(grammar)
        grammar = prepared
    parser = Parser(
        grammar,
        blackboxes=blackboxes,
        backend="interpreted",
        first_byte_dispatch=False,
        bulk_fixed_shape=False,
        limits=limits,
    )
    return _run_diagnosis(parser, as_buffer(data), start or grammar.start)
