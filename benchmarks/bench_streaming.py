"""Streaming-vs-whole-buffer benchmark for the §8 stream parsers.

Measures, on the two streamable bundled formats (DNS and IPv4+UDP) and for
both execution backends:

* **throughput** — wall-clock ns/byte of ``Parser.parse_stream`` over
  chunked input against a whole-buffer ``Parser.parse``;
* **peak buffered bytes** — the high-water mark of the streaming input
  buffer, which must be bounded by the chunk size plus the largest
  suspended term, *not* by the input size (the compaction guarantee);
* **peak traced allocations** — tracemalloc peaks of both modes, for the
  end-to-end memory picture (parse-tree allocation dominates and is common
  to both).

Every measured run is differentially checked: the streamed tree must equal
the whole-buffer tree.  The script exits non-zero when trees disagree or
when the buffered-bytes bound is violated.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py [--smoke] [-o FILE]

``--smoke`` shrinks workloads and repetition counts for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import samples  # noqa: E402
from repro.evaluation.memory import measure_peak_memory  # noqa: E402
from repro.formats import registry  # noqa: E402

#: Workload builders for the streamable formats: ``builder(smoke)``.
WORKLOADS: Dict[str, Callable[[bool], bytes]] = {
    "dns": lambda smoke: samples.build_dns_response(
        answer_count=32 if smoke else 256,
        additional_count=32 if smoke else 256,
    ),
    "ipv4": lambda smoke: samples.build_ipv4_udp_packet(
        payload_size=1400 if smoke else 16384
    ),
}

#: Slack added to the buffered-bytes bound for fixed headers and rounding.
BOUND_SLACK = 512


def chunked(data: bytes, size: int):
    return [data[i : i + size] for i in range(0, len(data), size)]


def largest_suspended_term(fmt: str, data: bytes) -> int:
    """Upper bound on the largest single term the stream can suspend on.

    For DNS that is one resource record / question (bounded by the message
    layout); for IPv4+UDP it is the UDP datagram, whose ``Payload[len - 8]``
    is a single term — the honest caveat of the bound: a format whose
    grammar describes the bulk of the input as one term buffers that term.
    """
    if fmt == "dns":
        return 320  # header + a maximally labelled name + fixed RR fields
    if fmt == "ipv4":
        return len(data) - 20  # the UDP datagram behind the IPv4 header
    raise KeyError(fmt)


def best_of(action: Callable[[], object], rounds: int) -> int:
    action()  # warm-up
    best = None
    for _ in range(rounds):
        begin = time.perf_counter_ns()
        action()
        elapsed = time.perf_counter_ns() - begin
        if best is None or elapsed < best:
            best = elapsed
    return best


def run(smoke: bool, output: str) -> int:
    rounds = 3 if smoke else 9
    chunk_size = 256 if smoke else 1024
    results: Dict[str, dict] = {}
    failures = 0
    for fmt, build in WORKLOADS.items():
        data = build(smoke)
        chunks = chunked(data, chunk_size)
        spec = registry[fmt]
        assert spec.streamable, f"{fmt} must pass the §8 analysis"
        entry: dict = {"input_bytes": len(data), "chunk_bytes": chunk_size}
        for backend in ("compiled", "interpreted"):
            parser = spec.build_parser(backend=backend)
            batch_tree = parser.parse(data)
            session = parser.stream()
            for chunk in chunks:
                session.feed(chunk)
            if session.finish() != batch_tree:
                print(f"ERROR: {fmt}/{backend}: streamed tree != batch tree")
                failures += 1
                continue
            # The compaction floor is the lowest offset the *previous*
            # attempt read — i.e. the frontier as of the attempt before it —
            # so retention lags one attempt: up to two chunks of input plus
            # the largest suspended term.  Crucially the bound is
            # independent of the input size.
            bound = 2 * chunk_size + largest_suspended_term(fmt, data) + BOUND_SLACK
            if session.max_buffered > bound:
                print(
                    f"ERROR: {fmt}/{backend}: peak buffered "
                    f"{session.max_buffered} B exceeds the bound {bound} B "
                    f"(chunk + largest suspended term + slack)"
                )
                failures += 1
                continue
            batch_ns = best_of(lambda: parser.parse(data), rounds)
            stream_ns = best_of(
                lambda: parser.parse_stream(iter(chunks)), rounds
            )
            batch_memory = measure_peak_memory(lambda: parser.parse(data))
            stream_memory = measure_peak_memory(
                lambda: parser.parse_stream(iter(chunks))
            )
            size = len(data)
            entry[backend] = {
                "batch_ns_per_byte": round(batch_ns / size, 2),
                "stream_ns_per_byte": round(stream_ns / size, 2),
                "stream_overhead": round(stream_ns / batch_ns, 2),
                "peak_buffered_bytes": session.max_buffered,
                "peak_buffered_fraction": round(session.max_buffered / size, 4),
                "reentries": session.attempts,
                "batch_peak_kib": round(batch_memory.peak_kib, 1),
                "stream_peak_kib": round(stream_memory.peak_kib, 1),
            }
            print(
                f"{fmt:5s} {backend:11s} {size:7d} B in {chunk_size} B chunks: "
                f"batch {batch_ns / size:7.1f} ns/B, "
                f"stream {stream_ns / size:7.1f} ns/B "
                f"({stream_ns / batch_ns:.2f}x), "
                f"peak buffer {session.max_buffered} B "
                f"({100 * session.max_buffered / size:.1f}% of input), "
                f"{session.attempts} re-entries"
            )
        results[fmt] = entry
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {output}")
    if failures:
        print(f"{failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small workloads for CI smoke runs"
    )
    parser.add_argument("-o", "--output", default="", help="write JSON results here")
    args = parser.parse_args()
    return run(args.smoke, args.output)


if __name__ == "__main__":
    sys.exit(main())
