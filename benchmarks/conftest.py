"""Shared fixtures for the benchmark suite.

Every benchmark module regenerates one table or figure of the paper's
evaluation (see DESIGN.md, experiment index E1–E12).  The workloads are the
synthetic samples from :mod:`repro.samples`; they are built once per session.

The "IPG" side of every comparison uses the *ahead-of-time emitted* parser
(:meth:`repro.core.compiler.CompiledGrammar.load_module`), matching the
paper's artifact (a parser generator), with the reference interpreter
available for
cross-checks.

Since the staged compiler backend became the default parse engine, every
figure additionally records the ``Parser`` backends — ``compiled`` (the
staged closures of :mod:`repro.core.compiler`) and ``interpreted`` (the
reference big-step interpreter) — in the same benchmark groups, so the
compiler's speedup is measured alongside the baselines rather than
asserted.  ``benchmarks/bench_compiler_speedup.py`` distills the same
comparison into ``BENCH_compiler.json`` for cross-PR tracking.
"""

from __future__ import annotations

import pytest

from repro import samples
from repro.core.compiler import compile_grammar
from repro.formats import registry


def build_generated_parser(fmt: str):
    """Emit and import the ahead-of-time parser for a registered format."""
    spec = registry[fmt]
    compiled = compile_grammar(spec.grammar_text, blackboxes=dict(spec.blackboxes))
    return compiled.load_module(f"_bench_aot_{fmt.replace('-', '_')}")


def build_backend_parser(fmt: str, backend: str):
    """Build a Parser for a registered format on the given backend."""
    parser = registry[fmt].build_parser(backend=backend)
    assert parser.backend == backend, f"{fmt}: fell back to {parser.backend}"
    return parser


@pytest.fixture(scope="session")
def generated_parsers():
    """Generated parsers for every format used by the benchmarks."""
    return {fmt: build_generated_parser(fmt) for fmt in registry}


@pytest.fixture(scope="session")
def compiled_parsers():
    """Compiled-backend parsers for every format used by the benchmarks."""
    return {fmt: build_backend_parser(fmt, "compiled") for fmt in registry}


@pytest.fixture(scope="session")
def interpreted_parsers():
    """Interpreter-backend parsers for every format used by the benchmarks."""
    return {fmt: build_backend_parser(fmt, "interpreted") for fmt in registry}


# -- workload series ----------------------------------------------------------

ZIP_MEMBER_COUNTS = [2, 8, 32]
GIF_FRAME_COUNTS = [1, 4, 16]
PE_SECTION_COUNTS = [2, 8, 16]
ELF_SECTION_COUNTS = [4, 16, 64]
DNS_ANSWER_COUNTS = [1, 8, 32]
IPV4_PAYLOAD_SIZES = [16, 256, 1400]


@pytest.fixture(scope="session")
def zip_series():
    return {
        count: samples.build_zip(member_count=count, member_size=2048)
        for count in ZIP_MEMBER_COUNTS
    }


@pytest.fixture(scope="session")
def zip_large_stored_archive():
    """A large archive of stored members: the zero-copy showcase (Fig 13a)."""
    return samples.build_zip(member_count=8, member_size=2 * 1024 * 1024, compressed=False)


@pytest.fixture(scope="session")
def gif_series():
    return {
        count: samples.build_gif(frame_count=count, bytes_per_frame=2048)
        for count in GIF_FRAME_COUNTS
    }


@pytest.fixture(scope="session")
def pe_series():
    return {
        count: samples.build_pe(section_count=count, section_size=2048)
        for count in PE_SECTION_COUNTS
    }


@pytest.fixture(scope="session")
def elf_series():
    return {
        count: samples.build_elf(section_count=count, symbol_count=count * 4, dynamic_entries=16)
        for count in ELF_SECTION_COUNTS
    }


@pytest.fixture(scope="session")
def dns_series():
    return {
        count: samples.build_dns_response(answer_count=count)
        for count in DNS_ANSWER_COUNTS
    }


@pytest.fixture(scope="session")
def ipv4_series():
    return {
        size: samples.build_ipv4_udp_packet(payload_size=size)
        for size in IPV4_PAYLOAD_SIZES
    }
