"""E7 — Figure 13c: PE parsing time, IPG vs the Kaitai-like engine."""

import pytest

from repro.baselines.kaitai_like import specs as kaitai_specs

from conftest import PE_SECTION_COUNTS, build_generated_parser


@pytest.fixture(scope="module")
def ipg_pe_parser():
    return build_generated_parser("pe")


@pytest.fixture(scope="module")
def kaitai_pe_engine():
    return kaitai_specs.get_engine("pe")


@pytest.mark.parametrize("sections", PE_SECTION_COUNTS)
def test_fig13c_ipg(benchmark, pe_series, ipg_pe_parser, sections):
    binary = pe_series[sections]
    benchmark.group = f"fig13c-pe-{sections}"
    tree = benchmark(ipg_pe_parser.parse, binary)
    assert len(tree.array("SectionHeader")) == sections


@pytest.mark.parametrize("sections", PE_SECTION_COUNTS)
def test_fig13c_kaitai_like(benchmark, pe_series, kaitai_pe_engine, sections):
    binary = pe_series[sections]
    benchmark.group = f"fig13c-pe-{sections}"
    obj = benchmark(kaitai_pe_engine.parse, binary)
    assert obj["pe_header"].fields["nsections"] == sections


@pytest.mark.parametrize("sections", PE_SECTION_COUNTS)
def test_fig13c_ipg_compiled(benchmark, pe_series, compiled_parsers, sections):
    binary = pe_series[sections]
    benchmark.group = f"fig13c-pe-{sections}"
    tree = benchmark(compiled_parsers["pe"].parse, binary)
    assert len(tree.array("SectionHeader")) == sections


@pytest.mark.parametrize("sections", PE_SECTION_COUNTS)
def test_fig13c_ipg_interpreted(benchmark, pe_series, interpreted_parsers, sections):
    binary = pe_series[sections]
    benchmark.group = f"fig13c-pe-{sections}"
    tree = benchmark(interpreted_parsers["pe"].parse, binary)
    assert len(tree.array("SectionHeader")) == sections
