"""E10 — Figure 13f: IPv4+UDP parsing time, IPG vs Kaitai-like vs Nail-like."""

import pytest

from repro.baselines import nail_like
from repro.baselines.kaitai_like import specs as kaitai_specs

from conftest import IPV4_PAYLOAD_SIZES, build_generated_parser


@pytest.fixture(scope="module")
def ipg_ipv4_parser():
    return build_generated_parser("ipv4")


@pytest.fixture(scope="module")
def kaitai_ipv4_engine():
    return kaitai_specs.get_engine("ipv4")


@pytest.mark.parametrize("payload", IPV4_PAYLOAD_SIZES)
def test_fig13f_ipg(benchmark, ipv4_series, ipg_ipv4_parser, payload):
    packet = ipv4_series[payload]
    benchmark.group = f"fig13f-ipv4-{payload}"
    tree = benchmark(ipg_ipv4_parser.parse, packet)
    assert tree.child("UDP")["len"] == 8 + payload


@pytest.mark.parametrize("payload", IPV4_PAYLOAD_SIZES)
def test_fig13f_kaitai_like(benchmark, ipv4_series, kaitai_ipv4_engine, payload):
    packet = ipv4_series[payload]
    benchmark.group = f"fig13f-ipv4-{payload}"
    obj = benchmark(kaitai_ipv4_engine.parse, packet)
    assert obj["udp"].fields["length"] == 8 + payload


@pytest.mark.parametrize("payload", IPV4_PAYLOAD_SIZES)
def test_fig13f_nail_like(benchmark, ipv4_series, payload):
    packet = ipv4_series[payload]
    benchmark.group = f"fig13f-ipv4-{payload}"
    parsed, _arena = benchmark(nail_like.parse_ipv4_udp, packet)
    assert parsed.udp.length == 8 + payload


@pytest.mark.parametrize("payload", IPV4_PAYLOAD_SIZES)
def test_fig13f_ipg_compiled(benchmark, ipv4_series, compiled_parsers, payload):
    packet = ipv4_series[payload]
    benchmark.group = f"fig13f-ipv4-{payload}"
    tree = benchmark(compiled_parsers["ipv4"].parse, packet)
    assert tree.child("UDP")["len"] == 8 + payload


@pytest.mark.parametrize("payload", IPV4_PAYLOAD_SIZES)
def test_fig13f_ipg_interpreted(benchmark, ipv4_series, interpreted_parsers, payload):
    packet = ipv4_series[payload]
    benchmark.group = f"fig13f-ipv4-{payload}"
    tree = benchmark(interpreted_parsers["ipv4"].parse, packet)
    assert tree.child("UDP")["len"] == 8 + payload
