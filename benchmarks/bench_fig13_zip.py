"""E5 — Figure 13a: ZIP parsing time, IPG vs the Kaitai-like engine.

Two series:

* the standard series (archives with growing member counts), and
* a large stored-member archive that showcases the *zero-copy* property the
  paper credits for IPG's win on ZIP: the IPG metadata parse touches only
  the central directory, while the Kaitai-like engine parses the archive
  front to back and copies every member's data through substreams.
"""

import pytest

from repro.baselines.kaitai_like import specs as kaitai_specs
from repro.core.compiler import compile_grammar
from repro.evaluation.timing import measure_runtime
from repro.formats import zipfmt

from conftest import ZIP_MEMBER_COUNTS


@pytest.fixture(scope="module")
def ipg_zip_metadata_parser():
    return compile_grammar(zipfmt.METADATA_GRAMMAR).load_module("_fig13a_zip_meta")


@pytest.fixture(scope="module")
def kaitai_zip_engine():
    return kaitai_specs.get_engine("zip")


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig13a_ipg(benchmark, zip_series, ipg_zip_metadata_parser, members):
    archive = zip_series[members]
    benchmark.group = f"fig13a-zip-{members}"
    tree = benchmark(ipg_zip_metadata_parser.parse, archive)
    assert len(tree.array("CDE")) == members


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig13a_kaitai_like(benchmark, zip_series, kaitai_zip_engine, members):
    archive = zip_series[members]
    benchmark.group = f"fig13a-zip-{members}"
    obj = benchmark(kaitai_zip_engine.parse, archive)
    section_types = [s.fields["section_type"] for s in obj["sections"]]
    assert section_types.count(0x0201) == members


def test_fig13a_zero_copy_crossover(
    benchmark, zip_large_stored_archive, ipg_zip_metadata_parser, kaitai_zip_engine
):
    """On a data-dominated archive the zero-copy IPG parse wins (paper's claim)."""
    archive = zip_large_stored_archive
    benchmark.group = "fig13a-zip-large-stored"

    ipg_time = measure_runtime(lambda: ipg_zip_metadata_parser.parse(archive), repeats=5)
    kaitai_time = measure_runtime(lambda: kaitai_zip_engine.parse(archive), repeats=5)
    benchmark.extra_info["archive_bytes"] = len(archive)
    benchmark.extra_info["ipg_ms"] = round(ipg_time.mean_ms, 3)
    benchmark.extra_info["kaitai_like_ms"] = round(kaitai_time.mean_ms, 3)

    # Record the IPG side as the benchmark timing as well.
    benchmark(ipg_zip_metadata_parser.parse, archive)

    # The paper's qualitative result: IPG is the faster ZIP parser because it
    # skips the archived data instead of consuming it.
    assert ipg_time.mean < kaitai_time.mean


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig13a_ipg_compiled(benchmark, zip_series, compiled_parsers, members):
    archive = zip_series[members]
    benchmark.group = f"fig13a-zip-{members}"
    tree = benchmark(compiled_parsers["zip-meta"].parse, archive)
    assert len(tree.array("CDE")) == members


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig13a_ipg_interpreted(benchmark, zip_series, interpreted_parsers, members):
    archive = zip_series[members]
    benchmark.group = f"fig13a-zip-{members}"
    tree = benchmark(interpreted_parsers["zip-meta"].parse, archive)
    assert len(tree.array("CDE")) == members
