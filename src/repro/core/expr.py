"""The IPG expression language.

Expressions appear inside intervals (``A[e_l, e_r]``), attribute definitions
(``{id = e}``), predicates (``guard(e)``), switch conditions and array
bounds.  The core grammar (Figure 5 of the paper) is::

    e    ::= n | e1 bop e2 | e1 ? e2 : e3 | ref
    bop  ::= + | - | * | / | = | > | < | and | or
    ref  ::= id | A.id | A(e).id | EOI | A.start | A.end

The full language used by the case studies additionally needs ``%`` (modulo),
bit operations (``& | << >>``), the remaining comparisons, and the
existential ``exists j . e1 ? e2 : e3`` of section 3.4.  Every expression
evaluates to an integer; comparisons and boolean connectives produce 0/1,
and a predicate fails exactly when its expression evaluates to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple

from .env import EvalContext
from .errors import EvaluationError

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class Expr:
    """Base class of expression AST nodes."""

    __slots__ = ()

    def evaluate(self, ctx: EvalContext) -> int:
        """Evaluate the expression to an integer under ``ctx``."""
        raise NotImplementedError

    def references(self) -> Set[Tuple[str, str]]:
        """Return the set of entities this expression references.

        Each element is a tag/name pair:

        * ``("name", id)`` — a plain identifier (attribute or loop variable),
        * ``("nt", A)``    — a nonterminal whose attribute is referenced via
          ``A.id`` or ``A(e).id``,
        * ``("special", x)`` — ``EOI`` (``start``/``end`` of the *current*
          nonterminal are also specials when referenced without a prefix).
        """
        refs: Set[Tuple[str, str]] = set()
        for node in self.walk():
            refs |= node._own_references()
        return refs

    def _own_references(self) -> Set[Tuple[str, str]]:
        return set()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all sub-expressions (pre-order)."""
        yield self

    def to_source(self) -> str:
        """Render the expression in IPG surface syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_source()})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.to_source() == other.to_source()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.to_source()))


@dataclass(frozen=True, repr=False, eq=False)
class Num(Expr):
    """An integer literal."""

    value: int

    def evaluate(self, ctx: EvalContext) -> int:
        return self.value

    def to_source(self) -> str:
        return str(self.value)


@dataclass(frozen=True, repr=False, eq=False)
class Name(Expr):
    """A plain identifier: a local attribute, a loop variable, or ``EOI``."""

    ident: str

    def evaluate(self, ctx: EvalContext) -> int:
        return ctx.lookup_name(self.ident)

    def _own_references(self) -> Set[Tuple[str, str]]:
        if self.ident == "EOI":
            return {("special", "EOI")}
        return {("name", self.ident)}

    def to_source(self) -> str:
        return self.ident


@dataclass(frozen=True, repr=False, eq=False)
class Dot(Expr):
    """``A.id`` — an attribute of a previously parsed nonterminal.

    ``A.start`` and ``A.end`` are represented with ``attr`` set to ``start``
    or ``end``; the interpreter stores those special attributes directly in
    the node environment, so no extra machinery is needed here.
    """

    nonterminal: str
    attr: str

    def evaluate(self, ctx: EvalContext) -> int:
        return ctx.lookup_dot(self.nonterminal, self.attr)

    def _own_references(self) -> Set[Tuple[str, str]]:
        return {("nt", self.nonterminal)}

    def to_source(self) -> str:
        return f"{self.nonterminal}.{self.attr}"


@dataclass(frozen=True, repr=False, eq=False)
class Index(Expr):
    """``A(e).id`` — an attribute of the ``e``-th element of array ``A``."""

    nonterminal: str
    index: Expr
    attr: str

    def evaluate(self, ctx: EvalContext) -> int:
        position = self.index.evaluate(ctx)
        return ctx.lookup_index(self.nonterminal, position, self.attr)

    def _own_references(self) -> Set[Tuple[str, str]]:
        return {("nt", self.nonterminal)}

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.index.walk()

    def to_source(self) -> str:
        return f"{self.nonterminal}({self.index.to_source()}).{self.attr}"


#: Binary operators understood by the expression language, mapping the
#: surface spelling to an evaluation function over Python ints.
_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": None,  # handled specially (division by zero)
    "%": None,  # handled specially (modulo by zero)
    "=": lambda a, b: 1 if a == b else 0,
    "!=": lambda a, b: 1 if a != b else 0,
    "<": lambda a, b: 1 if a < b else 0,
    ">": lambda a, b: 1 if a > b else 0,
    "<=": lambda a, b: 1 if a <= b else 0,
    ">=": lambda a, b: 1 if a >= b else 0,
    "&&": lambda a, b: 1 if (a != 0 and b != 0) else 0,
    "||": lambda a, b: 1 if (a != 0 or b != 0) else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

BINARY_OPERATORS = tuple(_BINOPS)


@dataclass(frozen=True, repr=False, eq=False)
class BinOp(Expr):
    """A binary operation ``e1 op e2``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def evaluate(self, ctx: EvalContext) -> int:
        if self.op == "&&":
            return 1 if (self.left.evaluate(ctx) != 0 and self.right.evaluate(ctx) != 0) else 0
        if self.op == "||":
            return 1 if (self.left.evaluate(ctx) != 0 or self.right.evaluate(ctx) != 0) else 0
        lhs = self.left.evaluate(ctx)
        rhs = self.right.evaluate(ctx)
        if self.op == "/":
            if rhs == 0:
                raise EvaluationError(f"division by zero in {self.to_source()}")
            return _int_div(lhs, rhs)
        if self.op == "%":
            if rhs == 0:
                raise EvaluationError(f"modulo by zero in {self.to_source()}")
            return lhs - _int_div(lhs, rhs) * rhs
        if self.op in ("<<", ">>") and rhs < 0:
            raise EvaluationError(f"negative shift amount in {self.to_source()}")
        return _BINOPS[self.op](lhs, rhs)

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def to_source(self) -> str:
        return f"({self.left.to_source()} {self.op} {self.right.to_source()})"


def _int_div(a: int, b: int) -> int:
    """Truncating integer division (C-like), matching the generated parsers."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


@dataclass(frozen=True, repr=False, eq=False)
class Cond(Expr):
    """A ternary conditional ``e1 ? e2 : e3``."""

    condition: Expr
    then: Expr
    otherwise: Expr

    def evaluate(self, ctx: EvalContext) -> int:
        if self.condition.evaluate(ctx) != 0:
            return self.then.evaluate(ctx)
        return self.otherwise.evaluate(ctx)

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.condition.walk()
        yield from self.then.walk()
        yield from self.otherwise.walk()

    def to_source(self) -> str:
        return (
            f"({self.condition.to_source()} ? {self.then.to_source()}"
            f" : {self.otherwise.to_source()})"
        )


@dataclass(frozen=True, repr=False, eq=False)
class Exists(Expr):
    """The existential ``exists j . e1 ? e2 : e3`` of section 3.4.

    The expression loops over the array referenced inside ``e1`` (the first
    array reference indexed by the bound variable), binds ``var`` to the
    index of the first element for which ``e1`` is non-zero, and evaluates
    ``e2``; if no element satisfies ``e1``, it evaluates ``e3``.
    """

    var: str
    condition: Expr
    then: Expr
    otherwise: Expr

    def _target_array(self) -> Optional[str]:
        """Name of the array the existential quantifies over."""
        for node in self.condition.walk():
            if isinstance(node, Index):
                index_refs = node.index.references()
                if ("name", self.var) in index_refs:
                    return node.nonterminal
        return None

    def evaluate(self, ctx: EvalContext) -> int:
        array_name = self._target_array()
        if array_name is None:
            raise EvaluationError(
                f"existential over {self.var!r} does not reference any array "
                f"indexed by it: {self.to_source()}"
            )
        length = ctx.array_length(array_name)
        saved = ctx.env.get(self.var)
        had_binding = self.var in ctx.env
        try:
            for position in range(length):
                ctx.env[self.var] = position
                if self.condition.evaluate(ctx) != 0:
                    return self.then.evaluate(ctx)
            if had_binding:
                ctx.env[self.var] = saved  # restore before the else branch
            else:
                ctx.env.pop(self.var, None)
            return self.otherwise.evaluate(ctx)
        finally:
            if had_binding:
                ctx.env[self.var] = saved
            else:
                ctx.env.pop(self.var, None)

    def _own_references(self) -> Set[Tuple[str, str]]:
        return set()

    def references(self) -> Set[Tuple[str, str]]:
        refs: Set[Tuple[str, str]] = set()
        for part in (self.condition, self.then, self.otherwise):
            refs |= part.references()
        # The bound variable is not a free reference.
        refs.discard(("name", self.var))
        return refs

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.condition.walk()
        yield from self.then.walk()
        yield from self.otherwise.walk()

    def to_source(self) -> str:
        return (
            f"(exists {self.var} . {self.condition.to_source()} ? "
            f"{self.then.to_source()} : {self.otherwise.to_source()})"
        )


# ---------------------------------------------------------------------------
# Convenience constructors (used heavily by auto-completion and tests)
# ---------------------------------------------------------------------------

EOI = Name("EOI")


def num(value: int) -> Num:
    """Shorthand for :class:`Num`."""
    return Num(value)


def add(left: Expr, right: Expr) -> Expr:
    """``left + right`` with constant folding for the common cases."""
    if isinstance(left, Num) and isinstance(right, Num):
        return Num(left.value + right.value)
    if isinstance(right, Num) and right.value == 0:
        return left
    if isinstance(left, Num) and left.value == 0:
        return right
    return BinOp("+", left, right)


def sub(left: Expr, right: Expr) -> Expr:
    """``left - right`` with constant folding for the common cases."""
    if isinstance(left, Num) and isinstance(right, Num):
        return Num(left.value - right.value)
    if isinstance(right, Num) and right.value == 0:
        return left
    return BinOp("-", left, right)


def dot_end(nonterminal: str) -> Dot:
    """``A.end`` — used by interval auto-completion."""
    return Dot(nonterminal, "end")
