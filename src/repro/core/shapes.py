"""Fixed-shape static analysis: byte layouts of rules -> ``struct`` plans.

The Fig. 13 gap between the IPG engines and the handwritten/Kaitai-style
baselines is largely a *per-record tax*: ELF symbol tables, ZIP central
directory entries, PE section headers, DNS headers and IPv4 words are all
statically fixed-width, yet every record pays a rule invocation, an
environment, and one ``int.from_bytes`` (plus a slice) per field.  The
baselines decode the same records with one precompiled
:class:`struct.Struct` per layout.  This module computes, per
rule/alternative, whether the same move is sound for an IPG — and the plan
that makes it.

For every **top-level** rule alternative the analysis walks the (reordered,
i.e. execution-ordered) terms and tries to resolve each consuming term to a
constant offset/width relative to the alternative's window, symbolically
chasing the ``P.end`` chains interval auto-completion leaves behind:

* terminal strings with statically-constant intervals become literal fields
  (decoded as ``{n}s`` slots and compared against the expected bytes);
* fixed-width integer builtins (``U16LE``, ``U32BE``, ...) become integer
  slots with the matching struct code; a plan mixes at most one byte order;
* ``Raw``/``Bytes`` with constant width become pad/``{n}s`` fields;
* nonterminals that resolve to other single-alternative **fully** fixed
  rules at a constant-width window nest their plan (flattened into the same
  struct format);
* ``for`` arrays with constant bounds and constant per-element intervals
  over a fixed element nest one plan copy per element;
* attribute definitions and ``guard`` terms become *post-decode* steps over
  the unpacked tuple: their expressions are rewritten so that ``B.val``
  reads a tuple slot and earlier attributes read locals;
* anything interval-dependent — a width derived from a decoded value, an
  ``EOI``-relative right endpoint (when the window width is unknown), a
  switch, a blackbox, a ``where`` local rule — conservatively **stops** the
  walk.  The terms covered so far form a fixed *prefix* plan (ZIP's CDE and
  LFH records are a 46/30-byte fixed prefix followed by variable-length
  names); a plan covering every term is *full* and additionally enables
  bulk array decoding (one ``Struct.iter_unpack`` per array) and the
  interpreter's one-shot decoders.

Records with a *variable-width gap* get a second, **anchored** analysis
(:func:`alternative_suffix`): when the prefix walk stops at a nonterminal
term (the gap), the remaining terms are re-analyzed with every offset
expressed relative to the gap's ``end`` attribute — symbolically, as an
affine value ``anchor + k``.  A term joins the anchored plan only when both
interval endpoints are affine in the anchor with coefficient exactly one
(the ``P.end`` chains auto-completion emits qualify; frame-absolute
constants and nonlinear uses of positions do not), so the suffix struct's
single ``anchor + needed <= EOI`` bounds check stays sound.  DNS resource
records are the motivating case: a variable-width ``Name`` followed by the
10-byte type/class/ttl/rdlength tail (one ``>HHIH`` unpack per record).

Soundness contract: executing a plan is observably identical to executing
the covered terms one by one.  The single ``window >= needed`` bounds check
subsumes every covered interval-validity check (all offsets are constants),
and every early-exit path of the covered terms — an interval check, a
literal mismatch, a failing guard, an :class:`EvaluationError` from an
attribute expression — produces the same clean ``FAIL`` regardless of
order, because covered terms can neither reach blackboxes nor raise
anything else.  Plans never change *which* inputs parse, only how fast.

Like :mod:`repro.core.firstsets`, parametric (window-width-independent)
analyses are cached on the prepared ``Grammar`` instance; width-known
instantiations (bulk array elements, nested rules) are built fresh per use
so their struct slots can be assigned per plan.

Consumers:

* :mod:`repro.core.compiler` (``Optimizations.bulk_fixed_shape``) fuses
  covered prefixes into the generated alternatives and lowers eligible
  ``for`` arrays to ``iter_unpack`` loops — all as plain source, so the
  ahead-of-time emitter vendors the ``struct.Struct`` constants for free;
* :class:`repro.core.interpreter.Parser` consults :func:`rule_decoders`
  for its one-shot path;
* ``repro compile --explain-shapes`` prints :func:`explain_shapes`.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from .ast import (
    Alternative,
    Grammar,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .builtins import BUILTINS
from .errors import EvaluationError
from .expr import BinOp, Cond, Dot, Expr, Name, Num
from .exprcomp import SPECIALS, fold

__all__ = [
    "AltShape",
    "PlanCode",
    "SuffixShape",
    "alternative_shape",
    "alternative_suffix",
    "rule_shape",
    "rule_decoders",
    "linear_stride",
    "explain_shapes",
]

#: struct format codes of the fixed-width integer builtins.
_INT_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}
_SIGNED_CODES = {4: "i", 8: "q"}

#: Caps keeping flattened plans (and the code generated from them) small.
_MAX_LEAVES = 256
_MAX_ARRAY_COUNT = 32

_UID = [0]


class _Stop(Exception):
    """The walk left the fixed fragment; the plan ends before this term."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _NotConst(Exception):
    """A statically evaluated expression referenced a runtime value."""


def _affine(coeff: int, const: int):
    return const if coeff == 0 else _Affine(coeff, const)


class _Affine:
    """``coeff * anchor + const`` flowing through static interval evaluation.

    Anchored suffix analyses store positions as affine values in the anchor
    (the gap's runtime ``end``).  Addition, subtraction and integer scaling
    keep the form — differences of two positions collapse back to plain
    ints — and every other operation raises :class:`_NotConst`, so any
    nonlinear use of a position (division, comparison, a conditional's
    test) conservatively stops the walk instead of mis-anchoring a field.
    """

    __slots__ = ("coeff", "const")

    def __init__(self, coeff: int, const: int):
        self.coeff = coeff
        self.const = const

    def __add__(self, other):
        if isinstance(other, _Affine):
            return _affine(self.coeff + other.coeff, self.const + other.const)
        if isinstance(other, int):
            return _Affine(self.coeff, self.const + other)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, _Affine):
            return _affine(self.coeff - other.coeff, self.const - other.const)
        if isinstance(other, int):
            return _Affine(self.coeff, self.const - other)
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, int):
            return _affine(-self.coeff, other - self.const)
        return NotImplemented

    def __mul__(self, other):
        if isinstance(other, int):
            return _affine(self.coeff * other, self.const * other)
        raise _NotConst()

    __rmul__ = __mul__

    def __neg__(self):
        return _affine(-self.coeff, -self.const)

    # Any observation that depends on the anchor's runtime value.
    def _opaque(self, *_args):
        raise _NotConst()

    __eq__ = __ne__ = __lt__ = __le__ = __gt__ = __ge__ = _opaque
    __floordiv__ = __rfloordiv__ = __mod__ = __rmod__ = _opaque
    __truediv__ = __rtruediv__ = __abs__ = __bool__ = _opaque
    __lshift__ = __rlshift__ = __rshift__ = __rrshift__ = _opaque
    __and__ = __rand__ = __or__ = __ror__ = __xor__ = __rxor__ = _opaque
    __hash__ = None


def _rw_can_raise(rw) -> bool:
    """Whether a rewritten expression can raise EvaluationError at runtime."""
    kind = rw[0]
    if kind == "bin":
        if rw[1] in ("/", "%", "<<", ">>"):
            return True
        return _rw_can_raise(rw[2]) or _rw_can_raise(rw[3])
    if kind == "cond":
        return any(_rw_can_raise(part) for part in rw[1:])
    return False


# ---------------------------------------------------------------------------
# Plan pieces
# ---------------------------------------------------------------------------


class _Field:
    """One leaf of the flattened layout (a struct slot or pad range).

    ``offset`` is absolute within the *top* frame once the plan is
    finalized (nested frames are shifted during absorption); ``eoi`` is the
    field's own window length when constant, or ``None`` for the
    ``EOI - offset`` of a parametric frame.
    """

    __slots__ = ("kind", "offset", "width", "name", "value", "code", "eoi", "slot")

    def __init__(self, kind, offset, width, name=None, value=None, code=None, eoi=None):
        self.kind = kind  # "lit" | "int" | "raw" | "bytes"
        self.offset = offset
        self.width = width
        self.name = name  # builtin name for int/raw/bytes
        self.value = value  # expected bytes for "lit"
        self.code = code  # struct code ("H", "4s", ...); None = pad
        self.eoi = eoi
        self.slot = None  # tuple index, assigned at finalize


class _AttrStep:
    """``{name = e}``: bind an attribute from the decoded state."""

    __slots__ = ("name", "rw", "key")

    def __init__(self, name, rw, key):
        self.name = name
        self.rw = rw  # rewritten expression (see _Analyzer._rewrite)
        self.key = key  # unique local-name suffix within the top plan


class _GuardStep:
    """``guard(e)`` over the decoded state."""

    __slots__ = ("rw",)

    def __init__(self, rw):
        self.rw = rw


class _NestedStep:
    """A nonterminal term resolved to a fully fixed rule at a const window."""

    __slots__ = ("offset", "width", "name", "plan")

    def __init__(self, offset, width, name, plan):
        self.offset = offset  # absolute within the top frame after absorb
        self.width = width  # the nested window width (== nested EOI)
        self.name = name
        self.plan = plan  # AltShape analyzed at width=width


class _ArrayStep:
    """A ``for`` array with constant bounds and intervals."""

    __slots__ = ("name", "offsets", "width", "plans")

    def __init__(self, name, offsets, width, plans):
        self.name = name
        self.offsets = offsets  # per-element window offsets (absolute)
        self.width = width  # per-element window width
        self.plans = plans  # one fresh AltShape per element


class AltShape:
    """The fixed-layout prefix of one alternative.

    ``items`` lists the covered steps in execution order; ``covered`` counts
    the covered terms (``full`` when every term is covered).  ``fmt``/
    ``size`` describe the flattened struct layout spanning ``[0, size)`` of
    the window; ``needed`` is the minimal window length any successful parse
    of the covered terms requires.  ``start``/``end`` are the statically
    known touched-byte span (``touch`` is False when nothing is touched).
    """

    def __init__(self, rule_name: str, alt_index: int, width: Optional[int]):
        self.rule_name = rule_name
        self.alt_index = alt_index
        self.width = width  # window width when instantiated, else None
        self.items: list = []
        self.fields: List[_Field] = []  # every leaf, flattened, top-frame offsets
        self.attr_steps: List[_AttrStep] = []  # top-frame attribute bindings
        self.covered = 0
        self.total = 0
        self.full = False
        self.needed = 0
        self.touch = False
        self.start = 0
        self.end = 0
        self.byteorder: Optional[str] = None
        self.fmt = ""
        self.size = 0
        self.nslots = 0
        self.has_guards = False
        self.has_lits = False
        #: Whether any attribute step's expression can raise at decode time
        #: (division / modulo / shift): evaluating it is itself a check the
        #: engines must not skip, since EvaluationError fails the parse.
        self.has_raising_attrs = False
        self.stop_reason: Optional[str] = None
        _UID[0] += 1
        self.uid = _UID[0]

    # -- queries -----------------------------------------------------------
    @property
    def worthwhile(self) -> bool:
        """Whether fusing beats the per-term path (amortizes the C call)."""
        return self.nslots >= 3

    @property
    def checks_anything(self) -> bool:
        """Whether decoding can fail beyond the window bounds check."""
        return self.has_guards or self.has_lits or self.has_raising_attrs

    def recorded_names(self) -> List[str]:
        names = []
        for item in self.items:
            if isinstance(item, _Field) and item.kind in ("int", "raw", "bytes"):
                names.append(item.name)
            elif isinstance(item, _NestedStep):
                names.append(item.name)
        return names

    def array_names(self) -> List[str]:
        return [item.name for item in self.items if isinstance(item, _ArrayStep)]

    def describe(self) -> str:
        kind = "fixed" if self.full else "fixed prefix"
        parts = [f"{kind}, {self.needed} byte(s), {self.nslots} slot(s)"]
        if self.fmt:
            parts.append(f"fmt {self.fmt!r}")
        if not self.full:
            parts.append(f"covers {self.covered}/{self.total} terms")
            if self.stop_reason:
                parts.append(f"stops: {self.stop_reason}")
        return ", ".join(parts)


# ---------------------------------------------------------------------------
# Static evaluation of interval / bound expressions
# ---------------------------------------------------------------------------


class _StaticCtx:
    """Duck-typed ``EvalContext`` over the statically known values."""

    __slots__ = ("names", "records")

    def __init__(self):
        self.names: Dict[str, int] = {}
        self.records: Dict[str, Dict[str, int]] = {}

    def lookup_name(self, name: str) -> int:
        try:
            return self.names[name]
        except KeyError:
            raise _NotConst() from None

    def lookup_dot(self, nonterminal: str, attr: str) -> int:
        record = self.records.get(nonterminal)
        if record is None or attr not in record:
            raise _NotConst()
        return record[attr]

    def lookup_index(self, nonterminal, index, attr):
        raise _NotConst()

    def array_length(self, nonterminal):
        raise _NotConst()


# ---------------------------------------------------------------------------
# The analysis walk
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(
        self,
        grammar: Grammar,
        width: Optional[int],
        in_progress: frozenset,
        flat_only: bool = False,
        anchor: Optional[str] = None,
    ):
        self.grammar = grammar
        self.width = width
        self.in_progress = in_progress
        #: Refuse to absorb nested rules / arrays.  Streaming compilations
        #: fuse flat-only prefixes: absorbing a sub-*rule* would replace a
        #: memoized call with inline reads that re-execute on every stream
        #: re-entry, pinning the compaction watermark at the rule's window
        #: start (the same reason the streaming variant disables single-use
        #: inlining).
        self.flat_only = flat_only
        #: Anchored (suffix) mode: the name of the gap nonterminal whose
        #: ``end`` attribute every plan offset is relative to.  Positions
        #: become :class:`_Affine` values during static evaluation and
        #: ``("anch", k)`` nodes in rewritten expressions.
        self.anchor = anchor
        self.ctx = _StaticCtx()
        if anchor is not None:
            self.ctx.records[anchor] = {"end": _Affine(1, 0)}
        #: name -> ("int" | "raw" | "bytes", _Field) | ("nested", _NestedStep)
        self.records: Dict[str, tuple] = {}
        self.attrs_by_name: Dict[str, _AttrStep] = {}
        self.key_counter = [0]

    def analyze(
        self,
        rule_name: str,
        alt_index: int,
        alternative: Alternative,
        start_at: int = 0,
    ) -> AltShape:
        plan = AltShape(rule_name, alt_index, self.width)
        terms = alternative.terms[start_at:]
        plan.total = len(terms)
        if alternative.local_rules:
            plan.stop_reason = "declares where-rules"
            return plan
        try:
            for term in terms:
                self._walk_term(term, plan)
                plan.covered += 1
        except _Stop as stop:
            plan.stop_reason = stop.reason
        plan.full = plan.covered == plan.total
        self._finalize(plan)
        return plan

    # -- helpers -----------------------------------------------------------
    def _static(self, expr: Expr) -> Optional[int]:
        folded = fold(expr)
        if isinstance(folded, Num):
            return folded.value
        try:
            return folded.evaluate(self.ctx)
        except _NotConst:
            return None
        except EvaluationError:
            # A constant expression that raises at parse time (div by zero):
            # let the ordinary term path produce the failure.
            raise _Stop("expression raises statically")

    def _unwrap(self, value, what: str, which: str) -> int:
        """Anchor-normalize one static endpoint to a plain int offset.

        Anchored analyses accept only ``anchor + k`` positions (affine,
        coefficient exactly one) and return ``k``; a plain int there is a
        frame-absolute position that cannot share the anchored struct's
        base.  Parametric/width-known analyses never see affine values.
        """
        if self.anchor is not None:
            if not isinstance(value, _Affine) or value.coeff != 1:
                raise _Stop(f"{what}: {which} endpoint is not anchored on the gap")
            return value.const
        return value

    def _interval(self, term, what: str) -> Tuple[int, object]:
        """Resolve a term's interval to ``(left, right)``; right may be "EOI"."""
        interval = term.interval
        if interval.left is None or interval.right is None:
            raise _Stop(f"{what}: interval not auto-completed")
        left = self._static(interval.left)
        if left is None:
            raise _Stop(f"{what}: left endpoint is not static")
        left = self._unwrap(left, what, "left")
        right = self._static(interval.right)
        if right is None:
            folded = fold(interval.right)
            if isinstance(folded, Name) and folded.ident == "EOI":
                if self.width is not None:
                    return left, self.width
                return left, "EOI"
            raise _Stop(f"{what}: right endpoint is not static")
        return left, self._unwrap(right, what, "right")

    def _pos(self, offset: int):
        """A position value for the static ctx (affine when anchored)."""
        return _Affine(1, offset) if self.anchor is not None else offset

    def _pos_rw(self, offset: int):
        """A position node for rewritten expressions (anchored when anchored)."""
        return ("anch", offset) if self.anchor is not None else ("num", offset)

    def _check_window(self, plan: AltShape, left: int, right, consumed: int, what: str) -> None:
        """Static part of the ``0 <= l <= r <= EOI`` / width validity checks."""
        if left < 0:
            if self.anchor is not None:
                # anchor + left could still be in range; just unsupported.
                raise _Stop(f"{what}: anchored field before the gap's end")
            raise _Stop(f"{what}: always fails (negative left endpoint)")
        if right == "EOI":
            plan.needed = max(plan.needed, left + consumed)
            return
        if right < left or right - left < consumed:
            raise _Stop(f"{what}: always fails (window narrower than content)")
        if self.width is not None and right > self.width:
            raise _Stop(f"{what}: always fails (window exceeds the frame)")
        plan.needed = max(plan.needed, right)

    def _register_field(self, plan: AltShape, field: _Field, what: str) -> None:
        """Add one leaf to the flattened layout (overlap- and cap-checked)."""
        if field.width > 0:
            for other in plan.fields:
                if (
                    field.offset < other.offset + other.width
                    and other.offset < field.offset + field.width
                ):
                    raise _Stop(f"{what}: overlaps an earlier field")
        if len(plan.fields) >= _MAX_LEAVES:
            raise _Stop("layout exceeds the flattened-field cap")
        plan.fields.append(field)

    def _touch_span(self, plan: AltShape, start: int, end: int) -> None:
        if not plan.touch:
            plan.touch, plan.start, plan.end = True, start, end
        else:
            plan.start = min(plan.start, start)
            plan.end = max(plan.end, end)

    def _merge_byteorder(self, plan: AltShape, order: Optional[str], what: str) -> None:
        if order is None:
            return
        if plan.byteorder is None:
            plan.byteorder = order
        elif plan.byteorder != order:
            raise _Stop(f"{what}: mixes byte orders")

    def _next_key(self) -> int:
        self.key_counter[0] += 1
        return self.key_counter[0]

    def _renumber(self, plan: AltShape) -> None:
        """Give an absorbed plan's attr steps top-plan-unique local keys."""
        for item in plan.items:
            if isinstance(item, _AttrStep):
                item.key = self._next_key()
            elif isinstance(item, _NestedStep):
                self._renumber(item.plan)
            elif isinstance(item, _ArrayStep):
                for inner in item.plans:
                    self._renumber(inner)

    # -- the expression rewriter -------------------------------------------
    def _rewrite(self, expr: Expr, plan: AltShape):
        """Rewrite an attr/guard expression over the decoded state.

        Returns a renderable tuple tree; raises :class:`_Stop` when the
        expression reads anything the plan does not know.
        """
        expr = fold(expr)
        if isinstance(expr, Num):
            return ("num", expr.value)
        if isinstance(expr, Name):
            ident = expr.ident
            if ident == "EOI":
                return ("num", self.width) if self.width is not None else ("eoi",)
            if ident in ("start", "end") and self.anchor is not None:
                # The running specials mix pre-gap touches (unknown here)
                # with anchored ones; no static form exists.
                raise _Stop(f"anchored plan reads the {ident!r} special")
            if ident == "end":
                return ("num", plan.end if plan.touch else 0)
            if ident == "start":
                if plan.touch:
                    return ("num", plan.start)
                if self.width is not None:
                    return ("num", self.width)
                return ("eoi",)
            step = self.attrs_by_name.get(ident)
            if step is None:
                raise _Stop(f"references unknown name {ident!r}")
            return ("attr", step)
        if isinstance(expr, Dot):
            return self._rewrite_dot(expr)
        if isinstance(expr, BinOp):
            return (
                "bin",
                expr.op,
                self._rewrite(expr.left, plan),
                self._rewrite(expr.right, plan),
            )
        if isinstance(expr, Cond):
            return (
                "cond",
                self._rewrite(expr.condition, plan),
                self._rewrite(expr.then, plan),
                self._rewrite(expr.otherwise, plan),
            )
        raise _Stop(f"unsupported expression {type(expr).__name__}")

    def _rewrite_dot(self, expr: Dot):
        record = self.records.get(expr.nonterminal)
        if record is None:
            if expr.nonterminal == self.anchor and expr.attr == "end":
                return ("anch", 0)  # the gap's end IS the anchor
            raise _Stop(f"references unparsed nonterminal {expr.nonterminal!r}")
        kind, item = record
        attr = expr.attr
        if kind in ("int", "raw", "bytes"):
            offset, width = item.offset, item.width
            if attr == "start":
                # Every field rebases its start to its window offset — a
                # zero-width Raw included (callee start = its own length 0).
                return self._pos_rw(offset)
            if attr == "end":
                return self._pos_rw(offset + width)
            if attr == "EOI":
                if item.eoi is not None:
                    return ("num", item.eoi)
                return ("bin", "-", ("eoi",), self._pos_rw(offset))
            if kind == "int" and attr == "val":
                return ("slot", item)
            if kind in ("raw", "bytes") and attr in ("len", "val"):
                return ("num", width)
            raise _Stop(f"references unknown attribute {expr.to_source()}")
        # nested rule record
        step: _NestedStep = item
        nested = step.plan
        if attr == "EOI":
            return ("num", step.width)
        if attr == "start":
            return self._pos_rw(
                step.offset + (nested.start if nested.touch else step.width)
            )
        if attr == "end":
            return self._pos_rw(step.offset + (nested.end if nested.touch else 0))
        for astep in nested.attr_steps:
            if astep.name == attr:
                return ("attr", astep)
        raise _Stop(f"references unknown attribute {expr.to_source()}")

    # -- term walkers ------------------------------------------------------
    def _walk_term(self, term, plan: AltShape) -> None:
        if isinstance(term, TermAttrDef):
            if term.name in SPECIALS:
                raise _Stop(f"rebinds special {term.name!r}")
            rw = self._rewrite(term.expr, plan)
            step = _AttrStep(term.name, rw, self._next_key())
            plan.items.append(step)
            plan.attr_steps.append(step)
            plan.has_raising_attrs = plan.has_raising_attrs or _rw_can_raise(rw)
            self.attrs_by_name[term.name] = step
            if rw[0] == "num":
                self.ctx.names[term.name] = rw[1]
            elif rw[0] == "anch":
                self.ctx.names[term.name] = _Affine(1, rw[1])
            else:
                self.ctx.names.pop(term.name, None)
            return
        if isinstance(term, TermGuard):
            rw = self._rewrite(term.expr, plan)
            if rw[0] == "num":
                if rw[1] == 0:
                    raise _Stop("guard always fails")
                return  # statically true: no runtime step needed
            plan.items.append(_GuardStep(rw))
            plan.has_guards = True
            return
        if isinstance(term, TermTerminal):
            left, right = self._interval(term, "terminal")
            value = term.value
            self._check_window(plan, left, right, len(value), "terminal")
            if value:
                field = _Field(
                    "lit", left, len(value), value=value, code=f"{len(value)}s"
                )
                self._register_field(plan, field, "terminal")
                plan.items.append(field)
                plan.has_lits = True
                self._touch_span(plan, left, left + len(value))
            return
        if isinstance(term, TermNonterminal):
            self._walk_nonterminal(term, plan)
            return
        if isinstance(term, TermArray):
            self._walk_array(term, plan)
            return
        if isinstance(term, TermSwitch):
            raise _Stop("switch term")
        raise _Stop(f"term kind {type(term).__name__}")

    def _walk_nonterminal(self, term: TermNonterminal, plan: AltShape) -> None:
        name = term.name
        spec = BUILTINS.get(name) if not self.grammar.has_rule(name) else None
        left, right = self._interval(term, name)
        if spec is not None and spec.size is not None and spec.byteorder is not None:
            width = spec.size
            self._check_window(plan, left, right, width, name)
            code = (_SIGNED_CODES if spec.signed else _INT_CODES).get(width)
            if code is None:
                raise _Stop(f"{name}: no struct code for width {width}")
            if width > 1:
                self._merge_byteorder(
                    plan, "<" if spec.byteorder == "little" else ">", name
                )
            eoi = None if right == "EOI" else right - left
            field = _Field("int", left, width, name=name, code=code, eoi=eoi)
            self._register_field(plan, field, name)
            plan.items.append(field)
            self._touch_span(plan, left, left + width)
            self.records[name] = ("int", field)
            entry = {"start": self._pos(left), "end": self._pos(left + width)}
            if eoi is not None:
                entry["EOI"] = eoi
            self.ctx.records[name] = entry
            return
        if spec is not None and name in ("Raw", "Bytes"):
            if right == "EOI":
                raise _Stop(f"{name}: width depends on the window")
            width = right - left
            self._check_window(plan, left, right, width, name)
            kind = "raw" if name == "Raw" else "bytes"
            code = f"{width}s" if (kind == "bytes" and width) else None
            field = _Field(kind, left, width, name=name, code=code, eoi=width)
            self._register_field(plan, field, name)
            plan.items.append(field)
            if width:
                self._touch_span(plan, left, left + width)
            self.records[name] = (kind, field)
            self.ctx.records[name] = {
                "start": self._pos(left),
                "end": self._pos(left + width),
                "EOI": width,
                "len": width,
                "val": width,
            }
            return
        if spec is not None:
            raise _Stop(f"{name}: variable-width builtin")
        if not self.grammar.has_rule(name):
            raise _Stop(f"{name}: blackbox or unresolved nonterminal")
        if self.flat_only:
            raise _Stop(f"{name}: nested rules not absorbed (flat-only plan)")
        if right == "EOI":
            raise _Stop(f"{name}: window depends on EOI")
        width = right - left
        if width < 0:
            raise _Stop(f"{name}: always fails (negative window)")
        nested = self._nested_plan(name, width)
        if nested is None:
            raise _Stop(f"{name}: not a fully fixed rule")
        self._check_window(plan, left, right, nested.needed, name)
        step = _NestedStep(left, width, name, nested)
        self._absorb(plan, step.plan, left, name)
        plan.items.append(step)
        self.records[name] = ("nested", step)
        entry = {
            "start": self._pos(left + (nested.start if nested.touch else width)),
            "end": self._pos(left + (nested.end if nested.touch else 0)),
            "EOI": width,
        }
        for astep in nested.attr_steps:
            if astep.rw[0] == "num":
                entry[astep.name] = astep.rw[1]
        self.ctx.records[name] = entry

    def _nested_plan(self, name: str, width: int) -> Optional[AltShape]:
        if name in self.in_progress:
            return None
        rule = self.grammar.rule(name)
        if len(rule.alternatives) != 1:
            return None
        nested = _analyze(
            self.grammar,
            name,
            0,
            rule.alternatives[0],
            width=width,
            in_progress=self.in_progress | {name},
        )
        if not nested.full or nested.needed > width:
            return None
        return nested

    def _absorb(self, plan: AltShape, nested: AltShape, base: int, what: str) -> None:
        """Flatten a (freshly built, uniquely owned) nested plan into ``plan``.

        Shifts the nested frame to its absolute base, merges leaves into the
        flattened layout, and renumbers attribute-step keys so generated
        locals stay unique across the whole top plan.  The nested plan's own
        ``start``/``end``/``needed`` stay frame-relative: emission rebases
        them through the step offsets.
        """
        self._merge_byteorder(plan, nested.byteorder, what)
        _shift_steps(nested.items, base)
        for inner in nested.fields:
            inner.offset += base
            self._register_field(plan, inner, what)
        plan.has_guards = plan.has_guards or nested.has_guards
        plan.has_lits = plan.has_lits or nested.has_lits
        plan.has_raising_attrs = plan.has_raising_attrs or nested.has_raising_attrs
        if nested.touch:
            self._touch_span(plan, base + nested.start, base + nested.end)
        self._renumber(nested)

    def _walk_array(self, term: TermArray, plan: AltShape) -> None:
        if self.flat_only:
            raise _Stop("arrays not absorbed (flat-only plan)")
        if self.anchor is not None:
            # Anchored positions must never leak into a *count* (bounds are
            # dimensionless); refusing arrays outright keeps that sound.
            raise _Stop("arrays not absorbed (anchored plan)")
        first = self._static(term.start)
        stop = self._static(term.stop)
        if first is None or stop is None:
            raise _Stop("array bounds are not static")
        count = max(0, stop - first)
        if count > _MAX_ARRAY_COUNT:
            raise _Stop(f"array count {count} exceeds the unroll cap")
        name = term.element.name
        if not self.grammar.has_rule(name) or name in self.in_progress:
            raise _Stop(f"array element {name!r} is not a fixed rule")
        offsets: List[int] = []
        width = 0
        for k in range(count):
            left = self._static_with(term.var, first + k, term.element.interval.left)
            right = self._static_with(term.var, first + k, term.element.interval.right)
            if left is None or right is None:
                raise _Stop("array element interval is not static")
            if k == 0:
                width = right - left
            elif right - left != width:
                raise _Stop("array element widths differ")
            offsets.append(left)
        if width < 0:
            raise _Stop("array element windows always fail")
        plans: List[AltShape] = []
        for offset in offsets:
            nested = self._nested_plan(name, width)
            if nested is None:
                raise _Stop(f"array element {name!r} is not a fully fixed rule")
            self._check_window(plan, offset, offset + width, nested.needed, name)
            self._absorb(plan, nested, offset, name)
            plans.append(nested)
        plan.items.append(_ArrayStep(name, offsets, width, plans))
        # An array rebinds the element name's record/array visibility in
        # ways later references would need indexed access for: drop both so
        # any later use stops the walk conservatively.
        self.records.pop(name, None)
        self.ctx.records.pop(name, None)

    def _static_with(self, var: str, value: int, expr: Expr) -> Optional[int]:
        had = var in self.ctx.names
        saved = self.ctx.names.get(var)
        self.ctx.names[var] = value
        try:
            return self._static(expr)
        finally:
            if had:
                self.ctx.names[var] = saved
            else:
                self.ctx.names.pop(var, None)

    # -- finalize ----------------------------------------------------------
    def _finalize(self, plan: AltShape) -> None:
        slot_fields = sorted(
            (f for f in plan.fields if f.code is not None), key=lambda f: f.offset
        )
        fmt = []
        position = 0
        for index, field in enumerate(slot_fields):
            if field.offset > position:
                fmt.append(f"{field.offset - position}x")
            field.slot = index
            fmt.append(field.code)
            position = field.offset + field.width
        # Pad-only coverage (Raw fields past the last slot) extends the span.
        span = max([position] + [f.offset + f.width for f in plan.fields])
        if span > position:
            fmt.append(f"{span - position}x")
        plan.nslots = len(slot_fields)
        plan.fmt = (plan.byteorder or "<") + "".join(fmt) if fmt else ""
        plan.size = span
        assert not plan.fmt or struct.calcsize(plan.fmt) == span


def _shift_steps(items, base: int) -> None:
    """Shift nested/array step offsets (not leaves) by ``base``, recursively."""
    for item in items:
        if isinstance(item, _NestedStep):
            item.offset += base
            _shift_steps(item.plan.items, base)
        elif isinstance(item, _ArrayStep):
            item.offsets = [offset + base for offset in item.offsets]
            for inner in item.plans:
                _shift_steps(inner.items, base)


def _analyze(grammar, rule_name, alt_index, alternative, width, in_progress,
             flat_only=False):
    return _Analyzer(grammar, width, in_progress, flat_only=flat_only).analyze(
        rule_name, alt_index, alternative
    )


# ---------------------------------------------------------------------------
# Linear stride detection (bulk arrays)
# ---------------------------------------------------------------------------


class _Lin:
    """``coeff * var + const + sum(mult_i * atom_i)`` over opaque atoms."""

    __slots__ = ("coeff", "const", "atoms")

    def __init__(self, coeff=0, const=0, atoms=None):
        self.coeff = coeff
        self.const = const
        self.atoms = atoms or {}


def _loop_variant(expr: Expr) -> bool:
    """Whether a var-free expression may still change across iterations.

    Bulk lowering evaluates the interval base once before the loop, so an
    "atom" must be loop-invariant.  ``exists``/``A(e).attr`` read array
    contents (possibly the very array being built) and the bare
    ``start``/``end`` specials track the running ``updStartEnd`` state —
    all of which the per-term path re-evaluates every iteration.
    """
    from .expr import Exists, Index

    for node in expr.walk():
        if isinstance(node, (Exists, Index)):
            return True
        if isinstance(node, Name) and node.ident in ("start", "end"):
            return True
    return False


def _linearize(expr: Expr, var: str) -> Optional[_Lin]:
    expr = fold(expr)
    if isinstance(expr, Num):
        return _Lin(const=expr.value)
    if isinstance(expr, Name) and expr.ident == var:
        return _Lin(coeff=1)
    if ("name", var) not in expr.references():
        if _loop_variant(expr):
            return None
        return _Lin(atoms={expr.to_source(): 1})
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left = _linearize(expr.left, var)
        right = _linearize(expr.right, var)
        if left is None or right is None:
            return None
        sign = 1 if expr.op == "+" else -1
        merged = dict(left.atoms)
        for key, mult in right.atoms.items():
            merged[key] = merged.get(key, 0) + sign * mult
        return _Lin(
            left.coeff + sign * right.coeff, left.const + sign * right.const, merged
        )
    if isinstance(expr, BinOp) and expr.op == "*":
        left = _linearize(expr.left, var)
        right = _linearize(expr.right, var)
        if left is None or right is None:
            return None
        for scale, other in ((left, right), (right, left)):
            if scale.coeff == 0 and not scale.atoms:
                factor = scale.const
                return _Lin(
                    other.coeff * factor,
                    other.const * factor,
                    {key: mult * factor for key, mult in other.atoms.items()},
                )
        return None
    return None


def linear_stride(left: Optional[Expr], right: Optional[Expr], var: str) -> Optional[int]:
    """Stride ``W`` when the interval is ``[c + W*var, c + W*(var+1))``.

    Returns ``None`` unless the left endpoint is linear in ``var`` with a
    positive constant coefficient ``W`` and the right endpoint exceeds it by
    exactly ``W`` (same coefficient, same opaque addends) — the contiguous
    fixed-stride shape bulk decoding requires.
    """
    if left is None or right is None:
        return None
    lhs = _linearize(left, var)
    rhs = _linearize(right, var)
    if lhs is None or rhs is None:
        return None
    stride = lhs.coeff
    if stride <= 0 or rhs.coeff != stride:
        return None
    if {k: m for k, m in lhs.atoms.items() if m} != {
        k: m for k, m in rhs.atoms.items() if m
    }:
        return None
    if rhs.const - lhs.const != stride:
        return None
    return stride


# ---------------------------------------------------------------------------
# Public analysis entry points (cached like firstsets)
# ---------------------------------------------------------------------------


def alternative_shape(
    grammar: Grammar,
    rule_name: str,
    alt_index: int,
    width: Optional[int] = None,
    flat_only: bool = False,
) -> AltShape:
    """The fixed-layout (prefix) plan of one top-level alternative.

    Parametric analyses (``width=None``) are cached on the grammar; a
    width-known instantiation is built fresh so its struct slots belong to
    the caller alone.  ``flat_only`` plans stop at nested rules and arrays
    (the streaming engines' compaction-safe variant).
    """
    if width is None:
        cache = getattr(grammar, "_shape_cache", None)
        if cache is None:
            cache = grammar._shape_cache = {}
        key = (rule_name, alt_index, flat_only)
        cached = cache.get(key)
        if cached is not None:
            return cached
    alternative = grammar.rule(rule_name).alternatives[alt_index]
    plan = _analyze(
        grammar,
        rule_name,
        alt_index,
        alternative,
        width,
        frozenset({rule_name}),
        flat_only=flat_only,
    )
    if width is None:
        cache[key] = plan
    return plan


class SuffixShape:
    """An anchored plan for the fixed tail behind one variable-width gap.

    ``gap_index`` is the term index of the gap nonterminal (the prefix
    walk's stop point); ``gap_name`` its name; ``plan`` the anchored
    :class:`AltShape` over the terms after the gap, every offset relative
    to the gap's runtime ``end`` attribute.
    """

    __slots__ = ("gap_index", "gap_name", "plan")

    def __init__(self, gap_index: int, gap_name: str, plan: AltShape):
        self.gap_index = gap_index
        self.gap_name = gap_name
        self.plan = plan

    def describe(self) -> str:
        plan = self.plan
        parts = [
            f"anchored tail after {self.gap_name}, "
            f"{plan.needed} byte(s), {plan.nslots} slot(s)"
        ]
        if plan.fmt:
            parts.append(f"fmt {plan.fmt!r}")
        parts.append(f"covers {plan.covered}/{plan.total} tail terms")
        return ", ".join(parts)


#: Cache miss sentinel — ``None`` is a valid (negative) analysis result.
_NO_SUFFIX = object()


def alternative_suffix(
    grammar: Grammar,
    rule_name: str,
    alt_index: int,
    flat_only: bool = False,
) -> Optional[SuffixShape]:
    """The anchored fixed-suffix plan behind an alternative's gap, if any.

    Returns ``None`` unless the (cached) prefix analysis stopped at a
    nonterminal term with fixed terms behind it whose intervals all chain
    off that gap's ``end`` — the multi-segment *fixed prefix + variable
    gap + fixed suffix* shape (DNS RRs, length-prefixed name + fixed tail
    records generally).  Only worthwhile plans (enough struct slots to
    amortize the unpack) are returned; parametric results are cached on
    the grammar like :func:`alternative_shape`.
    """
    cache = getattr(grammar, "_suffix_cache", None)
    if cache is None:
        cache = grammar._suffix_cache = {}
    key = (rule_name, alt_index, flat_only)
    cached = cache.get(key, _NO_SUFFIX)
    if cached is not _NO_SUFFIX:
        return cached
    result = None
    alternative = grammar.rule(rule_name).alternatives[alt_index]
    prefix = alternative_shape(grammar, rule_name, alt_index, flat_only=flat_only)
    if not prefix.full and not alternative.local_rules:
        gap_index = prefix.covered
        terms = alternative.terms
        if gap_index + 1 < len(terms):
            gap = terms[gap_index]
            if isinstance(gap, TermNonterminal):
                analyzer = _Analyzer(
                    grammar,
                    None,
                    frozenset({rule_name}),
                    flat_only=flat_only,
                    anchor=gap.name,
                )
                plan = analyzer.analyze(
                    rule_name, alt_index, alternative, start_at=gap_index + 1
                )
                if plan.covered and plan.worthwhile:
                    result = SuffixShape(gap_index, gap.name, plan)
    cache[key] = result
    return result


def rule_shape(grammar: Grammar, name: str, width: Optional[int] = None) -> Optional[AltShape]:
    """The full fixed plan of a single-alternative rule, or ``None``."""
    if not grammar.has_rule(name):
        return None
    rule = grammar.rule(name)
    if len(rule.alternatives) != 1:
        return None
    plan = alternative_shape(grammar, name, 0, width=width)
    if not plan.full:
        return None
    if width is not None and plan.needed > width:
        return None
    return plan


def explain_shapes(grammar: Grammar) -> List[Tuple[str, str]]:
    """Per-rule one-line layout summaries for ``--explain-shapes``."""
    lines = []
    for name, rule in grammar.rules.items():
        if len(rule.alternatives) != 1:
            lines.append((name, f"not fixed ({len(rule.alternatives)} alternatives)"))
            continue
        plan = alternative_shape(grammar, name, 0)
        if plan.covered == 0:
            reason = plan.stop_reason or "no fixed layout"
            description = f"not fixed ({reason})"
        else:
            description = plan.describe()
        suffix = alternative_suffix(grammar, name, 0)
        if suffix is not None:
            description = f"{description}; {suffix.describe()}"
        lines.append((name, description))
    return lines


# ---------------------------------------------------------------------------
# Plan -> Python source (shared by the compiler and the one-shot decoders)
# ---------------------------------------------------------------------------


class PlanCode:
    """Rendered decode code for one plan instantiation.

    ``lines`` holds the checks-and-values pass (literal compares, guards,
    attribute locals) in execution order; ``child_exprs`` the tree-children
    display expressions (empty when ``build=False``); ``attr_locals`` the
    top-frame attribute name -> Python local mapping, in binding order.
    """

    def __init__(self):
        self.lines: List[str] = []
        self.child_exprs: List[str] = []
        self.attr_locals: Dict[str, str] = {}
        self._env_srcs: Dict[str, str] = {}
        self._array_srcs: Dict[str, str] = {}

    def env_src(self, name: str) -> Optional[str]:
        """Env-dict display for a recorded nonterminal (for later Dot refs)."""
        return self._env_srcs.get(name)

    def array_src(self, name: str) -> Optional[str]:
        """Element list display for a plan array (for later Index refs)."""
        return self._array_srcs.get(name)


def _attr_local(step: _AttrStep, plan: AltShape) -> str:
    return f"_fa{plan.uid}_{step.key}"


def _render(rw, slot_src: Callable[[_Field], str], attr_src, eoi_src: str,
            anch_src=None) -> str:
    kind = rw[0]
    if kind == "num":
        return repr(rw[1])
    if kind == "eoi":
        return eoi_src
    if kind == "anch":
        assert anch_src is not None, "anchored node outside an anchored emission"
        src = anch_src(rw[1])
        # ``anchor + offset`` is multi-token: parenthesize so it binds
        # tighter than the surrounding operator (``hl - (anchor + k)``).
        return src if " " not in src else f"({src})"
    if kind == "slot":
        return slot_src(rw[1])
    if kind == "attr":
        return attr_src(rw[1])
    if kind == "cond":
        cond = _render(rw[1], slot_src, attr_src, eoi_src, anch_src)
        then = _render(rw[2], slot_src, attr_src, eoi_src, anch_src)
        other = _render(rw[3], slot_src, attr_src, eoi_src, anch_src)
        return f"({then} if {cond} != 0 else {other})"
    assert kind == "bin"
    op = rw[1]
    left = _render(rw[2], slot_src, attr_src, eoi_src, anch_src)
    right = _render(rw[3], slot_src, attr_src, eoi_src, anch_src)
    if op in ("+", "-", "*", "&", "|"):
        return f"({left} {op} {right})"
    if op in ("<<", ">>"):
        return f"_shift_{'l' if op == '<<' else 'r'}({left}, {right})"
    if op == "/":
        return f"_div({left}, {right})"
    if op == "%":
        return f"_mod({left}, {right})"
    if op == "=":
        return f"(1 if {left} == {right} else 0)"
    if op in ("!=", "<", ">", "<=", ">="):
        return f"(1 if {left} {op} {right} else 0)"
    if op == "&&":
        return f"(1 if {left} != 0 and {right} != 0 else 0)"
    assert op == "||"
    return f"(1 if {left} != 0 or {right} != 0 else 0)"


def _add_src(base: str, offset: int) -> str:
    if offset == 0:
        return base
    try:
        return repr(int(base) + offset)
    except ValueError:
        return f"{base} + {offset}"


def emit_plan_code(
    plan: AltShape,
    *,
    slot_var: str,
    eoi_src: str,
    abs_base: str,
    build: bool,
    data_var: str = "data",
    leaf_const: Optional[Callable[[bytes], str]] = None,
    rel_base: Optional[str] = None,
) -> PlanCode:
    """Render a plan instantiation as straight-line Python.

    ``slot_var`` names the unpacked tuple local; ``eoi_src`` the frame
    length source; ``abs_base`` the absolute data offset of the frame.
    Every env offset is a frame-relative constant: a caller that rebases
    the frame (bulk array elements) builds the top env itself from
    ``attr_locals`` and the plan's static span.  ``leaf_const`` interns
    literal leaves (the compiler's shared constants); by default literals
    are rebuilt inline.  The caller is responsible for the ``window >=
    plan.needed`` bounds check and for the ``unpack``/``unpack_from``
    call producing ``slot_var``.

    Anchored suffix plans pass ``rel_base`` — the Python local holding the
    runtime anchor (the gap's frame-relative ``end``): env positions render
    as ``rel_base + k`` and ``abs_base`` must already include the anchor.
    """
    code = PlanCode()

    def slot_src(field: _Field) -> str:
        return f"{slot_var}[{field.slot}]"

    def attr_src(step: _AttrStep) -> str:
        return _attr_local(step, plan)

    def anch_src(offset: int) -> str:
        assert rel_base is not None
        return _add_src(rel_base, offset)

    def top_rel(offset: int) -> str:
        if rel_base is not None:
            return _add_src(rel_base, offset)
        return repr(offset)

    def leaf(value: bytes) -> str:
        if leaf_const is not None:
            return leaf_const(value)
        return f"_mk_leaf({value!r})"

    def int_env(field: _Field, rel, frame_eoi: str) -> str:
        if field.eoi is not None:
            eoi = repr(field.eoi)
        elif rel_base is not None:
            # Anchored frame: EOI - (anchor + offset), left-associated.
            eoi = f"{frame_eoi} - {rel_base}"
            if field.offset:
                eoi = f"{eoi} - {field.offset}"
        else:
            eoi = f"{frame_eoi} - {field.offset}" if field.offset else frame_eoi
        return (
            f"{{'EOI': {eoi}, 'start': {rel(field.offset)}, "
            f"'end': {rel(field.offset + field.width)}, "
            f"'val': {slot_src(field)}}}"
        )

    def raw_env(field: _Field, rel) -> str:
        width = field.width
        return (
            f"{{'EOI': {width}, 'start': {rel(field.offset)}, "
            f"'end': {rel(field.offset + width)}, "
            f"'len': {width}, 'val': {width}}}"
        )

    def field_node(field: _Field, rel, frame_eoi: str) -> str:
        if field.kind == "lit":
            return leaf(field.value)
        if field.kind == "int":
            window = (
                f"{data_var}[{_add_src(abs_base, field.offset)}:"
                f"{_add_src(abs_base, field.offset + field.width)}]"
            )
            return (
                f"_mk_node({field.name!r}, {int_env(field, rel, frame_eoi)}, "
                f"[_mk_leaf({window})])"
            )
        if field.kind == "bytes":
            payload = f"_mk_leaf({slot_src(field)})" if field.width else "_mk_leaf(b'')"
            return f"_mk_node({field.name!r}, {raw_env(field, rel)}, [{payload}])"
        assert field.kind == "raw"
        return f"_mk_node({field.name!r}, {raw_env(field, rel)}, [])"

    def nested_env_items(step: _NestedStep, rel) -> List[str]:
        nested = step.plan
        items = [f"'EOI': {step.width}"]
        if nested.touch:
            items.append(f"'start': {rel(step.offset + nested.start)}")
            items.append(f"'end': {rel(step.offset + nested.end)}")
        else:
            items.append(f"'start': {rel(step.offset + step.width)}")
            items.append(f"'end': {rel(step.offset)}")
        for astep in nested.attr_steps:
            items.append(f"{astep.name!r}: {_attr_local(astep, plan)}")
        return items

    def nested_node(step: _NestedStep, rel) -> str:
        def inner_rel(offset: int) -> str:
            return repr(offset - step.offset)

        children = []
        for item in step.plan.items:
            rendered = item_node(item, inner_rel)
            if rendered is not None:
                children.append(rendered)
        env = ", ".join(nested_env_items(step, rel))
        return f"_mk_node({step.name!r}, {{{env}}}, [{', '.join(children)}])"

    def item_node(item, rel) -> Optional[str]:
        if isinstance(item, _Field):
            return field_node(item, rel, eoi_src)
        if isinstance(item, _NestedStep):
            return nested_node(item, rel)
        if isinstance(item, _ArrayStep):
            elements = [
                nested_node(_NestedStep(offset, item.width, item.name, nested), rel)
                for offset, nested in zip(item.offsets, item.plans)
            ]
            return f"_mk_array({item.name!r}, [{', '.join(elements)}])"
        return None

    # -- pass 1: checks and values (execution order, frames flattened) -----
    def value_pass(items) -> None:
        for item in items:
            if isinstance(item, _Field):
                if item.kind == "lit":
                    code.lines.append(f"if {slot_src(item)} != {item.value!r}:")
                    code.lines.append("    return FAIL")
            elif isinstance(item, _AttrStep):
                rendered = _render(item.rw, slot_src, attr_src, eoi_src, anch_src)
                code.lines.append(f"{_attr_local(item, plan)} = {rendered}")
            elif isinstance(item, _GuardStep):
                rendered = _render(item.rw, slot_src, attr_src, eoi_src, anch_src)
                code.lines.append(f"if {rendered} == 0:")
                code.lines.append("    return FAIL")
            elif isinstance(item, _NestedStep):
                value_pass(item.plan.items)
            elif isinstance(item, _ArrayStep):
                for nested in item.plans:
                    value_pass(nested.items)

    value_pass(plan.items)

    for item in plan.items:
        if isinstance(item, _AttrStep):
            code.attr_locals[item.name] = _attr_local(item, plan)

    # -- pass 2: tree children / record envs / array element lists ---------
    if build:
        for item in plan.items:
            rendered = item_node(item, top_rel)
            if rendered is not None:
                code.child_exprs.append(rendered)
    for item in plan.items:
        if isinstance(item, _Field) and item.kind in ("int", "raw", "bytes"):
            env = (
                int_env(item, top_rel, eoi_src)
                if item.kind == "int"
                else raw_env(item, top_rel)
            )
            code._env_srcs[item.name] = env
        elif isinstance(item, _NestedStep):
            code._env_srcs[item.name] = (
                f"{{{', '.join(nested_env_items(item, top_rel))}}}"
            )
        elif isinstance(item, _ArrayStep):
            elements = []
            for offset, nested in zip(item.offsets, item.plans):
                step = _NestedStep(offset, item.width, item.name, nested)
                if build:
                    elements.append(nested_node(step, top_rel))
                else:
                    elements.append(f"{{{', '.join(nested_env_items(step, top_rel))}}}")
            code._array_srcs[item.name] = f"[{', '.join(elements)}]"
    return code


# ---------------------------------------------------------------------------
# Generic one-shot decoders (the interpreter's consumer)
# ---------------------------------------------------------------------------


def _decoder_source(plan: AltShape, build_tree: bool) -> str:
    """Source of ``_dec(data, lo, hi)`` decoding one full plan."""
    lines = ["def _dec(data, lo, hi):", "    _hl = hi - lo"]
    if plan.needed:
        lines.append(f"    if _hl < {plan.needed}:")
        lines.append("        return FAIL")
    if plan.nslots:
        # Slicing (instead of unpack_from) keeps the decoder working on
        # StreamBuffer inputs: a read past the received bytes suspends.
        lines.append(f"    _t = _S.unpack(data[lo:lo + {plan.size}])")
    code = emit_plan_code(
        plan, slot_var="_t", eoi_src="_hl", abs_base="lo", build=build_tree
    )
    if code.lines:
        lines.append("    try:")
        lines += ["        " + line for line in code.lines]
        lines.append("    except EvaluationError:")
        lines.append("        return FAIL")
    env_items = ["'EOI': _hl"]
    if plan.touch:
        env_items.append(f"'start': {plan.start}")
        env_items.append(f"'end': {plan.end}")
    else:
        env_items.append("'start': _hl")
        env_items.append("'end': 0")
    for name, local in code.attr_locals.items():
        env_items.append(f"{name!r}: {local}")
    children = f"[{', '.join(code.child_exprs)}]" if build_tree else "_E"
    lines.append(
        f"    return _mk_node({plan.rule_name!r}, "
        f"{{{', '.join(env_items)}}}, {children})"
    )
    return "\n".join(lines)


def make_decoder(plan: AltShape, build_tree: bool = True):
    """Exec a plan into a callable ``(data, lo, hi) -> Node | FAIL``."""
    from .compiler import _SHARED_EMPTY, _mk_array, _mk_leaf, _mk_node
    from .interpreter import FAIL
    from .runtime import _div, _mod, _shift_l, _shift_r

    namespace = {
        "FAIL": FAIL,
        "EvaluationError": EvaluationError,
        "_mk_node": _mk_node,
        "_mk_leaf": _mk_leaf,
        "_mk_array": _mk_array,
        "_E": _SHARED_EMPTY,
        "_div": _div,
        "_mod": _mod,
        "_shift_l": _shift_l,
        "_shift_r": _shift_r,
        "_S": struct.Struct(plan.fmt) if plan.fmt else None,
    }
    exec(
        compile(_decoder_source(plan, build_tree), "<ipg-shape-decoder>", "exec"),
        namespace,
    )
    return namespace["_dec"]


def rule_decoders(grammar: Grammar, build_tree: bool = True) -> Dict[str, object]:
    """One-shot decoders for every fully fixed single-alternative rule.

    Only *worthwhile* plans (enough slots to amortize the struct call) get a
    decoder; the mapping is cached on the grammar per tree mode.
    """
    cache = getattr(grammar, "_shape_decoder_cache", None)
    if cache is None:
        cache = grammar._shape_decoder_cache = {}
    cached = cache.get(build_tree)
    if cached is not None:
        return cached
    decoders: Dict[str, object] = {}
    for name, rule in grammar.rules.items():
        if len(rule.alternatives) != 1:
            continue
        plan = alternative_shape(grammar, name, 0)
        if plan.full and plan.worthwhile:
            decoders[name] = make_decoder(plan, build_tree)
    cache[build_tree] = decoders
    return decoders
