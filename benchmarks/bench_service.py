"""Parse-service throughput and tail latency, with and without faults.

Measures what the supervision machinery costs and what it buys:

* ``clean`` — saturate the pool with valid parse requests (a mixed
  dns/ipv4/zip workload crossing both the inline and spooled payload
  paths) and record messages/second plus p50/p99 per-request latency.
* ``faulty`` — the same workload with a seeded fault every
  ``FAULT_EVERY`` requests (worker ``os._exit`` or a hang killed by a
  short deadline).  Every request must still be answered; the numbers
  show throughput and p99 under actively dying workers.

Latency is measured from ``submit`` to future resolution (queue wait
included — that is what a caller experiences at saturation).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py -o BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --quick

The committed ``BENCH_service.json`` is gated by
``tools/bench_gate.py --service-smoke`` on absolute invariants (every
request answered, pool repaired, a sane throughput floor) rather than
machine-relative medians.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro import samples  # noqa: E402
from repro.core.errors import ServiceError, ServiceOverloaded  # noqa: E402
from repro.service import ParseService, ServiceConfig  # noqa: E402

REQUESTS = 400
REQUESTS_QUICK = 120
WORKERS = 2
FAULT_EVERY = 20
DEADLINE_MS = 30_000
HANG_DEADLINE_MS = 200


def _workload():
    """The request mix: (format, data) pairs, inline and spooled sizes."""
    return [
        ("dns", samples.build_dns_response(answer_count=2, additional_count=1)),
        ("ipv4", samples.build_ipv4_udp_packet(payload_size=128)),
        ("zip", samples.build_zip(member_count=3, member_size=300)),
        ("zip", samples.build_zip(member_count=2, member_size=12_000)),  # spooled
    ]


def _percentile(values, fraction):
    if not values:
        return None
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_scenario(requests: int, inject_faults: bool, seed: int) -> dict:
    import random

    rng = random.Random(seed)
    workload = _workload()
    config = ServiceConfig(
        workers=WORKERS,
        allow_chaos=inject_faults,
        seed=seed,
        default_deadline_ms=DEADLINE_MS,
        max_pending=requests,
        spawn_backoff_base=0.02,
        spawn_backoff_cap=0.25,
    )
    latencies = []
    answered = service_errors = faults = 0
    begin = time.monotonic()
    with ParseService(config) as service:
        # Warm the per-worker parser caches out of the measured window:
        # the steady state is what a long-lived service runs in.
        for fmt, data in workload:
            for _ in range(WORKERS):
                service.submit(data, format=fmt).result()
        begin = time.monotonic()
        pending = []
        for index in range(requests):
            if inject_faults and index % FAULT_EVERY == FAULT_EVERY - 1:
                faults += 1
                if rng.random() < 0.5:
                    pending.append((None, service.submit_chaos("exit")))
                else:
                    pending.append(
                        (
                            None,
                            service.submit_chaos(
                                "hang",
                                seconds=2.0,
                                deadline_ms=HANG_DEADLINE_MS,
                            ),
                        )
                    )
                continue
            fmt, data = workload[index % len(workload)]
            while True:
                try:
                    pending.append(
                        (time.monotonic(), service.submit(data, format=fmt))
                    )
                    break
                except ServiceOverloaded as exc:
                    time.sleep(min(exc.retry_after or 0.05, 0.2))
        for submitted_at, future in pending:
            result = future.result()
            answered += 1
            if submitted_at is not None:
                latencies.append((time.monotonic() - submitted_at) * 1000.0)
            if isinstance(result.error, ServiceError):
                service_errors += 1
        elapsed = time.monotonic() - begin
        # Give in-flight respawns a moment so "alive at end" reflects
        # the repaired steady state, not a mid-respawn snapshot.
        settle = time.monotonic() + 15
        while time.monotonic() < settle:
            stats = service.stats()
            if stats["workers_alive"] == WORKERS:
                break
            time.sleep(0.05)
        stats = service.stats()
    parse_requests = len(latencies)
    return {
        "requests": requests,
        "parse_requests": parse_requests,
        "faults_injected": faults,
        "answered": answered,
        "service_errors": service_errors,
        "elapsed_seconds": round(elapsed, 4),
        "msgs_per_second": round(answered / elapsed, 2) if elapsed else None,
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50), 3),
            "p99": round(_percentile(latencies, 0.99), 3),
            "mean": round(statistics.fmean(latencies), 3),
        },
        "pool": {
            "workers": WORKERS,
            "respawns": stats["respawns"],
            "crashes": stats["crashes"],
            "deadline_kills": stats["deadline_kills"],
            "workers_alive_at_end": stats["workers_alive"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", metavar="FILE", help="write JSON here")
    parser.add_argument("--quick", action="store_true", help="CI smoke sizing")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    requests = REQUESTS_QUICK if args.quick else REQUESTS

    clean = run_scenario(requests, inject_faults=False, seed=args.seed)
    faulty = run_scenario(requests, inject_faults=True, seed=args.seed)
    report = {
        "benchmark": "parse service throughput and tail latency at saturation",
        "quick": args.quick,
        "seed": args.seed,
        "scenarios": {"clean": clean, "faulty": faulty},
        "throughput_retained_under_faults": (
            round(faulty["msgs_per_second"] / clean["msgs_per_second"], 4)
            if clean["msgs_per_second"]
            else None
        ),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
