"""E8 — Figure 13d: ELF parsing time, IPG vs the Kaitai-like engine."""

import pytest

from repro.baselines.kaitai_like import specs as kaitai_specs

from conftest import ELF_SECTION_COUNTS, build_generated_parser


@pytest.fixture(scope="module")
def ipg_elf_parser():
    return build_generated_parser("elf")


@pytest.fixture(scope="module")
def kaitai_elf_engine():
    return kaitai_specs.get_engine("elf")


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig13d_ipg(benchmark, elf_series, ipg_elf_parser, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig13d-elf-{sections}"
    tree = benchmark(ipg_elf_parser.parse, binary)
    assert tree.child("H")["shnum"] == sections + 4


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig13d_kaitai_like(benchmark, elf_series, kaitai_elf_engine, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig13d-elf-{sections}"
    obj = benchmark(kaitai_elf_engine.parse, binary)
    assert obj["shnum"] == sections + 4


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig13d_ipg_compiled(benchmark, elf_series, compiled_parsers, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig13d-elf-{sections}"
    tree = benchmark(compiled_parsers["elf"].parse, binary)
    assert tree.child("H")["shnum"] == sections + 4


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig13d_ipg_interpreted(benchmark, elf_series, interpreted_parsers, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig13d-elf-{sections}"
    tree = benchmark(interpreted_parsers["elf"].parse, binary)
    assert tree.child("H")["shnum"] == sections + 4
