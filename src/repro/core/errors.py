"""Exception hierarchy for the IPG toolkit.

Every user-facing error raised by the library derives from :class:`IPGError`
so that applications can catch a single exception type.  The hierarchy
mirrors the pipeline stages of the paper: grammar-text parsing, attribute
checking, interval auto-completion, termination checking, and input parsing.
"""

from __future__ import annotations


class IPGError(Exception):
    """Base class for all errors raised by the IPG toolkit."""


class GrammarSyntaxError(IPGError):
    """The IPG surface syntax could not be parsed.

    Carries the line and column of the offending token when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AttributeCheckError(IPGError):
    """Attribute checking failed.

    Raised when an attribute reference does not refer to a defined attribute
    (property 1 of section 3.2) or when the per-alternative dependency graph
    is cyclic (property 2 of section 3.2).
    """


class AutoCompletionError(IPGError):
    """Implicit-interval completion could not infer a missing interval."""


class TerminationCheckError(IPGError):
    """Static termination checking rejected the grammar.

    The exception message names the elementary cycle whose intervals may be
    non-decreasing (i.e. may stay at ``[0, EOI]`` forever).
    """

    def __init__(self, message: str, cycle=None):
        self.cycle = list(cycle) if cycle is not None else []
        super().__init__(message)


class ParseFailure(IPGError):
    """Parsing an input according to an IPG produced ``Fail``.

    The interpreter and generated parsers raise this from the public
    ``parse`` entry points; the internal machinery uses a ``FAIL`` sentinel
    to implement biased choice without exception overhead.

    Raising entry points diagnose failed parses (see
    :mod:`repro.core.diagnose`) and raise one of the structured
    subclasses below — :class:`TruncatedInput`, :class:`BoundsViolation`,
    :class:`GuardRejected`, or :class:`LimitExceeded` — each carrying:

    ``offset``
        Absolute byte offset of the furthest failure point (``None``
        only for :class:`LimitExceeded`, where no single byte is to
        blame).
    ``rule_stack``
        The stack of active rule names at the failure point, outermost
        first.
    ``interval``
        The violated absolute interval ``(start, end)`` when the failure
        was an interval-bounds problem, else ``None``.

    Every engine (interpreter, staged compiler, AOT modules, streaming)
    surfaces the same subclass at the same offset for the same input.
    """

    def __init__(
        self,
        message: str,
        nonterminal: str = "",
        offset: int | None = None,
        rule_stack=(),
        interval=None,
    ):
        self.nonterminal = nonterminal
        self.offset = offset
        self.rule_stack = tuple(rule_stack)
        self.interval = tuple(interval) if interval is not None else None
        super().__init__(message)


class TruncatedInput(ParseFailure):
    """The parse needed bytes past the end of the input.

    Raised when a terminal, fixed-width builtin, or interval extends
    beyond the received data — the classic truncated-file failure.
    ``offset`` is the input length (the first missing byte).
    """


class BoundsViolation(ParseFailure):
    """An interval was invalid *within* the available data.

    A length-field lie, a negative or inverted interval, or an interval
    overrunning its enclosing window even though the underlying bytes
    exist.  ``interval`` carries the offending absolute ``(start, end)``
    when known.
    """


class GuardRejected(ParseFailure):
    """The input bytes were structurally present but semantically wrong.

    A ``where``-guard evaluated false, a terminal literal mismatched
    (``offset`` is the first differing byte), a builtin rejected its
    window's content, a blackbox refused, or no switch case applied.
    """


class LimitExceeded(ParseFailure):
    """A :class:`~repro.core.limits.ParseLimits` budget was exhausted.

    ``limit`` names the tripped budget (``"max_depth"``, ``"max_steps"``,
    ``"max_tree_nodes"``, ``"max_memo_entries"``, ``"max_buffer_bytes"``,
    ``"wall"`` when the :attr:`~repro.core.limits.ParseLimits.max_wall_ms`
    wall-clock budget expired, or ``"recursion"`` when a bare
    ``RecursionError``/``MemoryError`` was intercepted).  ``offset`` is
    always ``None``: resource exhaustion has no single culprit byte.
    """

    def __init__(
        self,
        message: str,
        limit: str = "",
        nonterminal: str = "",
        rule_stack=(),
        interval=None,
    ):
        self.limit = limit
        super().__init__(
            message,
            nonterminal=nonterminal,
            offset=None,
            rule_stack=rule_stack,
            interval=interval,
        )


def render_explain(error: ParseFailure, data: bytes | None = None) -> str:
    """Multi-line human-oriented rendering of a structured parse failure.

    Used by ``repro parse --explain-error``.  Shows the failure class,
    message, byte offset with a small hex-dump context window (when the
    input bytes are provided), the violated interval, and the active
    rule stack.
    """
    lines = [f"{type(error).__name__}: {error}"]
    limit = getattr(error, "limit", "")
    if limit:
        lines.append(f"  limit:    {limit}")
    if error.offset is not None:
        lines.append(f"  offset:   {error.offset} (0x{error.offset:x})")
        if data is not None:
            # The context window is hard-clamped to 64 bytes around the
            # failure offset regardless of input size or a bogus offset —
            # rendering an error over an mmap'd multi-GB buffer must not
            # materialize more than this sliver.
            start = min(max(0, error.offset - 16), len(data))
            stop = min(len(data), max(start, error.offset + 16), start + 64)
            window = bytes(data[start:stop])
            hexes = []
            for index, byte in enumerate(window, start):
                text = f"{byte:02x}"
                hexes.append(f"[{text}]" if index == error.offset else text)
            if error.offset >= len(data):
                hexes.append("[end of input]")
            lines.append(f"  context:  {' '.join(hexes)}")
    if error.interval is not None:
        lines.append(f"  interval: [{error.interval[0]}, {error.interval[1]})")
    if error.rule_stack:
        stack = list(error.rule_stack)
        if len(stack) > 12:
            stack = stack[:4] + [f"... ({len(stack) - 8} more) ..."] + stack[-4:]
        lines.append(f"  rules:    {' > '.join(stack)}")
    return "\n".join(lines)


class NeedMoreInput(IPGError):
    """A streaming parse touched bytes (or the stream length) not yet fed.

    Raised internally by the streaming machinery
    (:mod:`repro.core.streaming`) when an engine tries to read past the
    bytes received so far, or to evaluate an expression whose value depends
    on the still-unknown total input length.  The streaming driver catches
    it, waits for more chunks (or :meth:`~repro.core.streaming.
    StreamingParse.finish`), and re-enters the parse.

    ``needed`` is the smallest number of absolutely-received bytes that
    could unblock the suspended computation, or ``None`` when only the
    final input length can (e.g. an ``EOI - k`` offset).  It is a
    scheduling hint, never a correctness requirement.

    This exception deliberately does **not** derive from
    :class:`EvaluationError`: an evaluation error fails the current
    alternative, while a suspension must abort the whole parse attempt —
    no biased-choice or guard decision may be taken on incomplete data.
    """

    def __init__(self, message: str, needed: int | None = None):
        self.needed = needed
        super().__init__(message)


class NotStreamableError(IPGError):
    """A streaming parse was requested for a grammar the §8 analysis rejects.

    Carries the :class:`~repro.core.streamability.StreamabilityReport` so
    callers can show the violations.  Pass ``force=True`` to
    :meth:`~repro.core.interpreter.Parser.stream` to run anyway — parsing
    stays correct (the engine simply buffers until the violating reads
    become possible), but the bounded-memory guarantee is lost.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class EvaluationError(IPGError):
    """An interval or attribute expression could not be evaluated.

    Examples: reference to an attribute that is not bound at evaluation time,
    a division by zero, or an array reference with an out-of-range index.
    """


class BlackboxError(IPGError):
    """A blackbox parser was referenced but not supplied, or it failed."""


class GenerationError(IPGError):
    """The parser generator could not emit code for the grammar."""


class CompilationError(IPGError):
    """The staged compiler backend could not specialize the grammar.

    :class:`~repro.core.interpreter.Parser` catches this and falls back to
    the reference interpreter, so users only ever see it when calling
    :func:`repro.core.compiler.compile_grammar` directly.
    """


class SolverError(IPGError):
    """The constraint solver was given a formula outside its fragment."""


class ServiceError(IPGError):
    """Base class for parse-service failures (:mod:`repro.service`).

    A :class:`~repro.service.ParseService` request that cannot be
    answered with a parse result — the worker hung past its deadline,
    crashed, the queue was full, or the service was shut down — resolves
    to one of the structured subclasses below instead of hanging or
    leaking a raw exception.  They deliberately do **not** derive from
    :class:`ParseFailure`: a parse failure is a verdict about the input,
    a service error is a verdict about the machinery, and callers retry
    or alert on them differently.
    """


class DeadlineExceeded(ServiceError):
    """The request's wall-clock deadline expired.

    The worker was SIGKILLed and respawned; the request was retried once
    on a fresh worker (unless retries were disabled) before degrading to
    this reply.  ``deadline_ms`` is the budget that expired.
    """

    def __init__(self, message: str, deadline_ms: int | None = None):
        self.deadline_ms = deadline_ms
        super().__init__(message)


class WorkerCrashed(ServiceError):
    """The worker process died mid-request (segfault, OOM kill, ``os._exit``).

    ``exitcode`` is the worker's exit status (negative for a signal, per
    ``multiprocessing``).  The input was quarantined to the on-disk
    crasher corpus when one is configured; the crash was isolated to the
    in-flight request and the pool was repaired.
    """

    def __init__(self, message: str, exitcode: int | None = None):
        self.exitcode = exitcode
        super().__init__(message)


class ServiceOverloaded(ServiceError):
    """The bounded request queue was full and the request was shed.

    Raised synchronously from ``submit`` — load-shedding rejects at the
    door instead of buffering unboundedly.  ``retry_after`` is a
    best-effort hint, in seconds, of when capacity should free up.
    """

    def __init__(self, message: str, retry_after: float | None = None):
        self.retry_after = retry_after
        super().__init__(message)


class ServiceClosed(ServiceError):
    """The service was shut down before (or while) handling the request."""
