"""Synthetic IPv4+UDP packets for tests and benchmarks.

Packets carry a configurable UDP payload and optional IPv4 options (which
exercise the IHL length-field path of the grammar).  Checksums are set to
zero; like the paper, the grammars do not validate them.
"""

from __future__ import annotations

import struct
from typing import List, Optional


def build_ipv4_udp_packet(
    payload_size: int = 64,
    options_words: int = 0,
    src: str = "192.168.1.10",
    dst: str = "10.0.0.1",
    sport: int = 53124,
    dport: int = 53,
    ttl: int = 64,
    seed: int = 23,
) -> bytes:
    """Build one IPv4 packet containing a UDP datagram."""
    if payload_size < 0 or options_words < 0 or options_words > 10:
        raise ValueError("invalid payload_size or options_words")
    ihl = 5 + options_words
    rng_state = seed
    payload = bytearray()
    while len(payload) < payload_size:
        rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
        payload.append(rng_state & 0xFF)
    payload = bytes(payload[:payload_size])

    udp_length = 8 + len(payload)
    udp = struct.pack(">HHHH", sport, dport, udp_length, 0) + payload

    options = b"\x01" * (options_words * 4)  # NOP padding options
    total_length = ihl * 4 + len(udp)
    header = struct.pack(
        ">BBHHHBBH4s4s",
        (4 << 4) | ihl,
        0,
        total_length,
        0x4242,
        0x4000,  # don't fragment
        ttl,
        17,  # UDP
        0,
        _pack_address(src),
        _pack_address(dst),
    )
    return header + options + udp


def _pack_address(address: str) -> bytes:
    parts = [int(piece) for piece in address.split(".")]
    if len(parts) != 4 or any(not 0 <= piece <= 255 for piece in parts):
        raise ValueError(f"invalid IPv4 address {address!r}")
    return bytes(parts)


def build_ipv4_series(payload_sizes: Optional[List[int]] = None, **kwargs) -> List[bytes]:
    """Packets with growing payloads (Figure 13f / Figure 14b)."""
    payload_sizes = payload_sizes or [16, 128, 512, 1400]
    return [build_ipv4_udp_packet(payload_size=size, **kwargs) for size in payload_sizes]
