"""Attribute environments and evaluation contexts.

An alternative is evaluated under an environment ``E`` mapping attribute
identifiers to integers.  The semantics (Figure 8) seeds the environment with
``{EOI -> |s|, start -> |s|, end -> 0}`` and threads it through the terms of
the alternative, updating ``start``/``end`` via ``updStartEnd`` whenever a
term touches input.

:class:`EvalContext` packages the environment together with the parse trees
produced by earlier terms in the same alternative: expressions may reference
``B.a`` (attribute of an earlier nonterminal term), ``B(e).a`` (attribute of
an array element) and plain identifiers (attribute definitions or loop
variables).  Local rules introduced by ``where`` clauses see the enclosing
alternative's context through the ``outer`` link.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import EvaluationError
from .parsetree import Node


def initial_env(length: int) -> Dict[str, int]:
    """The environment an alternative starts with (rule R-AltSucc)."""
    return {"EOI": length, "start": length, "end": 0}


def upd_start_end(env: Dict[str, int], left: int, right: int, touched: bool) -> Dict[str, int]:
    """The ``updStartEnd`` function from section 3.3.

    When ``touched`` holds, widen the ``start``/``end`` window of ``env`` to
    include ``[left, right)``; otherwise return ``env`` unchanged.  A fresh
    dictionary is returned so callers can keep the old environment for
    backtracking.
    """
    if not touched:
        return env
    updated = dict(env)
    updated["start"] = min(env.get("start", left), left)
    updated["end"] = max(env.get("end", right), right)
    return updated


def upd_start_end_in_place(env: Dict[str, int], left: int, right: int, touched: bool) -> Dict[str, int]:
    """Destructive variant of :func:`upd_start_end`.

    The parsing engines thread one environment linearly through the terms of
    an alternative (a failed alternative discards its environment wholesale),
    so updating in place is observably equivalent to the functional version
    and avoids a dictionary copy per term.
    """
    if touched:
        if left < env.get("start", left + 1):
            env["start"] = left
        if right > env.get("end", right - 1):
            env["end"] = right
    return env


class EvalContext:
    """Evaluation context for expressions inside one alternative.

    Attributes
    ----------
    env:
        Mapping of attribute names (and loop variables) to integer values.
    nodes:
        The most recent :class:`Node` produced for each nonterminal term in
        this alternative, keyed by nonterminal name.  ``B.a`` resolves here.
    arrays:
        Element lists of ``for`` terms keyed by element nonterminal name.
        ``B(e).a`` resolves here.
    outer:
        The enclosing context when evaluating a local (``where``) rule, or
        ``None`` at top level.
    """

    __slots__ = ("env", "nodes", "arrays", "outer")

    def __init__(
        self,
        env: Optional[Dict[str, int]] = None,
        outer: Optional["EvalContext"] = None,
    ):
        self.env: Dict[str, int] = dict(env) if env else {}
        self.nodes: Dict[str, Node] = {}
        self.arrays: Dict[str, List[Node]] = {}
        self.outer = outer

    # -- resolution ---------------------------------------------------------
    def lookup_name(self, name: str) -> int:
        """Resolve a plain identifier (attribute, loop variable or ``EOI``)."""
        ctx: Optional[EvalContext] = self
        while ctx is not None:
            if name in ctx.env:
                return ctx.env[name]
            ctx = ctx.outer
        raise EvaluationError(f"undefined attribute or loop variable {name!r}")

    def lookup_dot(self, nonterminal: str, attr: str) -> int:
        """Resolve ``A.attr`` against the most recent node for ``A``."""
        ctx: Optional[EvalContext] = self
        while ctx is not None:
            node = ctx.nodes.get(nonterminal)
            if node is not None:
                if attr in node.env:
                    return node.env[attr]
                raise EvaluationError(
                    f"nonterminal {nonterminal} has no attribute {attr!r}"
                )
            ctx = ctx.outer
        raise EvaluationError(
            f"reference to {nonterminal}.{attr} but {nonterminal} has not been parsed yet"
        )

    def lookup_index(self, nonterminal: str, index: int, attr: str) -> int:
        """Resolve ``A(e).attr`` against element ``e`` of the ``A`` array."""
        ctx: Optional[EvalContext] = self
        while ctx is not None:
            elements = ctx.arrays.get(nonterminal)
            if elements is not None:
                if not 0 <= index < len(elements):
                    raise EvaluationError(
                        f"array reference {nonterminal}({index}) out of range "
                        f"(array has {len(elements)} elements)"
                    )
                node = elements[index]
                if attr in node.env:
                    return node.env[attr]
                raise EvaluationError(
                    f"array element {nonterminal}({index}) has no attribute {attr!r}"
                )
            ctx = ctx.outer
        raise EvaluationError(
            f"reference to array {nonterminal} but no such array has been parsed"
        )

    def array_length(self, nonterminal: str) -> int:
        """Length of the (possibly partially built) array for ``nonterminal``."""
        ctx: Optional[EvalContext] = self
        while ctx is not None:
            elements = ctx.arrays.get(nonterminal)
            if elements is not None:
                return len(elements)
            ctx = ctx.outer
        raise EvaluationError(
            f"reference to array {nonterminal} but no such array has been parsed"
        )

    # -- updates ------------------------------------------------------------
    def bind(self, name: str, value: int) -> None:
        """Bind an attribute or loop variable in the local environment."""
        self.env[name] = value

    def record_node(self, node: Node) -> None:
        """Record the result of a nonterminal term for later references."""
        self.nodes[node.name] = node

    def child(self) -> "EvalContext":
        """Create a context for a local (``where``) rule nested in this one."""
        return EvalContext(env={}, outer=self)

    def snapshot_env(self) -> Dict[str, int]:
        """Copy of the local environment (used when constructing nodes)."""
        return dict(self.env)
