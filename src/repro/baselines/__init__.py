"""Baseline parsers the IPG implementation is compared against.

Three families, mirroring the paper's evaluation (section 7):

* :mod:`repro.baselines.handwritten` — imperative, struct-unpacking parsers
  in the style of ``readelf`` and ``unzip``; used for Figure 12.
* :mod:`repro.baselines.kaitai_like` — a declarative struct-description
  engine with Kaitai Struct's execution model (sequential fields, typed
  substreams that consume their bytes, ``instances`` with absolute ``pos``
  seeks); used for Table 1 and Figure 13 and for the non-termination
  examples of section 6.2.
* :mod:`repro.baselines.nail_like` — combinator parsers with arena-style
  allocation for the two network formats, standing in for Nail; used for
  Figure 13e/f and Figure 14.
"""

from . import handwritten, kaitai_like, nail_like

__all__ = ["handwritten", "kaitai_like", "nail_like"]
