"""Tests for the ELF case study (section 4.1)."""

import struct

import pytest

from repro import samples
from repro.baselines.handwritten import elf as handwritten_elf
from repro.formats import elf


class TestParsing:
    def test_header_fields(self, elf_parser, elf_sample):
        tree = elf_parser.parse(elf_sample)
        header = tree.child("H")
        assert header["class"] == 2
        assert header["machine"] == 0x3E
        assert header["shentsize"] == 64
        assert header["shnum"] == 8  # 4 payload + null + dynamic + symtab + shstrtab

    def test_section_header_table_via_random_access(self, elf_parser, elf_sample):
        tree = elf_parser.parse(elf_sample)
        headers = tree.array("SH")
        assert len(headers) == tree.child("H")["shnum"]
        # The null section comes first.
        assert headers[0]["type"] == 0 and headers[0]["size"] == 0

    def test_sections_parsed_by_type(self, elf_parser, elf_sample):
        tree = elf_parser.parse(elf_sample)
        sections = tree.array("Sec")
        type_names = [
            "DynSec" if s.child("DynSec") else
            "SymTab" if s.child("SymTab") else
            "StrTab" if s.child("StrTab") else "OtherSec"
            for s in sections
        ]
        assert "DynSec" in type_names
        assert "SymTab" in type_names
        assert "StrTab" in type_names
        assert "OtherSec" in type_names

    def test_dynamic_entries(self, elf_parser):
        data = samples.build_elf(section_count=1, symbol_count=0, dynamic_entries=5)
        tree = elf_parser.parse(data)
        entries = [node for sec in tree.array("Sec") if sec.child("DynSec")
                   for node in sec.child("DynSec").array("DynEntry")]
        assert [entry["tag"] for entry in entries] == list(range(5))

    def test_symbols(self, elf_parser):
        data = samples.build_elf(section_count=1, symbol_count=6, dynamic_entries=0)
        summary = elf.summarize(elf_parser.parse(data), data)
        assert len(summary.symbols) == 6
        assert summary.symbols[0]["value"] == 0x400000

    def test_rejects_bad_magic(self, elf_parser, elf_sample):
        corrupted = b"\x7fELG" + elf_sample[4:]
        assert not elf_parser.accepts(corrupted)

    def test_rejects_32_bit_class(self, elf_parser, elf_sample):
        corrupted = bytearray(elf_sample)
        corrupted[4] = 1  # ELFCLASS32
        assert not elf_parser.accepts(bytes(corrupted))

    def test_rejects_truncated_section_table(self, elf_parser, elf_sample):
        assert not elf_parser.accepts(elf_sample[:-10])

    def test_rejects_out_of_range_section_offset(self, elf_parser, elf_sample):
        corrupted = bytearray(elf_sample)
        # Point the section header table way past the end of the file.
        struct.pack_into("<Q", corrupted, 40, len(corrupted) * 2)
        assert not elf_parser.accepts(bytes(corrupted))


class TestSummary:
    def test_section_names_resolved(self, elf_parser, elf_sample):
        summary = elf.summarize(elf_parser.parse(elf_sample), elf_sample)
        names = [section.name for section in summary.sections]
        assert ".data0" in names
        assert ".shstrtab" in names
        assert ".dynamic" in names

    def test_summary_matches_handwritten_baseline(self, elf_parser, elf_sample):
        summary = elf.summarize(elf_parser.parse(elf_sample), elf_sample)
        baseline = handwritten_elf.parse(elf_sample)
        assert summary.section_count == baseline.header["shnum"]
        assert summary.entry == baseline.header["entry"]
        assert [s.offset for s in summary.sections] == [
            sh["offset"] for sh in baseline.section_headers
        ]
        assert len(summary.symbols) == len(baseline.symbols)

    def test_render_readelf_contains_sections(self, elf_parser, elf_sample):
        text = elf.render_readelf(elf.summarize(elf_parser.parse(elf_sample), elf_sample))
        assert "ELF Header:" in text
        assert ".data0" in text


class TestScaling:
    @pytest.mark.parametrize("count", [1, 8, 24])
    def test_parses_files_of_varying_size(self, elf_parser, count):
        data = samples.build_elf(section_count=count, symbol_count=4, dynamic_entries=2)
        tree = elf_parser.parse(data)
        assert tree.child("H")["shnum"] == count + 4
