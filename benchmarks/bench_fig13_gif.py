"""E6 — Figure 13b: GIF parsing time, IPG vs the Kaitai-like engine."""

import pytest

from repro.baselines.kaitai_like import specs as kaitai_specs

from conftest import GIF_FRAME_COUNTS, build_generated_parser


@pytest.fixture(scope="module")
def ipg_gif_parser():
    return build_generated_parser("gif")


@pytest.fixture(scope="module")
def kaitai_gif_engine():
    return kaitai_specs.get_engine("gif")


@pytest.mark.parametrize("frames", GIF_FRAME_COUNTS)
def test_fig13b_ipg(benchmark, gif_series, ipg_gif_parser, frames):
    image = gif_series[frames]
    benchmark.group = f"fig13b-gif-{frames}"
    tree = benchmark(ipg_gif_parser.parse, image)
    image_blocks = [b for b in tree.find_all("ImageBlock")]
    assert len(image_blocks) == frames


@pytest.mark.parametrize("frames", GIF_FRAME_COUNTS)
def test_fig13b_kaitai_like(benchmark, gif_series, kaitai_gif_engine, frames):
    image = gif_series[frames]
    benchmark.group = f"fig13b-gif-{frames}"
    obj = benchmark(kaitai_gif_engine.parse, image)
    images = [b for b in obj["blocks"] if b.fields["block_type"] == 0x2C]
    assert len(images) == frames


@pytest.mark.parametrize("frames", GIF_FRAME_COUNTS)
def test_fig13b_ipg_compiled(benchmark, gif_series, compiled_parsers, frames):
    image = gif_series[frames]
    benchmark.group = f"fig13b-gif-{frames}"
    tree = benchmark(compiled_parsers["gif"].parse, image)
    assert len(tree.find_all("ImageBlock")) == frames


@pytest.mark.parametrize("frames", GIF_FRAME_COUNTS)
def test_fig13b_ipg_interpreted(benchmark, gif_series, interpreted_parsers, frames):
    image = gif_series[frames]
    benchmark.group = f"fig13b-gif-{frames}"
    tree = benchmark(interpreted_parsers["gif"].parse, image)
    assert len(tree.find_all("ImageBlock")) == frames
