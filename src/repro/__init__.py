"""repro — Interval Parsing Grammars for file format parsing.

A from-scratch Python reproduction of *Interval Parsing Grammars for File
Format Parsing* (Zhang, Morrisett, Tan; PLDI 2023).

Quickstart
----------

    >>> from repro import Parser
    >>> grammar = '''
    ... S -> A[0, 2] B[EOI - 2, EOI] ;
    ... A -> "aa"[0, 2] ;
    ... B -> "bb"[0, 2] ;
    ... '''
    >>> parser = Parser(grammar)
    >>> tree = parser.parse(b"aaxxxbb")
    >>> tree.name
    'S'

Execution backends
------------------

``Parser`` ships two interchangeable engines selected with the ``backend``
keyword, plus an ahead-of-time emission mode:

* ``backend="compiled"`` (the default) stages the grammar once, at parser
  construction time, into specialized Python closures
  (:mod:`repro.core.compiler`): expressions are compiled to inline Python
  with constant folding, terminal matches become inlined slice comparisons,
  fixed-width integer builtins become inlined ``int.from_bytes`` calls, and
  the attribute environment lives in function locals instead of dicts.
  Five optimization passes (:class:`Optimizations`) — module-level
  ``where`` rules with explicit closure cells, bare-``lo`` memo keys for
  ``EOI``-anchored rules, memo elision for non-recursive rules,
  single-use rule inlining (plain, array-element and switch-target call
  sites), and first-byte dispatch tables (:mod:`repro.core.firstsets`) —
  take it to ~4.8x over the interpreter on the paper's Figure 13
  workloads (``benchmarks/bench_compiler_speedup.py``).  Tree-elision
  execution modes (``parse(data, emit="spans"|None)``) skip parse-tree
  construction entirely for validate-only and field-span consumers.
* ``backend="interpreted"`` runs the reference tree-walking interpreter, a
  direct transcription of the big-step semantics (Figures 8/15).
* ``compile_grammar(...).to_source()`` — or the ``repro compile`` CLI —
  renders the staged grammar as a **standalone importable module** that
  parses with only the standard library on ``sys.path``
  (:mod:`repro.core.codegen`).

All engines produce identical parse trees — enforced differentially by the
cross-engine matrix (``tests/engine_matrix.py``) and the golden-tree corpus
(``tests/golden/``) — and a grammar the compiler cannot specialize falls
back to the interpreter automatically (check ``parser.backend`` for the
engine actually in use).

Streaming
---------

Grammars whose dependencies flow strictly left to right (the §8
stream-parser analysis, :func:`analyze_streamability`) can be parsed over
*chunked* input without ever holding the whole file in memory — network
formats like DNS and IPv4+UDP qualify:

    >>> parser = Parser(grammar)
    >>> tree = parser.parse_stream([b"aax", b"xxb", b"b"])   # == parse(...)
    >>> session = parser.stream()          # or incrementally:
    >>> done = session.feed(b"aaxx")
    >>> done = session.feed(b"xbb")
    >>> tree = session.finish()

``parse_stream`` produces trees identical to ``parse`` for every chunking
of the input, on both backends.  Internally the engines run unmodified over
a growing buffer; reads past the received bytes suspend the attempt
(:class:`NeedMoreInput`), persistent memo tables make re-entry cheap, and
the consumed prefix is discarded as parsing advances, so peak buffered
bytes track the largest suspended term rather than the file size.  Grammars
that fail the analysis raise :class:`NotStreamableError` (``force=True``
overrides, at the cost of buffering).  The CLI exposes the same machinery
as ``python -m repro parse --stream`` (reading stdin or a file in chunks)
and ``python -m repro streamability --format dns``.

The package layout mirrors the paper: :mod:`repro.core` implements the IPG
language (syntax, semantics, checking, generation, combinators, termination
checking), :mod:`repro.formats` contains the case-study grammars (ZIP, GIF,
PE, ELF, PDF subset, IPv4+UDP, DNS), :mod:`repro.baselines` the comparison
parsers, :mod:`repro.samples` synthetic workload generators and
:mod:`repro.evaluation` the measurement harness behind the benchmarks.
"""

from .core import (
    ArrayNode,
    AttributeCheckError,
    AutoCompletionError,
    BlackboxError,
    BlackboxResult,
    BoundsViolation,
    CompilationError,
    CompiledGrammar,
    DeadlineExceeded,
    DEFAULT_LIMITS,
    Optimizations,
    EvaluationError,
    GenerationError,
    Grammar,
    GrammarSyntaxError,
    GuardRejected,
    IPGError,
    Leaf,
    LimitExceeded,
    NeedMoreInput,
    Node,
    NotStreamableError,
    ParseFailure,
    ParseLimits,
    ParseTree,
    Parser,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    Span,
    StreamabilityReport,
    StreamingParse,
    TerminationCheckError,
    TruncatedInput,
    WorkerCrashed,
    analyze_streamability,
    check_grammar,
    compile_grammar,
    complete_grammar,
    diagnose_failure,
    parse,
    parse_expression,
    parse_grammar,
    prepare_grammar,
    render_explain,
    tree_equal_modulo_specials,
)

__version__ = "1.0.0"

__all__ = [
    "ArrayNode",
    "AttributeCheckError",
    "AutoCompletionError",
    "BlackboxError",
    "BlackboxResult",
    "BoundsViolation",
    "CompilationError",
    "CompiledGrammar",
    "DeadlineExceeded",
    "DEFAULT_LIMITS",
    "Optimizations",
    "EvaluationError",
    "GenerationError",
    "Grammar",
    "GrammarSyntaxError",
    "GuardRejected",
    "IPGError",
    "Leaf",
    "LimitExceeded",
    "NeedMoreInput",
    "Node",
    "NotStreamableError",
    "ParseFailure",
    "ParseLimits",
    "ParseTree",
    "Parser",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "Span",
    "StreamabilityReport",
    "StreamingParse",
    "TerminationCheckError",
    "TruncatedInput",
    "WorkerCrashed",
    "__version__",
    "analyze_streamability",
    "check_grammar",
    "compile_grammar",
    "complete_grammar",
    "diagnose_failure",
    "parse",
    "parse_expression",
    "parse_grammar",
    "prepare_grammar",
    "render_explain",
    "tree_equal_modulo_specials",
]
