#!/usr/bin/env python3
"""Packet dissection with the IPv4+UDP and DNS grammars.

Builds a small synthetic "capture" (DNS query and response carried over
IPv4+UDP), dissects every packet with the IPG grammars, and compares the
result with the Nail-like arena parser used as a baseline in the paper's
network-format experiments.

Run with:  python examples/network_packets.py
"""

from repro import samples
from repro.baselines import nail_like
from repro.formats import dns, ipv4


def build_capture():
    """A tiny synthetic capture: one query and one response, both over UDP."""
    query = samples.build_dns_query("www.example.com", transaction_id=0xBEEF)
    response = samples.build_dns_response(
        "www.example.com", answer_count=3, additional_count=1, transaction_id=0xBEEF
    )
    return [
        samples.build_ipv4_udp_packet(
            payload_size=0, src="192.168.1.10", dst="8.8.8.8", sport=50000, dport=53
        )[:28] + query,  # splice the DNS payload behind the 28-byte headers
        samples.build_ipv4_udp_packet(
            payload_size=0, src="8.8.8.8", dst="192.168.1.10", sport=53, dport=50000
        )[:28] + response,
    ]


def fix_lengths(packet: bytes) -> bytes:
    """Patch the IPv4/UDP length fields after splicing a payload in."""
    total = len(packet)
    udp_len = total - 20
    patched = bytearray(packet)
    patched[2:4] = total.to_bytes(2, "big")
    patched[24:26] = udp_len.to_bytes(2, "big")
    return bytes(patched)


def main() -> None:
    for index, raw in enumerate(build_capture()):
        packet = fix_lengths(raw)
        ip_summary = ipv4.summarize(ipv4.parse(packet))
        print(
            f"packet {index}: {ip_summary.source}:{ip_summary.source_port} -> "
            f"{ip_summary.destination}:{ip_summary.destination_port} "
            f"({ip_summary.udp_length - 8} bytes of UDP payload)"
        )

        # The UDP payload is a DNS message; parse it with the DNS grammar.
        message = dns.summarize(dns.parse(ip_summary.payload))
        for question in message.questions:
            print(f"    question: {question.name} (type {question.qtype})")
        for record in message.records:
            print(f"    record:   {record.name} ttl={record.ttl} rdlength={record.rdlength}")

        # Cross-check the record count against the Nail-like baseline parser.
        nail_message, arena = nail_like.parse_dns(ip_summary.payload)
        assert len(nail_message.records) == len(message.records)
        print(
            f"    nail-like baseline agrees "
            f"({arena.object_count} arena objects, {arena.bytes_reserved} bytes reserved)"
        )

        # Both network grammars pass the paper's §8 streamability analysis,
        # so the same message can be parsed as it arrives from the wire —
        # here in 8-byte chunks — without ever holding the whole packet.
        stream_parser = dns.build_parser()
        session = stream_parser.stream()
        payload = ip_summary.payload
        for offset in range(0, len(payload), 8):
            session.feed(payload[offset : offset + 8])
        streamed = dns.summarize(session.finish())
        assert streamed == message
        print(
            f"    streamed in 8-byte chunks: {session.attempts} re-entries, "
            f"peak buffer {session.max_buffered}/{len(payload)} bytes"
        )


if __name__ == "__main__":
    main()
