"""Exception hierarchy for the IPG toolkit.

Every user-facing error raised by the library derives from :class:`IPGError`
so that applications can catch a single exception type.  The hierarchy
mirrors the pipeline stages of the paper: grammar-text parsing, attribute
checking, interval auto-completion, termination checking, and input parsing.
"""

from __future__ import annotations


class IPGError(Exception):
    """Base class for all errors raised by the IPG toolkit."""


class GrammarSyntaxError(IPGError):
    """The IPG surface syntax could not be parsed.

    Carries the line and column of the offending token when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AttributeCheckError(IPGError):
    """Attribute checking failed.

    Raised when an attribute reference does not refer to a defined attribute
    (property 1 of section 3.2) or when the per-alternative dependency graph
    is cyclic (property 2 of section 3.2).
    """


class AutoCompletionError(IPGError):
    """Implicit-interval completion could not infer a missing interval."""


class TerminationCheckError(IPGError):
    """Static termination checking rejected the grammar.

    The exception message names the elementary cycle whose intervals may be
    non-decreasing (i.e. may stay at ``[0, EOI]`` forever).
    """

    def __init__(self, message: str, cycle=None):
        self.cycle = list(cycle) if cycle is not None else []
        super().__init__(message)


class ParseFailure(IPGError):
    """Parsing an input according to an IPG produced ``Fail``.

    The interpreter and generated parsers raise this from the public
    ``parse`` entry points; the internal machinery uses a ``FAIL`` sentinel
    to implement biased choice without exception overhead.
    """

    def __init__(self, message: str, nonterminal: str = "", offset: int | None = None):
        self.nonterminal = nonterminal
        self.offset = offset
        super().__init__(message)


class NeedMoreInput(IPGError):
    """A streaming parse touched bytes (or the stream length) not yet fed.

    Raised internally by the streaming machinery
    (:mod:`repro.core.streaming`) when an engine tries to read past the
    bytes received so far, or to evaluate an expression whose value depends
    on the still-unknown total input length.  The streaming driver catches
    it, waits for more chunks (or :meth:`~repro.core.streaming.
    StreamingParse.finish`), and re-enters the parse.

    ``needed`` is the smallest number of absolutely-received bytes that
    could unblock the suspended computation, or ``None`` when only the
    final input length can (e.g. an ``EOI - k`` offset).  It is a
    scheduling hint, never a correctness requirement.

    This exception deliberately does **not** derive from
    :class:`EvaluationError`: an evaluation error fails the current
    alternative, while a suspension must abort the whole parse attempt —
    no biased-choice or guard decision may be taken on incomplete data.
    """

    def __init__(self, message: str, needed: int | None = None):
        self.needed = needed
        super().__init__(message)


class NotStreamableError(IPGError):
    """A streaming parse was requested for a grammar the §8 analysis rejects.

    Carries the :class:`~repro.core.streamability.StreamabilityReport` so
    callers can show the violations.  Pass ``force=True`` to
    :meth:`~repro.core.interpreter.Parser.stream` to run anyway — parsing
    stays correct (the engine simply buffers until the violating reads
    become possible), but the bounded-memory guarantee is lost.
    """

    def __init__(self, message: str, report=None):
        self.report = report
        super().__init__(message)


class EvaluationError(IPGError):
    """An interval or attribute expression could not be evaluated.

    Examples: reference to an attribute that is not bound at evaluation time,
    a division by zero, or an array reference with an out-of-range index.
    """


class BlackboxError(IPGError):
    """A blackbox parser was referenced but not supplied, or it failed."""


class GenerationError(IPGError):
    """The parser generator could not emit code for the grammar."""


class CompilationError(IPGError):
    """The staged compiler backend could not specialize the grammar.

    :class:`~repro.core.interpreter.Parser` catches this and falls back to
    the reference interpreter, so users only ever see it when calling
    :func:`repro.core.compiler.compile_grammar` directly.
    """


class SolverError(IPGError):
    """The constraint solver was given a formula outside its fragment."""
