"""Tests for the evaluation harness (metrics, timing, memory, report)."""

import pytest

from repro import samples
from repro.evaluation import (
    interval_statistics,
    measure_peak_memory,
    measure_runtime,
    spec_size_table,
)
from repro.evaluation.metrics import (
    PAPER_TABLE1_IPG,
    TABLE_FORMATS,
    aggregate_interval_shares,
    interval_table,
)
from repro.evaluation.memory import measure_memory_series
from repro.evaluation.timing import measure_series
from repro.evaluation import report
from repro.formats import registry


class TestSpecSizeMetrics:
    def test_table_covers_all_formats(self):
        rows = {row.fmt: row for row in spec_size_table()}
        assert set(rows) == set(TABLE_FORMATS)

    def test_ipg_line_counts_are_positive_and_modest(self):
        for row in spec_size_table():
            assert 10 <= row.ipg_lines <= 200

    def test_ipg_specs_are_smaller_than_kaitai_like(self):
        # The qualitative Table 1 claim: the IPG specification is the compact
        # one.  (zip is excluded: its Kaitai-like spec omits the archive-data
        # interpretation the IPG version includes.)
        rows = {row.fmt: row for row in spec_size_table()}
        smaller = [
            fmt
            for fmt, row in rows.items()
            if row.kaitai_lines is not None and row.ipg_lines < row.kaitai_lines
        ]
        assert len(smaller) >= 4

    def test_nail_like_reported_for_network_formats_only(self):
        rows = {row.fmt: row for row in spec_size_table()}
        assert rows["dns"].nail_lines is not None
        assert rows["ipv4"].nail_lines is not None
        assert rows["elf"].nail_lines is None

    def test_paper_reference_numbers_available(self):
        assert set(PAPER_TABLE1_IPG) == set(TABLE_FORMATS)


class TestIntervalMetrics:
    def test_counts_are_consistent(self):
        for stats in interval_table():
            assert stats.total == stats.explicit + stats.length_only + stats.fully_implicit
            assert stats.eliminated == stats.length_only + stats.fully_implicit

    def test_most_intervals_need_not_be_written_in_full(self):
        # Paper: 27% fully implicit + 52.9% length-only, i.e. ~80% of
        # intervals do not need both endpoints.  We check the same aggregate.
        shares = aggregate_interval_shares()
        assert shares["fully_implicit"] + shares["length_only"] > 50.0

    def test_single_format_statistics(self):
        stats = interval_statistics("gif")
        assert stats.fmt == "gif"
        assert stats.total > 20
        assert stats.fully_implicit > 0

    def test_unknown_format_raises(self):
        with pytest.raises(KeyError):
            interval_statistics("not-a-format")


class TestTimingAndMemory:
    def test_measure_runtime_returns_sane_numbers(self):
        measurement = measure_runtime(lambda: sum(range(500)), repeats=5, warmup=1)
        assert measurement.mean >= 0.0
        assert measurement.minimum <= measurement.mean
        assert measurement.repeats == 5
        assert measurement.mean_ms == measurement.mean * 1000.0

    def test_measure_runtime_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            measure_runtime(lambda: None, repeats=0)

    def test_measure_series_labels_points(self):
        points = measure_series(len, [b"ab", b"abcd"], ["two", "four"], repeats=2)
        assert [p.label for p in points] == ["two", "four"]
        assert [p.input_bytes for p in points] == [2, 4]

    def test_measure_peak_memory_detects_allocation(self):
        small = measure_peak_memory(lambda: bytes(10))
        large = measure_peak_memory(lambda: bytes(4_000_000))
        assert large.peak_bytes > small.peak_bytes
        assert large.peak_kib > 1000

    def test_measure_memory_series(self):
        points = measure_memory_series(
            lambda data: bytearray(data * 100), [b"x", b"y" * 10], ["a", "b"]
        )
        assert len(points) == 2
        assert points[1].measurement.peak_bytes >= points[0].measurement.peak_bytes


class TestReport:
    def test_table1_section(self):
        text = report.experiment_table1()
        assert "Table 1" in text
        for fmt in TABLE_FORMATS:
            assert fmt in text

    def test_table2_section(self):
        text = report.experiment_table2()
        assert "fully implicit" in text
        assert "%" in text

    def test_termination_section_reports_every_format(self):
        text = report.experiment_termination()
        for fmt in registry:
            assert fmt in text
        assert "NO" not in text.split("terminates")[1].splitlines()[0]

    def test_fig13_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            report.experiment_fig13("tar")

    def test_fig14_runs_quickly_in_quick_mode(self):
        text = report.experiment_fig14(quick=True)
        assert "IPG" in text and "Nail-like" in text
