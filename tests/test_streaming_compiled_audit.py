"""Audit of the compiled backend's whole-buffer assumptions under streaming.

The staged compiler was written against a complete ``bytes`` input.  This
suite documents every place the generated code (or its runtime) could have
assumed "the buffer is the whole file" and pins the correct behaviour over
a growing :class:`~repro.core.streaming.StreamBuffer`:

1.  **Inlined fixed-width integers** (the ``btoi`` specialization) slice
    ``data[p : p + width]`` and decode with ``int.from_bytes``.  On a short
    ``bytes`` buffer the slice would silently shrink and decode a *wrong
    value* — the emitted interval/width guards must make that unreachable,
    and on a stream the slice must suspend instead of decoding a prefix.

2.  **Inlined terminal matches** rely on Python's slice-clipping for the
    off-the-end case (short slice ≠ literal → FAIL).  A stream must not
    turn "bytes not yet fed" into that FAIL — it suspends instead, and only
    clips once the true end of input is known.

3.  **EOI-relative windows**: the generated interval checks compare against
    ``hi - lo``, never ``len(data)``, so they stay correct when ``hi`` is
    the (unresolved) end-of-stream proxy.

4.  **Memo tables** are keyed ``(lo, hi)`` per rule and allocated per parse
    in ``CompiledGrammar.parse_nonterminal`` — not sized from ``len(data)``.
    The streaming driver instead keeps one state alive across re-entries;
    batch parses on the same Parser must stay isolated from an in-flight
    streaming session.

5.  **Zero-copy builtins** (``Raw``) compute attributes from ``hi - lo``;
    over an EOI-bounded window that value is unknown until the stream ends
    and must be resolved (to a plain ``int``) in the final tree.
"""

import pytest

from repro import NeedMoreInput, Parser
from repro.core.streaming import StreamBuffer

from streaming_helpers import chunked

BACKENDS = ("compiled", "interpreted")


class TestFixedIntWindows:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_truncated_window_fails_instead_of_misdecoding(self, backend):
        # 1. Two bytes of input for a U32LE: the interval guard must FAIL
        # the parse; a naive inlined int.from_bytes over the clipped slice
        # would "successfully" decode 0x0201.
        parser = Parser("S -> U32LE[0, 4] {v = U32LE.val} ;", backend=backend)
        assert parser.try_parse(b"\x01\x02") is None
        assert parser.try_parse(b"\x01\x02\x03\x04")["v"] == 0x04030201

    def test_stream_suspends_rather_than_decoding_a_prefix(self):
        # 1./2. With only 2 of 4 bytes fed, the fixed-int read suspends; it
        # must never decode the partial window.
        parser = Parser("S -> U32LE {v = U32LE.val} ;")
        session = parser.stream()
        assert session.feed(b"\x01\x02") is False
        assert not session.done
        assert session.feed(b"\x03\x04") is True
        assert session.finish()["v"] == 0x04030201

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_split_terminal_is_not_failed_early(self, backend):
        # 2. "ABCD" with only "AB" fed: a bytes buffer would clip the slice
        # and mismatch; the stream suspends and matches once fed.
        parser = Parser('S -> "ABCD" ;', backend=backend)
        session = parser.stream()
        assert session.feed(b"AB") is False
        assert session.feed(b"CD") is True
        assert session.finish() == parser.parse(b"ABCD")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_short_input_still_fails_at_finish(self, backend):
        from repro import ParseFailure

        parser = Parser('S -> "ABCD" ;', backend=backend)
        session = parser.stream()
        session.feed(b"AB")
        with pytest.raises(ParseFailure):
            session.finish()


class TestEOIRelativeWindows:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fixed_int_over_eoi_bounded_window(self, backend):
        # 3. An auto-completed builtin window is [prev.end, EOI]: the
        # emitted width check `EOI - left >= 4` is against the window, not
        # len(data), and decides as soon as enough bytes arrived.
        parser = Parser('S -> "go" U32BE {v = U32BE.val} ;', backend=backend)
        data = b"go\x00\x00\x00\x2a___trailing___"
        for size in (1, 3, len(data)):
            assert parser.parse_stream(chunked(data, size)) == parser.parse(data)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eoi_anchored_terminal_buffers_the_tail(self, backend):
        # 3. [EOI - 2, EOI] cannot be located before the end is known: the
        # session must stay suspended through every chunk and resolve the
        # read only at finish().
        parser = Parser('S -> "aa" B[EOI - 2, EOI] ; B -> "bb" ;', backend=backend)
        data = b"aa" + b"x" * 50 + b"bb"
        session = parser.stream()
        for chunk in chunked(data, 8):
            assert session.feed(chunk) is False
        assert session.finish() == parser.parse(data)


class TestMemoIsolation:
    def test_batch_parse_does_not_disturb_streaming_session(self):
        # 4. The streaming session's persistent memo state and any
        # interleaved batch parse must not observe each other.
        parser = Parser('S -> "MAGIC" U32LE {n = U32LE.val} Raw[n] ;')
        data = b"MAGIC" + (6).to_bytes(4, "little") + b"sixsix"
        session = parser.stream()
        session.feed(data[:7])
        # Interleave batch parses (fresh memo state per call).
        assert parser.parse(data) == parser.parse(data)
        session.feed(data[7:])
        assert session.finish() == parser.parse(data)

    def test_concurrent_sessions_are_independent(self):
        parser = Parser('S -> "ab" U16BE {v = U16BE.val} ;')
        first = parser.stream()
        second = parser.stream()
        first.feed(b"ab\x00")
        second.feed(b"ab\x01")
        first.feed(b"\x2a")
        second.feed(b"\x00")
        assert first.finish()["v"] == 0x2A
        assert second.finish()["v"] == 0x100

    def test_reentry_uses_memo_not_reparse(self):
        # 4. Completed sub-parses must be replayed as memo hits: the memo
        # table of the session's state is shared across attempts, so the
        # number of entries stays flat however many re-entries happen.
        parser = Parser('S -> A[0, 2] A2[2, 4] B[4, EOI] ; '
                        'A -> "aa" ; A2 -> A[0, 2] ; B -> "bb" ;')
        data = b"aaaabb"
        session = parser.stream()
        for chunk in chunked(data, 1):
            session.feed(chunk)
        tree = session.finish()
        assert tree == parser.parse(data)
        assert session.attempts <= len(data) + 1
        # The compiled state holds one dict per memoized rule — keyed by
        # (lo, hi), or by bare lo for EOI-anchored rules — plus the fuel
        # cell when limits are on.  Entries accumulate per *window*, not
        # per attempt.
        assert session._state is not None
        fuel_slot = session._compiled.fuel_slot
        for index, table in enumerate(session._state):
            if index == fuel_slot:
                continue
            assert isinstance(table, dict)
            assert len(table) <= 2


class TestZeroCopyBuiltins:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raw_attributes_resolved_after_finish(self, backend):
        # 5. Raw over [x, EOI): len/val are EOI-dependent; the final tree
        # must carry plain ints equal to the batch parse's.
        parser = Parser('S -> "h" Raw {n = Raw.len} ;', backend=backend)
        data = b"h" + b"payload bytes"
        tree = parser.parse_stream(chunked(data, 3))
        assert tree == parser.parse(data)
        assert tree["n"] == len(data) - 1
        assert type(tree["n"]) is int


class TestBufferContract:
    def test_len_is_the_total_stream_length(self):
        # The engines never call len(data); the buffer still implements it
        # for user code, as the *stream* length (unknown until finished).
        buffer = StreamBuffer()
        buffer.feed(b"abc")
        with pytest.raises(NeedMoreInput):
            len(buffer)
        buffer.finish()
        assert len(buffer) == 3

    def test_generated_source_reads_are_window_relative(self):
        # 3./4. Source-level audit: the generated module must not reference
        # len(data) or materialize the whole buffer.
        parser = Parser('S -> "x" U32LE Raw[U32LE.val] B[EOI - 1, EOI] ; B -> "!" ;')
        source = parser._compiled.source
        assert "len(data)" not in source
        assert "bytes(data)" not in source
