"""Abstract syntax of Interval Parsing Grammars.

The core grammar of the paper (Figure 5)::

    Grammar      G    ::= R1 ... Rn
    Rule         R    ::= A -> alt1 / ... / altn
    Alternative  alt  ::= tm1 ... tmn
    Term         tm   ::= A[el, er] | s[el, er] | {id = e} | <e>
                        | for id = e1 to e2 do A[el, er]

The full language adds switch terms, local rules (``where``), blackbox
declarations and implicit intervals (section 3.4).  This module defines the
AST for all of it.  The surface-syntax parser (:mod:`repro.core.grammar_parser`)
builds these objects; the checking, completion, interpretation, generation
and termination passes consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .errors import IPGError
from .expr import Expr

# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------

#: How an interval was written in the source grammar.  Used by the Table 2
#: metric (explicit vs length-only vs fully implicit intervals).
INTERVAL_EXPLICIT = "explicit"    # A[e1, e2]
INTERVAL_LENGTH = "length"        # A[e]        (only the length is given)
INTERVAL_IMPLICIT = "implicit"    # A           (fully omitted)


@dataclass
class Interval:
    """An interval annotation ``[left, right)`` attached to a term.

    Immediately after surface parsing, only explicit intervals have both
    endpoints; length-only and implicit intervals are filled in by the
    auto-completion pass (:mod:`repro.core.autocomplete`).  ``form`` records
    how the interval was originally written, and ``length`` keeps the
    length expression of length-only intervals for re-rendering.
    """

    left: Optional[Expr] = None
    right: Optional[Expr] = None
    length: Optional[Expr] = None
    form: str = INTERVAL_EXPLICIT

    @property
    def complete(self) -> bool:
        """Whether both endpoints are known."""
        return self.left is not None and self.right is not None

    def references(self) -> Set[Tuple[str, str]]:
        refs: Set[Tuple[str, str]] = set()
        if self.left is not None:
            refs |= self.left.references()
        if self.right is not None:
            refs |= self.right.references()
        if self.length is not None:
            refs |= self.length.references()
        return refs

    def to_source(self) -> str:
        if self.form == INTERVAL_IMPLICIT:
            return ""
        if self.form == INTERVAL_LENGTH and self.length is not None:
            return f"[{self.length.to_source()}]"
        assert self.left is not None and self.right is not None
        return f"[{self.left.to_source()}, {self.right.to_source()}]"

    @classmethod
    def explicit(cls, left: Expr, right: Expr) -> "Interval":
        return cls(left=left, right=right, form=INTERVAL_EXPLICIT)

    @classmethod
    def of_length(cls, length: Expr) -> "Interval":
        return cls(length=length, form=INTERVAL_LENGTH)

    @classmethod
    def implicit(cls) -> "Interval":
        return cls(form=INTERVAL_IMPLICIT)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class for alternative terms."""

    __slots__ = ()

    def references(self) -> Set[Tuple[str, str]]:
        """Entities referenced by this term's expressions."""
        return set()

    def defines(self) -> Set[str]:
        """Attribute names this term defines (for dependency analysis)."""
        return set()

    def provides_nonterminal(self) -> Optional[str]:
        """Nonterminal name whose attributes this term makes available."""
        return None

    def to_source(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.to_source()})"


@dataclass(repr=False)
class TermTerminal(Term):
    """A terminal string with an interval: ``"aa"[e1, e2]``."""

    value: bytes
    interval: Interval = field(default_factory=Interval.implicit)

    def references(self) -> Set[Tuple[str, str]]:
        return self.interval.references()

    def to_source(self) -> str:
        return f'"{_escape_bytes(self.value)}"{self.interval.to_source()}'


@dataclass(repr=False)
class TermNonterminal(Term):
    """A nonterminal with an interval: ``A[e1, e2]``."""

    name: str
    interval: Interval = field(default_factory=Interval.implicit)

    def references(self) -> Set[Tuple[str, str]]:
        return self.interval.references()

    def provides_nonterminal(self) -> Optional[str]:
        return self.name

    def to_source(self) -> str:
        return f"{self.name}{self.interval.to_source()}"


@dataclass(repr=False)
class TermAttrDef(Term):
    """An attribute definition: ``{id = e}``."""

    name: str
    expr: Expr

    def references(self) -> Set[Tuple[str, str]]:
        return self.expr.references()

    def defines(self) -> Set[str]:
        return {self.name}

    def to_source(self) -> str:
        return f"{{{self.name} = {self.expr.to_source()}}}"


@dataclass(repr=False)
class TermGuard(Term):
    """A predicate: ``guard(e)`` — fails when ``e`` evaluates to 0."""

    expr: Expr

    def references(self) -> Set[Tuple[str, str]]:
        return self.expr.references()

    def to_source(self) -> str:
        return f"guard({self.expr.to_source()})"


@dataclass(repr=False)
class TermArray(Term):
    """An array term: ``for id = e1 to e2 do A[el, er]``."""

    var: str
    start: Expr
    stop: Expr
    element: TermNonterminal

    def references(self) -> Set[Tuple[str, str]]:
        refs = self.start.references() | self.stop.references()
        refs |= self.element.references()
        # The loop variable is bound by the term, not a free reference.
        refs.discard(("name", self.var))
        return refs

    def defines(self) -> Set[str]:
        return set()

    def provides_nonterminal(self) -> Optional[str]:
        return self.element.name

    def to_source(self) -> str:
        return (
            f"for {self.var} = {self.start.to_source()} to {self.stop.to_source()} "
            f"do {self.element.to_source()}"
        )


@dataclass(repr=False)
class SwitchCase:
    """One branch of a switch term; ``condition`` is ``None`` for the default."""

    condition: Optional[Expr]
    target: TermNonterminal

    def to_source(self) -> str:
        if self.condition is None:
            return self.target.to_source()
        return f"{self.condition.to_source()} : {self.target.to_source()}"


@dataclass(repr=False)
class TermSwitch(Term):
    """A switch term (section 3.4, type-length-value support)."""

    cases: List[SwitchCase]

    def references(self) -> Set[Tuple[str, str]]:
        refs: Set[Tuple[str, str]] = set()
        for case in self.cases:
            if case.condition is not None:
                refs |= case.condition.references()
            refs |= case.target.references()
        return refs

    def provides_nonterminal(self) -> Optional[str]:
        # A switch may produce any of its targets; dependency analysis treats
        # each case target individually via `possible_nonterminals`.
        return None

    def possible_nonterminals(self) -> List[str]:
        return [case.target.name for case in self.cases]

    def to_source(self) -> str:
        rendered = " / ".join(case.to_source() for case in self.cases)
        return f"switch({rendered})"


def _escape_bytes(value: bytes) -> str:
    """Render terminal bytes using the escapes accepted by the lexer."""
    out = []
    for byte in value:
        char = chr(byte)
        if char == '"':
            out.append('\\"')
        elif char == "\\":
            out.append("\\\\")
        elif 32 <= byte < 127:
            out.append(char)
        elif char == "\n":
            out.append("\\n")
        elif char == "\t":
            out.append("\\t")
        elif char == "\r":
            out.append("\\r")
        else:
            out.append(f"\\x{byte:02x}")
    return "".join(out)


# ---------------------------------------------------------------------------
# Alternatives, rules, grammars
# ---------------------------------------------------------------------------


@dataclass(repr=False)
class Alternative:
    """One alternative of a rule: a sequence of terms plus local rules.

    ``local_rules`` holds the rules introduced by a ``where { ... }`` clause;
    their nonterminals are visible only inside this alternative, and their
    right-hand sides may reference attributes of this alternative's terms.
    """

    terms: List[Term]
    local_rules: List["Rule"] = field(default_factory=list)
    #: Set by the attribute checker after topological reordering.
    reordered: bool = False

    def local_rule_names(self) -> Set[str]:
        return {rule.name for rule in self.local_rules}

    def to_source(self) -> str:
        rendered = " ".join(term.to_source() for term in self.terms)
        if self.local_rules:
            locals_src = " ".join(rule.to_source() for rule in self.local_rules)
            rendered = f"{rendered} where {{ {locals_src} }}"
        return rendered

    def __repr__(self) -> str:
        return f"Alternative({self.to_source()})"


@dataclass(repr=False)
class Rule:
    """A rule ``A -> alt1 / ... / altn``."""

    name: str
    alternatives: List[Alternative]

    def to_source(self) -> str:
        body = " / ".join(alt.to_source() for alt in self.alternatives)
        return f"{self.name} -> {body} ;"

    def __repr__(self) -> str:
        return f"Rule({self.name}, {len(self.alternatives)} alternatives)"


class Grammar:
    """A complete IPG: an ordered collection of rules plus declarations.

    The first rule is the start nonterminal unless ``start`` says otherwise.
    ``blackboxes`` lists nonterminal names implemented by externally supplied
    parsers (section 3.4, *Blackbox Parsers*).
    """

    def __init__(
        self,
        rules: Sequence[Rule],
        start: Optional[str] = None,
        blackboxes: Optional[Sequence[str]] = None,
        source: Optional[str] = None,
    ):
        if not rules:
            raise IPGError("a grammar must contain at least one rule")
        self.rules: Dict[str, Rule] = {}
        for rule in rules:
            if rule.name in self.rules:
                raise IPGError(
                    f"duplicate rule for nonterminal {rule.name!r}; IPGs require "
                    f"exactly one rule per nonterminal"
                )
            self.rules[rule.name] = rule
        self.start = start if start is not None else rules[0].name
        if self.start not in self.rules:
            raise IPGError(f"start nonterminal {self.start!r} has no rule")
        self.blackboxes: Set[str] = set(blackboxes or ())
        self.source = source
        #: Filled by the pipeline in `repro.core.pipeline` / public API.
        self.checked = False
        self.completed = False

    # -- queries -------------------------------------------------------------
    def rule(self, name: str) -> Rule:
        if name not in self.rules:
            raise IPGError(f"no rule for nonterminal {name!r}")
        return self.rules[name]

    def has_rule(self, name: str) -> bool:
        return name in self.rules

    def nonterminals(self) -> List[str]:
        return list(self.rules)

    def iter_rules(self) -> Iterator[Rule]:
        return iter(self.rules.values())

    def iter_all_rules(self) -> Iterator[Tuple[Rule, Optional[Rule]]]:
        """Yield ``(rule, enclosing_rule)`` pairs including local rules.

        Local rules are yielded with the rule whose alternative declared them
        as the enclosing rule; top-level rules have ``None``.
        """
        for rule in self.rules.values():
            yield rule, None
            for alternative in rule.alternatives:
                for local in alternative.local_rules:
                    yield local, rule

    def to_source(self) -> str:
        """Render the grammar back to IPG surface syntax."""
        lines = [f"blackbox {name} ;" for name in sorted(self.blackboxes)]
        lines.extend(rule.to_source() for rule in self.rules.values())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Grammar(start={self.start}, rules={list(self.rules)})"
