"""Benchmark regression gate: fail CI when the compiled speedup collapses.

Compares a freshly measured Fig. 13 benchmark report (the CI smoke run of
``benchmarks/bench_compiler_speedup.py``) against the committed
``BENCH_compiler.json`` trajectory and exits non-zero when any gated
median regressed more than the tolerance (default 15%) below the
committed value.  Gated medians:

* ``median_speedup`` — compiled tree-mode vs the frozen interpreter,
* ``aot_median_speedup`` — the ahead-of-time emitted module,
* ``validate_median_speedup_vs_tree`` — the tree-elision fast path,
* ``streaming_median_speedup`` — chunked streaming on the §8-streamable
  formats.

On failure the gate additionally prints per-format deltas (current vs
committed per-metric values) so the regressing format/mode is visible in
the CI log without re-running anything.

The tolerance absorbs machine-to-machine and quick-vs-full noise (the
committed JSON is a full run on the development machine; CI measures a
``--quick`` workload on shared runners).  A genuine regression — an
optimization pass broken or accidentally disabled — drops the median far
more than 15%, while ordinary jitter stays well inside it.

Usage::

    python tools/bench_gate.py CURRENT.json [BASELINE.json] [--tolerance 0.15]

``BASELINE.json`` defaults to ``BENCH_compiler.json`` at the repository
root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Gated medians: report key -> human label.
GATED_MEDIANS = (
    ("median_speedup", "median compiled speedup"),
    ("aot_median_speedup", "median AOT speedup"),
    ("validate_median_speedup_vs_tree", "median validate-only speedup vs tree"),
    ("streaming_median_speedup", "median streaming speedup"),
)

#: Per-format metrics shown in the failure breakdown.
_FORMAT_METRICS = (
    "speedup",
    "aot_speedup",
    "validate_speedup_vs_tree",
    "streaming_speedup",
)


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _print_format_deltas(current: dict, baseline: dict) -> None:
    """Per-format current-vs-committed breakdown (printed on failure)."""
    current_formats = current.get("formats", {})
    baseline_formats = baseline.get("formats", {})
    names = sorted(set(current_formats) | set(baseline_formats))
    if not names:
        return
    print("bench-gate: per-format deltas (current vs committed):", file=sys.stderr)
    for name in names:
        cur = current_formats.get(name, {})
        base = baseline_formats.get(name, {})
        parts = []
        for metric in _FORMAT_METRICS:
            measured = cur.get(metric)
            committed = base.get(metric)
            if measured is None and committed is None:
                continue
            if measured is None or committed is None:
                parts.append(f"{metric}: {committed} -> {measured}")
                continue
            delta = (measured - committed) / committed if committed else 0.0
            parts.append(
                f"{metric}: {committed:.2f}x -> {measured:.2f}x ({delta:+.0%})"
            )
        print(f"bench-gate:   {name:6s} {'; '.join(parts)}", file=sys.stderr)


def gate(current_path: str, baseline_path: str, tolerance: float) -> int:
    current = _load(current_path)
    baseline = _load(baseline_path)
    failures = []
    for key, label in GATED_MEDIANS:
        committed = baseline.get(key)
        measured = current.get(key)
        if committed is None or measured is None:
            print(f"bench-gate: {label}: missing ({key}); skipped")
            continue
        floor = committed * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"bench-gate: {label}: measured {measured:.2f}x vs committed "
            f"{committed:.2f}x (floor {floor:.2f}x at -{tolerance:.0%}): {verdict}"
        )
        if measured < floor:
            failures.append(label)
    if failures:
        print(
            f"bench-gate: FAILED — {', '.join(failures)} regressed more than "
            f"{tolerance:.0%} below the committed BENCH_compiler.json",
            file=sys.stderr,
        )
        _print_format_deltas(current, baseline)
        return 1
    print("bench-gate: passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured benchmark JSON")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=os.path.join(_REPO_ROOT, "BENCH_compiler.json"),
        help="committed trajectory JSON (default: BENCH_compiler.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression below the committed median "
        "(default: 0.15)",
    )
    args = parser.parse_args(argv)
    return gate(args.current, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
