"""Nail-like DNS parser: cursor-based combinators over an arena."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .arena import Arena


class NailParseError(Exception):
    """The packet does not match the format."""


class _Cursor:
    """A read cursor over the packet (the generated-parser equivalent)."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def need(self, count: int) -> None:
        if self.pos + count > len(self.data):
            raise NailParseError(f"need {count} bytes at offset {self.pos}")

    def u8(self) -> int:
        self.need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def u16(self) -> int:
        self.need(2)
        value = struct.unpack_from(">H", self.data, self.pos)[0]
        self.pos += 2
        return value

    def u32(self) -> int:
        self.need(4)
        value = struct.unpack_from(">I", self.data, self.pos)[0]
        self.pos += 4
        return value

    def take(self, count: int) -> bytes:
        self.need(count)
        out = self.data[self.pos : self.pos + count]
        self.pos += count
        return out


@dataclass
class NailDnsQuestion:
    labels: List[memoryview]
    qtype: int
    qclass: int


@dataclass
class NailDnsRecord:
    labels: List[memoryview]
    pointer: Optional[int]
    rtype: int
    rclass: int
    ttl: int
    rdata: memoryview


@dataclass
class NailDnsMessage:
    transaction_id: int
    flags: int
    questions: List[NailDnsQuestion] = field(default_factory=list)
    records: List[NailDnsRecord] = field(default_factory=list)


def _parse_name(cursor: _Cursor, arena: Arena) -> Tuple[List[memoryview], Optional[int]]:
    """Parse a name into arena-allocated label copies (pointer recorded, not followed)."""
    labels: List[memoryview] = []
    while True:
        length = cursor.u8()
        if length == 0:
            return labels, None
        if length & 0xC0 == 0xC0:
            low = cursor.u8()
            return labels, ((length & 0x3F) << 8) | low
        labels.append(arena.alloc_bytes(cursor.take(length)))


def parse_dns(data: bytes, arena: Optional[Arena] = None) -> Tuple[NailDnsMessage, Arena]:
    """Parse a DNS message, allocating the result in ``arena``."""
    arena = arena if arena is not None else Arena()
    cursor = _Cursor(data)
    transaction_id = cursor.u16()
    flags = cursor.u16()
    qdcount = cursor.u16()
    ancount = cursor.u16()
    nscount = cursor.u16()
    arcount = cursor.u16()
    message = arena.alloc_object(NailDnsMessage(transaction_id, flags))

    for _ in range(qdcount):
        labels, _pointer = _parse_name(cursor, arena)
        qtype = cursor.u16()
        qclass = cursor.u16()
        message.questions.append(arena.alloc_object(NailDnsQuestion(labels, qtype, qclass)))

    for _ in range(ancount + nscount + arcount):
        labels, pointer = _parse_name(cursor, arena)
        rtype = cursor.u16()
        rclass = cursor.u16()
        ttl = cursor.u32()
        rdlength = cursor.u16()
        rdata = arena.alloc_bytes(cursor.take(rdlength))
        message.records.append(
            arena.alloc_object(NailDnsRecord(labels, pointer, rtype, rclass, ttl, rdata))
        )
    return message, arena
