"""Streaming execution over chunked input (the stream parsers of §8).

The paper sketches stream parsers as future work: when every rule's
attribute dependencies flow left to right (the analysis of
:mod:`repro.core.streamability`), a parser can consume its input
incrementally instead of requiring the whole file up front.  This module is
that execution subsystem.  It deliberately does **not** fork the parsing
engines; instead it makes the existing ones — the staged compiler
(:mod:`repro.core.compiler`) and the reference interpreter
(:mod:`repro.core.interpreter`) — stream-capable through two substitutions:

:class:`StreamBuffer`
    Replaces the ``bytes`` input.  It grows as chunks are fed, supports the
    exact indexing/slicing the engines perform, and raises
    :class:`~repro.core.errors.NeedMoreInput` for any read past the bytes
    received so far.  Once all *live* parse state is past an offset the
    driver discards the prefix, so peak buffered bytes track the largest
    suspended term, not the file size.

:class:`EOIProxy`
    Replaces the input length while it is unknown.  The batch engines seed
    every alternative with ``EOI = |s|`` and compare interval endpoints
    against it; a proxy stands for ``total + delta`` and implements exactly
    the arithmetic and comparisons the engines use.  A comparison whose
    outcome is already forced by the bytes received so far (the final length
    can only grow) is answered immediately; an undecidable one raises
    :class:`~repro.core.errors.NeedMoreInput`.  ``EOI``-anchored reads such
    as ``B[EOI - 2, EOI]`` therefore suspend until :meth:`StreamingParse.
    finish`, which is the only sound time to run them.

Because a suspension unwinds the *whole* attempt (it is never caught by
biased choice, guards or alternatives), every decision an attempt does
commit — a memoized sub-parse, a FAIL, a guard outcome — was taken on
complete information and remains valid for every extension of the stream.
That is what makes the driver's strategy sound: keep one memo table alive
across attempts (the per-rule packrat tables of both engines), re-enter the
grammar from the start symbol after each chunk, and let memo hits skip all
completed work without touching the buffer.  Re-entry is therefore cheap —
the spine of already-parsed terms is re-walked as dictionary lookups, and
only the suspended frontier term re-reads its bytes.

The public surface is :meth:`repro.Parser.parse_stream` /
:meth:`repro.Parser.stream` (feed/finish); this module holds the machinery.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Union

from .errors import IPGError, LimitExceeded, NeedMoreInput, ParseFailure
from .parsetree import ArrayNode, Node, ParseTree

__all__ = [
    "EOIProxy",
    "StreamBuffer",
    "StreamingParse",
]


# ---------------------------------------------------------------------------
# EOIProxy — the unknown input length as a number
# ---------------------------------------------------------------------------


def _needed_for(bound: int, delta: int) -> int:
    """Received-bytes threshold at which ``total + delta`` provably > bound - 1."""
    return bound - delta


class EOIProxy:
    """``total + delta`` where ``total`` is the still-unknown stream length.

    While the stream is open the only known bound is ``total >= received``,
    so every operation either answers from that bound, or — once the stream
    is finished and ``total`` is exact — computes the real value, or raises
    :class:`~repro.core.errors.NeedMoreInput` with a scheduling hint.

    Two proxies of the same stream compare by ``delta`` (their difference is
    known exactly even while ``total`` is not), which is what lets the
    engines' memo keys ``(lo, hi)`` with ``hi = EOIProxy`` stay stable
    across parse attempts — the basis of cheap re-entry.
    """

    __slots__ = ("_buf", "_delta")

    def __init__(self, buf: "StreamBuffer", delta: int = 0):
        self._buf = buf
        self._delta = delta

    # -- resolution --------------------------------------------------------
    def _value(self) -> int:
        total = self._buf.total
        if total is None:
            raise NeedMoreInput(
                "expression depends on the total input length, which is "
                "unknown until the stream is finished"
            )
        return total + self._delta

    def _lower(self) -> int:
        """A bound ``value >= _lower()`` that is valid at all times."""
        total = self._buf.total
        base = total if total is not None else self._buf.received
        return base + self._delta

    @property
    def resolved(self) -> bool:
        return self._buf.total is not None

    # -- arithmetic --------------------------------------------------------
    def __add__(self, other):
        if isinstance(other, int):
            return EOIProxy(self._buf, self._delta + other)
        if isinstance(other, EOIProxy):
            return self._value() + other._value()
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, int):
            return EOIProxy(self._buf, self._delta - other)
        if isinstance(other, EOIProxy):
            # The totals cancel: the difference is exact at all times.
            return self._delta - other._delta
        return NotImplemented

    def __rsub__(self, other):
        if isinstance(other, int):
            return other - self._value()
        return NotImplemented

    def _delegate(self, op, other, reflected=False):
        """Resolve and compute; only sound once the total is known."""
        if isinstance(other, EOIProxy):
            other = other._value()
        elif not isinstance(other, int):
            return NotImplemented
        mine = self._value()
        return op(other, mine) if reflected else op(mine, other)

    def __mul__(self, other):
        return self._delegate(lambda a, b: a * b, other)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        return self._delegate(lambda a, b: a // b, other)

    def __rfloordiv__(self, other):
        return self._delegate(lambda a, b: a // b, other, reflected=True)

    def __mod__(self, other):
        return self._delegate(lambda a, b: a % b, other)

    def __rmod__(self, other):
        return self._delegate(lambda a, b: a % b, other, reflected=True)

    def __lshift__(self, other):
        return self._delegate(lambda a, b: a << b, other)

    def __rlshift__(self, other):
        return self._delegate(lambda a, b: a << b, other, reflected=True)

    def __rshift__(self, other):
        return self._delegate(lambda a, b: a >> b, other)

    def __rrshift__(self, other):
        return self._delegate(lambda a, b: a >> b, other, reflected=True)

    def __and__(self, other):
        return self._delegate(lambda a, b: a & b, other)

    __rand__ = __and__

    def __or__(self, other):
        return self._delegate(lambda a, b: a | b, other)

    __ror__ = __or__

    def __neg__(self):
        return -self._value()

    def __abs__(self):
        return abs(self._value())

    def __int__(self):
        return self._value()

    def __index__(self):
        return self._value()

    # -- comparisons -------------------------------------------------------
    # value >= _lower() always; while the stream is open there is no upper
    # bound, so only one direction of each comparison can be decided early.
    def __gt__(self, other):
        if isinstance(other, EOIProxy):
            return self._delta > other._delta
        if not isinstance(other, int):
            return NotImplemented
        if self.resolved:
            return self._value() > other
        if self._lower() > other:
            return True
        raise NeedMoreInput(
            "comparison against the unknown total input length",
            needed=_needed_for(other + 1, self._delta),
        )

    def __ge__(self, other):
        if isinstance(other, EOIProxy):
            return self._delta >= other._delta
        if not isinstance(other, int):
            return NotImplemented
        if self.resolved:
            return self._value() >= other
        if self._lower() >= other:
            return True
        raise NeedMoreInput(
            "comparison against the unknown total input length",
            needed=_needed_for(other, self._delta),
        )

    def __lt__(self, other):
        if isinstance(other, EOIProxy):
            return self._delta < other._delta
        if not isinstance(other, int):
            return NotImplemented
        if self.resolved:
            return self._value() < other
        if self._lower() >= other:
            return False
        raise NeedMoreInput(
            "comparison against the unknown total input length",
            needed=_needed_for(other, self._delta),
        )

    def __le__(self, other):
        if isinstance(other, EOIProxy):
            return self._delta <= other._delta
        if not isinstance(other, int):
            return NotImplemented
        if self.resolved:
            return self._value() <= other
        if self._lower() > other:
            return False
        raise NeedMoreInput(
            "comparison against the unknown total input length",
            needed=_needed_for(other + 1, self._delta),
        )

    def __eq__(self, other):
        if isinstance(other, EOIProxy):
            return self._buf is other._buf and self._delta == other._delta
        if not isinstance(other, int):
            return NotImplemented
        if self.resolved:
            return self._value() == other
        if self._lower() > other:
            return False
        raise NeedMoreInput(
            "equality against the unknown total input length",
            needed=_needed_for(other + 1, self._delta),
        )

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __bool__(self):
        if self.resolved:
            return self._value() != 0
        if self._lower() >= 1:
            return True
        raise NeedMoreInput(
            "truthiness of a value depending on the unknown total input length",
            needed=_needed_for(1, self._delta),
        )

    def __hash__(self):
        # Stable across feeds and across finish(): memo keys built from this
        # proxy must keep hitting after more chunks arrive.
        return hash(("EOIProxy", self._delta))

    def __repr__(self):  # pragma: no cover - debugging aid
        sign = "+" if self._delta >= 0 else ""
        suffix = f" = {self._value()}" if self.resolved else ""
        return f"<EOI{sign}{self._delta}{suffix}>"


# ---------------------------------------------------------------------------
# StreamBuffer — the growing input
# ---------------------------------------------------------------------------




class StreamBuffer:
    """The incrementally fed input of one streaming parse.

    Supports exactly the read patterns of the two engines — integer
    indexing and ``[start:stop]`` slicing with Python ``bytes`` clipping
    semantics once the stream is finished — plus:

    * reads past the received bytes raise
      :class:`~repro.core.errors.NeedMoreInput` (with the offset that would
      unblock them) while the stream is still open;
    * :meth:`discard_below` drops an already-consumed prefix; offsets stay
      absolute, so parse state never notices.  Reads below the discard
      watermark raise — they would mean the compaction policy was unsound
      for this grammar (see :class:`StreamingParse`);
    * per-attempt read tracking (:attr:`min_read`): the driver compacts to
      the lowest offset the attempt touched *or suspended on*, which is
      exactly the data a deterministic re-entry can revisit.
    """

    __slots__ = ("_data", "_base", "total", "min_read", "max_buffered", "max_bytes")

    def __init__(self, max_bytes: Optional[int] = None) -> None:
        self._data = bytearray()
        self._base = 0
        #: Hard cap on simultaneously buffered bytes
        #: (ParseLimits.max_buffer_bytes); ``None`` = unlimited.
        self.max_bytes = max_bytes
        #: Final stream length; ``None`` until :meth:`finish`.
        self.total: Optional[int] = None
        #: Lowest offset read (or suspended on) during the current attempt.
        self.min_read: Optional[int] = None
        #: High-water mark of bytes simultaneously buffered (for benchmarks).
        self.max_buffered = 0

    # -- feeding -----------------------------------------------------------
    @property
    def received(self) -> int:
        """Number of stream bytes received so far (monotone)."""
        return self._base + len(self._data)

    @property
    def buffered(self) -> int:
        """Number of bytes currently held in memory."""
        return len(self._data)

    def feed(self, chunk: bytes) -> None:
        if self.total is not None:
            raise IPGError("cannot feed a finished stream")
        if (
            self.max_bytes is not None
            and len(self._data) + len(chunk) > self.max_bytes
        ):
            raise LimitExceeded(
                f"streaming buffer would exceed max_buffer_bytes="
                f"{self.max_bytes} ({len(self._data)} held, "
                f"{len(chunk)}-byte chunk): the grammar (or compact=False) "
                f"retains more input than the budget allows",
                limit="max_buffer_bytes",
            )
        self._data += chunk
        if len(self._data) > self.max_buffered:
            self.max_buffered = len(self._data)

    def finish(self) -> None:
        if self.total is None:
            self.total = self.received

    # -- compaction --------------------------------------------------------
    def begin_attempt(self) -> None:
        self.min_read = None

    def _note(self, offset: int) -> None:
        if self.min_read is None or offset < self.min_read:
            self.min_read = offset

    def discard_below(self, offset: int) -> None:
        """Drop buffered bytes below ``offset`` (clamped to what exists)."""
        offset = min(offset, self.received)
        if offset > self._base:
            del self._data[: offset - self._base]
            self._base = offset

    def _resolve_endpoint(self, value) -> int:
        """Coerce a read endpoint (int or proxy) to an absolute offset.

        An unresolved ``EOI``-relative endpoint suspends — but first pins
        its current *lower bound* as a read: the eventual position is
        ``total + delta >= received + delta``, so retaining bytes from that
        bound onwards is exactly what the resolved read will need.  Without
        the pin, an EOI-anchored tail term would leave ``min_read`` empty
        and compaction would either stall (buffering the whole input) or
        discard the tail the final read revisits.
        """
        if isinstance(value, EOIProxy):
            if value.resolved:
                return value._value()
            self._note(max(0, value._lower()))
            raise NeedMoreInput(
                "read at an EOI-relative offset of an unfinished stream"
            )
        return int(value)

    def _compacted(self, offset: int) -> IPGError:
        return IPGError(
            f"streaming read at offset {offset} below the compaction "
            f"watermark {self._base}: this grammar revisits bytes after "
            f"later terms consumed them; re-run with compact=False"
        )

    # -- reads -------------------------------------------------------------
    def __len__(self) -> int:
        if self.total is None:
            raise NeedMoreInput("len() of a stream whose end has not been fed")
        return self.total

    def __getitem__(self, key) -> Union[bytes, int]:
        if isinstance(key, slice):
            if key.step is not None:
                raise IPGError("stream buffers do not support strided slices")
            start = 0 if key.start is None else self._resolve_endpoint(key.start)
            if start < 0:
                raise IPGError("negative stream offsets are not supported")
            # Record the read's origin before the stop endpoint gets a
            # chance to suspend: the re-entry performs the same read, so
            # the bytes at ``start`` must survive compaction.
            self._note(start)
            if key.stop is None:
                if self.total is None:
                    raise NeedMoreInput("open-ended read of an unfinished stream")
                stop = self.total
            else:
                stop = self._resolve_endpoint(key.stop)
            if stop < 0:
                raise IPGError("negative stream offsets are not supported")
            if self.total is not None:
                start = min(start, self.total)
                stop = min(stop, self.total)
            if start >= stop:
                return b""
            if stop > self.received:  # only reachable while unfinished
                raise NeedMoreInput(
                    f"read of [{start}, {stop}) but only {self.received} "
                    f"byte(s) received",
                    needed=stop,
                )
            if start < self._base:
                raise self._compacted(start)
            return bytes(self._data[start - self._base : stop - self._base])
        position = self._resolve_endpoint(key)
        if position < 0:
            raise IPGError("negative stream offsets are not supported")
        self._note(position)
        if self.total is not None:
            if position >= self.total:
                raise IndexError("stream index out of range")
        elif position >= self.received:
            raise NeedMoreInput(
                f"read of byte {position} but only {self.received} received",
                needed=position + 1,
            )
        if position < self._base:
            raise self._compacted(position)
        return self._data[position - self._base]

    @property
    def end(self) -> EOIProxy:
        """The end-of-stream position, as a (possibly unresolved) number."""
        return EOIProxy(self, 0)


# ---------------------------------------------------------------------------
# Tree resolution — replace proxies once the total length is known
# ---------------------------------------------------------------------------


def _resolve_stream_tree(tree: ParseTree) -> ParseTree:
    """Replace every :class:`EOIProxy` in node environments with its value.

    Nodes parsed over an ``EOI``-bounded window before the stream end was
    known carry proxies for ``EOI`` (and ``start``, when untouched) in their
    environments; after :meth:`StreamBuffer.finish` every proxy resolves.
    Memoized nodes are shared sub-DAGs, so the walk tracks identities both
    for correctness of cost and because patching is in-place.
    """
    seen = set()
    stack: List[ParseTree] = [tree]
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, Node):
            env = current.env
            for key, value in env.items():
                if type(value) is EOIProxy:
                    env[key] = value._value()
            stack.extend(current.children)
        elif isinstance(current, ArrayNode):
            stack.extend(current.elements)
    return tree


# ---------------------------------------------------------------------------
# StreamingParse — the feed()/finish() driver
# ---------------------------------------------------------------------------


class StreamingParse:
    """One in-flight streaming parse (created by :meth:`repro.Parser.stream`).

    Feed chunks with :meth:`feed`; obtain the final tree with
    :meth:`finish`.  The session owns a :class:`StreamBuffer` and one
    persistent engine state — the compiled backend's per-rule memo tables,
    or one interpreter :class:`~repro.core.interpreter._Run` — so that each
    re-entry after a suspension replays completed work as memo hits instead
    of re-parsing.

    ``compact=True`` (default) discards buffered bytes below the lowest
    offset the previous attempt read, keeping peak memory proportional to
    the largest suspended term.  This is sound for grammars whose reads
    only move forward.  The §8 analysis rejects the common violating
    shapes (value-derived offsets, backwards arithmetic, start-anchors,
    decreasing constants) but is *necessary rather than sufficient*: a
    grammar that slips past it — or is ``force``-streamed — and revisits
    bytes below the watermark is detected by the buffer and stopped with a
    descriptive error asking for ``compact=False``.  A wrong tree is never
    produced either way.

    Retention caveat: only *rule* results are memoized, so a builtin or
    terminal placed directly in the start rule's alternative is re-read on
    every re-entry and pins the buffer from its offset onwards.  Formats
    that want bounded streaming memory should wrap leading header fields
    in a sub-rule (as the bundled DNS and IPv4 grammars do) — correctness
    is unaffected either way.
    """

    def __init__(
        self,
        parser,
        start: str,
        compact: bool = True,
        emit: Optional[str] = "tree",
    ):
        from .interpreter import _Run  # deferred: interpreter imports us lazily

        self._parser = parser
        self._start = start
        self._compact = compact
        #: Execution mode: "tree" (full parse tree), "spans" (root node
        #: with env only) or None (validate only) — see Parser.parse.
        self._emit = emit
        limits = getattr(parser, "limits", None)
        self.buffer = StreamBuffer(
            max_bytes=limits.max_buffer_bytes if limits is not None else None
        )
        self._result = None
        self._failed = False
        self._done = False
        self._finished_tree: Optional[Node] = None
        #: Received-bytes threshold below which another attempt cannot make
        #: progress; ``None`` means only finish() can unblock the parse.
        self._wait_until: Optional[int] = 0
        #: Received bytes when the last attempt ran (re-attempt pacing).
        self._last_attempt_received = 0
        #: Number of parse re-entries performed (observability/benchmarks).
        self.attempts = 0
        # The compiled engine streams through a dedicated fully-memoized
        # variant (see Parser._streaming_compiled): the batch compilation
        # elides memo tables for non-recursive rules, which would force
        # every re-entry to re-read bytes compaction already discarded.
        # The table VM streams through the analogous fully-memoized link
        # (Parser._tablevm_streaming); its run object shares the reference
        # interpreter's re-entry interface.  Non-"tree" emit modes elide
        # tree construction in every engine.
        if getattr(parser, "_tablevm", None) is not None:
            self._compiled = None
            self._state = None
            self._run = parser._tablevm_streaming().new_run(
                self.buffer,
                build_tree=emit == "tree",
                dispatch_cache=True,
            )
        else:
            self._compiled = parser._streaming_compiled(elide_tree=emit != "tree")
            if self._compiled is not None:
                self._state = self._compiled.new_state()
                self._run = None
            else:
                self._state = None
                self._run = _Run(
                    parser,
                    self.buffer,
                    build_tree=emit == "tree",
                    dispatch_cache=True,
                )

    # -- engine dispatch ---------------------------------------------------
    def _call_engine(self):
        buffer = self.buffer
        if self._run is not None:
            return self._run.parse_nonterminal(self._start, 0, buffer.end, None, None)
        from .builtins import is_builtin

        compiled = self._compiled
        fn = compiled._entry.get(self._start)
        if fn is not None:
            return fn(self._state, buffer, 0, buffer.end)
        if is_builtin(self._start):
            return compiled.run_builtin(self._start, buffer, 0, buffer.end)
        if self._start in compiled.grammar.blackboxes:
            return compiled._bb(self._start, buffer, 0, buffer.end)
        raise IPGError(
            f"no rule, builtin or blackbox for nonterminal {self._start!r}"
        )

    def _attempt(self) -> bool:
        from .interpreter import FAIL

        self.attempts += 1
        buffer = self.buffer
        self._last_attempt_received = buffer.received
        buffer.begin_attempt()
        # The step budget is per *attempt*: re-entries replay decided
        # sub-parses as memo hits, so a cumulative budget would punish
        # fine-grained chunking instead of hostile input.  Each attempt is
        # individually bounded, which is what rules out hangs.
        if self._run is not None:
            self._run.reset_budgets()
        elif self._compiled.fuel_slot is not None:
            # Rebuild the two-tier fuel cell (hot small-int counter +
            # remainder) rather than dumping the whole budget into the
            # hot half, which would make every decrement allocate.  The
            # wall deadline in cell[2] restarts too: the budget bounds
            # parsing work per attempt, not time spent waiting for the
            # producer to feed the next chunk.
            limits = self._compiled.limits
            max_steps = limits.fuel()
            take = 256 if max_steps > 256 else max_steps
            cell = self._state[self._compiled.fuel_slot]
            cell[0] = take
            cell[1] = max_steps - take
            cell[2] = None if limits.max_wall_ms is None else limits.deadline()
        previous_limit = sys.getrecursionlimit()
        raise_limit = self._parser.recursion_limit > previous_limit
        if raise_limit:
            sys.setrecursionlimit(self._parser.recursion_limit)
        try:
            result = self._call_engine()
        except NeedMoreInput as suspension:
            self._wait_until = suspension.needed
            if self._compact and buffer.min_read is not None:
                buffer.discard_below(buffer.min_read)
            return False
        except (RecursionError, MemoryError) as exc:
            raise LimitExceeded(
                f"{type(exc).__name__} while stream-parsing {self._start!r}; "
                f"the input drives unbounded recursion or allocation",
                limit="recursion",
                nonterminal=self._start,
            ) from exc
        finally:
            if raise_limit:
                sys.setrecursionlimit(previous_limit)
        self._done = True
        if result is FAIL:
            # Every decision of the attempt was definitive, so no extension
            # of the stream can match: record the rejection now.
            self._failed = True
        else:
            self._result = result
        if self._compact:
            buffer.discard_below(buffer.received)
        return True

    # -- public API --------------------------------------------------------
    @property
    def done(self) -> bool:
        """Whether the parse outcome is already determined (matched or not)."""
        return self._done

    @property
    def max_buffered(self) -> int:
        """High-water mark of bytes simultaneously buffered."""
        return self.buffer.max_buffered

    def feed(self, chunk: bytes) -> bool:
        """Feed one chunk; returns True once the outcome is determined.

        Feeding after the outcome is known is allowed (the remaining bytes
        still count towards the total length) and costs no memory.
        """
        self.buffer.feed(chunk)
        if self._done:
            if self._compact:
                self.buffer.discard_below(self.buffer.received)
            return True
        if self._wait_until is None:
            # Only finish() can unblock the parse (an EOI-relative read or
            # length comparison).  Re-entering cannot complete it — but the
            # pinned lower bound of an EOI-relative read *moves forward* as
            # bytes arrive, so with compaction on we still re-enter each
            # time the stream doubles: the refreshed pin lets the buffer
            # shed the middle instead of retaining everything until finish,
            # at a total re-entry cost logarithmic in the stream length.
            if self._compact and self.buffer.received >= 2 * max(
                1, self._last_attempt_received
            ):
                return self._attempt()
            return False
        # Probe re-entry: attempt after every chunk, even when the previous
        # suspension asked for more bytes than have arrived (_wait_until).
        # The re-entry replays the decided spine as memo hits and suspends
        # at the same frontier read, but it *refreshes the compaction
        # watermark*: the bytes of chunks that arrived since the last
        # attempt and precede the suspended term are discarded immediately
        # instead of accumulating until the term completes.  That tightens
        # the peak-buffer floor from two chunks + the largest in-flight
        # term to one chunk + the largest in-flight term, at the cost of
        # one (cheap) re-entry per chunk.
        return self._attempt()

    def finish(self):
        """Mark end of stream and return the parse result for ``emit``.

        The full tree for ``emit="tree"``, the children-less root node for
        ``emit="spans"``, or ``True`` for validate-only streams.  Raises
        :class:`~repro.core.errors.ParseFailure` when the stream does not
        match the grammar.  Idempotent: later calls return the same result.
        """
        if self._finished_tree is not None:
            return self._finished_tree
        self.buffer.finish()
        if not self._done:
            self._attempt()
        if not self._done:  # pragma: no cover - defensive
            raise IPGError("internal error: parse still suspended after finish()")
        if self._failed:
            # Diagnose over the full input when nothing was ever compacted
            # (always true with compact=False): the classified error then
            # matches the batch engines byte for byte.  Diagnosing over a
            # partial buffer would see a different EOI, so a compacted
            # stream degrades to an unclassified failure instead.
            if self.buffer._base == 0:
                from .diagnose import diagnose_parser

                raise diagnose_parser(
                    self._parser, bytes(self.buffer._data), self._start
                )
            raise ParseFailure(
                f"input of length {self.buffer.total} does not match "
                f"nonterminal {self._start!r} (bytes below offset "
                f"{self.buffer._base} were compacted away; re-run with "
                f"compact=False, or batch-parse, for a classified error)",
                nonterminal=self._start,
            )
        if self._emit is None:
            self._finished_tree = True
        else:
            self._finished_tree = _resolve_stream_tree(self._result)
        return self._finished_tree
