"""Tests for the cycle enumerator and the constraint solver."""

from fractions import Fraction

import pytest

from repro.core.cycles import cycle_edges, elementary_cycles, has_cycle, strongly_connected_components
from repro.core.grammar_parser import parse_expression
from repro.solver import Constraint, LinearForm, Satisfiability, check_satisfiability, linearize
from repro.solver.sat import REL_EQ, REL_GE, REL_GT


def cycles_as_sets(graph):
    return [frozenset(cycle) for cycle in elementary_cycles(graph)]


class TestElementaryCycles:
    def test_acyclic_graph(self):
        graph = {"a": ["b"], "b": ["c"], "c": []}
        assert elementary_cycles(graph) == []
        assert not has_cycle(graph)

    def test_self_loop(self):
        graph = {"a": ["a", "b"], "b": []}
        assert elementary_cycles(graph) == [["a"]]
        assert has_cycle(graph)

    def test_two_cycle(self):
        graph = {"a": ["b"], "b": ["a"]}
        assert cycles_as_sets(graph) == [frozenset({"a", "b"})]

    def test_triangle_and_two_cycle(self):
        graph = {"a": ["b"], "b": ["c", "a"], "c": ["a"]}
        found = cycles_as_sets(graph)
        assert frozenset({"a", "b"}) in found
        assert frozenset({"a", "b", "c"}) in found
        assert len(found) == 2

    def test_complete_graph_k3_has_five_cycles(self):
        # K3 with all directed edges: 3 two-cycles + 2 triangles.
        graph = {
            "a": ["b", "c"],
            "b": ["a", "c"],
            "c": ["a", "b"],
        }
        assert len(elementary_cycles(graph)) == 5

    def test_matches_networkx_when_available(self):
        networkx = pytest.importorskip("networkx")
        graph = {
            0: [1, 2],
            1: [2, 3, 0],
            2: [0, 3],
            3: [1],
            4: [4],
        }
        ours = {frozenset(c) if len(c) > 1 else frozenset(c) for c in elementary_cycles(graph)}
        digraph = networkx.DiGraph(
            [(u, v) for u, successors in graph.items() for v in successors]
        )
        theirs = {frozenset(c) for c in networkx.simple_cycles(digraph)}
        assert ours == theirs

    def test_cycle_edges_helper(self):
        assert cycle_edges(["a", "b", "c"]) == [("a", "b"), ("b", "c"), ("c", "a")]
        assert cycle_edges(["a"]) == [("a", "a")]
        assert cycle_edges([]) == []

    def test_strongly_connected_components(self):
        graph = {"a": ["b"], "b": ["a", "c"], "c": []}
        components = strongly_connected_components(graph)
        assert {frozenset(c) for c in components} == {frozenset({"a", "b"}), frozenset({"c"})}


class TestLinearize:
    def lin(self, text):
        return linearize(parse_expression(text))

    def test_constant(self):
        form = self.lin("42")
        assert form.is_constant and form.constant == 42

    def test_variable_and_sum(self):
        form = self.lin("x + 3")
        assert form.constant == 3
        assert form.coefficient("x") == 1

    def test_subtraction_and_scaling(self):
        form = self.lin("2 * x - y / 2")
        assert form.coefficient("x") == 2
        assert form.coefficient("y") == Fraction(-1, 2)

    def test_references_become_variables(self):
        form = self.lin("H.ofs + 4 * i")
        assert form.coefficient("H.ofs") == 1
        assert form.coefficient("i") == 4

    def test_nonlinear_returns_none(self):
        assert self.lin("x * y") is None
        assert self.lin("x / y") is None
        assert self.lin("x ? 1 : 2") is None
        assert self.lin("x & 3") is None

    def test_substitute_and_evaluate(self):
        form = self.lin("2 * x + y + 1")
        substituted = form.substitute("x", LinearForm.of_constant(3))
        assert substituted.constant == 7
        assert substituted.evaluate({"y": 5}) == 12


class TestSatisfiability:
    def test_trivially_satisfiable(self):
        form = linearize(parse_expression("x"))
        assert check_satisfiability([Constraint(form, REL_EQ)]) is Satisfiability.SAT

    def test_constant_contradiction(self):
        form = linearize(parse_expression("1"))
        assert check_satisfiability([Constraint(form, REL_EQ)]) is Satisfiability.UNSAT

    def test_eoi_minus_one_equals_eoi_is_unsat(self):
        # The core of the Figure 3 termination argument: EOI - 1 = EOI.
        left = linearize(parse_expression("EOI - 1"))
        eoi = LinearForm.of_variable("EOI")
        assert (
            check_satisfiability([Constraint(left - eoi, REL_EQ)]) is Satisfiability.UNSAT
        )

    def test_equalities_propagate(self):
        x = LinearForm.of_variable("x")
        y = LinearForm.of_variable("y")
        constraints = [
            Constraint(x - y, REL_EQ),                       # x = y
            Constraint(y - LinearForm.of_constant(3), REL_EQ),  # y = 3
            Constraint(x - LinearForm.of_constant(4), REL_EQ),  # x = 4 (contradiction)
        ]
        assert check_satisfiability(constraints) is Satisfiability.UNSAT

    def test_end_refinement_pattern(self):
        # end = 0 together with end > 0 must be unsatisfiable.
        end = LinearForm.of_variable("Block.end")
        constraints = [Constraint(end, REL_EQ), Constraint(end, REL_GT)]
        assert check_satisfiability(constraints) is Satisfiability.UNSAT

    def test_inequality_satisfiable(self):
        x = LinearForm.of_variable("x")
        constraints = [Constraint(x - LinearForm.of_constant(2), REL_GE)]
        assert check_satisfiability(constraints) is Satisfiability.SAT

    def test_witness_search_over_small_values(self):
        x = LinearForm.of_variable("x")
        y = LinearForm.of_variable("y")
        constraints = [
            Constraint(x + y - LinearForm.of_constant(5), REL_EQ),
            Constraint(x - LinearForm.of_constant(1), REL_GE),
            Constraint(y - LinearForm.of_constant(1), REL_GE),
        ]
        assert check_satisfiability(constraints) is Satisfiability.SAT
