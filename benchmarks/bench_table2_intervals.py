"""E2 — Table 2: number of intervals and implicit intervals per IPG grammar."""

from repro.evaluation.metrics import aggregate_interval_shares, interval_table


def test_table2_interval_statistics(benchmark):
    rows = benchmark(interval_table)
    shares = aggregate_interval_shares(rows)

    benchmark.extra_info["per_format"] = {
        row.fmt: {
            "total": row.total,
            "fully_implicit": row.fully_implicit,
            "length_only": row.length_only,
            "explicit": row.explicit,
        }
        for row in rows
    }
    benchmark.extra_info["share_fully_implicit_pct"] = round(shares["fully_implicit"], 1)
    benchmark.extra_info["share_length_only_pct"] = round(shares["length_only"], 1)

    # Counts are internally consistent.
    for row in rows:
        assert row.total == row.explicit + row.length_only + row.fully_implicit

    # Qualitative shape of Table 2: most intervals do not need both endpoints
    # written out (paper: 27.0% fully implicit + 52.9% length-only ≈ 80%).
    assert shares["fully_implicit"] + shares["length_only"] > 50.0
    # Auto-completion is exercised by every format grammar except the mostly
    # explicit PDF subset.
    assert sum(1 for row in rows if row.fully_implicit > 0) >= 5
