"""Tests for the baseline parsers (handwritten, Kaitai-like, Nail-like)."""

import pytest

from repro import samples
from repro.baselines import handwritten, nail_like
from repro.baselines.kaitai_like import KaitaiEngine, KaitaiError, KaitaiNonTermination, specs
from repro.baselines.nail_like.dns import NailParseError


class TestHandwritten:
    def test_elf_round_trip(self, elf_sample):
        parsed = handwritten.elf.parse(elf_sample)
        assert parsed.header["shnum"] == len(parsed.section_headers)
        names = handwritten.elf.section_names(parsed, elf_sample)
        assert ".shstrtab" in names
        assert "Section Headers:" in handwritten.elf.run_readelf(elf_sample)

    def test_elf_rejects_garbage(self):
        with pytest.raises(ValueError):
            handwritten.elf.parse(b"not an elf file at all")

    def test_zip_extraction(self, zip_sample):
        extracted = handwritten.zipfmt.run_unzip(zip_sample)
        assert len(extracted) == 3
        assert all(len(v) == 600 for v in extracted.values())

    def test_zip_crc_check(self, zip_sample):
        import zlib

        corrupted = bytearray(zip_sample)
        parsed = handwritten.zipfmt.parse(zip_sample)
        corrupted[parsed.data_offsets[0]] ^= 0xFF
        with pytest.raises((ValueError, zlib.error)):
            handwritten.zipfmt.extract(bytes(corrupted), handwritten.zipfmt.parse(bytes(corrupted)))

    def test_gif_blocks(self, gif_sample):
        parsed = handwritten.gif.parse(gif_sample)
        assert sum(1 for b in parsed.blocks if b.kind == "image") == 3

    def test_pe_sections(self, pe_sample):
        parsed = handwritten.pe.parse(pe_sample)
        assert parsed.section_count == 3

    def test_dns_names(self, dns_response_sample):
        parsed = handwritten.dns.parse(dns_response_sample)
        assert parsed.questions[0].name == "www.example.com"
        assert len(parsed.records) == 4

    def test_ipv4_fields(self, ipv4_sample):
        parsed = handwritten.ipv4.parse(ipv4_sample)
        assert parsed.destination_port == 53
        assert len(parsed.payload) == 64

    def test_ipv4_rejects_tcp(self, ipv4_sample):
        corrupted = bytearray(ipv4_sample)
        corrupted[9] = 6
        with pytest.raises(ValueError):
            handwritten.ipv4.parse(bytes(corrupted))


class TestKaitaiLikeEngine:
    def test_elf_spec(self, elf_sample):
        obj = specs.get_engine("elf").parse(elf_sample)
        assert obj["shnum"] == len(obj["section_headers"])
        first = obj["section_headers"][0]
        assert first.fields["sh_type"] == 0

    def test_zip_spec_consumes_stream(self, zip_sample):
        obj = specs.get_engine("zip").parse(zip_sample)
        section_types = [s.fields["section_type"] for s in obj["sections"]]
        assert section_types.count(0x0403) == 3  # local files
        assert section_types.count(0x0201) == 3  # central directory entries
        assert section_types.count(0x0605) == 1  # end of central directory

    def test_gif_spec(self, gif_sample):
        obj = specs.get_engine("gif").parse(gif_sample)
        assert obj["logical_screen"].fields["width"] == 32
        block_types = [b.fields["block_type"] for b in obj["blocks"]]
        assert block_types[-1] == 0x3B

    def test_pe_spec(self, pe_sample):
        obj = specs.get_engine("pe").parse(pe_sample)
        assert obj["pe_header"].fields["nsections"] == 3

    def test_dns_spec(self, dns_response_sample):
        obj = specs.get_engine("dns").parse(dns_response_sample)
        assert len(obj["records"]) == 4

    def test_ipv4_spec(self, ipv4_sample):
        obj = specs.get_engine("ipv4").parse(ipv4_sample)
        assert obj["udp"].fields["dport"] == 53

    def test_magic_mismatch_raises(self, elf_sample):
        with pytest.raises(KaitaiError):
            specs.get_engine("elf").parse(b"XXXX" + elf_sample[4:])

    def test_short_read_raises(self):
        with pytest.raises(KaitaiError):
            specs.get_engine("dns").parse(b"\x00\x01")

    def test_seek_loop_detected_as_nontermination(self):
        engine = KaitaiEngine(specs.NONTERMINATING_SEEK_SPEC, max_operations=10_000)
        with pytest.raises(KaitaiNonTermination):
            engine.parse(b"\x00")

    def test_repeat_epsilon_detected_as_nontermination(self):
        engine = KaitaiEngine(specs.NONTERMINATING_EPSILON_SPEC, max_operations=10_000)
        with pytest.raises(KaitaiNonTermination):
            engine.parse(b"abc")

    def test_spec_line_counts_cover_all_formats(self):
        counts = specs.spec_line_counts()
        assert set(counts) == {"elf", "zip", "gif", "pe", "dns", "ipv4"}
        assert all(count > 10 for count in counts.values())

    def test_agrees_with_ipg_on_elf_sections(self, elf_parser, elf_sample):
        kaitai_obj = specs.get_engine("elf").parse(elf_sample)
        ipg_tree = elf_parser.parse(elf_sample)
        kaitai_offsets = [sh.fields["offset"] for sh in kaitai_obj["section_headers"]]
        ipg_offsets = [sh["offset"] for sh in ipg_tree.array("SH")]
        assert kaitai_offsets == ipg_offsets


class TestNailLike:
    def test_dns_parse(self, dns_response_sample):
        message, arena = nail_like.parse_dns(dns_response_sample)
        assert len(message.questions) == 1
        assert len(message.records) == 4
        assert arena.object_count >= 6
        assert arena.bytes_reserved >= 4096

    def test_dns_pointer_recorded(self, dns_response_sample):
        message, _arena = nail_like.parse_dns(dns_response_sample)
        assert message.records[0].pointer == 12

    def test_dns_truncated_raises(self, dns_response_sample):
        with pytest.raises(NailParseError):
            nail_like.parse_dns(dns_response_sample[:-3])

    def test_ipv4_parse(self, ipv4_sample):
        packet, arena = nail_like.parse_ipv4_udp(ipv4_sample)
        assert packet.udp.destination_port == 53
        assert bytes(packet.udp.payload) == ipv4_sample[-64:]
        assert arena.bytes_reserved >= 4096

    def test_ipv4_rejects_tcp(self, ipv4_sample):
        corrupted = bytearray(ipv4_sample)
        corrupted[9] = 6
        with pytest.raises(NailParseError):
            nail_like.parse_ipv4_udp(bytes(corrupted))

    def test_arena_allocation(self):
        arena = nail_like.Arena(block_size=64)
        views = [arena.alloc_bytes(bytes([i]) * 40) for i in range(3)]
        assert [bytes(v)[:1] for v in views] == [b"\x00", b"\x01", b"\x02"]
        assert arena.bytes_reserved >= 3 * 40
        oversized = arena.alloc_bytes(b"x" * 200)
        assert len(oversized) == 200
        arena.reset()
        assert arena.object_count == 0
        assert arena.bytes_reserved == 64

    def test_arena_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            nail_like.Arena(block_size=0)

    def test_agreement_with_ipg_dns(self, dns_parser, dns_response_sample):
        from repro.formats import dns as dns_format

        nail_message, _ = nail_like.parse_dns(dns_response_sample)
        ipg_summary = dns_format.summarize(dns_parser.parse(dns_response_sample))
        assert len(nail_message.records) == len(ipg_summary.records)
