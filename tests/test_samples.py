"""Tests for the synthetic sample generators (workload substitutes)."""

import zipfile
import io

import pytest

from repro import samples


class TestDeterminism:
    @pytest.mark.parametrize(
        "builder, kwargs",
        [
            (samples.build_elf, {"section_count": 3}),
            (samples.build_gif, {"frame_count": 2}),
            (samples.build_zip, {"member_count": 2}),
            (samples.build_pe, {"section_count": 2}),
            (samples.build_dns_response, {"answer_count": 2}),
            (samples.build_ipv4_udp_packet, {"payload_size": 32}),
        ],
    )
    def test_same_parameters_same_bytes(self, builder, kwargs):
        assert builder(**kwargs) == builder(**kwargs)

    def test_pdf_offsets_match_document(self):
        document, offsets = samples.build_pdf(object_count=3)
        for number, offset in enumerate(offsets, start=1):
            assert document[offset : offset + len(str(number))] == str(number).encode()


class TestElfSamples:
    def test_size_grows_with_sections(self):
        small = samples.build_elf(section_count=2)
        large = samples.build_elf(section_count=32)
        assert len(large) > len(small)

    def test_zero_symbols_omits_symtab(self):
        data = samples.build_elf(section_count=1, symbol_count=0, dynamic_entries=0)
        assert b".symtab" not in data
        assert b".dynamic" not in data

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            samples.build_elf(section_count=-1)


class TestZipSamples:
    def test_archives_are_valid_for_the_stdlib(self):
        archive = samples.build_zip(member_count=4, member_size=100)
        with zipfile.ZipFile(io.BytesIO(archive)) as handle:
            assert len(handle.namelist()) == 4
            assert handle.read("member_0001.txt") == handle.read("member_0000.txt")

    def test_stored_vs_deflated(self):
        stored = samples.build_zip(member_count=1, member_size=1000, compressed=False)
        deflated = samples.build_zip(member_count=1, member_size=1000, compressed=True)
        assert len(stored) > len(deflated)

    def test_expected_members_helper(self):
        assert samples.zipfmt.expected_members(2, 50) == {
            "member_0000.txt": 50,
            "member_0001.txt": 50,
        }


class TestGifSamples:
    def test_trailer_present(self):
        data = samples.build_gif(frame_count=2)
        assert data[:6] == b"GIF89a"
        assert data[-1] == 0x3B

    def test_frame_payload_scales_size(self):
        small = samples.build_gif(frame_count=1, bytes_per_frame=64)
        large = samples.build_gif(frame_count=1, bytes_per_frame=4096)
        assert len(large) > len(small) + 3000


class TestNetworkSamples:
    def test_dns_name_encoding(self):
        assert samples.dns.encode_name("a.bc") == b"\x01a\x02bc\x00"
        assert samples.dns.encode_name(".") == b"\x00"

    def test_dns_label_too_long_rejected(self):
        with pytest.raises(ValueError):
            samples.dns.encode_name("x" * 64 + ".com")

    def test_response_size_scales_with_answers(self):
        small = samples.build_dns_response(answer_count=1)
        large = samples.build_dns_response(answer_count=50)
        assert len(large) > len(small)

    def test_ipv4_total_length_field_is_consistent(self):
        packet = samples.build_ipv4_udp_packet(payload_size=77, options_words=1)
        total_length = int.from_bytes(packet[2:4], "big")
        assert total_length == len(packet)

    def test_ipv4_address_validation(self):
        with pytest.raises(ValueError):
            samples.build_ipv4_udp_packet(src="300.0.0.1")

    def test_ipv4_options_bounds(self):
        with pytest.raises(ValueError):
            samples.build_ipv4_udp_packet(options_words=11)

    def test_series_builders(self):
        assert len(samples.elf.build_elf_series([1, 2])) == 2
        assert len(samples.gif.build_gif_series([1, 2, 3])) == 3
        assert len(samples.zipfmt.build_zip_series([1])) == 1
        assert len(samples.pe.build_pe_series([1, 2])) == 2
        assert len(samples.dns.build_dns_series([1, 2])) == 2
        assert len(samples.ipv4.build_ipv4_series([10, 20])) == 2
        assert len(samples.pdf.build_pdf_series([1, 2])) == 2
