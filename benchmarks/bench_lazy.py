"""Lazy & zero-copy benchmark: skeleton-index time and peak RSS vs eager.

Quantifies what the zero-copy input contract plus ``Parser.parse_lazy``
buy on large files.  Every scenario runs in a fresh subprocess so its
peak RSS (``resource.ru_maxrss``) is isolated:

* ``eager-read``  — the pre-zero-copy CLI behavior: read the whole file
  into ``bytes``, parse eagerly.
* ``eager-mmap``  — zero-copy inputs: mmap the file, parse eagerly.
* ``lazy-index``  — mmap + ``parse_lazy`` + materialize the skeleton
  spine (headers and section table; payload sections stay stubs).
* ``lazy-section`` — ``lazy-index`` plus decoding one payload section.

Workloads:

* **elf** — a synthetic ELF64 with 200 payload sections (~256 MB)
  written sparsely by :func:`repro.samples.write_elf`, so generating it
  is instant and the only real I/O is what a scenario actually touches.
* **zip** — a ~24 MB archive whose members decompress through the zlib
  blackbox: the eager tree retains every decompressed payload, the lazy
  index retains none.

``--quick`` shrinks both (~16 MB ELF, ~6 MB ZIP) for CI smoke runs.

Usage::

    PYTHONPATH=src python benchmarks/bench_lazy.py -o BENCH_lazy.json [--quick]

The committed ``BENCH_lazy.json`` is gated by
``tools/bench_gate.py --lazy-smoke`` on absolute invariants (a single
section of a >=256 MB ELF materializes <1% of the file; the lazy index
peaks below half the eager-read RSS) rather than machine-relative
medians.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

#: ELF workload: one payload section is 1/200 of the file (plus the
#: decoded spine), keeping single-section access well under the 1% bound.
ELF_SECTIONS = 200
ELF_SECTION_SIZE = 1_310_720  # 200 x 1.25 MiB ~= 256 MiB
ELF_SECTIONS_QUICK = 200
ELF_SECTION_SIZE_QUICK = 81_920  # 200 x 80 KiB ~= 16 MiB

ZIP_MEMBERS = 12
ZIP_MEMBER_SIZE = 2 * 1024 * 1024
ZIP_MEMBERS_QUICK = 12
ZIP_MEMBER_SIZE_QUICK = 512 * 1024


def _run_scenario(fmt: str, scenario: str, path: str) -> dict:
    """Child-process entry: run one scenario, print its measurements."""
    import mmap
    import resource
    import time

    from repro.formats import registry

    parser = registry[fmt].build_parser()
    result: dict = {}
    begin = time.perf_counter()
    if scenario == "eager-read":
        with open(path, "rb") as handle:
            data = handle.read()
        tree = parser.parse(data)
        result["tree_nodes"] = tree.size()
    elif scenario == "eager-mmap":
        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            tree = parser.parse(mapped)
            result["tree_nodes"] = tree.size()
    elif scenario in ("lazy-index", "lazy-section"):
        from repro.core.lazytree import LazyNode

        with open(path, "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            root = parser.parse_lazy(mapped)
            stubs = [
                node
                for node in _skeleton(root, LazyNode)
                if isinstance(node, LazyNode) and not node.is_materialized
            ]
            result["stubs"] = len(stubs)
            if scenario == "lazy-section":
                target = stubs[len(stubs) // 2]
                result["section_window"] = list(target.interval)
                _ = target.children
            document = root.document
            result["decoded_bytes"] = document.decoded_bytes
            result["decodes"] = len(document.decoded)
    else:
        raise SystemExit(f"unknown scenario {scenario!r}")
    seconds = time.perf_counter() - begin
    # Linux reports ru_maxrss in KiB.
    max_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    result.update(
        scenario=scenario,
        format=fmt,
        seconds=round(seconds, 4),
        max_rss_bytes=max_rss,
    )
    return result


def _skeleton(root, lazy_cls):
    """The skeleton-spine nodes: stop descending at un-decoded stubs."""
    from repro.core.parsetree import ArrayNode, Node

    pending = list(root.children)  # decodes the spine only
    while pending:
        node = pending.pop()
        yield node
        if isinstance(node, lazy_cls) and not node.is_materialized:
            continue
        if isinstance(node, ArrayNode):
            pending.extend(node.elements)
        elif isinstance(node, Node):
            pending.extend(node.children)


def _spawn(fmt: str, scenario: str, path: str) -> dict:
    output = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--child", fmt, scenario, path],
        check=True,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(_REPO_ROOT, "src")},
    )
    return json.loads(output.stdout)


def _build_elf_workload(directory: str, quick: bool) -> dict:
    from repro import samples

    sections = ELF_SECTIONS_QUICK if quick else ELF_SECTIONS
    section_size = ELF_SECTION_SIZE_QUICK if quick else ELF_SECTION_SIZE
    path = os.path.join(directory, "bench_lazy.elf")
    size = samples.write_elf(
        path, section_count=sections, section_size=section_size, symbol_count=64
    )
    return {
        "path": path,
        "file_bytes": size,
        "section_count": sections,
        "section_bytes": section_size,
    }


def _build_zip_workload(directory: str, quick: bool) -> dict:
    from repro import samples

    members = ZIP_MEMBERS_QUICK if quick else ZIP_MEMBERS
    member_size = ZIP_MEMBER_SIZE_QUICK if quick else ZIP_MEMBER_SIZE
    path = os.path.join(directory, "bench_lazy.zip")
    data = samples.build_zip(member_count=members, member_size=member_size)
    with open(path, "wb") as handle:
        handle.write(data)
    return {
        "path": path,
        "file_bytes": len(data),
        "member_count": members,
        "member_bytes": member_size,
    }


def run_benchmark(quick: bool = False) -> dict:
    report: dict = {
        "benchmark": "lazy skeleton-index vs eager parse (time and peak RSS)",
        "quick": quick,
        "workloads": {},
    }
    with tempfile.TemporaryDirectory(prefix="bench_lazy_") as directory:
        elf = _build_elf_workload(directory, quick)
        scenarios = {}
        for scenario in ("eager-read", "eager-mmap", "lazy-index", "lazy-section"):
            scenarios[scenario] = _spawn("elf", scenario, elf["path"])
            print(
                f"elf/{scenario:12s} {scenarios[scenario]['seconds']:8.3f}s  "
                f"rss {scenarios[scenario]['max_rss_bytes'] / 2**20:8.1f} MiB",
                file=sys.stderr,
            )
        elf.pop("path")
        elf["scenarios"] = scenarios
        report["workloads"]["elf"] = elf

        zipw = _build_zip_workload(directory, quick)
        zip_scenarios = {}
        for scenario in ("eager-read", "lazy-index"):
            zip_scenarios[scenario] = _spawn("zip", scenario, zipw["path"])
            print(
                f"zip/{scenario:12s} {zip_scenarios[scenario]['seconds']:8.3f}s  "
                f"rss {zip_scenarios[scenario]['max_rss_bytes'] / 2**20:8.1f} MiB",
                file=sys.stderr,
            )
        zipw.pop("path")
        zipw["scenarios"] = zip_scenarios
        report["workloads"]["zip"] = zipw

    eager = elf["scenarios"]["eager-read"]
    index = elf["scenarios"]["lazy-index"]
    section = elf["scenarios"]["lazy-section"]
    report["elf_index_speedup_vs_eager_read"] = round(
        eager["seconds"] / index["seconds"], 2
    )
    report["elf_index_rss_fraction_of_eager_read"] = round(
        index["max_rss_bytes"] / eager["max_rss_bytes"], 4
    )
    report["elf_single_section_materialized_fraction"] = round(
        section["decoded_bytes"] / elf["file_bytes"], 6
    )
    report["zip_index_rss_fraction_of_eager_read"] = round(
        zipw["scenarios"]["lazy-index"]["max_rss_bytes"]
        / zipw["scenarios"]["eager-read"]["max_rss_bytes"],
        4,
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", help="write the JSON report here")
    parser.add_argument(
        "--quick", action="store_true", help="small workloads for CI smoke runs"
    )
    parser.add_argument(
        "--child",
        nargs=3,
        metavar=("FORMAT", "SCENARIO", "FILE"),
        help=argparse.SUPPRESS,  # internal: run one scenario and print JSON
    )
    args = parser.parse_args(argv)
    if args.child:
        print(json.dumps(_run_scenario(*args.child)))
        return 0
    report = run_benchmark(quick=args.quick)
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
