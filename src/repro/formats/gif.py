"""IPG specification of the GIF format (chunk-based case study, section 4.2).

GIF is the paper's representative of chunk-based formats: a fixed header and
Logical Screen Descriptor followed by a list of blocks whose count is
unknown until parsing reaches the trailer.  The block list is specified by
the recursive rule

    Blocks -> Block Blocks / Block

which terminates because every block consumes at least one byte — this is
the exact grammar the ``A.end > 0`` refinement of the termination checker
(section 5) exists for.

The grammar covers the block types present in real GIFs: extension blocks
(graphic control, comment, application — all share the sub-block layout) and
image descriptor blocks with optional local color tables and LZW-coded data
stored as sub-blocks.  The LZW payload itself is kept as raw sub-block bytes
(decoding it is a post-parsing concern, or a blackbox parser in the sense of
section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.parsetree import Node
from .base import FormatSpec, register

GRAMMAR = r"""
// Top-level rule of section 4.2: GIF -> Header LSD Blocks Trailer.  All four
// intervals are implicit and chained by auto-completion.
GIF -> Header[6] LSD Blocks Trailer ;

Header -> "GIF89a" / "GIF87a" ;

// Logical Screen Descriptor: fixed numbers plus an optional global color
// table whose presence and size are encoded in the flags byte.
LSD -> U16LE {width = U16LE.val}
       U16LE {height = U16LE.val}
       U8 {flags = U8.val}
       U8 {bgcolor = U8.val}
       U8 {aspect = U8.val}
       {gct = flags >> 7}
       {gctsize = 3 * (2 << (flags & 7))}
       switch(gct = 1 : GlobalColorTable[gctsize] / Empty[0]) ;

GlobalColorTable -> Raw ;
Empty -> ""[0, 0] ;

// The block list: length unknown until the trailer is reached.
Blocks -> Block Blocks / Block ;
Block -> ExtBlock / ImageBlock ;

// Extension blocks: introducer 0x21, a label byte, then data sub-blocks.
ExtBlock -> "\x21"
            U8 {label = U8.val}
            SubBlocks ;

// Image blocks: descriptor, optional local color table, LZW minimum code
// size, then the coded image data as sub-blocks.
ImageBlock -> "\x2c"
              U16LE {left = U16LE.val}
              U16LE {top = U16LE.val}
              U16LE {width = U16LE.val}
              U16LE {height = U16LE.val}
              U8 {flags = U8.val}
              {lct = flags >> 7}
              {lctsize = 3 * (2 << (flags & 7))}
              {ctend = 10 + (lct = 1 ? lctsize : 0)}
              switch(lct = 1 : LocalColorTable[lctsize] / Empty[0])
              U8[ctend, ctend + 1] {lzwmin = U8.val}
              SubBlocks[ctend + 1, EOI] ;

LocalColorTable -> Raw ;

// Data sub-blocks: (length, bytes) pairs terminated by a zero length byte.
SubBlocks -> SubBlock SubBlocks / Terminator[1] ;
SubBlock -> U8 {len = U8.val}
            guard(len > 0)
            Raw[len] ;
Terminator -> "\x00" ;

Trailer -> "\x3b" ;
"""

SPEC = register(
    FormatSpec(
        name="gif",
        grammar_text=GRAMMAR,
        description="GIF87a/GIF89a images (chunk-based format)",
    )
)


def build_parser():
    """Return a fresh GIF parser."""
    return SPEC.build_parser()


def parse(data: bytes) -> Node:
    """Parse a GIF file and return the parse tree."""
    return SPEC.parse(data)


# ---------------------------------------------------------------------------
# Tree → Python summaries
# ---------------------------------------------------------------------------


@dataclass
class GifBlockInfo:
    """One block of a GIF file."""

    kind: str  # "extension" or "image"
    label: int
    width: int
    height: int
    data_length: int


@dataclass
class GifSummary:
    """Header-level information plus the block inventory."""

    version: str
    width: int
    height: int
    has_global_color_table: bool
    global_color_table_size: int
    blocks: List[GifBlockInfo]


def _sub_block_bytes(node: Node) -> int:
    """Total data bytes stored in the sub-block chain under ``node``."""
    total = 0
    for sub in node.find_all("SubBlock"):
        total += sub["len"]
    return total


def summarize(tree: Node) -> GifSummary:
    """Extract an inventory of a parsed GIF."""
    header = tree.child("Header")
    lsd = tree.child("LSD")
    assert header is not None and lsd is not None
    version = header.children[0].value.decode("ascii") if header.children else "GIF"

    blocks: List[GifBlockInfo] = []
    for block in tree.find_all("Block"):
        extension = block.child("ExtBlock")
        image = block.child("ImageBlock")
        if extension is not None:
            blocks.append(
                GifBlockInfo(
                    kind="extension",
                    label=extension["label"],
                    width=0,
                    height=0,
                    data_length=_sub_block_bytes(extension),
                )
            )
        elif image is not None:
            blocks.append(
                GifBlockInfo(
                    kind="image",
                    label=0x2C,
                    width=image["width"],
                    height=image["height"],
                    data_length=_sub_block_bytes(image),
                )
            )
    return GifSummary(
        version=version,
        width=lsd["width"],
        height=lsd["height"],
        has_global_color_table=lsd["gct"] == 1,
        global_color_table_size=lsd["gctsize"] if lsd["gct"] == 1 else 0,
        blocks=blocks,
    )
