"""Tests for the deprecated generator shim (legacy API over the AOT emitter).

The legacy dict-env parser generator was retired; :mod:`repro.core.generator`
now forwards to the ahead-of-time emitter behind a one-release
:class:`DeprecationWarning` shim.  These tests pin the shim contract: the
old entry points keep working, warn, and produce trees identical to the
other engines.
"""

import pytest

from repro import Parser, samples
from repro.core.generator import (
    GeneratedParserShim,
    compile_parser,
    generate_parser_source,
)
from repro.formats import toy, zipfmt


def _shim(grammar, blackboxes=None):
    with pytest.deprecated_call():
        return compile_parser(grammar, blackboxes=blackboxes)


class TestDeprecationShim:
    def test_compile_parser_warns(self):
        with pytest.deprecated_call():
            compile_parser(toy.FIGURE_2)

    def test_generate_parser_source_warns_and_matches_aot(self):
        from repro.core.compiler import compile_grammar

        with pytest.deprecated_call():
            source = generate_parser_source(toy.FIGURE_2)
        assert source == compile_grammar(toy.FIGURE_2).to_source()
        compile(source, "<shim source>", "exec")  # importable python

    def test_class_name_is_accepted_and_ignored(self):
        with pytest.deprecated_call():
            source = generate_parser_source(toy.FIGURE_1, class_name="Fig1Parser")
        assert "Fig1Parser" not in source  # the artifact is a module now


class TestShimSurface:
    def test_parse_and_try_parse(self):
        shim = _shim(toy.FIGURE_2)
        data = toy.build_figure_2_input()
        expected = Parser(toy.FIGURE_2, backend="interpreted").parse(data)
        assert isinstance(shim, GeneratedParserShim)
        assert shim.parse(data) == expected
        assert shim.try_parse(data) == expected
        assert shim.try_parse(b"\xff" * 4) is None

    def test_accepts(self):
        shim = _shim(toy.FIGURE_3)
        assert shim.accepts(b"1011")
        assert not shim.accepts(b"x011")
        assert not shim.accepts(b"")

    def test_start_symbol_override(self):
        shim = _shim('S -> A[0, EOI] ; A -> "a"[0, 1] ;')
        assert shim.try_parse(b"a", start="A") is not None

    def test_blackboxes_constructor_and_late_registration(self):
        blackboxes = {"Inflate": zipfmt.inflate_blackbox}
        data = samples.build_zip(member_count=2, member_size=64)
        expected = Parser(zipfmt.GRAMMAR, blackboxes=dict(blackboxes)).parse(data)
        eager = _shim(zipfmt.GRAMMAR, blackboxes=dict(blackboxes))
        assert eager.parse(data) == expected
        late = _shim(zipfmt.GRAMMAR)
        late.register_blackbox("Inflate", zipfmt.inflate_blackbox)
        assert late.parse(data) == expected

    def test_agrees_with_interpreter_on_toys(self):
        for name, grammar in sorted(toy.ALL_GRAMMARS.items()):
            shim = _shim(grammar)
            reference = Parser(grammar, backend="interpreted")
            for probe in (b"", b"1011", b"aabb", b"\x00\x01\x02\x03"):
                assert shim.try_parse(probe) == reference.try_parse(probe), (
                    name,
                    probe,
                )
