"""Feature-level tests of the parsing engine (beyond the paper's figures)."""

import struct

import pytest

from repro import BlackboxError, BlackboxResult, ParseFailure, Parser
from repro.core.parsetree import ArrayNode, Leaf


class TestBiasedChoice:
    def test_first_successful_alternative_wins(self):
        parser = Parser('S -> "ab"[0, 2] {x = 1} / "a"[0, 1] {x = 2} ;')
        assert parser.parse(b"ab")["x"] == 1

    def test_later_alternatives_tried_on_failure(self):
        parser = Parser('S -> "ab"[0, 2] {x = 1} / "a"[0, 1] {x = 2} ;')
        assert parser.parse(b"ax")["x"] == 2

    def test_all_alternatives_fail(self):
        parser = Parser('S -> "ab"[0, 2] / "a"[0, 1] ;')
        assert parser.try_parse(b"zz") is None

    def test_empty_terminal_matches_empty_interval(self):
        parser = Parser('S -> ""[0, 0] {x = 5} ;')
        assert parser.parse(b"")["x"] == 5
        assert parser.parse(b"anything")["x"] == 5


class TestGuardsAndAttributes:
    def test_guard_failure_fails_alternative(self):
        parser = Parser('S -> U8[0, 1] {v = U8.val} guard(v > 10) / U8[0, 1] {v = 0} ;')
        assert parser.parse(bytes([50]))["v"] == 50
        assert parser.parse(bytes([3]))["v"] == 0

    def test_attribute_computation_chain(self):
        parser = Parser("S -> {a = 2} {b = a * 3} {c = b + a} guard(EOI >= 0) ;")
        tree = parser.parse(b"")
        assert (tree["a"], tree["b"], tree["c"]) == (2, 6, 8)

    def test_division_by_zero_fails_alternative_not_parser(self):
        parser = Parser('S -> U8[0, 1] {v = 10 / U8.val} / U8[0, 1] {v = 999} ;')
        assert parser.parse(bytes([2]))["v"] == 5
        assert parser.parse(bytes([0]))["v"] == 999

    def test_out_of_range_array_index_fails_alternative(self):
        parser = Parser(
            "S -> for i = 0 to 2 do A[i, i + 1] {x = A(5).val} / {x = 1} ;"
            "A -> U8[0, 1] {val = U8.val} ;"
        )
        assert parser.parse(bytes([1, 2]))["x"] == 1


class TestIntervalChecks:
    def test_interval_outside_input_fails(self):
        parser = Parser("S -> Raw[0, 10] ;")
        assert not parser.accepts(b"short")

    def test_negative_interval_fails(self):
        parser = Parser('S -> "x"[EOI - 2, EOI] ;')
        assert not parser.accepts(b"x")  # EOI - 2 is negative

    def test_empty_interval_is_valid(self):
        parser = Parser('S -> Raw[3, 3] {x = 1} ;')
        assert parser.parse(b"abcdef")["x"] == 1

    def test_terminal_needs_enough_room(self):
        parser = Parser('S -> "abc"[0, 2] ;')
        assert not parser.accepts(b"abc")

    def test_terminal_prefix_match_inside_larger_interval(self):
        # T-Ter requires only r - l >= |s| and a prefix match at l.
        parser = Parser('S -> "ab"[0, EOI] ;')
        assert parser.accepts(b"abXXX")
        assert not parser.accepts(b"aXb")


class TestArrays:
    def test_empty_range_accepts_anything(self):
        parser = Parser("S -> {n = 0} for i = 0 to n do A[i, i + 1] {x = 7} ; A -> U8[0, 1] ;")
        assert parser.parse(b"whatever")["x"] == 7

    def test_element_failure_fails_the_term(self):
        parser = Parser('S -> for i = 0 to 3 do A[i, i + 1] ; A -> "z"[0, 1] ;')
        assert parser.accepts(b"zzz")
        assert not parser.accepts(b"zzx")

    def test_elements_can_reference_previous_elements(self):
        # Each element starts where the previous one ended (variable widths).
        grammar = """
        S -> U8[0, 1] {n = U8.val}
             for i = 0 to n do Rec[i = 0 ? 1 : Rec(i - 1).end, EOI] ;
        Rec -> U8[0, 1] {len = U8.val} Raw[1, 1 + len] ;
        """
        payload = bytes([2]) + bytes([3]) + b"abc" + bytes([1]) + b"z"
        tree = Parser(grammar).parse(payload)
        records = tree.array("Rec")
        assert [node["len"] for node in records] == [3, 1]
        assert records[1].end == len(payload)

    def test_array_node_in_tree(self):
        parser = Parser("S -> for i = 0 to 2 do A[i, i + 1] ; A -> U8[0, 1] {val = U8.val} ;")
        tree = parser.parse(bytes([9, 8]))
        array = tree.children[0]
        assert isinstance(array, ArrayNode)
        assert [element["val"] for element in array] == [9, 8]

    def test_loop_variable_restored_after_term(self):
        grammar = """
        S -> {i = 100} for i = 0 to 2 do A[i, i + 1] {x = i} ;
        A -> U8[0, 1] ;
        """
        assert Parser(grammar).parse(bytes([1, 2]))["x"] == 100


class TestSwitch:
    def build(self):
        return Parser(
            "S -> U8[0, 1] {t = U8.val} "
            "switch(t = 1 : A[1, EOI] / t = 2 : B[1, EOI] / C[1, EOI]) ;"
            'A -> "aaa" ; B -> "bbb" ; C -> Raw ;'
        )

    def test_each_case_selected_by_condition(self):
        parser = self.build()
        assert parser.parse(b"\x01aaa").child("A") is not None
        assert parser.parse(b"\x02bbb").child("B") is not None

    def test_default_case(self):
        parser = self.build()
        assert parser.parse(b"\x09whatever").child("C") is not None

    def test_selected_case_failure_fails_alternative(self):
        parser = self.build()
        assert not parser.accepts(b"\x01bbb")

    def test_switch_without_default_fails_when_no_condition_holds(self):
        parser = Parser(
            'S -> U8[0, 1] {t = U8.val} switch(t = 1 : A[1, EOI]) ; A -> "a" ;'
        )
        assert parser.accepts(b"\x01a")
        assert not parser.accepts(b"\x05a")


class TestLocalRules:
    def test_local_rule_sees_outer_attributes(self):
        grammar = """
        S -> H[0, 4] D[0, EOI] where { D -> "go"[H.val, H.val + 2] ; } ;
        H -> U32LE[0, 4] {val = U32LE.val} ;
        """
        data = struct.pack("<I", 6) + b"xx" + b"go"
        assert Parser(grammar).accepts(data)

    def test_local_rule_shadows_global_rule(self):
        grammar = """
        S -> D[0, EOI] where { D -> "local"[0, 5] ; } ;
        D -> "global"[0, 6] ;
        """
        parser = Parser(grammar)
        assert parser.accepts(b"local")
        assert not parser.accepts(b"global")
        # The global D is still reachable as a start symbol on its own.
        assert parser.accepts(b"global", start="D")

    def test_nested_where_rules(self):
        grammar = """
        S -> A[0, EOI] where { A -> B[0, EOI] where { B -> "x"[0, 1] ; } ; } ;
        """
        assert Parser(grammar).accepts(b"x")

    def test_local_rules_of_different_alternatives_are_independent(self):
        grammar = """
        S -> "1"[0, 1] D[1, EOI] where { D -> "one"[0, 3] ; }
           / "2"[0, 1] D[1, EOI] where { D -> "two"[0, 3] ; } ;
        """
        parser = Parser(grammar)
        assert parser.accepts(b"1one")
        assert parser.accepts(b"2two")
        assert not parser.accepts(b"1two")


class TestBlackboxes:
    def test_blackbox_invoked_with_interval_bytes(self):
        seen = []

        def blackbox(data: bytes):
            seen.append(bytes(data))
            return {"n": len(data)}

        grammar = 'blackbox Ext ;\nS -> "hdr"[0, 3] Ext[3, EOI] {count = Ext.n} ;'
        tree = Parser(grammar, blackboxes={"Ext": blackbox}).parse(b"hdrPAYLOAD")
        assert seen == [b"PAYLOAD"]
        assert tree["count"] == 7

    def test_blackbox_payload_becomes_leaf(self):
        def blackbox(data: bytes):
            return BlackboxResult(attrs={"ok": 1}, payload=data.upper())

        grammar = "blackbox Ext ;\nS -> Ext[0, EOI] ;"
        tree = Parser(grammar, blackboxes={"Ext": blackbox}).parse(b"abc")
        ext = tree.child("Ext")
        assert ext.children == [Leaf(b"ABC")]

    def test_blackbox_failure_fails_alternative(self):
        grammar = 'blackbox Ext ;\nS -> Ext[0, EOI] {x = 1} / "a"[0, 1] {x = 2} ;'
        parser = Parser(grammar, blackboxes={"Ext": lambda data: None})
        assert parser.parse(b"a")["x"] == 2

    def test_missing_blackbox_raises(self):
        parser = Parser("blackbox Ext ;\nS -> Ext[0, EOI] ;")
        with pytest.raises(BlackboxError):
            parser.parse(b"abc")

    def test_blackbox_exception_is_wrapped(self):
        def broken(data: bytes):
            raise ValueError("boom")

        parser = Parser("blackbox Ext ;\nS -> Ext[0, EOI] ;", blackboxes={"Ext": broken})
        with pytest.raises(BlackboxError):
            parser.parse(b"abc")

    def test_register_blackbox_after_construction(self):
        parser = Parser("blackbox Ext ;\nS -> Ext[0, EOI] {n = Ext.len} ;")
        parser.register_blackbox("Ext", lambda data: {"len": len(data)})
        assert parser.parse(b"12345")["n"] == 5


class TestMemoization:
    def test_memoized_and_unmemoized_agree(self):
        grammar = """
        S -> A[0, EOI] A[0, EOI] {x = A.val} ;
        A -> U8[0, 1] {val = U8.val} ;
        """
        data = bytes([42, 1, 2])
        with_memo = Parser(grammar, memoize=True).parse(data)
        without_memo = Parser(grammar, memoize=False).parse(data)
        assert with_memo == without_memo

    def test_failures_are_memoized_too(self):
        # Exponential without memoization for nested ambiguity-like grammars;
        # here we only check correctness of the cached Fail results.
        grammar = """
        S -> A[0, EOI] "!"[EOI - 1, EOI] / A[0, EOI] ;
        A -> "x"[0, 1] A[1, EOI] / "x"[0, 1] ;
        """
        parser = Parser(grammar)
        assert parser.accepts(b"xxxx")
        assert parser.accepts(b"xxx!")
        assert not parser.accepts(b"yy")

    def test_start_symbol_override(self):
        grammar = 'S -> A[0, EOI] ; A -> "a"[0, 1] ;'
        parser = Parser(grammar)
        assert parser.accepts(b"a", start="A")
        assert parser.try_parse(b"b", start="A") is None


class TestArrayElementIsolation:
    """Regression tests: same-named array terms must not share element lists."""

    GRAMMAR = """
    S -> H[0, 1]
         for i = 0 to H.n do A[1 + i, 2 + i]
         for i = 0 to H.n do A[1 + H.n + i, 2 + H.n + i]
         {x = A(0).val} ;
    H -> U8[0, 1] {n = U8.val} ;
    A -> U8[0, 1] {val = U8.val} ;
    """

    DATA = bytes([2, 10, 11, 20, 21])

    @pytest.mark.parametrize("backend", ["interpreted", "compiled"])
    def test_second_array_term_gets_its_own_elements(self, backend):
        tree = Parser(self.GRAMMAR, backend=backend).parse(self.DATA)
        arrays = [t for t in tree.children if isinstance(t, ArrayNode)]
        assert [len(a) for a in arrays] == [2, 2]
        assert [e["val"] for e in arrays[0]] == [10, 11]
        assert [e["val"] for e in arrays[1]] == [20, 21]

    @pytest.mark.parametrize("backend", ["interpreted", "compiled"])
    def test_index_references_resolve_to_most_recent_array(self, backend):
        # After the second `for` term, `A(0)` is the second term's first
        # element, not a stale (or combined) view of the first term's list.
        tree = Parser(self.GRAMMAR, backend=backend).parse(self.DATA)
        assert tree["x"] == 20

    def test_backends_agree_on_duplicate_element_names(self):
        compiled = Parser(self.GRAMMAR, backend="compiled")
        interpreted = Parser(self.GRAMMAR, backend="interpreted")
        assert compiled.backend == "compiled"
        assert compiled.parse(self.DATA) == interpreted.parse(self.DATA)

    def test_aot_parser_agrees_on_duplicate_element_names(self):
        from repro.core.compiler import compile_grammar

        module = compile_grammar(self.GRAMMAR).load_module("_dup_names_aot")
        expected = Parser(self.GRAMMAR, backend="interpreted").parse(self.DATA)
        assert module.parse(self.DATA) == expected
        assert module.parse(self.DATA)["x"] == 20

    @pytest.mark.parametrize("backend", ["interpreted", "compiled"])
    def test_failed_array_restores_previous_binding(self, backend):
        # The second rule alternative re-parses the (shorter) input after the
        # first alternative's array fails midway; the reference `A(0).val`
        # must see the successful alternative's own elements.
        grammar = """
        S -> for i = 0 to 3 do A[i, i + 1] {x = A(0).val}
           / for i = 0 to 2 do A[i, i + 1] {x = A(0).val + 100} ;
        A -> U8[0, 1] {val = U8.val} ;
        """
        tree = Parser(grammar, backend=backend).parse(bytes([7, 8]))
        assert tree["x"] == 107


class TestEagerBlackboxValidation:
    """Regression tests for the once-dead missing-blackbox check."""

    def test_reachable_unregistered_blackbox_raises_at_first_parse(self):
        # The input would satisfy the first alternative without ever invoking
        # the blackbox; the parser must still refuse to run mis-configured.
        grammar = 'blackbox Ext ;\nS -> "a"[0, 1] {x = 1} / Ext[0, EOI] {x = 2} ;'
        parser = Parser(grammar)
        with pytest.raises(BlackboxError) as excinfo:
            parser.parse(b"a")
        assert "Ext" in str(excinfo.value)

    def test_unreachable_blackbox_needs_no_implementation(self):
        grammar = 'blackbox Ext ;\nS -> "a"[0, 1] ;\nUnused -> Ext[0, EOI] ;'
        assert Parser(grammar).parse(b"a").name == "S"

    def test_blackbox_inside_where_rule_is_detected(self):
        grammar = """
        blackbox Ext ;
        S -> "a"[0, 1] B[1, EOI]
             where { B -> Ext[0, EOI] ; } ;
        """
        with pytest.raises(BlackboxError):
            Parser(grammar).parse(b"ab")

    def test_registration_repairs_the_parser(self):
        grammar = "blackbox Ext ;\nS -> Ext[0, EOI] {n = Ext.len} ;"
        parser = Parser(grammar)
        with pytest.raises(BlackboxError):
            parser.parse(b"xyz")
        parser.register_blackbox("Ext", lambda data: {"len": len(data)})
        assert parser.parse(b"xyz")["n"] == 3

    def test_validation_is_per_start_symbol(self):
        grammar = 'blackbox Ext ;\nS -> Ext[0, EOI] ;\nT -> "t"[0, 1] ;'
        parser = Parser(grammar)
        assert parser.parse(b"t", start="T").name == "T"
        with pytest.raises(BlackboxError):
            parser.parse(b"t")

    def test_blackbox_behind_shadowed_path_is_still_detected(self):
        # L resolves X to the blackbox when called from S's chain, but to
        # the nested where-rule when called from M; visiting L under M's
        # chain first must not hide the blackbox use on the other path.
        grammar = """
        blackbox X ;
        S -> M[0, EOI] L[0, 1]
               where {
                 L -> X[0, 1] ;
                 M -> L[0, EOI] where { X -> "x"[0, 1] ; } ;
               } ;
        """
        parser = Parser(grammar, backend="interpreted")
        with pytest.raises(BlackboxError):
            parser.parse(b"xx")
