"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work on environments whose setuptools/pip combination cannot build
PEP 660 editable wheels (e.g. offline machines without the ``wheel``
package).
"""

from setuptools import setup

setup()
