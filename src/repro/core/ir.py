"""The plan IR connecting grammar analysis to the emission backends.

The compilation pipeline is structured as three stages:

``analyze``
    Run the whole-grammar analyses once — call-site collection, recursion
    and EOI-anchoring fixpoints, single-use inline candidates, FIRST-set
    dispatch plans (:mod:`repro.core.firstsets`), fixed-shape layout plans
    (:mod:`repro.core.shapes`) — and record the resulting *facts* in a
    :class:`GrammarAnalysis`.  Every backend consumes the same facts; no
    pass patches source strings or re-derives another pass's decisions.

``lower``
    Translate the grammar plus its analysis into per-rule IR programs
    (:class:`GrammarPlan` / :class:`RuleIR` / :class:`AltIR`): flat tagged
    tuples for match/guard/bind/call/array/switch steps, expression trees
    lowered to pure-data programs, dispatch tables and struct plans
    attached as table entries, memo modes and fuel-charge sites recorded
    per rule.  The IR is plain data: JSON-serializable
    (:func:`plan_to_jsonable` / :func:`plan_from_jsonable`) and rendered
    for humans by :func:`explain_plan` (``repro compile --explain``).

``emit``
    Two backends consume the IR: :mod:`repro.core.backends.closures`
    (the staged source-emitting compiler behind ``backend="compiled"``
    and AOT ``to_source()``) and :mod:`repro.core.backends.tablevm`
    (a compact table-driven VM with one dispatch loop, behind
    ``backend="tablevm"`` and the table-backed AOT modules).

Op vocabulary (first element tags the op; expressions are nested tuples):

====================  =====================================================
``("attr", n, e)``     bind attribute ``n`` to the value of ``e``
``("guard", e)``       fail the alternative when ``e`` evaluates to 0
``("lit", l, r, b)``   match literal bytes ``b`` inside interval ``[l, r)``
``("call", n, l, r)``  parse nonterminal ``n`` confined to ``[l, r)``
``("array", v, s, t, n, l, r, w)``
                       ``for v = s to t do n[l, r]``; ``w`` is the
                       statically proven element stride (or ``None``)
``("switch", cases)``  first case whose condition is non-zero wins;
                       each case is ``(cond | None, n, l, r)``
====================  =====================================================

Expression programs: ``("num", v)``, ``("name", id)``, ``("dot", A, a)``,
``("idx", A, a, e)``, ``("bin", op, e1, e2)``, ``("cond", c, t, e)`` and
``("exists", var, array, c, t, e)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .ast import (
    Alternative,
    Grammar,
    Rule,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .cycles import recursive_vertices
from .errors import IPGError
from .expr import BinOp, Cond, Dot, Exists, Expr, Index, Name, Num

#: Serialization format version of :func:`plan_to_jsonable` output.
PLAN_FORMAT = 1


@dataclass(frozen=True)
class Optimizations:
    """Toggle set for the compilation passes.

    Every combination produces identical parse trees (enforced by
    ``tests/test_compiler_passes.py``); the flags only trade compile-time
    analysis and generated-code shape for parse speed.
    """

    #: Compile ``where`` local rules to module-level functions with explicit
    #: closure-cell lists instead of per-invocation nested ``def`` s
    #: (closure backend only; the table VM has no per-invocation defs).
    module_level_where: bool = True
    #: Collapse the memo key of rules whose ``hi`` is always ``EOI`` from a
    #: ``(lo, hi)`` tuple to the bare ``lo`` offset.
    dense_memo: bool = True
    #: Skip memo tables for rules that cannot recur.
    skip_nonrecursive_memo: bool = True
    #: Expand single-use single-alternative rules into their call site
    #: (closure backend; the table VM keeps calls explicit).
    inline_single_use: bool = True
    #: Replace ordered trial-and-backtrack with byte-indexed jump tables
    #: where the FIRST-set analysis (:mod:`repro.core.firstsets`) prunes
    #: alternatives.
    first_byte_dispatch: bool = True
    #: Vectorize statically fixed layouts (:mod:`repro.core.shapes`): fused
    #: struct decodes for fixed prefixes, bulk decoding for fixed-stride
    #: arrays, inlined ``Raw``/``Bytes`` builtins.
    bulk_fixed_shape: bool = True

    @classmethod
    def none(cls) -> "Optimizations":
        """The PR-1 baseline: no optimization passes."""
        return cls(False, False, False, False, False, False)


# ---------------------------------------------------------------------------
# Analyze: whole-grammar facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CallSite:
    """One static invocation of a nonterminal inside some rule body."""

    caller: Rule  # the (top-level or local) rule containing the call
    top: str  # name of the enclosing top-level rule
    kind: str  # "nt" | "array" | "switch"
    target_kind: str  # "local" | "top" | "other"
    target: object  # Rule for "local", the name otherwise
    eoi_right: bool  # right endpoint is the unrebound EOI special


def collect_sites(grammar: Grammar) -> Tuple[List[CallSite], List[Rule]]:
    """Enumerate every call site, resolving where-rule shadowing lexically.

    The closure backend rejects call-site-dependent dispatch up front
    (``_check_dynamic_shadowing``), so lexical resolution here agrees with
    the interpreter's dynamic chain walk for every grammar that actually
    gets compiled.
    """
    sites: List[CallSite] = []
    rules: List[Rule] = []

    def walk(rule: Rule, top: str, chain: Dict[str, Rule]) -> None:
        rules.append(rule)
        for alternative in rule.alternatives:
            local_chain = chain
            if alternative.local_rules:
                local_chain = dict(chain)
                local_chain.update(
                    {local.name: local for local in alternative.local_rules}
                )
            rebound = False
            for term in alternative.terms:
                if isinstance(term, TermAttrDef):
                    if term.name == "EOI":
                        rebound = True
                    continue
                targets: List[Tuple[str, object, str, bool]] = []
                if isinstance(term, TermNonterminal):
                    targets.append((term.name, term.interval.right, "nt", False))
                elif isinstance(term, TermArray):
                    # The element interval is evaluated with the loop
                    # variable bound; a loop variable named EOI shadows the
                    # special for the element site.
                    targets.append(
                        (
                            term.element.name,
                            term.element.interval.right,
                            "array",
                            term.var == "EOI",
                        )
                    )
                elif isinstance(term, TermSwitch):
                    targets.extend(
                        (case.target.name, case.target.interval.right, "switch", False)
                        for case in term.cases
                    )
                for name, right, kind, shadowed in targets:
                    eoi_right = (
                        not rebound
                        and not shadowed
                        and isinstance(right, Name)
                        and right.ident == "EOI"
                    )
                    if name in local_chain:
                        target_kind, target = "local", local_chain[name]
                    elif grammar.has_rule(name):
                        target_kind, target = "top", name
                    else:
                        target_kind, target = "other", name
                    sites.append(
                        CallSite(rule, top, kind, target_kind, target, eoi_right)
                    )
            for local in alternative.local_rules:
                walk(local, top, local_chain)

    for name, rule in grammar.rules.items():
        walk(rule, name, {})
    return sites, rules


def recursive_rule_names(grammar: Grammar, sites: List[CallSite]) -> Set[str]:
    """Top-level rules that can (transitively) re-enter themselves."""
    graph: Dict[str, Set[str]] = {name: set() for name in grammar.rules}
    for site in sites:
        if site.target_kind == "top":
            graph[site.top].add(site.target)
    return set(recursive_vertices(graph))


def eoi_anchored_rule_names(grammar: Grammar, sites: List[CallSite]) -> Set[str]:
    """Top-level rules whose every invocation has ``hi ==`` the parse's EOI.

    Greatest fixpoint: a rule stays anchored only while every call site
    pins the right endpoint to the caller's unrebound ``EOI`` *and* the
    caller itself is anchored (so the caller's ``EOI`` is the top-level
    one).  Entry-point invocations (``parse(start=...)``) use
    ``hi = len(data)`` and are anchored by construction.  For anchored
    rules the memo key ``(lo, hi)`` collapses to ``lo``.
    """
    anchored: Dict[int, bool] = {}
    rule_sites = [site for site in sites if site.target_kind in ("local", "top")]
    for site in rule_sites:
        anchored[id(site.caller)] = True
        target = site.target if site.target_kind == "local" else grammar.rule(site.target)
        anchored[id(target)] = True
    for name in grammar.rules:
        anchored[id(grammar.rule(name))] = True
    changed = True
    while changed:
        changed = False
        for site in rule_sites:
            target = (
                site.target
                if site.target_kind == "local"
                else grammar.rule(site.target)
            )
            if anchored[id(target)] and (
                not site.eoi_right or not anchored[id(site.caller)]
            ):
                anchored[id(target)] = False
                changed = True
    return {name for name in grammar.rules if anchored[id(grammar.rule(name))]}


def inline_candidates(
    grammar: Grammar, sites: List[CallSite], recursive: Set[str]
) -> Set[str]:
    """Rules expandable into their (unique) call site.

    Conditions: exactly one alternative, no local rules, referenced from
    exactly one call site grammar-wide, and the rule is not recursive
    (which also rules out mutual inlining cycles).  The site may be a
    plain nonterminal term, an array element, or a switch-case target:
    the expansion runs with its own window locals and a parentless scope,
    which is exactly the context a top-level rule sees from any of the
    three (the interpreter passes no caller context either, and a loop
    iteration or switch branch failing mid-expansion fails the caller's
    alternative just like a propagated callee FAIL).
    """
    uses: Dict[str, int] = {}
    for site in sites:
        if site.target_kind == "top":
            uses[site.target] = uses.get(site.target, 0) + 1
    candidates: Set[str] = set()
    for name, rule in grammar.rules.items():
        if (
            uses.get(name) == 1
            and name not in recursive
            and len(rule.alternatives) == 1
            and not rule.alternatives[0].local_rules
        ):
            candidates.add(name)
    return candidates


@dataclass
class GrammarAnalysis:
    """The shared facts every emission backend consumes.

    One :func:`analyze` call replaces the per-backend re-derivation the
    pre-IR pipeline did: the closure emitter, the table VM, the
    interpreter's plan consumers and the AOT serializer all read the same
    object.
    """

    grammar: Grammar
    memoize: bool
    opts: Optimizations
    sites: List[CallSite]
    all_rules: List[Rule]
    recursive: Set[str]
    anchored: Set[str]
    inline: Set[str]
    #: Rule name -> "dict" | "dense" | "skipped" | "unmemoized".
    memo_modes: Dict[str, str]
    #: Top-level rule name -> firstsets.DispatchPlan (only pruning plans).
    dispatch_plans: Dict[str, object]
    #: id(local Rule) -> firstsets.DispatchPlan for where-rule dispatch.
    local_plans: Dict[int, object]
    #: Rule name -> full worthwhile AltShape plan (one-shot decodable).
    full_shapes: Dict[str, object]
    #: Lazily computed §8 streamability verdict (None until requested).
    _streamable: Optional[bool] = field(default=None, repr=False)

    @property
    def streamable(self) -> bool:
        if self._streamable is None:
            from .streamability import analyze_streamability

            self._streamable = bool(analyze_streamability(self.grammar).streamable)
        return self._streamable


def analyze(
    grammar: Grammar,
    *,
    memoize: bool = True,
    optimizations: Optional[Optimizations] = None,
) -> GrammarAnalysis:
    """Run every whole-grammar analysis pass once and record the facts.

    The memo-mode policy is exactly the staged compiler's: ``unmemoized``
    when memoization is off, ``skipped`` for non-recursive rules under
    ``skip_nonrecursive_memo``, ``dense`` for EOI-anchored rules under
    ``dense_memo``, ``dict`` otherwise.
    """
    opts = optimizations if optimizations is not None else Optimizations()
    sites, all_rules = collect_sites(grammar)
    recursive = recursive_rule_names(grammar, sites)
    anchored = (
        eoi_anchored_rule_names(grammar, sites) if opts.dense_memo else set()
    )
    inline = (
        inline_candidates(grammar, sites, recursive)
        if opts.inline_single_use
        else set()
    )
    memo_modes: Dict[str, str] = {}
    for name in grammar.rules:
        if not memoize:
            memo_modes[name] = "unmemoized"
        elif opts.skip_nonrecursive_memo and name not in recursive:
            memo_modes[name] = "skipped"
        elif name in anchored:
            memo_modes[name] = "dense"
        else:
            memo_modes[name] = "dict"
    dispatch_plans: Dict[str, object] = {}
    local_plans: Dict[int, object] = {}
    if opts.first_byte_dispatch:
        from .firstsets import dispatch_plans as _plans
        from .firstsets import local_dispatch_plans

        dispatch_plans = _plans(grammar)
        local_plans = {id(rule): plan for rule, plan in local_dispatch_plans(grammar)}
    full_shapes: Dict[str, object] = {}
    if opts.bulk_fixed_shape:
        from .shapes import alternative_shape

        for name, rule in grammar.rules.items():
            if len(rule.alternatives) != 1:
                continue
            plan = alternative_shape(grammar, name, 0)
            if plan.full and plan.worthwhile:
                full_shapes[name] = plan
    return GrammarAnalysis(
        grammar=grammar,
        memoize=memoize,
        opts=opts,
        sites=sites,
        all_rules=all_rules,
        recursive=recursive,
        anchored=anchored,
        inline=inline,
        memo_modes=memo_modes,
        dispatch_plans=dispatch_plans,
        local_plans=local_plans,
        full_shapes=full_shapes,
    )


# ---------------------------------------------------------------------------
# Lower: grammar + analysis -> per-rule IR programs
# ---------------------------------------------------------------------------


def lower_expr(expr: Expr) -> tuple:
    """Lower an expression AST to a pure-data program."""
    if isinstance(expr, Num):
        return ("num", expr.value)
    if isinstance(expr, Name):
        return ("name", expr.ident)
    if isinstance(expr, Dot):
        return ("dot", expr.nonterminal, expr.attr)
    if isinstance(expr, Index):
        return ("idx", expr.nonterminal, expr.attr, lower_expr(expr.index))
    if isinstance(expr, BinOp):
        return ("bin", expr.op, lower_expr(expr.left), lower_expr(expr.right))
    if isinstance(expr, Cond):
        return (
            "cond",
            lower_expr(expr.condition),
            lower_expr(expr.then),
            lower_expr(expr.otherwise),
        )
    if isinstance(expr, Exists):
        return (
            "exists",
            expr.var,
            expr._target_array(),
            lower_expr(expr.condition),
            lower_expr(expr.then),
            lower_expr(expr.otherwise),
        )
    raise IPGError(f"cannot lower expression {expr!r}")  # pragma: no cover


def render_expr(prog: tuple) -> str:
    """Render a lowered expression program back to surface-ish syntax."""
    tag = prog[0]
    if tag == "num":
        return str(prog[1])
    if tag == "name":
        return prog[1]
    if tag == "dot":
        return f"{prog[1]}.{prog[2]}"
    if tag == "idx":
        return f"{prog[1]}({render_expr(prog[3])}).{prog[2]}"
    if tag == "bin":
        return f"({render_expr(prog[2])} {prog[1]} {render_expr(prog[3])})"
    if tag == "cond":
        return (
            f"({render_expr(prog[1])} ? {render_expr(prog[2])}"
            f" : {render_expr(prog[3])})"
        )
    if tag == "exists":
        return (
            f"(exists {prog[1]} . {render_expr(prog[3])} ? "
            f"{render_expr(prog[4])} : {render_expr(prog[5])})"
        )
    raise IPGError(f"unknown expression tag {tag!r}")  # pragma: no cover


@dataclass
class DispatchIR:
    """A serializable first-byte (and FIRST₂) dispatch table.

    ``table`` has 256 entries of alternative-index tuples; ``empty`` is the
    entry for zero-length windows; ``pair`` maps a first byte to
    ``(probe_offset, row)`` with another 256-entry row over the probed
    byte.  Mirrors :class:`repro.core.firstsets.DispatchPlan` minus the
    non-serializable bits.
    """

    table: Tuple[Tuple[int, ...], ...]
    empty: Tuple[int, ...]
    alternatives: int
    pair: Optional[Dict[int, Tuple[int, Tuple[Tuple[int, ...], ...]]]] = None

    @classmethod
    def from_plan(cls, plan) -> "DispatchIR":
        pair = None
        if plan.pair_table:
            pair = {
                byte: (offset, tuple(tuple(entry) for entry in row))
                for byte, (offset, row) in plan.pair_table.items()
            }
        return cls(
            table=tuple(tuple(entry) for entry in plan.table),
            empty=tuple(plan.empty),
            alternatives=plan.alternatives,
            pair=pair,
        )


@dataclass
class AltIR:
    """One lowered alternative: a flat op program plus local rules."""

    ops: Tuple[tuple, ...]
    locals: Tuple["RuleIR", ...] = ()


@dataclass
class RuleIR:
    """One lowered rule: alternatives, dispatch table, memo/fuel facts.

    ``decoder`` marks rules whose whole body is a worthwhile fixed-shape
    struct plan: backends may decode them through a one-shot plan decoder
    (:func:`repro.core.shapes.make_decoder`) instead of running the ops.
    ``fuel`` marks the rules whose entry charges the step budget (the
    recursive ones — everything else is a DAG of straight-line bodies
    whose work is a constant factor of those charges).
    """

    name: str
    path: str
    alts: Tuple[AltIR, ...]
    memo: str  # "dict" | "dense" | "skipped" | "unmemoized" | "local"
    fuel: bool
    dispatch: Optional[DispatchIR]
    decoder: bool = False


@dataclass
class GrammarPlan:
    """The lowered IR of a whole grammar — what the backends emit from."""

    start: str
    blackboxes: Tuple[str, ...]
    rules: Dict[str, RuleIR]
    options: Dict[str, object]
    #: The source grammar and analysis (None on deserialized plans: the
    #: table VM links those without struct decoders or bulk arrays).
    grammar: Optional[Grammar] = None
    analysis: Optional[GrammarAnalysis] = None


def _lower_interval(term, what: str) -> Tuple[tuple, tuple]:
    interval = term.interval
    if interval.left is None or interval.right is None:
        raise IPGError(
            f"cannot lower {what}: interval of {term!r} is incomplete; "
            f"run interval auto-completion first"
        )
    return lower_expr(interval.left), lower_expr(interval.right)


def _lower_alternative(
    grammar: Grammar,
    analysis: GrammarAnalysis,
    alternative: Alternative,
    path: str,
) -> AltIR:
    from .shapes import linear_stride

    ops: List[tuple] = []
    for term in alternative.terms:
        if isinstance(term, TermAttrDef):
            ops.append(("attr", term.name, lower_expr(term.expr)))
        elif isinstance(term, TermGuard):
            ops.append(("guard", lower_expr(term.expr)))
        elif isinstance(term, TermTerminal):
            left, right = _lower_interval(term, path)
            ops.append(("lit", left, right, term.value))
        elif isinstance(term, TermNonterminal):
            left, right = _lower_interval(term, path)
            ops.append(("call", term.name, left, right))
        elif isinstance(term, TermArray):
            left, right = _lower_interval(term.element, path)
            stride = linear_stride(
                term.element.interval.left, term.element.interval.right, term.var
            )
            ops.append(
                (
                    "array",
                    term.var,
                    lower_expr(term.start),
                    lower_expr(term.stop),
                    term.element.name,
                    left,
                    right,
                    stride,
                )
            )
        elif isinstance(term, TermSwitch):
            cases = []
            for case in term.cases:
                left, right = _lower_interval(case.target, path)
                cases.append(
                    (
                        None if case.condition is None else lower_expr(case.condition),
                        case.target.name,
                        left,
                        right,
                    )
                )
            ops.append(("switch", tuple(cases)))
        else:  # pragma: no cover
            raise IPGError(f"unknown term kind {type(term).__name__}")
    locals_ir = tuple(
        _lower_rule(grammar, analysis, local, f"{path}/{local.name}", toplevel=False)
        for local in alternative.local_rules
    )
    return AltIR(ops=tuple(ops), locals=locals_ir)


def _lower_rule(
    grammar: Grammar,
    analysis: GrammarAnalysis,
    rule: Rule,
    path: str,
    toplevel: bool,
) -> RuleIR:
    plan = (
        analysis.dispatch_plans.get(rule.name)
        if toplevel
        else analysis.local_plans.get(id(rule))
    )
    alts = tuple(
        _lower_alternative(grammar, analysis, alternative, f"{path}/a{index}")
        for index, alternative in enumerate(rule.alternatives)
    )
    return RuleIR(
        name=rule.name,
        path=path,
        alts=alts,
        memo=analysis.memo_modes[rule.name] if toplevel else "local",
        fuel=(rule.name in analysis.recursive) if toplevel else True,
        dispatch=None if plan is None else DispatchIR.from_plan(plan),
        decoder=toplevel and rule.name in analysis.full_shapes,
    )


def lower(
    grammar: Grammar,
    *,
    memoize: bool = True,
    optimizations: Optional[Optimizations] = None,
    analysis: Optional[GrammarAnalysis] = None,
) -> GrammarPlan:
    """Lower a prepared grammar to its per-rule IR programs."""
    if analysis is None:
        analysis = analyze(grammar, memoize=memoize, optimizations=optimizations)
    rules = {
        name: _lower_rule(grammar, analysis, rule, name, toplevel=True)
        for name, rule in grammar.rules.items()
    }
    opts = analysis.opts
    options: Dict[str, object] = {
        "memoize": analysis.memoize,
        "first_byte_dispatch": opts.first_byte_dispatch,
        "bulk_fixed_shape": opts.bulk_fixed_shape,
        "dense_memo": opts.dense_memo,
        "skip_nonrecursive_memo": opts.skip_nonrecursive_memo,
    }
    return GrammarPlan(
        start=grammar.start,
        blackboxes=tuple(sorted(grammar.blackboxes)),
        rules=rules,
        options=options,
        grammar=grammar,
        analysis=analysis,
    )


# ---------------------------------------------------------------------------
# Serialization (JSON-able plain data)
# ---------------------------------------------------------------------------


def _data_to_jsonable(value):
    """Ops/expressions -> JSON: tuples become lists, bytes become tagged."""
    if isinstance(value, tuple):
        return [_data_to_jsonable(item) for item in value]
    if isinstance(value, bytes):
        return {"__bytes__": value.decode("latin-1")}
    if value is None or isinstance(value, (int, str, bool)):
        return value
    raise IPGError(f"non-serializable IR value {value!r}")  # pragma: no cover


def _data_from_jsonable(value):
    if isinstance(value, list):
        return tuple(_data_from_jsonable(item) for item in value)
    if isinstance(value, dict):
        return value["__bytes__"].encode("latin-1")
    return value


def _rle_encode(table) -> list:
    """Run-length-encode a 256-entry dispatch table for compact JSON."""
    runs: List[list] = []
    for entry in table:
        entry = list(entry)
        if runs and runs[-1][1] == entry:
            runs[-1][0] += 1
        else:
            runs.append([1, entry])
    return runs


def _rle_decode(runs) -> tuple:
    table: List[tuple] = []
    for count, entry in runs:
        table.extend([tuple(entry)] * count)
    return tuple(table)


def _dispatch_to_jsonable(dispatch: Optional[DispatchIR]):
    if dispatch is None:
        return None
    pair = None
    if dispatch.pair:
        pair = {
            str(byte): [offset, _rle_encode(row)]
            for byte, (offset, row) in dispatch.pair.items()
        }
    return {
        "table": _rle_encode(dispatch.table),
        "empty": list(dispatch.empty),
        "alternatives": dispatch.alternatives,
        "pair": pair,
    }


def _dispatch_from_jsonable(data) -> Optional[DispatchIR]:
    if data is None:
        return None
    pair = None
    if data.get("pair"):
        pair = {
            int(byte): (offset, _rle_decode(runs))
            for byte, (offset, runs) in data["pair"].items()
        }
    return DispatchIR(
        table=_rle_decode(data["table"]),
        empty=tuple(data["empty"]),
        alternatives=data["alternatives"],
        pair=pair,
    )


def _rule_to_jsonable(rule: RuleIR) -> dict:
    return {
        "name": rule.name,
        "path": rule.path,
        "memo": rule.memo,
        "fuel": rule.fuel,
        "decoder": rule.decoder,
        "dispatch": _dispatch_to_jsonable(rule.dispatch),
        "alts": [
            {
                "ops": [_data_to_jsonable(op) for op in alt.ops],
                "locals": [_rule_to_jsonable(local) for local in alt.locals],
            }
            for alt in rule.alts
        ],
    }


def _rule_from_jsonable(data: dict) -> RuleIR:
    return RuleIR(
        name=data["name"],
        path=data["path"],
        memo=data["memo"],
        fuel=data["fuel"],
        decoder=data["decoder"],
        dispatch=_dispatch_from_jsonable(data["dispatch"]),
        alts=tuple(
            AltIR(
                ops=tuple(_data_from_jsonable(op) for op in alt["ops"]),
                locals=tuple(_rule_from_jsonable(local) for local in alt["locals"]),
            )
            for alt in data["alts"]
        ),
    )


def plan_to_jsonable(plan: GrammarPlan) -> dict:
    """Serialize a :class:`GrammarPlan` to JSON-compatible plain data."""
    return {
        "format": PLAN_FORMAT,
        "start": plan.start,
        "blackboxes": list(plan.blackboxes),
        "options": dict(plan.options),
        "rules": {name: _rule_to_jsonable(rule) for name, rule in plan.rules.items()},
    }


def plan_from_jsonable(data: dict) -> GrammarPlan:
    """Rebuild a :class:`GrammarPlan` from :func:`plan_to_jsonable` output.

    The source grammar and analysis are not serialized, so backends link
    deserialized plans without struct-plan decoders or bulk arrays (the
    AOT table modules embed decoders separately as emitted source).
    """
    if data.get("format") != PLAN_FORMAT:
        raise IPGError(
            f"unsupported plan format {data.get('format')!r}; "
            f"expected {PLAN_FORMAT}"
        )
    return GrammarPlan(
        start=data["start"],
        blackboxes=tuple(data["blackboxes"]),
        rules={
            name: _rule_from_jsonable(rule) for name, rule in data["rules"].items()
        },
        options=dict(data["options"]),
    )


# ---------------------------------------------------------------------------
# Explain: human-readable IR dump (repro compile --explain, golden dumps)
# ---------------------------------------------------------------------------


def _byte_ranges(bytes_: List[int]) -> str:
    """Render a sorted byte list as compact hex ranges (0x30-0x39,0x41)."""
    parts = []
    index = 0
    while index < len(bytes_):
        start = end = bytes_[index]
        while index + 1 < len(bytes_) and bytes_[index + 1] == end + 1:
            index += 1
            end = bytes_[index]
        parts.append(f"0x{start:02x}" if start == end else f"0x{start:02x}-0x{end:02x}")
        index += 1
    return ",".join(parts)


def _explain_dispatch(dispatch: DispatchIR, out: List[str], indent: str) -> None:
    groups: Dict[tuple, List[int]] = {}
    for byte, entry in enumerate(dispatch.table):
        groups.setdefault(entry, []).append(byte)
    # Most common entry becomes the default row for a compact dump.
    default = max(groups, key=lambda entry: len(groups[entry]))
    out.append(f"{indent}dispatch: default -> {list(default)}")
    for entry, bytes_ in sorted(groups.items(), key=lambda kv: kv[1][0]):
        if entry == default:
            continue
        out.append(f"{indent}  {_byte_ranges(bytes_)} -> {list(entry)}")
    out.append(f"{indent}  empty-window -> {list(dispatch.empty)}")
    if dispatch.pair:
        for byte in sorted(dispatch.pair):
            offset, row = dispatch.pair[byte]
            rows: Dict[tuple, List[int]] = {}
            for probed, entry in enumerate(row):
                rows.setdefault(entry, []).append(probed)
            row_default = max(rows, key=lambda entry: len(rows[entry]))
            refinements = [
                f"{_byte_ranges(bytes_)} -> {list(entry)}"
                for entry, bytes_ in sorted(rows.items(), key=lambda kv: kv[1][0])
                if entry != row_default
            ]
            out.append(
                f"{indent}  first2 0x{byte:02x}: probe +{offset}, "
                f"default -> {list(row_default)}; " + "; ".join(refinements)
            )


def _explain_op(op: tuple) -> str:
    tag = op[0]
    if tag == "attr":
        return f"attr   {op[1]} = {render_expr(op[2])}"
    if tag == "guard":
        return f"guard  {render_expr(op[1])}"
    if tag == "lit":
        return f"lit    {op[3]!r} [{render_expr(op[1])}, {render_expr(op[2])}]"
    if tag == "call":
        return f"call   {op[1]} [{render_expr(op[2])}, {render_expr(op[3])}]"
    if tag == "array":
        stride = f" stride={op[7]}" if op[7] is not None else ""
        return (
            f"array  for {op[1]} = {render_expr(op[2])} to {render_expr(op[3])} "
            f"do {op[4]} [{render_expr(op[5])}, {render_expr(op[6])}]{stride}"
        )
    if tag == "switch":
        cases = " / ".join(
            (f"{render_expr(cond)} : " if cond is not None else "default : ")
            + f"{name} [{render_expr(left)}, {render_expr(right)}]"
            for cond, name, left, right in op[1]
        )
        return f"switch {cases}"
    raise IPGError(f"unknown op tag {tag!r}")  # pragma: no cover


def _explain_rule(rule: RuleIR, plan: GrammarPlan, out: List[str], depth: int) -> None:
    indent = "  " * depth
    facts = [f"memo={rule.memo}"]
    facts.append("fuel=charged" if rule.fuel else "fuel=free")
    if rule.decoder:
        shape = None
        if plan.analysis is not None:
            shape = plan.analysis.full_shapes.get(rule.name)
        facts.append(
            f"decoder=struct[{shape.fmt!r}, {shape.needed}B]"
            if shape is not None
            else "decoder=struct"
        )
    out.append(f"{indent}rule {rule.path}: {' '.join(facts)}")
    if rule.dispatch is not None:
        _explain_dispatch(rule.dispatch, out, indent + "  ")
    for index, alt in enumerate(rule.alts):
        out.append(f"{indent}  alt {index}:")
        for op in alt.ops:
            out.append(f"{indent}    {_explain_op(op)}")
        for local in alt.locals:
            _explain_rule(local, plan, out, depth + 2)


def explain_plan(plan: GrammarPlan) -> str:
    """Render the full per-rule IR for humans (``repro compile --explain``)."""
    out: List[str] = [
        f"start: {plan.start}",
        "options: "
        + " ".join(f"{key}={value}" for key, value in sorted(plan.options.items())),
    ]
    if plan.blackboxes:
        out.append("blackboxes: " + ", ".join(plan.blackboxes))
    for rule in plan.rules.values():
        _explain_rule(rule, plan, out, 0)
    return "\n".join(out) + "\n"
