"""Reusable cross-engine differential harness.

The repository ships several executions of the same IPG semantics:

* ``interpreted`` — the reference tree-walking interpreter (with its
  default fast paths: dispatch tables and fixed-shape one-shot decoders),
* ``interpreted-plain`` — the interpreter with first-byte dispatch *and*
  fixed-shape vectorization disabled: the pristine reference semantics
  every optimized engine is compared against,
* ``compiled`` — the staged closure compiler (the default engine, with
  dispatch tables and fixed-shape vectorization),
* ``compiled-nobulk`` — the compiler with only ``bulk_fixed_shape`` off
  (the bulk-on/bulk-off differential pair),
* ``compiled-unoptimized`` — the compiler with every optimization pass off,
* ``aot`` — the ahead-of-time emitted standalone module
  (``CompiledGrammar.to_source()``), imported through ``exec``,
* ``tablevm`` — the table-driven dispatch VM executing the serialized
  plan IR (``repro.core.backends.tablevm``),
* ``aot-table`` — the table-backed standalone module
  (``TableGrammar.to_source()``), imported through ``exec``,
* ``streaming`` — ``Parser.parse_stream`` over chunked input (only for
  grammars the §8 analysis accepts; chunk sizes deliberately straddle
  fixed-shape record boundaries).

(The ``generated`` engine — the retired dict-env parser generator — left
the matrix when that generator was deleted in favour of the AOT emitter;
``aot`` covers that execution path.)

This module builds all of them for one ``(grammar, blackboxes)`` pair and
asserts that every engine produces **identical trees or identical errors**
on the same input.  ``test_compiler_equivalence.py``, ``test_cross_engine.py``,
``test_compiler_passes.py`` and ``test_golden_trees.py`` all drive their
checks through here instead of maintaining ad-hoc comparison loops.

On top of the tree contract, :meth:`EngineMatrix.assert_agree` also runs
every emit-capable engine (interpreter with and without dispatch, staged
compiler, unoptimized-elided compiler, chunked streaming) in the
``emit="spans"`` and validate-only tree-elision modes and checks the root
(name, env) — respectively the accept/reject outcome — against the full
tree the reference interpreter produced.
"""

from __future__ import annotations

import types
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import Parser, samples
from repro.core.buffers import as_buffer
from repro.core.compiler import Optimizations, compile_grammar
from repro.core.errors import BlackboxError, CompilationError, IPGError, ParseFailure
from repro.core.streamability import analyze_streamability

#: Engines every grammar can run on (streaming joins when streamable).
CORE_ENGINES = (
    "interpreted",
    "interpreted-plain",
    "compiled",
    "compiled-nobulk",
    "compiled-unoptimized",
    "aot",
    "tablevm",
    "aot-table",
)
ALL_ENGINES = CORE_ENGINES + ("streaming",)

#: Module-level cache: building an engine set runs the whole front-end
#: pipeline (plus an exec for the AOT module), so sharing across tests and
#: hypothesis examples keeps the suite fast.
_MATRIX_CACHE: Dict[tuple, "EngineMatrix"] = {}

_AOT_SEQ = [0]


def load_aot_module(
    grammar_text: str,
    blackboxes: Optional[dict] = None,
    memoize: bool = True,
    optimizations: Optional[Optimizations] = None,
) -> types.ModuleType:
    """Emit a grammar ahead of time and import the module through ``exec``."""
    compiled = compile_grammar(
        grammar_text,
        memoize=memoize,
        blackboxes=dict(blackboxes or {}),
        optimizations=optimizations,
    )
    _AOT_SEQ[0] += 1
    return compiled.load_module(f"_aot_matrix_{_AOT_SEQ[0]}")


class EngineMatrix:
    """All engines for one grammar, each exposed as ``run(data, start)``.

    ``run`` returns ``("tree", node)``, ``("none",)`` for a clean
    non-match, or ``("error", exception_type)`` for a raised
    :class:`~repro.core.errors.IPGError` — the three outcomes the
    equivalence contract compares.
    """

    def __init__(
        self,
        grammar_text: str,
        blackboxes: Optional[dict] = None,
        memoize: bool = True,
        expect_compiled: bool = True,
        chunk_sizes: Tuple[int, ...] = (1, 7, 23),
    ):
        blackboxes = dict(blackboxes or {})
        self.grammar_text = grammar_text
        self.chunk_sizes = chunk_sizes
        self._memoize = memoize
        self._blackboxes = blackboxes
        self.interpreted = Parser(
            grammar_text, blackboxes=blackboxes, memoize=memoize, backend="interpreted"
        )
        self.interpreted_plain = Parser(
            grammar_text,
            blackboxes=blackboxes,
            memoize=memoize,
            backend="interpreted",
            first_byte_dispatch=False,
            bulk_fixed_shape=False,
        )
        self.compiled = Parser(
            grammar_text, blackboxes=blackboxes, memoize=memoize, backend="compiled"
        )
        if expect_compiled:
            assert self.compiled.backend == "compiled", (
                "compiler fell back to the interpreter; the differential "
                "matrix would be vacuous"
            )
        if self.compiled.backend == "compiled":
            self.unoptimized = compile_grammar(
                grammar_text,
                memoize=memoize,
                blackboxes=blackboxes,
                optimizations=Optimizations.none(),
            )
            self.nobulk = compile_grammar(
                grammar_text,
                memoize=memoize,
                blackboxes=blackboxes,
                optimizations=Optimizations(bulk_fixed_shape=False),
            )
            self.aot = load_aot_module(grammar_text, blackboxes, memoize=memoize)
        else:
            # The compiler refused this grammar (automatic interpreter
            # fallback); only the non-compiled engines participate.
            self.unoptimized = None
            self.nobulk = None
            self.aot = None
        try:
            self.tablevm = Parser(
                grammar_text,
                blackboxes=blackboxes,
                memoize=memoize,
                backend="tablevm",
            )
        except CompilationError:
            # Lowering refuses constructs the plan IR does not cover yet;
            # the table engines simply sit this grammar out.
            self.tablevm = None
            self.aot_table = None
        else:
            _AOT_SEQ[0] += 1
            self.aot_table = self.tablevm._tablevm.load_module(
                f"_aot_table_matrix_{_AOT_SEQ[0]}"
            )
        self.streamable = analyze_streamability(grammar_text).streamable
        #: Lazily built: the unoptimized tree-elision compilation used by
        #: the emit-mode differential (see _elided_unoptimized()).
        self._elided_unopt = None
        self._runners: Dict[str, Callable] = {
            "interpreted": self._run_parser(self.interpreted),
            "interpreted-plain": self._run_parser(self.interpreted_plain),
            "compiled": self._run_parser(self.compiled),
            "streaming": self._run_streaming,
        }
        if self.unoptimized is not None:
            self._runners["compiled-unoptimized"] = self._run_compiled_grammar(
                self.unoptimized
            )
            self._runners["compiled-nobulk"] = self._run_compiled_grammar(
                self.nobulk
            )
            self._runners["aot"] = self._run_aot
        if self.tablevm is not None:
            self._runners["tablevm"] = self._run_parser(self.tablevm)
            self._runners["aot-table"] = self._run_aot_table

    # -- engine runners ----------------------------------------------------
    @staticmethod
    def _run_parser(parser):
        def run(data, start):
            try:
                tree = parser.try_parse(data, start)
            except IPGError as exc:
                return ("error", type(exc))
            return ("tree", tree) if tree is not None else ("none",)

        return run

    @staticmethod
    def _run_compiled_grammar(compiled):
        from repro.core.interpreter import FAIL

        def run(data, start):
            name = start or compiled.grammar.start
            try:
                result = compiled.parse_nonterminal(as_buffer(data), name, 0, len(data))
            except IPGError as exc:
                return ("error", type(exc))
            return ("none",) if result is FAIL else ("tree", result)

        return run

    def _run_aot(self, data, start):
        try:
            tree = self.aot.try_parse(data, start)
        except self.aot.IPGError as exc:
            # The standalone module raises its own (vendored or re-used)
            # hierarchy; compare by class name.
            return ("error", type(exc))
        return ("tree", tree) if tree is not None else ("none",)

    def _run_aot_table(self, data, start):
        try:
            tree = self.aot_table.try_parse(data, start)
        except self.aot_table.IPGError as exc:
            return ("error", type(exc))
        return ("tree", tree) if tree is not None else ("none",)

    def _run_streaming(self, data, start):
        outcomes = []
        for chunk_size in self.chunk_sizes:
            chunks = [
                data[i : i + chunk_size] for i in range(0, len(data), chunk_size)
            ]
            try:
                tree = self.compiled.parse_stream(chunks or [b""], start)
            except ParseFailure:
                outcomes.append(("none",))
            except IPGError as exc:
                outcomes.append(("error", type(exc)))
            else:
                outcomes.append(("tree", tree))
        # Every chunking must behave identically before the caller compares
        # the (first) outcome against the reference interpreter.
        for outcome in outcomes[1:]:
            assert outcome == outcomes[0], (
                f"streaming outcome depends on the chunking: "
                f"{outcomes[0][0]} (chunk={self.chunk_sizes[0]}) vs "
                f"{outcome[0]} (other chunk size)"
            )
        return outcomes[0]

    # -- structured-error agreement ----------------------------------------
    def error_engines(self) -> Tuple[str, ...]:
        """Engines with a *raising* entry point (streaming checked apart)."""
        names = ["interpreted", "interpreted-plain", "compiled"]
        if self.unoptimized is not None:
            names += ["compiled-nobulk", "compiled-unoptimized", "aot"]
        if self.tablevm is not None:
            names += ["tablevm", "aot-table"]
        return tuple(names)

    def error_outcome(self, engine: str, data: bytes, start: Optional[str] = None):
        """``(class_name, offset)`` from an engine's raising entry point.

        Returns ``("tree",)`` when the input parses.  Uses the structured
        error taxonomy contract: every engine diagnoses a failed parse to
        the same :class:`~repro.core.errors.ParseFailure` subclass at the
        same furthest-failure byte offset (the AOT module may raise its
        vendored hierarchy, which matches by class name).  A *raising*
        blackbox callable surfaces as ``("BlackboxError", None)`` — every
        engine invokes the same callable on the same window, so that
        outcome is deterministic too.
        """
        data = bytes(data)
        try:
            if engine in ("interpreted", "interpreted-plain", "compiled", "tablevm"):
                parser = {
                    "interpreted": self.interpreted,
                    "interpreted-plain": self.interpreted_plain,
                    "compiled": self.compiled,
                    "tablevm": self.tablevm,
                }[engine]
                parser.parse(data, start)
            elif engine == "compiled-nobulk":
                self.nobulk.parse(data, start)
            elif engine == "compiled-unoptimized":
                self.unoptimized.parse(data, start)
            elif engine in ("aot", "aot-table"):
                module = self.aot if engine == "aot" else self.aot_table
                try:
                    module.parse(data, start)
                except (module.ParseFailure, module.BlackboxError) as exc:
                    return (type(exc).__name__, getattr(exc, "offset", None))
            else:
                raise AssertionError(f"no raising entry point for {engine!r}")
        except (ParseFailure, BlackboxError) as exc:
            return (type(exc).__name__, getattr(exc, "offset", None))
        return ("tree",)

    def _streaming_error_outcomes(self, data: bytes, start: Optional[str]):
        """``[(chunk_size, outcome)]`` via incremental sessions, uncompacted.

        ``compact=False`` keeps the whole input buffered so ``finish()``
        can re-diagnose a failed parse exactly like the batch engines.
        Every chunk is fed even after the outcome is determined: stopping
        early would diagnose over a *prefix*, which legitimately
        classifies differently than the batch engines see the full input.
        """
        outcomes = []
        for chunk_size in self.chunk_sizes:
            session = self.compiled.stream(start, compact=False)
            try:
                for i in range(0, len(data), chunk_size):
                    session.feed(data[i : i + chunk_size])
                session.finish()
            except (ParseFailure, BlackboxError) as exc:
                outcomes.append(
                    (chunk_size, (type(exc).__name__, getattr(exc, "offset", None)))
                )
            else:
                outcomes.append((chunk_size, ("tree",)))
        return outcomes

    def assert_error_agree(
        self, data: bytes, start: Optional[str] = None, expect=None
    ):
        """Every raising entry point surfaces the same ``(class, offset)``.

        Covers the batch engines and, for streamable grammars, incremental
        sessions at every chunk size (record-straddling chunkings
        included).  ``expect`` optionally pins the expected pair — e.g.
        ``("TruncatedInput", 96)`` — for golden hostile corpora.  Returns
        the agreed outcome.
        """
        data = bytes(data)
        reference = self.error_outcome("interpreted", data, start)
        for engine in self.error_engines():
            if engine == "interpreted":
                continue
            outcome = self.error_outcome(engine, data, start)
            assert outcome == reference, (
                f"{engine}: structured error {outcome!r} != interpreter's "
                f"{reference!r} (input {data[:32]!r}..., start={start})"
            )
        if self.streamable:
            for chunk_size, outcome in self._streaming_error_outcomes(data, start):
                assert outcome == reference, (
                    f"streaming(chunk={chunk_size}): structured error "
                    f"{outcome!r} != interpreter's {reference!r}"
                )
        if expect is not None:
            assert reference == tuple(expect), (
                f"engines agree on {reference!r} but the golden expectation "
                f"is {tuple(expect)!r}"
            )
        return reference

    # -- emit-mode (tree-elision) runners ----------------------------------
    def _elided_unoptimized(self):
        """The all-passes-off tree-elision compilation (built lazily)."""
        if self._elided_unopt is None and self.unoptimized is not None:
            self._elided_unopt = compile_grammar(
                self.grammar_text,
                memoize=self._memoize,
                blackboxes=self._blackboxes,
                optimizations=Optimizations.none(),
                elide_tree=True,
            )
        return self._elided_unopt

    def emit_engines(self) -> Tuple[str, ...]:
        """Engines that natively run the spans / validate-only fast path."""
        names = ["interpreted", "interpreted-plain", "compiled"]
        if self.unoptimized is not None:
            names.append("elided-unoptimized")
        if self.tablevm is not None:
            names.append("tablevm")
        if self.streamable:
            names.append("streaming")
        return tuple(names)

    def run_emit(self, engine: str, data: bytes, start: Optional[str], emit):
        """Outcome of one engine in an elision mode.

        Returns ``("spans", name, env)``, ``("ok",)`` for a validate-only
        match, ``("none",)`` for a clean non-match, or ``("error", cls)``.
        """
        from repro.core.interpreter import FAIL

        try:
            if engine == "elided-unoptimized":
                compiled = self._elided_unoptimized()
                name = start or compiled.grammar.start
                result = compiled.parse_nonterminal(
                    as_buffer(data), name, 0, len(data)
                )
                outcome = None if result is FAIL else result
            elif engine == "streaming":
                return self._run_streaming_emit(data, start, emit)
            else:
                parser = {
                    "interpreted": self.interpreted,
                    "interpreted-plain": self.interpreted_plain,
                    "compiled": self.compiled,
                    "tablevm": self.tablevm,
                }[engine]
                outcome = parser.try_parse(data, start, emit=emit)
        except IPGError as exc:
            return ("error", type(exc))
        if outcome is None:
            return ("none",)
        if emit is None or outcome is True:
            return ("ok",)
        return ("spans", outcome.name, dict(outcome.env))

    def _run_streaming_emit(self, data: bytes, start: Optional[str], emit):
        outcomes = []
        for chunk_size in self.chunk_sizes:
            chunks = [
                data[i : i + chunk_size] for i in range(0, len(data), chunk_size)
            ]
            try:
                result = self.compiled.parse_stream(chunks or [b""], start, emit=emit)
            except ParseFailure:
                outcomes.append(("none",))
            except IPGError as exc:
                outcomes.append(("error", type(exc)))
            else:
                if emit is None:
                    outcomes.append(("ok",))
                else:
                    outcomes.append(("spans", result.name, dict(result.env)))
        for outcome in outcomes[1:]:
            assert outcome == outcomes[0], (
                f"streaming {emit!r} outcome depends on the chunking: "
                f"{outcomes[0]} vs {outcome}"
            )
        return outcomes[0]

    def assert_emit_agree(self, data: bytes, start: Optional[str] = None, reference=None):
        """Check spans / validate-only outcomes against the reference tree.

        The tree-elision fast path must accept exactly the inputs the
        tree-building engines accept, with a root environment equal to the
        full tree's — on every engine, including chunked streaming.
        """
        if reference is None:
            reference = self.run("interpreted-plain", data, start)
        if reference[0] == "tree":
            expected_spans = ("spans", reference[1].name, dict(reference[1].env))
            expected_ok = ("ok",)
        else:
            expected_spans = expected_ok = reference
        for engine in self.emit_engines():
            spans = self.run_emit(engine, data, start, "spans")
            validate = self.run_emit(engine, data, start, None)
            for mode, outcome, expected in (
                ("spans", spans, expected_spans),
                ("validate", validate, expected_ok),
            ):
                if expected[0] == "error":
                    assert outcome[0] == "error", (
                        f"{engine}/{mode}: expected an error, got {outcome}"
                    )
                    assert outcome[1].__name__ == expected[1].__name__, (
                        f"{engine}/{mode}: raised {outcome[1].__name__}, "
                        f"reference raised {expected[1].__name__}"
                    )
                else:
                    assert outcome == expected, (
                        f"{engine}/{mode}: {outcome!r} != {expected!r} "
                        f"(input {data[:32]!r}..., start={start})"
                    )

    # -- the contract ------------------------------------------------------
    def engines(self, include_streaming: bool = True) -> Tuple[str, ...]:
        names = [name for name in CORE_ENGINES if name in self._runners]
        if include_streaming and self.streamable:
            names.append("streaming")
        return tuple(names)

    def run(self, engine: str, data: bytes, start: Optional[str] = None):
        return self._runners[engine](data, start)

    def assert_agree(
        self,
        data: bytes,
        start: Optional[str] = None,
        engines: Optional[Iterable[str]] = None,
    ):
        """Assert every engine matches the plain reference interpreter."""
        reference = self.run("interpreted-plain", data, start)
        for engine in engines if engines is not None else self.engines():
            if engine == "interpreted-plain":
                continue
            outcome = self.run(engine, data, start)
            if reference[0] == "tree":
                assert outcome[0] == "tree", (
                    f"{engine}: expected a tree, got {outcome} "
                    f"(input {data[:32]!r}..., start={start})"
                )
                assert outcome[1] == reference[1], (
                    f"{engine}: tree differs from the interpreter's "
                    f"(input {data[:32]!r}..., start={start})"
                )
            elif reference[0] == "none":
                assert outcome[0] == "none", (
                    f"{engine}: expected a clean non-match, got {outcome} "
                    f"(input {data[:32]!r}..., start={start})"
                )
            else:
                assert outcome[0] == "error", (
                    f"{engine}: expected an error, got {outcome}"
                )
                assert outcome[1].__name__ == reference[1].__name__, (
                    f"{engine}: raised {outcome[1].__name__}, interpreter "
                    f"raised {reference[1].__name__}"
                )
        if engines is None:
            # The default full-matrix check also runs every emit-capable
            # engine in the spans and validate-only tree-elision modes.
            self.assert_emit_agree(data, start, reference=reference)
        return reference


def matrix_for(
    grammar_text: str,
    blackboxes: Optional[dict] = None,
    memoize: bool = True,
    expect_compiled: bool = True,
) -> EngineMatrix:
    """Shared-cache constructor (blackbox dicts are assumed stable per key)."""
    key = (grammar_text, tuple(sorted((blackboxes or {}).keys())), memoize)
    cached = _MATRIX_CACHE.get(key)
    if cached is None:
        cached = _MATRIX_CACHE[key] = EngineMatrix(
            grammar_text, blackboxes, memoize, expect_compiled
        )
    return cached


def assert_engines_agree(
    grammar_text: str,
    data: bytes,
    start: Optional[str] = None,
    blackboxes: Optional[dict] = None,
    memoize: bool = True,
):
    """One-shot helper: build (or reuse) the matrix and check one input."""
    return matrix_for(grammar_text, blackboxes, memoize).assert_agree(data, start)


# ---------------------------------------------------------------------------
# Shared deterministic format samples
# ---------------------------------------------------------------------------


def format_sample(fmt: str) -> bytes:
    """The canonical deterministic sample input for a bundled format."""
    if fmt in ("zip", "zip-meta"):
        return samples.build_zip(member_count=3, member_size=300)
    if fmt == "elf":
        return samples.build_elf(section_count=3, symbol_count=4, dynamic_entries=2)
    if fmt == "gif":
        return samples.build_gif(frame_count=2, bytes_per_frame=200)
    if fmt == "pe":
        return samples.build_pe(section_count=2)
    if fmt == "pdf":
        return samples.build_pdf(object_count=3)[0]
    if fmt == "dns":
        return samples.build_dns_response(answer_count=2, additional_count=1)
    if fmt == "ipv4":
        return samples.build_ipv4_udp_packet(payload_size=48, options_words=1)
    raise AssertionError(f"no sample builder for {fmt}")
