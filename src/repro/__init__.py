"""repro — Interval Parsing Grammars for file format parsing.

A from-scratch Python reproduction of *Interval Parsing Grammars for File
Format Parsing* (Zhang, Morrisett, Tan; PLDI 2023).

Quickstart
----------

    >>> from repro import Parser
    >>> grammar = '''
    ... S -> A[0, 2] B[EOI - 2, EOI] ;
    ... A -> "aa"[0, 2] ;
    ... B -> "bb"[0, 2] ;
    ... '''
    >>> parser = Parser(grammar)
    >>> tree = parser.parse(b"aaxxxbb")
    >>> tree.name
    'S'

The package layout mirrors the paper: :mod:`repro.core` implements the IPG
language (syntax, semantics, checking, generation, combinators, termination
checking), :mod:`repro.formats` contains the case-study grammars (ZIP, GIF,
PE, ELF, PDF subset, IPv4+UDP, DNS), :mod:`repro.baselines` the comparison
parsers, :mod:`repro.samples` synthetic workload generators and
:mod:`repro.evaluation` the measurement harness behind the benchmarks.
"""

from .core import (
    ArrayNode,
    AttributeCheckError,
    AutoCompletionError,
    BlackboxError,
    BlackboxResult,
    EvaluationError,
    GenerationError,
    Grammar,
    GrammarSyntaxError,
    IPGError,
    Leaf,
    Node,
    ParseFailure,
    ParseTree,
    Parser,
    Span,
    TerminationCheckError,
    check_grammar,
    complete_grammar,
    parse,
    parse_expression,
    parse_grammar,
    prepare_grammar,
    tree_equal_modulo_specials,
)

__version__ = "1.0.0"

__all__ = [
    "ArrayNode",
    "AttributeCheckError",
    "AutoCompletionError",
    "BlackboxError",
    "BlackboxResult",
    "EvaluationError",
    "GenerationError",
    "Grammar",
    "GrammarSyntaxError",
    "IPGError",
    "Leaf",
    "Node",
    "ParseFailure",
    "ParseTree",
    "Parser",
    "Span",
    "TerminationCheckError",
    "__version__",
    "check_grammar",
    "complete_grammar",
    "parse",
    "parse_expression",
    "parse_grammar",
    "prepare_grammar",
    "tree_equal_modulo_specials",
]
