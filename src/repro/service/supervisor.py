"""The parse-service supervisor: a fault-tolerant pool of parse workers.

Failure-first design.  The supervisor thread owns N worker processes
and never trusts them: every request carries a per-attempt wall-clock
deadline enforced from *outside* the worker (SIGKILL — a worker stuck
in a sleeping blackbox or a native call cannot be asked nicely), every
worker death is observed via its process sentinel and isolated to the
in-flight request, and a dead worker is respawned with exponential
backoff plus seeded jitter so a crash-looping pool cannot fork-bomb the
host.  A killed or crashed request is retried once on a fresh worker
(configurable) before degrading to a structured
:class:`~repro.core.errors.ServiceError` reply — a caller gets exactly
one answer per request: a tree, a recovered document, a structured
parse failure, or a service error.  Never a hang.

Backpressure is explicit: the pending queue is bounded and a ``submit``
beyond the bound is shed synchronously with
:class:`~repro.core.errors.ServiceOverloaded` (carrying a
``retry_after`` hint) instead of buffering unboundedly.

Inputs that kill a worker are quarantined to the on-disk crasher corpus
(:mod:`repro.service.quarantine`) before the retry, so a poisonous
input caught in production is a replayable artifact, not a log line.

The supervisor itself is defended: its loop runs under a blanket
handler that, on an unexpected internal error, resolves every
outstanding request with ``ServiceClosed`` and kills the pool — the
no-hung-caller contract survives supervisor bugs too.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import shutil
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _mp_wait
from typing import Dict, List, Optional

from ..core.errors import (
    DeadlineExceeded,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    WorkerCrashed,
)
from .config import ServiceConfig
from .quarantine import QuarantineCorpus
from .wire import config_error_from_wire, failure_from_wire, spool_write
from .worker import worker_main

__all__ = ["ParseService", "ServiceResult", "parse_many"]


@dataclass
class ServiceResult:
    """One reply from the service — exactly one per submitted request.

    ``kind`` is ``"tree"``, ``"spans"``, ``"ok"`` (validate-only),
    ``"recovered"``, ``"chaos"`` (a completed chaos directive) or
    ``"error"``.  Trees and recovered documents are jsonable structures
    (:func:`~repro.core.parsetree.tree_to_jsonable` /
    :func:`~repro.core.recover.document_to_jsonable`) — wire-safe
    copies, never views into worker memory.  ``error`` carries the
    reconstructed taxonomy exception: a
    :class:`~repro.core.errors.ParseFailure` subclass for input
    verdicts, a :class:`~repro.core.errors.ServiceError` subclass for
    machinery verdicts.
    """

    request_id: int
    kind: str
    tree: Optional[dict] = None
    document: Optional[dict] = None
    root: Optional[str] = None
    env: Optional[dict] = None
    error: Optional[Exception] = None
    elapsed_ms: Optional[float] = None
    worker_pid: Optional[int] = None
    retried: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_for_status(self) -> "ServiceResult":
        if self.error is not None:
            raise self.error
        return self


@dataclass
class _Request:
    id: int
    msg: dict                      # wire message (sans routing fields)
    deadline_ms: int
    retries_left: int
    future: Future = field(default_factory=Future)
    inline_data: Optional[bytes] = None
    spool_path: Optional[str] = None
    spool_length: int = 0
    quarantinable: bool = True
    retried: bool = False
    quarantined: bool = False

    def read_data(self) -> Optional[bytes]:
        """The input bytes, for quarantine (reads the spool file back)."""
        if self.inline_data is not None:
            return self.inline_data
        if self.spool_path is not None:
            try:
                with open(self.spool_path, "rb") as handle:
                    return handle.read()
            except OSError:
                return None
        return None


@dataclass
class _WorkerSlot:
    index: int
    proc: Optional[multiprocessing.process.BaseProcess] = None
    conn: object = None
    busy: Optional[_Request] = None
    attempt_deadline: float = 0.0
    consecutive_failures: int = 0
    respawn_at: Optional[float] = None
    spawned: int = 0


class ParseService:
    """A supervised worker pool answering parse requests under deadlines.

    In-process batch API::

        with ParseService(workers=2) as service:
            future = service.submit(data, format="dns", deadline_ms=500)
            result = future.result()       # ServiceResult, never hangs
            if result.ok:
                use(result.tree)

    Construction kwargs are :class:`~repro.service.config.ServiceConfig`
    fields (or pass ``config=`` explicitly).  See the module docstring
    for the failure semantics.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        if config is None:
            config = ServiceConfig(**overrides)
        elif overrides:
            config = config.with_overrides(**overrides)
        self.config = config
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        self._spool_dir = tempfile.mkdtemp(
            prefix="repro-svc-", dir=config.spool_root
        )
        self._quarantine = (
            QuarantineCorpus(config.quarantine_dir)
            if config.quarantine_dir
            else None
        )
        self._lock = threading.Lock()
        self._pending: deque = deque()
        self._slots: List[_WorkerSlot] = [
            _WorkerSlot(index) for index in range(config.workers)
        ]
        self._next_id = 0
        self._closed = False
        self._torn_down = False
        self._rng = random.Random(config.seed)
        self._ewma_ms = float(config.default_deadline_ms) / 4.0
        self._stats: Dict[str, int] = {
            key: 0
            for key in (
                "submitted",
                "completed",
                "parse_errors",
                "service_errors",
                "crashes",
                "deadline_kills",
                "retries",
                "respawns",
                "shed",
                "quarantined",
            )
        }
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        with self._lock:
            for slot in self._slots:
                self._spawn_locked(slot)
        self._thread = threading.Thread(
            target=self._run, name="repro-service-supervisor", daemon=True
        )
        self._thread.start()

    # -- public API --------------------------------------------------------

    def submit(
        self,
        data,
        *,
        format: Optional[str] = None,
        grammar: Optional[str] = None,
        deadline_ms: Optional[int] = None,
        emit: str = "tree",
        recover: bool = False,
        max_errors: Optional[int] = None,
        retries: Optional[int] = None,
    ) -> Future:
        """Queue one parse request; returns a ``Future[ServiceResult]``.

        Exactly one of ``format`` (a bundled format name) or ``grammar``
        (IPG source text) selects the grammar.  ``deadline_ms`` is the
        per-attempt wall-clock budget (service default when omitted).
        ``recover=True`` routes through ``parse_recover`` and returns a
        recovered document instead of failing on hostile input.

        Raises :class:`~repro.core.errors.ServiceOverloaded` when the
        bounded queue is full and
        :class:`~repro.core.errors.ServiceClosed` after ``close()``.
        The returned future itself never raises from ``result()`` — all
        failures are ``ServiceResult.error``.
        """
        if (format is None) == (grammar is None):
            raise ValueError("pass exactly one of format= or grammar=")
        if emit not in ("tree", "spans", None):
            raise ValueError('emit must be "tree", "spans", or None')
        if recover and emit != "tree":
            raise ValueError("recover=True implies emit='tree'")
        grammar_spec = ("format", format) if format else ("text", grammar)
        budget = self.config.default_deadline_ms if deadline_ms is None else deadline_ms
        if budget <= 0:
            raise ValueError("deadline_ms must be positive")
        msg = {
            "op": "parse",
            "grammar": grammar_spec,
            "emit": emit,
            "recover": recover,
            "max_errors": max_errors,
            "soft_deadline_ms": self.config.soft_deadline_ms(budget),
        }
        request = _Request(
            id=-1,  # assigned under the lock
            msg=msg,
            deadline_ms=budget,
            retries_left=self.config.retries if retries is None else retries,
        )
        return self._enqueue(request, data)

    def submit_chaos(
        self,
        mode: str,
        *,
        seconds: float = 0.0,
        deadline_ms: Optional[int] = None,
    ) -> Future:
        """Inject a fault directive (requires ``allow_chaos``).

        Chaos requests are never retried and never quarantined — the
        harness asserts the *service's* reaction, not the directive's
        success: ``exit``/``segv``/``oom``/``leak`` resolve to a
        ``WorkerCrashed`` error result, ``hang``/``spin`` to
        ``chaos-done`` or a ``DeadlineExceeded`` kill depending on the
        deadline.
        """
        if not self.config.allow_chaos:
            raise ServiceError("chaos directives require ServiceConfig.allow_chaos")
        budget = self.config.default_deadline_ms if deadline_ms is None else deadline_ms
        request = _Request(
            id=-1,
            msg={"op": "chaos", "mode": mode, "seconds": seconds},
            deadline_ms=budget,
            retries_left=0,
            quarantinable=False,
        )
        return self._enqueue(request, None)

    def stats(self) -> Dict[str, int]:
        """A snapshot of the service counters plus live gauges."""
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["pending"] = len(self._pending)
            snapshot["busy"] = sum(1 for s in self._slots if s.busy is not None)
            snapshot["workers_alive"] = sum(
                1 for s in self._slots if s.proc is not None and s.proc.is_alive()
            )
        return snapshot

    def audit(self) -> Dict[str, object]:
        """Leak/integrity audit (the chaos harness's convergence check)."""
        with self._lock:
            alive = [
                s.proc.pid
                for s in self._slots
                if s.proc is not None and s.proc.is_alive()
            ]
            pending = len(self._pending)
            busy = sum(1 for s in self._slots if s.busy is not None)
        try:
            spool_files = len(os.listdir(self._spool_dir))
        except OSError:
            spool_files = 0
        return {
            "expected_workers": self.config.workers,
            "alive_workers": len(alive),
            "worker_pids": alive,
            "pending": pending,
            "busy": busy,
            "spool_files": spool_files,
            "spool_dir": self._spool_dir,
        }

    def close(self, timeout: float = 60.0) -> None:
        """Drain pending requests, stop workers, remove the spool dir.

        Every outstanding future resolves before the pool is torn down
        (bounded by the per-request deadlines); idempotent.
        """
        with self._lock:
            already = self._closed
            self._closed = True
        self._wake()
        if not already:
            self._thread.join(timeout)
        self._teardown()

    def __enter__(self) -> "ParseService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- submission internals ---------------------------------------------

    def _enqueue(self, request: _Request, data) -> Future:
        with self._lock:
            if self._closed:
                raise ServiceClosed("the parse service is closed")
            if len(self._pending) >= self.config.max_pending:
                self._stats["shed"] += 1
                hint = self._retry_after_locked()
                raise ServiceOverloaded(
                    f"request queue full ({self.config.max_pending} pending); "
                    f"retry in ~{hint:.2f}s",
                    retry_after=hint,
                )
            self._next_id += 1
            request.id = self._next_id
            request.msg["id"] = request.id
            if data is not None:
                if len(data) <= self.config.inline_bytes_max:
                    request.inline_data = bytes(data)
                    request.msg["data"] = request.inline_data
                else:
                    request.spool_path = spool_write(
                        self._spool_dir, request.id, data
                    )
                    request.spool_length = len(data)
                    request.msg["spool"] = (request.spool_path, len(data))
            self._stats["submitted"] += 1
            self._pending.append(request)
        self._wake()
        return request.future

    def _retry_after_locked(self) -> float:
        per_request = max(self._ewma_ms, 1.0) / 1000.0
        backlog = len(self._pending) + sum(
            1 for s in self._slots if s.busy is not None
        )
        return max(0.05, backlog * per_request / max(1, self.config.workers))

    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass

    # -- worker lifecycle (all called with the lock held) ------------------

    def _spawn_locked(self, slot: _WorkerSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        payload = self.config.worker_payload()
        payload["spool_dir"] = self._spool_dir
        proc = self._ctx.Process(
            target=worker_main,
            args=(child_conn, payload),
            name=f"repro-parse-worker-{slot.index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # the parent's copy; the child keeps its own
        slot.proc = proc
        slot.conn = parent_conn
        slot.busy = None
        slot.respawn_at = None
        slot.spawned += 1
        if slot.spawned > 1:
            self._stats["respawns"] += 1

    def _backoff_locked(self, slot: _WorkerSlot) -> float:
        exponent = max(0, slot.consecutive_failures - 1)
        base = min(
            self.config.spawn_backoff_cap,
            self.config.spawn_backoff_base * (2**exponent),
        )
        return base * (1.0 + 0.25 * self._rng.random())

    def _retire_locked(self, slot: _WorkerSlot, now: float) -> None:
        """Drop a dead worker's handles and schedule its replacement."""
        if slot.conn is not None:
            try:
                slot.conn.close()
            except OSError:
                pass
        if slot.proc is not None:
            slot.proc.join(timeout=5)
        slot.proc = None
        slot.conn = None
        slot.consecutive_failures += 1
        slot.respawn_at = now + self._backoff_locked(slot)

    def _kill_locked(self, slot: _WorkerSlot) -> None:
        if slot.proc is not None and slot.proc.is_alive():
            slot.proc.kill()  # SIGKILL: hung workers ignore anything softer

    # -- request resolution ------------------------------------------------

    def _resolve_locked(self, request: _Request, result: ServiceResult) -> None:
        result.retried = request.retried
        self._release_spool(request)
        self._stats["completed"] += 1
        if result.error is not None:
            if isinstance(result.error, ServiceError):
                self._stats["service_errors"] += 1
            else:
                self._stats["parse_errors"] += 1
        if result.elapsed_ms is not None:
            self._ewma_ms = 0.8 * self._ewma_ms + 0.2 * result.elapsed_ms
        request.future.set_result(result)

    def _release_spool(self, request: _Request) -> None:
        if request.spool_path is not None:
            try:
                os.unlink(request.spool_path)
            except OSError:
                pass
            request.spool_path = None

    def _quarantine_locked(self, request: _Request, reason: str, **extra) -> None:
        if (
            self._quarantine is None
            or not request.quarantinable
            or request.quarantined
        ):
            return
        data = request.read_data()
        if data is None:
            return
        kind, ident = request.msg["grammar"]
        metadata = {
            "reason": reason,
            "grammar_kind": kind,
            "format": ident if kind == "format" else None,
            "grammar_text": ident if kind == "text" else None,
            "backend": self.config.backend,
            "deadline_ms": request.deadline_ms,
            "recover": bool(request.msg.get("recover")),
            "emit": request.msg.get("emit", "tree"),
            "blackbox_provider": self.config.blackbox_provider,
        }
        metadata.update(extra)
        if self._quarantine.add(data, metadata) is not None:
            self._stats["quarantined"] += 1
        request.quarantined = True

    def _fail_or_retry_locked(
        self, slot: _WorkerSlot, error: ServiceError, reason: str, **meta
    ) -> None:
        """A worker died (or was killed) with ``slot.busy`` in flight."""
        request = slot.busy
        slot.busy = None
        if request is None:
            return
        self._quarantine_locked(request, reason, **meta)
        if request.retries_left > 0:
            request.retries_left -= 1
            request.retried = True
            self._stats["retries"] += 1
            self._pending.appendleft(request)  # retried ahead of the queue
        else:
            self._resolve_locked(
                request, ServiceResult(request.id, "error", error=error)
            )

    def _reply_to_result(self, request: _Request, reply: dict) -> ServiceResult:
        kind = reply.get("kind")
        result = ServiceResult(
            request.id,
            kind or "error",
            elapsed_ms=reply.get("elapsed_ms"),
            worker_pid=reply.get("pid"),
        )
        if kind == "tree":
            result.tree = reply.get("tree")
        elif kind == "spans":
            result.root = reply.get("root")
            result.env = reply.get("env")
        elif kind == "recovered":
            result.document = reply.get("document")
        elif kind == "ok":
            pass
        elif kind == "chaos-done":
            result.kind = "chaos"
        elif kind == "parse-error":
            result.kind = "error"
            result.error = failure_from_wire(reply)
        elif kind == "grammar-error":
            result.kind = "error"
            result.error = config_error_from_wire(reply)
        else:  # worker-error or protocol surprise
            result.kind = "error"
            message = reply.get("message", "internal worker error")
            detail = reply.get("traceback")
            result.error = ServiceError(
                f"worker error: {message}"
                + (f"\n{detail}" if detail else "")
            )
        return result

    # -- the supervisor loop ------------------------------------------------

    def _run(self) -> None:
        try:
            self._loop()
        except BaseException as exc:  # noqa: BLE001 - defend the callers
            # Supervisor bug: honour the no-hung-caller contract anyway.
            with self._lock:
                self._closed = True
                failure = ServiceClosed(f"supervisor crashed: {exc!r}")
                for request in list(self._pending):
                    self._resolve_locked(
                        request, ServiceResult(request.id, "error", error=failure)
                    )
                self._pending.clear()
                for slot in self._slots:
                    if slot.busy is not None:
                        request = slot.busy
                        slot.busy = None
                        self._resolve_locked(
                            request,
                            ServiceResult(request.id, "error", error=failure),
                        )
                    self._kill_locked(slot)
            raise

    def _loop(self) -> None:
        while True:
            now = time.monotonic()
            with self._lock:
                self._respawn_due_locked(now)
                self._dispatch_locked(now)
                if self._finished_locked():
                    break
                waitables, timeout = self._wait_set_locked(now)
            ready = set(_mp_wait(waitables, timeout))
            now = time.monotonic()
            with self._lock:
                self._drain_wakeups(ready)
                self._collect_replies_locked(ready)
                self._collect_deaths_locked(ready, now)
                self._enforce_deadlines_locked(now)

    def _respawn_due_locked(self, now: float) -> None:
        for slot in self._slots:
            if slot.proc is not None or slot.respawn_at is None:
                continue
            # While closing, respawn only what draining still needs.
            if self._closed and not self._pending:
                continue
            if slot.respawn_at <= now:
                self._spawn_locked(slot)

    def _dispatch_locked(self, now: float) -> None:
        for slot in self._slots:
            if not self._pending:
                return
            if slot.proc is None or slot.busy is not None or not slot.proc.is_alive():
                continue
            request = self._pending.popleft()
            try:
                slot.conn.send(request.msg)
            except (BrokenPipeError, OSError):
                # Worker died between liveness check and send: recycle it
                # and put the request back for the next dispatch round.
                self._pending.appendleft(request)
                self._note_death_locked(slot, now)
                continue
            slot.busy = request
            slot.attempt_deadline = now + request.deadline_ms / 1000.0

    def _finished_locked(self) -> bool:
        if not self._closed:
            return False
        if self._pending:
            return False
        return all(slot.busy is None for slot in self._slots)

    def _wait_set_locked(self, now: float):
        waitables = [self._wake_r]
        deadlines = []
        for slot in self._slots:
            if slot.proc is not None:
                waitables.append(slot.proc.sentinel)
                if slot.busy is not None:
                    waitables.append(slot.conn)
                    deadlines.append(slot.attempt_deadline)
            elif slot.respawn_at is not None and (
                not self._closed or self._pending
            ):
                deadlines.append(slot.respawn_at)
        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        return waitables, timeout

    def _drain_wakeups(self, ready: set) -> None:
        if self._wake_r in ready:
            while self._wake_r.poll(0):
                try:
                    self._wake_r.recv_bytes()
                except (EOFError, OSError):
                    break

    def _collect_replies_locked(self, ready: set) -> None:
        for slot in self._slots:
            if slot.conn is None or slot.conn not in ready or slot.busy is None:
                continue
            try:
                if not slot.conn.poll(0):
                    continue
                reply = slot.conn.recv()
            except (EOFError, OSError):
                continue  # the sentinel handler classifies the death
            request = slot.busy
            if reply.get("id") != request.id:
                continue  # stale reply from a pre-kill request; drop it
            slot.busy = None
            slot.consecutive_failures = 0
            self._resolve_locked(request, self._reply_to_result(request, reply))

    def _collect_deaths_locked(self, ready: set, now: float) -> None:
        for slot in self._slots:
            if slot.proc is None or slot.proc.sentinel not in ready:
                continue
            if slot.proc.is_alive():
                continue
            self._note_death_locked(slot, now)

    def _note_death_locked(self, slot: _WorkerSlot, now: float) -> None:
        if slot.proc is not None:
            slot.proc.join(timeout=5)
        exitcode = slot.proc.exitcode if slot.proc is not None else None
        self._stats["crashes"] += 1
        if slot.busy is not None:
            self._fail_or_retry_locked(
                slot,
                WorkerCrashed(
                    f"worker died mid-request (exitcode {exitcode})",
                    exitcode=exitcode,
                ),
                reason="crash",
                exitcode=exitcode,
            )
        self._retire_locked(slot, now)
        self._sweep_spool_locked()

    def _sweep_spool_locked(self) -> None:
        """Remove spool files no live request owns.

        A crashing worker can strand files it created in the spool
        directory (the ``leak`` chaos mode does so deliberately); part
        of repairing after a death is reclaiming that space.  Request
        spool files are supervisor-owned and tracked, so anything not
        belonging to a pending or in-flight request is garbage.
        """
        owned = {
            request.spool_path
            for request in self._pending
            if request.spool_path is not None
        }
        for slot in self._slots:
            if slot.busy is not None and slot.busy.spool_path is not None:
                owned.add(slot.busy.spool_path)
        try:
            names = os.listdir(self._spool_dir)
        except OSError:
            return
        for name in names:
            path = os.path.join(self._spool_dir, name)
            if path not in owned:
                try:
                    os.unlink(path)
                except OSError:
                    pass

    def _enforce_deadlines_locked(self, now: float) -> None:
        for slot in self._slots:
            if slot.busy is None or slot.proc is None:
                continue
            if now < slot.attempt_deadline:
                continue
            request = slot.busy
            self._stats["deadline_kills"] += 1
            self._kill_locked(slot)
            self._fail_or_retry_locked(
                slot,
                DeadlineExceeded(
                    f"request {request.id} exceeded its "
                    f"{request.deadline_ms}ms deadline",
                    deadline_ms=request.deadline_ms,
                ),
                reason="deadline",
            )
            self._retire_locked(slot, now)

    # -- teardown -----------------------------------------------------------

    def _teardown(self) -> None:
        with self._lock:
            if self._torn_down:
                return
            self._torn_down = True
            slots = list(self._slots)
            # Anything the drain could not answer (supervisor died, join
            # timeout): resolve rather than strand.
            failure = ServiceClosed("the parse service is closed")
            for request in list(self._pending):
                self._resolve_locked(
                    request, ServiceResult(request.id, "error", error=failure)
                )
            self._pending.clear()
            for slot in slots:
                if slot.busy is not None:
                    request = slot.busy
                    slot.busy = None
                    self._resolve_locked(
                        request, ServiceResult(request.id, "error", error=failure)
                    )
        for slot in slots:
            if slot.proc is not None and slot.proc.is_alive():
                try:
                    slot.conn.send({"op": "shutdown"})
                except (BrokenPipeError, OSError, AttributeError):
                    pass
        deadline = time.monotonic() + 5.0
        for slot in slots:
            if slot.proc is None:
                continue
            slot.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join(timeout=5)
            if slot.conn is not None:
                try:
                    slot.conn.close()
                except OSError:
                    pass
            slot.proc = None
            slot.conn = None
        for pipe_end in (self._wake_r, self._wake_w):
            try:
                pipe_end.close()
            except OSError:
                pass
        shutil.rmtree(self._spool_dir, ignore_errors=True)


def parse_many(
    inputs,
    *,
    format: Optional[str] = None,
    grammar: Optional[str] = None,
    config: Optional[ServiceConfig] = None,
    **submit_kwargs,
):
    """Parse a batch through a temporary service; results in input order.

    Convenience wrapper: builds a :class:`ParseService` (from ``config``
    or defaults), submits every input — waiting out
    :class:`~repro.core.errors.ServiceOverloaded` backpressure instead
    of surfacing it — and returns the list of
    :class:`ServiceResult`.  Extra keyword arguments go to
    :meth:`ParseService.submit`.
    """
    with ParseService(config) as service:
        futures = []
        for data in inputs:
            while True:
                try:
                    futures.append(
                        service.submit(
                            data, format=format, grammar=grammar, **submit_kwargs
                        )
                    )
                    break
                except ServiceOverloaded as exc:
                    time.sleep(min(exc.retry_after or 0.05, 0.5))
        return [future.result() for future in futures]
