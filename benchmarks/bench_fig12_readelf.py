"""E4 — Figure 12c/12d: readelf, IPG-generated parser vs hand-written parser.

* *parsing time* (Figure 12d): the IPG ELF parse vs the struct-unpacking
  hand-written parse.
* *end-to-end time* (Figure 12c): parse + section-name resolution + report
  rendering (the work ``readelf -h -S --dyn-syms`` does) on both sides.
"""

import pytest

from repro.baselines.handwritten import elf as handwritten_elf
from repro.formats import elf

from conftest import ELF_SECTION_COUNTS, build_generated_parser


@pytest.fixture(scope="module")
def ipg_elf_parser():
    return build_generated_parser("elf")


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig12d_parse_ipg(benchmark, elf_series, ipg_elf_parser, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig12d-readelf-parse-{sections}"
    tree = benchmark(ipg_elf_parser.parse, binary)
    assert tree.child("H")["shnum"] == sections + 4


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig12d_parse_handwritten(benchmark, elf_series, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig12d-readelf-parse-{sections}"
    parsed = benchmark(handwritten_elf.parse, binary)
    assert parsed.header["shnum"] == sections + 4


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig12c_end_to_end_ipg(benchmark, elf_series, ipg_elf_parser, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig12c-readelf-endtoend-{sections}"

    def readelf_with_ipg():
        tree = ipg_elf_parser.parse(binary)
        return elf.render_readelf(elf.summarize(tree, binary))

    report = benchmark(readelf_with_ipg)
    assert "Section Headers:" in report


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig12c_end_to_end_handwritten(benchmark, elf_series, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig12c-readelf-endtoend-{sections}"
    report = benchmark(handwritten_elf.run_readelf, binary)
    assert "Section Headers:" in report


def test_fig12_reports_agree(elf_series, ipg_elf_parser):
    """Correctness side condition: both pipelines report the same sections."""
    binary = elf_series[ELF_SECTION_COUNTS[0]]
    ipg_summary = elf.summarize(ipg_elf_parser.parse(binary), binary)
    baseline = handwritten_elf.parse(binary)
    assert [s.offset for s in ipg_summary.sections] == [
        sh["offset"] for sh in baseline.section_headers
    ]


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig12d_parse_ipg_compiled(benchmark, elf_series, compiled_parsers, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig12d-readelf-parse-{sections}"
    tree = benchmark(compiled_parsers["elf"].parse, binary)
    assert tree.child("H")["shnum"] == sections + 4


@pytest.mark.parametrize("sections", ELF_SECTION_COUNTS)
def test_fig12d_parse_ipg_interpreted(benchmark, elf_series, interpreted_parsers, sections):
    binary = elf_series[sections]
    benchmark.group = f"fig12d-readelf-parse-{sections}"
    tree = benchmark(interpreted_parsers["elf"].parse, binary)
    assert tree.child("H")["shnum"] == sections + 4
