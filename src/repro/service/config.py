"""Configuration for the fault-tolerant parse service.

One frozen dataclass holds every policy knob the supervisor and its
workers share — pool size, queue bound, deadline and retry policy,
respawn backoff, payload shipping thresholds, quarantine and chaos
switches — so a :class:`~repro.service.ParseService` is reproducible
from its config alone (the chaos harness and the benchmark both rely on
that: same config + same seed = same schedule).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..core.limits import ParseLimits

#: Directory whose files live in RAM on Linux; spool files placed here
#: make the "shared memory" payload path literal.  Falls back to the
#: regular temp dir on hosts without it.
SHM_DIR = "/dev/shm"


def default_spool_root() -> str:
    """Where per-service spool directories are created."""
    if os.path.isdir(SHM_DIR) and os.access(SHM_DIR, os.W_OK):
        return SHM_DIR
    return tempfile.gettempdir()


@dataclass(frozen=True)
class ServiceConfig:
    """Policy for one :class:`~repro.service.ParseService`.

    ``workers``
        Worker processes in the pool.
    ``max_pending``
        Bound on queued (not yet dispatched) requests.  A ``submit``
        beyond it is shed with
        :class:`~repro.core.errors.ServiceOverloaded` instead of
        buffering unboundedly.
    ``default_deadline_ms``
        Per-attempt wall-clock deadline when a request does not carry
        its own.  On expiry the worker is SIGKILLed and the request is
        retried (see ``retries``) before degrading to
        :class:`~repro.core.errors.DeadlineExceeded`.
    ``soft_deadline_fraction``
        Share of the deadline handed to the worker as an in-process
        :attr:`~repro.core.limits.ParseLimits.max_wall_ms` budget, so a
        slow *parse* fails structurally (``LimitExceeded(limit="wall")``)
        without costing a worker respawn; the SIGKILL hard deadline
        remains the backstop for hangs the fuel checks cannot see
        (sleeping blackboxes, pathological native calls).
    ``retries``
        How many times a request is re-dispatched to a fresh worker
        after a crash or deadline kill before degrading to a
        ``ServiceError`` reply.
    ``spawn_backoff_base`` / ``spawn_backoff_cap`` / ``seed``
        Exponential respawn backoff for crash-looping workers:
        ``min(cap, base * 2**(consecutive_failures - 1))`` plus up to
        25% seeded jitter (decorrelates a pool of workers all killed by
        the same poisonous input).
    ``inline_bytes_max``
        Payloads at most this many bytes ride the request pipe; larger
        ones are spooled to a shared-memory-backed file the worker maps
        read-only (zero-copy: the engines parse the ``mmap`` directly).
    ``spool_root``
        Parent directory for the service's private spool directory
        (default ``/dev/shm`` when present).
    ``quarantine_dir``
        When set, inputs that crashed or deadline-killed a worker are
        written to this on-disk crasher corpus
        (:class:`~repro.service.quarantine.QuarantineCorpus`), deduped
        by content hash and replayable via
        ``tools/fuzz_parsers.py --replay-quarantine``.
    ``blackbox_provider``
        Optional ``"module:attribute"`` path resolving to a dict (or a
        zero-argument callable returning one) of blackbox name →
        callable, imported inside each worker and applied to ad-hoc
        grammar requests.  A string rather than callables so it
        survives the process boundary and the quarantine metadata.
    ``allow_chaos``
        Accept fault-injection directives (``submit_chaos``).  Off by
        default; the chaos harness and tests opt in.
    ``backend``
        Parse engine workers use (``"compiled"``, ``"interpreted"``,
        ``"tablevm"``).
    ``limits``
        Base :class:`~repro.core.limits.ParseLimits` for worker parses
        (``max_wall_ms`` is overridden per request from the deadline).
    """

    workers: int = 2
    max_pending: int = 256
    default_deadline_ms: int = 10_000
    soft_deadline_fraction: float = 0.8
    retries: int = 1
    spawn_backoff_base: float = 0.05
    spawn_backoff_cap: float = 2.0
    seed: int = 0
    inline_bytes_max: int = 16 * 1024
    spool_root: str = field(default_factory=default_spool_root)
    quarantine_dir: Optional[str] = None
    blackbox_provider: Optional[str] = None
    allow_chaos: bool = False
    backend: str = "compiled"
    limits: Optional[ParseLimits] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        if not (0.0 < self.soft_deadline_fraction <= 1.0):
            raise ValueError("soft_deadline_fraction must be in (0, 1]")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    def soft_deadline_ms(self, deadline_ms: int) -> int:
        """The in-worker wall budget for a ``deadline_ms`` request."""
        return max(1, int(deadline_ms * self.soft_deadline_fraction))

    def worker_payload(self) -> Dict[str, object]:
        """The picklable subset a worker process needs."""
        return {
            "backend": self.backend,
            "blackbox_provider": self.blackbox_provider,
            "allow_chaos": self.allow_chaos,
            "limits": self.limits,
        }

    def with_overrides(self, **overrides) -> "ServiceConfig":
        return replace(self, **overrides)
