"""Attribute checking and term reordering (section 3.2 of the paper).

Attribute checking ensures two properties:

1. every attribute reference refers to a properly defined attribute, and
2. there are no circular definitions among the terms of an alternative.

For property 1 the checker computes ``def(A)`` — the attributes defined in
*all* alternatives of ``A``'s rule (plus the special attributes ``start``,
``end`` and ``EOI``) — and verifies every ``B.id`` / ``B(e).id`` reference
against ``def(B)`` and every plain ``id`` against the attributes and loop
variables visible in the referencing alternative (including the enclosing
alternative for local ``where`` rules).

For property 2 the checker builds, per alternative, a dependency graph whose
vertices are the alternative's terms, with an edge from a *defining* term to
every term that references one of its attributes.  The graph must be a DAG;
the terms are then reordered by a stable topological sort so that
definitions execute before uses — this is what allows the "backward
dependencies" of section 3.2 (``B1[0, B2.a] B2[a1, EOI] {a1=2}``) while the
interpreter still evaluates strictly left to right.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .ast import (
    Alternative,
    Grammar,
    Rule,
    Term,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .builtins import builtin_attrs, is_builtin
from .errors import AttributeCheckError
from .expr import Dot, Exists, Expr, Index, Name
from .parsetree import SPECIAL_ATTRS


# ---------------------------------------------------------------------------
# Reference extraction
# ---------------------------------------------------------------------------


class Reference:
    """A single attribute reference occurring in an expression."""

    __slots__ = ("kind", "nonterminal", "attr")

    def __init__(self, kind: str, nonterminal: Optional[str], attr: str):
        self.kind = kind  # "name" | "dot" | "index"
        self.nonterminal = nonterminal
        self.attr = attr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "name":
            return f"Ref({self.attr})"
        return f"Ref({self.nonterminal}.{self.attr})"


def collect_references(expr: Expr, bound: Optional[Set[str]] = None) -> List[Reference]:
    """Collect all attribute references in ``expr``.

    ``bound`` holds variables bound by enclosing existentials; references to
    them are not free and are skipped.
    """
    bound = set(bound or ())
    refs: List[Reference] = []
    _collect(expr, bound, refs)
    return refs


def _collect(expr: Expr, bound: Set[str], refs: List[Reference]) -> None:
    from .expr import BinOp, Cond  # local import keeps the module graph simple

    if isinstance(expr, Name):
        if expr.ident not in bound and expr.ident != "EOI":
            refs.append(Reference("name", None, expr.ident))
    elif isinstance(expr, Dot):
        refs.append(Reference("dot", expr.nonterminal, expr.attr))
    elif isinstance(expr, Index):
        refs.append(Reference("index", expr.nonterminal, expr.attr))
        _collect(expr.index, bound, refs)
    elif isinstance(expr, Exists):
        inner_bound = bound | {expr.var}
        _collect(expr.condition, inner_bound, refs)
        _collect(expr.then, inner_bound, refs)
        _collect(expr.otherwise, inner_bound, refs)
    elif isinstance(expr, BinOp):
        _collect(expr.left, bound, refs)
        _collect(expr.right, bound, refs)
    elif isinstance(expr, Cond):
        _collect(expr.condition, bound, refs)
        _collect(expr.then, bound, refs)
        _collect(expr.otherwise, bound, refs)
    # Num has no references.


def term_expressions(term: Term) -> List[Tuple[Expr, Set[str]]]:
    """All expressions occurring in ``term`` with their bound loop variables."""
    out: List[Tuple[Expr, Set[str]]] = []
    if isinstance(term, (TermTerminal, TermNonterminal)):
        interval = term.interval
        for expr in (interval.left, interval.right, interval.length):
            if expr is not None:
                out.append((expr, set()))
    elif isinstance(term, TermAttrDef):
        out.append((term.expr, set()))
    elif isinstance(term, TermGuard):
        out.append((term.expr, set()))
    elif isinstance(term, TermArray):
        out.append((term.start, set()))
        out.append((term.stop, set()))
        bound = {term.var}
        interval = term.element.interval
        for expr in (interval.left, interval.right, interval.length):
            if expr is not None:
                out.append((expr, set(bound)))
    elif isinstance(term, TermSwitch):
        for case in term.cases:
            if case.condition is not None:
                out.append((case.condition, set()))
            interval = case.target.interval
            for expr in (interval.left, interval.right, interval.length):
                if expr is not None:
                    out.append((expr, set()))
    return out


def term_references(term: Term) -> List[Reference]:
    """All attribute references of ``term`` (loop variables excluded)."""
    refs: List[Reference] = []
    for expr, bound in term_expressions(term):
        refs.extend(collect_references(expr, bound))
    if isinstance(term, TermArray):
        # References to the loop variable inside the element interval are
        # bound by the array term itself.
        refs = [r for r in refs if not (r.kind == "name" and r.attr == term.var)]
    return refs


def provided_nonterminals(term: Term) -> List[str]:
    """Nonterminal names whose attributes become referencable after ``term``."""
    if isinstance(term, TermNonterminal):
        return [term.name]
    if isinstance(term, TermArray):
        return [term.element.name]
    if isinstance(term, TermSwitch):
        return term.possible_nonterminals()
    return []


# ---------------------------------------------------------------------------
# def(A) computation
# ---------------------------------------------------------------------------


def defined_attributes(rule: Rule) -> Set[str]:
    """``def(A)``: attributes defined in *all* alternatives of the rule."""
    per_alternative: List[Set[str]] = []
    for alternative in rule.alternatives:
        names: Set[str] = set()
        for term in alternative.terms:
            names |= term.defines()
        per_alternative.append(names)
    common = set.intersection(*per_alternative) if per_alternative else set()
    return common | set(SPECIAL_ATTRS)


class DefMap:
    """Lookup table of ``def(A)`` for every nonterminal visible in a grammar."""

    def __init__(self, grammar: Grammar):
        self.grammar = grammar
        self._defs: Dict[str, Set[str]] = {}
        for rule, _parent in grammar.iter_all_rules():
            self._defs[rule.name] = defined_attributes(rule)

    def lookup(self, name: str) -> Optional[Set[str]]:
        """Return ``def(name)`` or ``None`` when unknown (blackbox parsers)."""
        if name in self._defs:
            return self._defs[name]
        if is_builtin(name):
            return set(builtin_attrs(name)) | set(SPECIAL_ATTRS)
        if name in self.grammar.blackboxes:
            return None  # unknown: attribute checking is delegated to the user
        return None

    def is_known_nonterminal(self, name: str) -> bool:
        return (
            name in self._defs
            or is_builtin(name)
            or name in self.grammar.blackboxes
        )


# ---------------------------------------------------------------------------
# Checking
# ---------------------------------------------------------------------------


class _Scope:
    """Names and nonterminals visible to an alternative (with outer scopes)."""

    def __init__(
        self,
        names: Set[str],
        nonterminals: Set[str],
        arrays: Set[str],
        outer: Optional["_Scope"] = None,
    ):
        self.names = names
        self.nonterminals = nonterminals
        self.arrays = arrays
        self.outer = outer

    def has_name(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return True
            scope = scope.outer
        return False

    def has_nonterminal(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.nonterminals:
                return True
            scope = scope.outer
        return False

    def has_array(self, name: str) -> bool:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.arrays:
                return True
            scope = scope.outer
        return False


def check_grammar(grammar: Grammar) -> Grammar:
    """Run attribute checking and term reordering on ``grammar`` in place."""
    if grammar.checked:
        return grammar
    defmap = DefMap(grammar)
    for rule in grammar.iter_rules():
        _check_rule(grammar, rule, defmap, outer_scope=None, local_rules={})
    grammar.checked = True
    return grammar


def _alternative_scope(alternative: Alternative, outer: Optional[_Scope]) -> _Scope:
    names: Set[str] = {"EOI"} | set(SPECIAL_ATTRS)
    nonterminals: Set[str] = set()
    arrays: Set[str] = set()
    for term in alternative.terms:
        names |= term.defines()
        for provided in provided_nonterminals(term):
            nonterminals.add(provided)
        if isinstance(term, TermArray):
            arrays.add(term.element.name)
            names.add(term.var)
    return _Scope(names, nonterminals, arrays, outer)


def _check_rule(
    grammar: Grammar,
    rule: Rule,
    defmap: DefMap,
    outer_scope: Optional[_Scope],
    local_rules: Dict[str, Rule],
) -> None:
    for alternative in rule.alternatives:
        scope = _alternative_scope(alternative, outer_scope)
        visible_locals = dict(local_rules)
        for local in alternative.local_rules:
            visible_locals[local.name] = local
        _check_alternative(grammar, rule.name, alternative, defmap, scope, visible_locals)
        _reorder_alternative(rule.name, alternative)
        for local in alternative.local_rules:
            _check_rule(grammar, local, defmap, scope, visible_locals)


def _check_alternative(
    grammar: Grammar,
    rule_name: str,
    alternative: Alternative,
    defmap: DefMap,
    scope: _Scope,
    local_rules: Dict[str, Rule],
) -> None:
    local_rule_names = set(local_rules)
    for term in alternative.terms:
        # Every nonterminal used by the term must have a definition somewhere.
        for used in _used_nonterminals(term):
            if used in local_rule_names:
                continue
            if not defmap.is_known_nonterminal(used):
                raise AttributeCheckError(
                    f"rule {rule_name!r} uses undefined nonterminal {used!r}"
                )
        for reference in term_references(term):
            _check_reference(rule_name, reference, defmap, scope, local_rule_names)


def _used_nonterminals(term: Term) -> List[str]:
    if isinstance(term, TermNonterminal):
        return [term.name]
    if isinstance(term, TermArray):
        return [term.element.name]
    if isinstance(term, TermSwitch):
        return term.possible_nonterminals()
    return []


def _check_reference(
    rule_name: str,
    reference: Reference,
    defmap: DefMap,
    scope: _Scope,
    local_rule_names: Set[str],
) -> None:
    if reference.kind == "name":
        if not scope.has_name(reference.attr):
            raise AttributeCheckError(
                f"rule {rule_name!r} references undefined attribute {reference.attr!r}"
            )
        return
    nonterminal = reference.nonterminal
    assert nonterminal is not None
    if not scope.has_nonterminal(nonterminal) and nonterminal not in local_rule_names:
        raise AttributeCheckError(
            f"rule {rule_name!r} references {nonterminal}.{reference.attr} but "
            f"{nonterminal!r} does not appear in the same alternative"
        )
    if reference.kind == "index" and not scope.has_array(nonterminal):
        raise AttributeCheckError(
            f"rule {rule_name!r} uses array reference {nonterminal}(...) but "
            f"{nonterminal!r} is not the element of a for-term in scope"
        )
    if reference.attr in SPECIAL_ATTRS:
        return
    defined = defmap.lookup(nonterminal)
    if defined is None:
        return  # blackbox or locally scoped rule checked elsewhere
    if reference.attr not in defined:
        raise AttributeCheckError(
            f"rule {rule_name!r} references {nonterminal}.{reference.attr} but "
            f"def({nonterminal}) = {sorted(defined - set(SPECIAL_ATTRS))}"
        )


# ---------------------------------------------------------------------------
# Dependency graph and reordering
# ---------------------------------------------------------------------------


def _reorder_alternative(rule_name: str, alternative: Alternative) -> None:
    """Topologically reorder the terms of ``alternative`` (stable)."""
    if alternative.reordered:
        return
    terms = alternative.terms
    edges = dependency_edges(terms)
    order = _stable_topological_order(len(terms), edges)
    if order is None:
        raise AttributeCheckError(
            f"circular attribute dependencies in an alternative of rule {rule_name!r}"
        )
    alternative.terms = [terms[i] for i in order]
    alternative.reordered = True


def dependency_edges(terms: Sequence[Term]) -> Set[Tuple[int, int]]:
    """Edges ``(definer, user)`` between term indices of one alternative."""
    definers_of_attr: Dict[str, int] = {}
    providers_of_nt: Dict[str, List[int]] = {}
    loop_vars: Dict[str, int] = {}
    for position, term in enumerate(terms):
        for attr in term.defines():
            definers_of_attr[attr] = position
        for provided in provided_nonterminals(term):
            providers_of_nt.setdefault(provided, []).append(position)
        if isinstance(term, TermArray):
            loop_vars[term.var] = position

    edges: Set[Tuple[int, int]] = set()
    for position, term in enumerate(terms):
        for reference in term_references(term):
            if reference.kind == "name":
                definer = definers_of_attr.get(reference.attr)
                if definer is None:
                    definer = loop_vars.get(reference.attr)
                if definer is not None and definer != position:
                    edges.add((definer, position))
            else:
                providers = providers_of_nt.get(reference.nonterminal or "", [])
                if not providers:
                    continue
                # Prefer the closest preceding provider; otherwise the closest
                # following one (backward dependency — forces reordering).
                preceding = [p for p in providers if p < position]
                chosen = max(preceding) if preceding else min(providers)
                if chosen != position:
                    edges.add((chosen, position))
    return edges


def _stable_topological_order(count: int, edges: Set[Tuple[int, int]]) -> Optional[List[int]]:
    """Kahn's algorithm preferring the original order among ready vertices."""
    successors: Dict[int, List[int]] = {i: [] for i in range(count)}
    indegree = [0] * count
    for definer, user in edges:
        successors[definer].append(user)
        indegree[user] += 1
    ready = sorted(i for i in range(count) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        current = ready.pop(0)
        order.append(current)
        changed = False
        for succ in successors[current]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
                changed = True
        if changed:
            ready.sort()
    if len(order) != count:
        return None
    return order
