"""Unit tests for the IPG surface-syntax parser (text → AST)."""

import pytest

from repro.core.ast import (
    INTERVAL_EXPLICIT,
    INTERVAL_IMPLICIT,
    INTERVAL_LENGTH,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from repro.core.errors import GrammarSyntaxError, IPGError
from repro.core.expr import BinOp, Cond, Dot, Exists, Index, Name, Num
from repro.core.grammar_parser import parse_expression, parse_grammar


class TestRuleStructure:
    def test_single_rule(self):
        grammar = parse_grammar('S -> "a"[0, 1] ;')
        assert grammar.start == "S"
        assert grammar.nonterminals() == ["S"]
        assert len(grammar.rule("S").alternatives) == 1

    def test_multiple_rules_first_is_start(self):
        grammar = parse_grammar('A -> "a" ; B -> "b" ;')
        assert grammar.start == "A"
        assert set(grammar.nonterminals()) == {"A", "B"}

    def test_alternatives_are_ordered(self):
        grammar = parse_grammar('S -> "a"[0, 1] / "b"[0, 1] / "c"[0, 1] ;')
        assert len(grammar.rule("S").alternatives) == 3

    def test_duplicate_rule_rejected(self):
        with pytest.raises(IPGError):
            parse_grammar('S -> "a" ; S -> "b" ;')

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("   // nothing here\n")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar('S -> "a"[0, 1]')

    def test_blackbox_declaration(self):
        grammar = parse_grammar('blackbox Decompress ;\nS -> Decompress[0, EOI] ;')
        assert grammar.blackboxes == {"Decompress"}

    def test_empty_alternative_allowed(self):
        grammar = parse_grammar('S -> "a"[0, 1] / ;')
        assert len(grammar.rule("S").alternatives) == 2
        assert grammar.rule("S").alternatives[1].terms == []


class TestTerms:
    def test_terminal_with_interval(self):
        grammar = parse_grammar('S -> "ab"[1, 3] ;')
        term = grammar.rule("S").alternatives[0].terms[0]
        assert isinstance(term, TermTerminal)
        assert term.value == b"ab"
        assert term.interval.form == INTERVAL_EXPLICIT
        assert term.interval.left == Num(1)
        assert term.interval.right == Num(3)

    def test_terminal_without_interval_is_implicit(self):
        grammar = parse_grammar('S -> "ab" ;')
        term = grammar.rule("S").alternatives[0].terms[0]
        assert term.interval.form == INTERVAL_IMPLICIT

    def test_nonterminal_with_length_interval(self):
        grammar = parse_grammar("S -> A[10] ; A -> Raw ;")
        term = grammar.rule("S").alternatives[0].terms[0]
        assert isinstance(term, TermNonterminal)
        assert term.interval.form == INTERVAL_LENGTH
        assert term.interval.length == Num(10)

    def test_attribute_definition(self):
        grammar = parse_grammar("S -> {x = 1 + 2} ;")
        term = grammar.rule("S").alternatives[0].terms[0]
        assert isinstance(term, TermAttrDef)
        assert term.name == "x"
        assert isinstance(term.expr, BinOp)

    def test_guard(self):
        grammar = parse_grammar("S -> guard(EOI > 0) ;")
        term = grammar.rule("S").alternatives[0].terms[0]
        assert isinstance(term, TermGuard)

    def test_array_term(self):
        grammar = parse_grammar("S -> for i = 0 to 10 do A[i, i + 1] ; A -> Raw ;")
        term = grammar.rule("S").alternatives[0].terms[0]
        assert isinstance(term, TermArray)
        assert term.var == "i"
        assert term.element.name == "A"

    def test_switch_term(self):
        grammar = parse_grammar(
            "S -> {t = 1} switch(t = 1 : A[0, 1] / t = 2 : B[0, 1] / C[0, 1]) ; "
            "A -> Raw ; B -> Raw ; C -> Raw ;"
        )
        term = grammar.rule("S").alternatives[0].terms[1]
        assert isinstance(term, TermSwitch)
        assert len(term.cases) == 3
        assert term.cases[0].condition is not None
        assert term.cases[-1].condition is None

    def test_switch_default_must_be_last(self):
        with pytest.raises(GrammarSyntaxError):
            parse_grammar("S -> switch(A[0, 1] / t = 2 : B[0, 1]) ; A -> Raw ; B -> Raw ;")

    def test_where_clause_introduces_local_rules(self):
        grammar = parse_grammar(
            "S -> A[0, 4] D[0, EOI] where { D -> A[0, EOI] ; E -> A[0, 1] ; } ; A -> Raw ;"
        )
        alternative = grammar.rule("S").alternatives[0]
        assert alternative.local_rule_names() == {"D", "E"}

    def test_roundtrip_to_source(self):
        text = 'S -> "aa"[0, 2] B[EOI - 2, EOI] {x = 1} guard(x > 0) ; B -> Raw[0, EOI] ;'
        grammar = parse_grammar(text)
        regenerated = parse_grammar(grammar.to_source())
        assert regenerated.to_source() == grammar.to_source()


class TestExpressions:
    def test_number(self):
        assert parse_expression("42") == Num(42)

    def test_name_and_eoi(self):
        assert parse_expression("x") == Name("x")
        assert parse_expression("EOI") == Name("EOI")

    def test_dot_reference(self):
        assert parse_expression("A.val") == Dot("A", "val")
        assert parse_expression("A.end") == Dot("A", "end")

    def test_indexed_reference(self):
        expr = parse_expression("SH(i + 1).ofs")
        assert isinstance(expr, Index)
        assert expr.nonterminal == "SH"
        assert expr.attr == "ofs"

    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinOp) and expr.op == "+"
        assert isinstance(expr.right, BinOp) and expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, BinOp) and expr.op == "*"

    def test_comparison_and_logic(self):
        expr = parse_expression("a > 0 && a < 10")
        assert isinstance(expr, BinOp) and expr.op == "&&"

    def test_ternary(self):
        expr = parse_expression("x = 0 ? 1 : 2")
        assert isinstance(expr, Cond)

    def test_nested_ternary_is_right_associative(self):
        expr = parse_expression("a ? 1 : b ? 2 : 3")
        assert isinstance(expr, Cond)
        assert isinstance(expr.otherwise, Cond)

    def test_exists(self):
        expr = parse_expression("exists j . OH(j).link = 0 ? OH(j).len : -1")
        assert isinstance(expr, Exists)
        assert expr.var == "j"

    def test_exists_requires_ternary_body(self):
        with pytest.raises(GrammarSyntaxError):
            parse_expression("exists j . j + 1")

    def test_unary_minus(self):
        assert parse_expression("-5") == Num(-5)

    def test_shift_and_bit_operations(self):
        expr = parse_expression("3 * (2 << (flags & 7))")
        assert isinstance(expr, BinOp) and expr.op == "*"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(GrammarSyntaxError):
            parse_expression("1 + 2 ;")

    def test_unknown_token_in_expression(self):
        with pytest.raises(GrammarSyntaxError):
            parse_expression("1 + )")
