"""Integration tests: every execution engine must agree.

The paper ships a parser generator and a combinator library that implement
the same semantics; PR 1 added the staged closure compiler and this PR the
ahead-of-time emitted modules.  All of them run through the cross-engine
matrix (``tests/engine_matrix.py``) against the reference interpreter on
the real format case studies and the paper's toy grammars.
"""

import pytest

from engine_matrix import format_sample, matrix_for
from repro import Parser
from repro.core.parsetree import tree_equal_modulo_specials
from repro.formats import registry, toy


def format_matrix(fmt):
    spec = registry[fmt]
    return matrix_for(spec.grammar_text, blackboxes=dict(spec.blackboxes))


class TestAllEnginesOnFormats:
    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_every_engine_matches_interpreter(self, fmt):
        # interpreter / compiled / nobulk / unoptimized-compiled / AOT —
        # plus streaming for the formats the §8 analysis accepts.
        outcome = format_matrix(fmt).assert_agree(format_sample(fmt))
        assert outcome[0] == "tree"

    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_every_engine_rejects_corrupted_input(self, fmt):
        sample = bytearray(format_sample(fmt))
        sample[0] ^= 0xFF
        format_matrix(fmt).assert_agree(bytes(sample))


class TestMemoizationConsistency:
    @pytest.mark.parametrize("fmt", ["gif", "pdf", "dns"])
    def test_memoized_and_unmemoized_trees_agree(self, fmt):
        spec = registry[fmt]
        sample = format_sample(fmt)
        memoized = Parser(spec.grammar_text, blackboxes=dict(spec.blackboxes), memoize=True)
        unmemoized = Parser(spec.grammar_text, blackboxes=dict(spec.blackboxes), memoize=False)
        assert memoized.parse(sample) == unmemoized.parse(sample)
        # ... and the unmemoized engines agree with each other too.
        matrix_for(
            spec.grammar_text, blackboxes=dict(spec.blackboxes), memoize=False
        ).assert_agree(sample)


class TestToyGrammarsAcrossEngines:
    @pytest.mark.parametrize("name", sorted(toy.ALL_GRAMMARS))
    def test_engines_agree_on_valid_and_invalid_inputs(self, name):
        matrix = matrix_for(toy.ALL_GRAMMARS[name])
        probes = [
            b"",
            b"\x00",
            b"aaabbbccc",
            b"1011",
            b"magic" + b"A" * 5 + b"B" * 10,
            b"1000stop",
            toy.build_figure_6_input([3, 5, 7]),
            toy.build_two_pass_input([4, 2]),
            toy.build_figure_2_input(),
            b"4096",
        ]
        for probe in probes:
            outcome = matrix.assert_agree(probe)
            if outcome[0] == "tree":
                # Belt and braces: the AOT module also agrees modulo specials.
                aot = matrix.aot.try_parse(probe) if matrix.aot else None
                if aot is not None:
                    assert tree_equal_modulo_specials(outcome[1], aot)


class TestNegativeShiftParity:
    def test_negative_shift_fails_alternative_on_all_engines(self):
        grammar = (
            "S -> U8[0, 1] {a = 0 - U8.val} {b = 1 << a} / U8[0, 1] {b = 42} ;"
        )
        data = b"\x02"
        outcome = matrix_for(grammar).assert_agree(data)
        assert outcome[0] == "tree"
        assert outcome[1]["b"] == 42
