"""Resource budgets for parsing hostile input (:class:`ParseLimits`).

The paper's pitch for interval parsing grammars is *safe* binary-format
parsing, but safety needs more than memory-safe slicing: a length-field
lie, a pointer cycle, or a deeply nested container can otherwise drive
unbounded recursion, unbounded memo/buffer growth, or an effectively
unbounded number of parse steps.  :class:`ParseLimits` is the single
knob bundle threaded through every engine:

* the reference interpreter checks depth/steps/nodes/memo size on rule
  entry and result construction,
* the staged compiler emits a shared counter-cell fuel check on rule
  entry (compiled out entirely when the budget is unlimited at compile
  time),
* ahead-of-time emitted modules vendor the step budget as a module
  global (`_MAX_STEPS`, adjustable via ``set_limits``),
* :class:`repro.core.streaming.StreamBuffer` enforces the buffered-byte
  cap on ``feed``.

Every tripped budget surfaces as :class:`repro.core.errors.LimitExceeded`
(a :class:`ParseFailure` subclass) naming the limit, never as a bare
``RecursionError``/``MemoryError`` stack trace.

A field set to ``None`` means "unlimited" for that resource;
:meth:`ParseLimits.unlimited` disables everything (the escape hatch for
trusted input or offline analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

__all__ = ["ParseLimits", "DEFAULT_LIMITS"]


@dataclass(frozen=True)
class ParseLimits:
    """Resource budgets applied to a single parse.

    The defaults are deliberately generous — two orders of magnitude
    above what the bundled format grammars need on realistic inputs —
    so they only trip on adversarial or wildly out-of-spec data:

    ``max_depth``
        Maximum rule-recursion depth (nested non-memoized rule
        activations).  The default matches the de-facto ceiling the
        interpreter already had via ``sys.setrecursionlimit``.
    ``max_steps``
        Fuel: total rule activations per parse attempt.  Bounds
        quadratic re-parsing blowups that finish "eventually".
    ``max_tree_nodes``
        Result nodes constructed per parse (tree mode).
    ``max_memo_entries``
        Packrat memo-table entries per parse.
    ``max_buffer_bytes``
        Bytes the streaming :class:`StreamBuffer` may hold at once
        (only reachable when compaction is on; with ``compact=False``
        the whole input is retained by design and counts too).
    ``max_wall_ms``
        Wall-clock budget per parse attempt, in milliseconds.  Checked
        at the existing amortized fuel-refill points (every 256 charged
        steps), so a well-behaved parse pays no extra per-rule cost and
        a runaway one is caught within one refill window.  Off by
        default: unlike the counters above it depends on machine speed,
        so it is an opt-in for deadline-driven callers (the parse
        service uses it as the in-process soft deadline).  Blackbox
        calls are not interrupted mid-flight — only parsing steps are
        charged — so a sleeping blackbox still needs an out-of-process
        hard deadline.
    """

    max_depth: Optional[int] = 10_000
    max_steps: Optional[int] = 50_000_000
    max_tree_nodes: Optional[int] = 20_000_000
    max_memo_entries: Optional[int] = 10_000_000
    max_buffer_bytes: Optional[int] = 64 * 1024 * 1024
    max_wall_ms: Optional[int] = None

    @classmethod
    def unlimited(cls) -> "ParseLimits":
        """Disable every budget (trusted input / offline analysis)."""
        return cls(
            max_depth=None,
            max_steps=None,
            max_tree_nodes=None,
            max_memo_entries=None,
            max_buffer_bytes=None,
            max_wall_ms=None,
        )

    @property
    def active(self) -> bool:
        """True when at least one budget is set."""
        return any(getattr(self, f.name) is not None for f in fields(self))

    def fuel(self) -> float:
        """Initial value for a step-budget counter cell (inf = unlimited)."""
        return float("inf") if self.max_steps is None else self.max_steps

    def deadline(self) -> float:
        """Monotonic deadline for the current attempt (inf = unlimited)."""
        if self.max_wall_ms is None:
            return float("inf")
        from time import monotonic

        return monotonic() + self.max_wall_ms / 1000.0

    def describe(self) -> str:
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            parts.append(f"{f.name}={'unlimited' if value is None else value}")
        return ", ".join(parts)


#: Shared default instance; ``Parser(limits=None)`` resolves to this.
DEFAULT_LIMITS = ParseLimits()
