"""Enumeration of elementary cycles in a directed graph.

Termination checking (section 5) enumerates all *elementary cycles* of the
nonterminal dependency graph — cycles that visit no vertex twice — and the
paper points to Johnson's algorithm [Johnson 1975] as the efficient way to do
it.  This module implements that algorithm from scratch (the repository does
not lean on networkx for it, though the test suite cross-checks against
networkx when available).

The graph representation is a mapping ``vertex -> iterable of successors``.
Vertices can be any hashable values; for termination checking they are
nonterminal names.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set

Vertex = Hashable
Graph = Dict[Vertex, Iterable[Vertex]]


def _normalize(graph: Graph) -> Dict[Vertex, List[Vertex]]:
    normalized: Dict[Vertex, List[Vertex]] = {}
    for vertex, successors in graph.items():
        normalized.setdefault(vertex, [])
        for succ in successors:
            normalized[vertex].append(succ)
            normalized.setdefault(succ, [])
    return normalized


def strongly_connected_components(graph: Graph) -> List[Set[Vertex]]:
    """Tarjan's algorithm, iterative to cope with deep grammars."""
    adjacency = _normalize(graph)
    index_counter = 0
    indices: Dict[Vertex, int] = {}
    lowlinks: Dict[Vertex, int] = {}
    on_stack: Set[Vertex] = set()
    stack: List[Vertex] = []
    components: List[Set[Vertex]] = []

    for root in adjacency:
        if root in indices:
            continue
        work = [(root, iter(adjacency[root]))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in indices:
                    indices[succ] = lowlinks[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlinks[vertex] = min(lowlinks[vertex], indices[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[vertex])
            if lowlinks[vertex] == indices[vertex]:
                component: Set[Vertex] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def elementary_cycles(graph: Graph) -> List[List[Vertex]]:
    """Return every elementary cycle of ``graph`` (Johnson 1975).

    Each cycle is returned as a list of vertices ``[v0, v1, ..., vk]`` with
    the convention that the cycle's edges are ``v0->v1, ..., vk->v0``.
    Self-loops are returned as single-element lists.
    """
    adjacency = _normalize(graph)
    # Impose a deterministic order on vertices so results are reproducible.
    ordering = {vertex: position for position, vertex in enumerate(sorted(adjacency, key=repr))}
    cycles: List[List[Vertex]] = []

    # Self-loops are found directly; Johnson's algorithm below works on the
    # graph without them.
    for vertex, successors in adjacency.items():
        if vertex in successors:
            cycles.append([vertex])
    adjacency = {
        vertex: [succ for succ in successors if succ != vertex]
        for vertex, successors in adjacency.items()
    }

    def unblock(vertex: Vertex, blocked: Set[Vertex], blocked_map: Dict[Vertex, Set[Vertex]]):
        stack = [vertex]
        while stack:
            current = stack.pop()
            if current in blocked:
                blocked.discard(current)
                stack.extend(blocked_map.pop(current, ()))

    remaining = dict(adjacency)
    while True:
        # Find the SCC containing the smallest-ordered vertex that still has
        # a cycle through it.
        components = [c for c in strongly_connected_components(remaining) if len(c) > 1]
        if not components:
            break
        component = min(components, key=lambda c: min(ordering[v] for v in c))
        start = min(component, key=lambda v: ordering[v])
        subgraph = {
            vertex: [succ for succ in remaining[vertex] if succ in component]
            for vertex in component
        }

        blocked: Set[Vertex] = set()
        blocked_map: Dict[Vertex, Set[Vertex]] = {}
        path: List[Vertex] = []

        def circuit(vertex: Vertex) -> bool:
            found = False
            path.append(vertex)
            blocked.add(vertex)
            for succ in subgraph[vertex]:
                if succ == start:
                    cycles.append(list(path))
                    found = True
                elif succ not in blocked:
                    if circuit(succ):
                        found = True
            if found:
                unblock(vertex, blocked, blocked_map)
            else:
                for succ in subgraph[vertex]:
                    blocked_map.setdefault(succ, set()).add(vertex)
            path.pop()
            return found

        circuit(start)
        # Remove the start vertex and continue with the rest of the graph.
        remaining = {
            vertex: [succ for succ in successors if succ != start]
            for vertex, successors in remaining.items()
            if vertex != start
        }

    cycles.sort(key=lambda cycle: (len(cycle), [ordering[v] for v in cycle]))
    return cycles


def recursive_vertices(graph: Graph) -> Set[Vertex]:
    """Vertices that lie on at least one cycle (self-loops included).

    A vertex is *recursive* when some path through the graph returns to it.
    The compiled backend (:mod:`repro.core.compiler`) uses this on the
    nonterminal dependency graph to elide packrat memo tables for rules
    that can never re-enter themselves: a non-recursive rule's memo can
    only be re-hit through backtracking, never through recursion, so
    skipping it trades the (bounded) risk of re-parsing for the per-call
    memo overhead.
    """
    adjacency = _normalize(graph)
    recursive: Set[Vertex] = {
        vertex for vertex, successors in adjacency.items() if vertex in successors
    }
    for component in strongly_connected_components(adjacency):
        if len(component) > 1:
            recursive |= component
    return recursive


def has_cycle(graph: Graph) -> bool:
    """Whether ``graph`` contains any cycle (including self-loops)."""
    adjacency = _normalize(graph)
    for vertex, successors in adjacency.items():
        if vertex in successors:
            return True
    return any(len(c) > 1 for c in strongly_connected_components(adjacency))


def cycle_edges(cycle: Sequence[Vertex]) -> List[tuple]:
    """Expand a cycle vertex list into its list of directed edges."""
    if not cycle:
        return []
    edges = []
    for position, vertex in enumerate(cycle):
        successor = cycle[(position + 1) % len(cycle)]
        edges.append((vertex, successor))
    return edges
