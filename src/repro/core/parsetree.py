"""Parse trees produced by IPG parsing.

The paper defines (section 3.3)::

    Parse tree  Tr ::= Node(A, E, Tr...) | Array(Tr...) | Leaf(s)

``Node`` records the nonterminal, the final attribute environment of the
successful alternative, and the child trees of its terms.  ``Array`` is the
result of a ``for`` term.  ``Leaf`` matches a terminal string.

The classes below add a small navigation API on top (``child``,
``children_named``, ``attr``, ``walk``) because downstream code — the format
helpers, the examples, and the evaluation harness — constantly needs to pull
attributes and sub-structures out of parsed files.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional

#: Attribute names managed by the parsing semantics itself.
SPECIAL_ATTRS = ("EOI", "start", "end")


class ParseTree:
    """Common base class for :class:`Node`, :class:`ArrayNode`, :class:`Leaf`."""

    __slots__ = ()

    def walk(self) -> Iterator["ParseTree"]:
        """Yield this tree and every descendant in pre-order."""
        yield self

    def size(self) -> int:
        """Number of tree nodes (useful for memory/shape comparisons)."""
        return sum(1 for _ in self.walk())


class Leaf(ParseTree):
    """A matched terminal string."""

    __slots__ = ("value",)

    def __init__(self, value: bytes):
        self.value = bytes(value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Leaf) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Leaf", self.value))

    def __repr__(self) -> str:
        return f"Leaf({self.value!r})"


class ArrayNode(ParseTree):
    """The result of parsing a ``for`` (array) term."""

    __slots__ = ("name", "elements")

    def __init__(self, name: str, elements: Iterable[ParseTree]):
        self.name = name
        self.elements = list(elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> ParseTree:
        return self.elements[index]

    def __iter__(self) -> Iterator[ParseTree]:
        return iter(self.elements)

    def walk(self) -> Iterator[ParseTree]:
        yield self
        for element in self.elements:
            yield from element.walk()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayNode)
            and self.name == other.name
            and self.elements == other.elements
        )

    def __hash__(self) -> int:
        return hash(("Array", self.name, len(self.elements)))

    def __repr__(self) -> str:
        return f"Array({self.name}, {len(self.elements)} elements)"


class Node(ParseTree):
    """A successfully parsed nonterminal.

    Attributes
    ----------
    name:
        The nonterminal name.
    env:
        The attribute environment of the successful alternative, including
        the special attributes ``EOI``, ``start`` and ``end``.
    children:
        Parse trees of the alternative's terms, in execution order.
    """

    __slots__ = ("name", "env", "children")

    def __init__(self, name: str, env: Dict[str, int], children: Iterable[ParseTree]):
        self.name = name
        self.env = dict(env)
        self.children = list(children)

    # -- attribute access ---------------------------------------------------
    def attr(self, name: str, default: Any = None) -> Any:
        """Return the value of attribute ``name`` (or ``default``)."""
        return self.env.get(name, default)

    def __getitem__(self, name: str) -> Any:
        if name not in self.env:
            raise KeyError(f"nonterminal {self.name} has no attribute {name!r}")
        return self.env[name]

    @property
    def attrs(self) -> Dict[str, int]:
        """User attributes only (special attributes stripped)."""
        return {k: v for k, v in self.env.items() if k not in SPECIAL_ATTRS}

    @property
    def start(self) -> int:
        """Offset of the left-most byte touched, relative to the parent input."""
        return self.env.get("start", 0)

    @property
    def end(self) -> int:
        """One past the right-most byte touched, relative to the parent input."""
        return self.env.get("end", 0)

    # -- navigation ---------------------------------------------------------
    def child(self, name: str, index: int = 0) -> Optional["Node"]:
        """Return the ``index``-th direct child :class:`Node` named ``name``."""
        seen = 0
        for tree in self.children:
            if isinstance(tree, Node) and tree.name == name:
                if seen == index:
                    return tree
                seen += 1
        return None

    def children_named(self, name: str) -> List["Node"]:
        """Return all direct child nodes named ``name``."""
        return [t for t in self.children if isinstance(t, Node) and t.name == name]

    def array(self, name: str) -> Optional[ArrayNode]:
        """Return the direct :class:`ArrayNode` whose elements are ``name``."""
        for tree in self.children:
            if isinstance(tree, ArrayNode) and tree.name == name:
                return tree
        return None

    def find_all(self, name: str) -> List["Node"]:
        """Return every descendant node named ``name`` (pre-order)."""
        return [t for t in self.walk() if isinstance(t, Node) and t.name == name]

    def walk(self) -> Iterator[ParseTree]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- comparison / display ----------------------------------------------
    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and self.name == other.name
            and self.env == other.env
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash(("Node", self.name, len(self.children)))

    def __repr__(self) -> str:
        return f"Node({self.name}, attrs={self.attrs}, children={len(self.children)})"

    def pretty(self, indent: int = 0, max_leaf: int = 16) -> str:
        """Render the tree as an indented multi-line string."""
        pad = "  " * indent
        lines = [f"{pad}{self.name} {self.attrs}"]
        for child in self.children:
            lines.append(_pretty_tree(child, indent + 1, max_leaf))
        return "\n".join(lines)


def _pretty_tree(tree: ParseTree, indent: int, max_leaf: int) -> str:
    pad = "  " * indent
    if isinstance(tree, Node):
        return tree.pretty(indent, max_leaf)
    if isinstance(tree, ArrayNode):
        lines = [f"{pad}[{tree.name} x {len(tree)}]"]
        for element in tree.elements:
            lines.append(_pretty_tree(element, indent + 1, max_leaf))
        return "\n".join(lines)
    assert isinstance(tree, Leaf)
    shown = tree.value[:max_leaf]
    suffix = "..." if len(tree.value) > max_leaf else ""
    return f"{pad}Leaf({shown!r}{suffix})"


def tree_to_jsonable(tree: ParseTree) -> Dict[str, Any]:
    """Serialize a parse tree to a JSON-compatible structure.

    Used by the golden-tree regression corpus (``tests/golden/``): pinned
    expected trees diff engine refactors against checked-in artifacts
    instead of only against each other.  Leaf bytes are hex-encoded; node
    environments are integer-valued by construction.
    """
    if isinstance(tree, Leaf):
        return {"leaf": tree.value.hex()}
    if isinstance(tree, ArrayNode):
        return {
            "array": tree.name,
            "elements": [tree_to_jsonable(element) for element in tree.elements],
        }
    assert isinstance(tree, Node)
    return {
        "node": tree.name,
        "env": dict(tree.env),
        "children": [tree_to_jsonable(child) for child in tree.children],
    }


def tree_from_jsonable(obj: Dict[str, Any]) -> ParseTree:
    """Inverse of :func:`tree_to_jsonable` (round-trips under ``==``)."""
    if "leaf" in obj:
        return Leaf(bytes.fromhex(obj["leaf"]))
    if "array" in obj:
        return ArrayNode(
            obj["array"], [tree_from_jsonable(element) for element in obj["elements"]]
        )
    return Node(
        obj["node"], obj["env"], [tree_from_jsonable(child) for child in obj["children"]]
    )


def tree_equal_modulo_specials(left: ParseTree, right: ParseTree) -> bool:
    """Structural equality that ignores the special attributes.

    Used when comparing trees produced by different execution engines
    (interpreter vs generated parser vs combinators) where user attributes
    and structure must agree but bookkeeping may differ.
    """
    if isinstance(left, Leaf) and isinstance(right, Leaf):
        return left.value == right.value
    if isinstance(left, ArrayNode) and isinstance(right, ArrayNode):
        return (
            left.name == right.name
            and len(left) == len(right)
            and all(
                tree_equal_modulo_specials(a, b)
                for a, b in zip(left.elements, right.elements)
            )
        )
    if isinstance(left, Node) and isinstance(right, Node):
        return (
            left.name == right.name
            and left.attrs == right.attrs
            and len(left.children) == len(right.children)
            and all(
                tree_equal_modulo_specials(a, b)
                for a, b in zip(left.children, right.children)
            )
        )
    return False
