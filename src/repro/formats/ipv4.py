"""IPG specification of IPv4 + UDP packets (network-format case study).

The second network format of the paper's evaluation (Table 1, Figure 13f,
Figure 14b).  The IPv4 header demonstrates the classic length-field pattern:
the header length (IHL) is a 4-bit field whose value, multiplied by 4, gives
the end of the header (and the start of the UDP datagram); the UDP length
field bounds the payload.  Checksums are represented as plain attributes and
*not* validated, matching the paper's decision to leave data-integrity
checks to a separate validation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.parsetree import Node
from .base import FormatSpec, register

GRAMMAR = r"""
Packet -> IPv4Header UDP ;

IPv4Header -> U8 {vihl = U8.val}
              {version = vihl >> 4}
              {ihl = vihl & 15}
              guard(version = 4)
              guard(ihl >= 5)
              U8 {tos = U8.val}
              U16BE {totlen = U16BE.val}
              U16BE {ident = U16BE.val}
              U16BE {fragflags = U16BE.val}
              U8 {ttl = U8.val}
              U8 {proto = U8.val}
              guard(proto = 17)
              U16BE {checksum = U16BE.val}
              U32BE {src = U32BE.val}
              U32BE {dst = U32BE.val}
              Options[ihl * 4 - 20] ;

Options -> Raw ;

UDP -> U16BE {sport = U16BE.val}
       U16BE {dport = U16BE.val}
       U16BE {len = U16BE.val}
       guard(len >= 8)
       U16BE {checksum = U16BE.val}
       Payload[len - 8] ;

Payload -> Bytes ;
"""

SPEC = register(
    FormatSpec(
        name="ipv4",
        grammar_text=GRAMMAR,
        description="IPv4 headers carrying UDP datagrams",
    )
)


def build_parser():
    """Return a fresh IPv4+UDP parser."""
    return SPEC.build_parser()


def parse(data: bytes) -> Node:
    """Parse a packet and return the parse tree."""
    return SPEC.parse(data)


@dataclass
class PacketSummary:
    """Decoded addressing information of one IPv4+UDP packet."""

    source: str
    destination: str
    ttl: int
    header_length: int
    total_length: int
    source_port: int
    destination_port: int
    udp_length: int
    payload: Optional[bytes]


def _dotted(address: int) -> str:
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def summarize(tree: Node) -> PacketSummary:
    """Extract the usual 5-tuple style summary of a parsed packet."""
    ip_header = tree.child("IPv4Header")
    udp = tree.child("UDP")
    assert ip_header is not None and udp is not None
    payload_node = udp.child("Payload")
    payload = None
    if payload_node is not None:
        raw = payload_node.child("Bytes")
        if raw is not None and raw.children:
            payload = raw.children[0].value
    return PacketSummary(
        source=_dotted(ip_header["src"]),
        destination=_dotted(ip_header["dst"]),
        ttl=ip_header["ttl"],
        header_length=ip_header["ihl"] * 4,
        total_length=ip_header["totlen"],
        source_port=udp["sport"],
        destination_port=udp["dport"],
        udp_length=udp["len"],
        payload=payload,
    )
