"""E11 — Figure 14: heap memory consumption for packet parsing.

The paper measures the heap usage of the generated C parsers (IPG) and of
Nail's arena-based parsers with Valgrind.  Here :mod:`tracemalloc` measures
the Python equivalents; the per-packet peak of both sides is recorded in the
benchmark ``extra_info`` so the figure's series can be read off
``bench_output.txt`` / the JSON export.

Absolute values are not comparable to C numbers; the recorded comparison is
between the two Python implementations on identical packets.
"""

import pytest

from repro.baselines import nail_like
from repro.evaluation.memory import measure_peak_memory

from conftest import DNS_ANSWER_COUNTS, IPV4_PAYLOAD_SIZES, build_generated_parser


@pytest.fixture(scope="module")
def ipg_dns_parser():
    return build_generated_parser("dns")


@pytest.fixture(scope="module")
def ipg_ipv4_parser():
    return build_generated_parser("ipv4")


@pytest.mark.parametrize("answers", DNS_ANSWER_COUNTS)
def test_fig14a_dns_memory(benchmark, dns_series, ipg_dns_parser, answers):
    packet = dns_series[answers]
    benchmark.group = f"fig14a-dns-memory-{answers}"

    ipg = measure_peak_memory(lambda: ipg_dns_parser.parse(packet))
    nail = measure_peak_memory(lambda: nail_like.parse_dns(packet))
    benchmark.extra_info["packet_bytes"] = len(packet)
    benchmark.extra_info["ipg_peak_kib"] = round(ipg.peak_kib, 2)
    benchmark.extra_info["nail_like_peak_kib"] = round(nail.peak_kib, 2)

    # Time the measurement pipeline itself so the entry appears in the
    # benchmark table alongside the recorded memory numbers.
    benchmark(lambda: measure_peak_memory(lambda: ipg_dns_parser.parse(packet)))

    assert ipg.peak_bytes > 0
    assert nail.peak_bytes > 0


@pytest.mark.parametrize("payload", IPV4_PAYLOAD_SIZES)
def test_fig14b_ipv4_memory(benchmark, ipv4_series, ipg_ipv4_parser, payload):
    packet = ipv4_series[payload]
    benchmark.group = f"fig14b-ipv4-memory-{payload}"

    ipg = measure_peak_memory(lambda: ipg_ipv4_parser.parse(packet))
    nail = measure_peak_memory(lambda: nail_like.parse_ipv4_udp(packet))
    benchmark.extra_info["packet_bytes"] = len(packet)
    benchmark.extra_info["ipg_peak_kib"] = round(ipg.peak_kib, 2)
    benchmark.extra_info["nail_like_peak_kib"] = round(nail.peak_kib, 2)

    benchmark(lambda: measure_peak_memory(lambda: ipg_ipv4_parser.parse(packet)))

    assert ipg.peak_bytes > 0
    assert nail.peak_bytes > 0

    # Qualitative check on small packets: the Nail-like parser pre-reserves a
    # full arena block, so its footprint on a small packet exceeds the
    # packet's own size many times over (the effect Figure 14 visualizes).
    if payload <= 256:
        assert nail.peak_bytes >= 4096
