"""Core IPG machinery: AST, surface syntax, checking, interpretation.

The public names most users need are re-exported from :mod:`repro` directly;
this package keeps the individual pipeline stages importable for tools and
tests.
"""

from .ast import (
    Alternative,
    Grammar,
    Interval,
    Rule,
    SwitchCase,
    Term,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .attrcheck import check_grammar
from .autocomplete import complete_grammar
from .builtins import BUILTINS, BlackboxResult, is_builtin
from .compiler import CompiledGrammar, Optimizations, compile_grammar
from .diagnose import diagnose_failure
from .errors import (
    AttributeCheckError,
    AutoCompletionError,
    BlackboxError,
    BoundsViolation,
    CompilationError,
    DeadlineExceeded,
    EvaluationError,
    GenerationError,
    GrammarSyntaxError,
    GuardRejected,
    IPGError,
    LimitExceeded,
    NeedMoreInput,
    NotStreamableError,
    ParseFailure,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    SolverError,
    TerminationCheckError,
    TruncatedInput,
    WorkerCrashed,
    render_explain,
)
from .grammar_parser import parse_expression, parse_grammar
from .interpreter import Parser, parse, prepare_grammar
from .limits import DEFAULT_LIMITS, ParseLimits
from .parsetree import ArrayNode, Leaf, Node, ParseTree, tree_equal_modulo_specials
from .span import Span
from .streamability import StreamabilityReport, analyze_streamability
from .streaming import StreamingParse

__all__ = [
    "Alternative",
    "ArrayNode",
    "AttributeCheckError",
    "AutoCompletionError",
    "BlackboxError",
    "BlackboxResult",
    "BoundsViolation",
    "BUILTINS",
    "CompilationError",
    "CompiledGrammar",
    "DeadlineExceeded",
    "DEFAULT_LIMITS",
    "Optimizations",
    "EvaluationError",
    "GenerationError",
    "Grammar",
    "GrammarSyntaxError",
    "GuardRejected",
    "Interval",
    "IPGError",
    "Leaf",
    "LimitExceeded",
    "NeedMoreInput",
    "Node",
    "NotStreamableError",
    "ParseFailure",
    "ParseLimits",
    "ParseTree",
    "Parser",
    "Rule",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "SolverError",
    "Span",
    "StreamabilityReport",
    "StreamingParse",
    "SwitchCase",
    "Term",
    "TermArray",
    "TermAttrDef",
    "TermGuard",
    "TermNonterminal",
    "TermSwitch",
    "TermTerminal",
    "TerminationCheckError",
    "TruncatedInput",
    "WorkerCrashed",
    "analyze_streamability",
    "check_grammar",
    "compile_grammar",
    "complete_grammar",
    "diagnose_failure",
    "is_builtin",
    "parse",
    "render_explain",
    "parse_expression",
    "parse_grammar",
    "prepare_grammar",
    "tree_equal_modulo_specials",
]
