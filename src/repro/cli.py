"""Command-line interface for the IPG toolkit.

Usage (also available as ``python -m repro``)::

    python -m repro formats                      # list bundled format grammars
    python -m repro parse --format elf FILE      # parse a file, print a summary
    python -m repro parse --format dns --stream - # stream stdin in chunks (§8)
    python -m repro parse --format elf --lazy FILE # decode only what's shown
    python -m repro index --format elf FILE      # list lazily decodable windows
    python -m repro check GRAMMAR.ipg            # attribute + termination check
    python -m repro compile --format zip -o z.py # emit a standalone AOT parser
    python -m repro compile --format elf --explain-shapes  # fixed-shape report
    python -m repro streamability --format dns   # stream-parser analysis (§8)
    python -m repro streamability GRAMMAR.ipg    # ... or on a grammar file
    python -m repro report [--full]              # re-run the paper's evaluation

``parse`` accepts either one of the bundled formats (``--format``) or a
grammar file (``--grammar``); with ``--tree`` it prints the full parse tree
instead of the per-format summary, and ``--backend`` picks the execution
engine (the staged compiler by default, or the reference interpreter).
With ``--stream`` the input is consumed incrementally in ``--chunk-size``
blocks through ``Parser.parse_stream`` instead of being read up front —
the grammar must pass the §8 streamability analysis (check it first with
the ``streamability`` command, which takes the same ``--format``/grammar
arguments as ``parse``).  With ``--explain-error`` a failed parse prints
the structured error taxonomy (failure class, byte offset, hex context,
violated interval, active rule stack) instead of a one-line message.
With ``--recover`` a failing input is salvaged instead of rejected:
failed subtrees are replaced by error nodes and the salvage summary is
printed (``--max-errors N`` bounds how many before giving up).

Exit codes: 0 success (including a successful ``--recover`` salvage),
2 usage error, and on rejection a code per error class — 10
``TruncatedInput``, 11 ``BoundsViolation``, 12 ``GuardRejected``, 13
``LimitExceeded``, 14 ``BlackboxError`` — with 1 the catch-all for
unclassified failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import IPGError, ParseFailure, Parser, __version__, render_explain
from .core.errors import (
    BlackboxError,
    BoundsViolation,
    GuardRejected,
    LimitExceeded,
    TruncatedInput,
)
from .core.streamability import analyze_streamability
from .core.termination import check_termination
from .core.interpreter import prepare_grammar
from .formats import dns, elf, gif, ipv4, pdf, pe, registry, zipfmt

#: Process exit codes.  0 is success, 2 a usage error (argparse uses the
#: same convention), and parse failures map to a code per error class so
#: scripts can dispatch on *why* an input was rejected without scraping
#: stderr.  1 remains the catch-all for unclassified failures.
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_TRUNCATED = 10
EXIT_BOUNDS = 11
EXIT_GUARD = 12
EXIT_LIMIT = 13
EXIT_BLACKBOX = 14

_EXIT_CODES = (
    (TruncatedInput, EXIT_TRUNCATED),
    (BoundsViolation, EXIT_BOUNDS),
    (GuardRejected, EXIT_GUARD),
    (LimitExceeded, EXIT_LIMIT),
    (BlackboxError, EXIT_BLACKBOX),
)


def _exit_code(error: BaseException) -> int:
    """The process exit code for a classified parse/configuration error."""
    for cls, code in _EXIT_CODES:
        if isinstance(error, cls):
            return code
    return EXIT_FAILURE

#: Formats with a dedicated summary printer.
_SUMMARIZERS = {
    "elf": lambda tree, data: elf.render_readelf(elf.summarize(tree, data)),
    "gif": lambda tree, data: _render_dataclass(gif.summarize(tree)),
    "zip": lambda tree, data: _render_zip(tree),
    "pe": lambda tree, data: _render_dataclass(pe.summarize(tree)),
    "pdf": lambda tree, data: _render_dataclass(pdf.summarize(tree)),
    "dns": lambda tree, data: _render_dataclass(dns.summarize(tree)),
    "ipv4": lambda tree, data: _render_dataclass(ipv4.summarize(tree)),
}


def _render_dataclass(value) -> str:
    """Readable multi-line rendering of a summary dataclass."""
    lines = [type(value).__name__]
    for name, attr in vars(value).items():
        if isinstance(attr, list):
            lines.append(f"  {name} ({len(attr)}):")
            for item in attr:
                lines.append(f"    {item}")
        elif isinstance(attr, (bytes, bytearray)):
            lines.append(f"  {name}: {len(attr)} bytes")
        else:
            lines.append(f"  {name}: {attr}")
    return "\n".join(lines)


def _render_zip(tree) -> str:
    members = zipfmt.list_members(tree)
    lines = [f"ZIP archive with {len(members)} member(s)"]
    for member in members:
        lines.append(
            f"  {member.name:<30} method={member.method} "
            f"{member.compressed_size} -> {member.uncompressed_size} bytes"
        )
    return "\n".join(lines)


def _read_bytes(path: str):
    """The input's bytes: stdin is buffered, regular files are mmap'd.

    Every engine accepts any buffer-protocol object without copying
    (see :mod:`repro.core.buffers`), so handing the parse an mmap means
    ``repro parse --validate`` on a multi-gigabyte file runs at constant
    RSS — the kernel pages in only the bytes the grammar touches.  Empty
    or unmappable files (pipes, some filesystems) fall back to a read.
    """
    if path == "-":
        return sys.stdin.buffer.read()
    with open(path, "rb") as handle:
        try:
            import mmap

            return mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            return handle.read()


def _close_input(data) -> None:
    """Close an ``_read_bytes`` result if it is closable (an mmap).

    Runs on every exit path — success, parse failure, and grammar errors
    alike — so the CLI never leaks a mapping (visible as a
    ``ResourceWarning`` under ``-W error``).  An mmap refuses to close
    while views over it are still alive; collectable cycles holding such
    views (an abandoned parse run, a closed lazy document) are broken
    with one ``gc.collect()`` retry.
    """
    close = getattr(data, "close", None)
    if close is None:
        return
    try:
        close()
    except BufferError:
        import gc

        gc.collect()
        try:
            close()
        except BufferError:  # a live view escaped; leave the map to the OS
            pass


def _iter_chunks(path: str, chunk_size: int):
    """Yield the file's bytes in ``chunk_size`` blocks without buffering it."""
    handle = sys.stdin.buffer if path == "-" else open(path, "rb")
    try:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return
            yield chunk
    finally:
        if handle is not sys.stdin.buffer:
            handle.close()


def _read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


# ---------------------------------------------------------------------------
# Sub-commands
# ---------------------------------------------------------------------------


def cmd_formats(_args) -> int:
    for name in sorted(registry):
        spec = registry[name]
        print(f"{name:<10} {spec.spec_line_count():>4} lines  {spec.description}")
    return 0


def _render_spans(tree) -> str:
    """Render an ``emit="spans"`` root node: spans plus computed attributes."""
    lines = [
        f"{tree.name}: touched bytes [{tree.env.get('start')}, "
        f"{tree.env.get('end')}) of {tree.env.get('EOI')}"
    ]
    for name, value in tree.env.items():
        if name not in ("EOI", "start", "end"):
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def cmd_parse(args) -> int:
    if args.lazy and (args.stream or args.validate or args.spans):
        print(
            "error: --lazy builds an on-demand tree and cannot be combined "
            "with --stream, --validate, or --spans",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.recover and (args.stream or args.validate or args.spans):
        print(
            "error: --recover salvages a parse tree and cannot be combined "
            "with --stream, --validate, or --spans",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.max_errors is not None and not args.recover:
        print("error: --max-errors only applies with --recover", file=sys.stderr)
        return EXIT_USAGE
    data = b"" if args.stream else _read_bytes(args.file)
    try:
        return _run_parse(args, data)
    finally:
        _close_input(data)


def _run_parse(args, data) -> int:
    emit = None if args.validate else ("spans" if args.spans else "tree")
    document = None
    try:
        if args.format:
            if args.format not in registry:
                print(
                    f"unknown format {args.format!r}; see `repro formats`",
                    file=sys.stderr,
                )
                return 2
            spec = registry[args.format]
            parser = spec.build_parser(backend=args.backend)
        else:
            parser = Parser(_read_text(args.grammar), backend=args.backend)
        if args.stream:
            # Incremental consumption: the file (or stdin) is fed to the
            # streaming engine chunk by chunk and never buffered whole.
            # Summaries that need the raw bytes (ELF's section hexdumps) do
            # not apply here — ELF is not streamable anyway.
            # --explain-error retains the full buffer (compact=False):
            # error classification re-reads the input from byte 0, so
            # a compacted stream can only report an unclassified
            # failure.
            tree = parser.parse_stream(
                _iter_chunks(args.file, args.chunk_size),
                emit=emit,
                compact=not args.explain_error,
            )
        elif args.lazy:
            tree = parser.parse_lazy(
                data, lazy_threshold=args.lazy_threshold, recover=args.recover
            )
        elif args.recover:
            document = parser.parse_recover(data, max_errors=args.max_errors)
            tree = document.root
        else:
            tree = parser.parse(data, emit=emit)
    except ParseFailure as exc:
        # Every entry point raises the classified taxonomy (PR 6); the
        # exit code carries the failure class so callers can dispatch on
        # it without scraping stderr.
        if args.explain_error:
            print(
                render_explain(exc, None if args.stream else data),
                file=sys.stderr,
            )
        else:
            print(
                "parse failed: the input does not match the grammar",
                file=sys.stderr,
            )
        return _exit_code(exc)
    except IPGError as exc:
        # Grammar and configuration errors (syntax, attribute checking, a
        # reachable blackbox with no registered implementation, streaming a
        # grammar the §8 analysis rejects) deserve a message, not a
        # traceback.  A raising blackbox lands here too and gets its own
        # exit code.
        print(f"error: {exc}", file=sys.stderr)
        return _exit_code(exc)
    if tree is None:
        print("parse failed: the input does not match the grammar", file=sys.stderr)
        return EXIT_FAILURE
    if emit is None:
        # Validate-only: the engines ran the tree-elision fast path and
        # nothing was allocated; the exit code is the result.
        print("input matches the grammar")
        return 0
    if emit == "spans":
        print(_render_spans(tree))
        return 0
    if document is not None:
        # --recover: the salvaged tree may contain error-node leaves the
        # per-format summarizers do not understand, so print the tree on
        # request and always the salvage summary.  Recovery succeeded, so
        # the exit code is 0 even when error nodes were substituted.
        if args.tree:
            print(tree.pretty())
        print(f"[recover] {document.summary()}")
        return 0
    if (
        args.tree
        or args.recover  # lazy+recover: error nodes vs. summarizers, as above
        or not args.format
        or args.format not in _SUMMARIZERS
    ):
        print(tree.pretty())
    else:
        print(_SUMMARIZERS[args.format](tree, data))
    if args.lazy:
        # How much of the input rendering the output above actually cost.
        lazy_document = tree.document
        total = len(lazy_document.buffer)
        share = 100.0 * lazy_document.decoded_bytes / total if total else 0.0
        print(
            f"[lazy] materialized {lazy_document.decoded_bytes} of {total} "
            f"bytes ({share:.1f}%) in {len(lazy_document.decoded)} decode(s)"
        )
        # Drop the document's view so _close_input can close the mmap.
        lazy_document.close()
    return 0


def cmd_index(args) -> int:
    """``repro index``: lazily skeleton-parse a file, list decodable windows.

    Validates the whole input (one tree-elision pass), decodes only the
    structural spine, and prints the un-decoded subtree windows — the
    units :meth:`~repro.core.interpreter.Parser.parse_lazy` materializes
    individually on access.
    """
    data = _read_bytes(args.file)
    try:
        return _run_index(args, data)
    finally:
        _close_input(data)


def _run_index(args, data) -> int:
    from .core.lazytree import LazyNode
    from .core.parsetree import ArrayNode, Node

    try:
        if args.format:
            if args.format not in registry:
                print(
                    f"unknown format {args.format!r}; see `repro formats`",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            parser = registry[args.format].build_parser(backend=args.backend)
        else:
            parser = Parser(_read_text(args.grammar), backend=args.backend)
        try:
            root = parser.parse_lazy(data, lazy_threshold=args.lazy_threshold)
        except ParseFailure as exc:
            print(render_explain(exc, data), file=sys.stderr)
            return _exit_code(exc)
    except IPGError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return _exit_code(exc)

    stubs = []

    def visit(tree) -> None:
        if isinstance(tree, LazyNode) and not tree.is_materialized:
            stubs.append(tree)
            return
        if isinstance(tree, ArrayNode):
            for element in tree.elements:
                visit(element)
        elif isinstance(tree, Node):
            for child in tree.children:
                visit(child)

    for child in root.children:  # decodes the skeleton spine only
        visit(child)
    document = root.document
    total = len(document.buffer)
    share = 100.0 * document.decoded_bytes / total if total else 0.0
    print(
        f"{root.name}: {total} bytes; skeleton decoded "
        f"{document.decoded_bytes} bytes ({share:.1f}%), "
        f"{len(stubs)} lazy subtree(s)"
    )
    for stub in stubs:
        lo, hi = stub.interval
        print(f"  {stub.name:<16} [{lo}, {hi})  {hi - lo} bytes")
    document.close()
    return 0


def cmd_check(args) -> int:
    text = _read_text(args.grammar)
    prepare_grammar(text)  # raises with a precise message on any front-end error
    report = check_termination(text)
    print(report.summary())
    if not report.ok:
        for verdict in report.failing_cycles():
            cycle = " -> ".join(verdict.cycle + [verdict.cycle[0]])
            print(f"  possible non-termination: {cycle} ({verdict.reason})")
        return 1
    return 0


def _cmd_explain_shapes(args) -> int:
    """``repro compile --explain-shapes``: the fixed-shape layout report."""
    from .core.interpreter import prepare_grammar
    from .core.shapes import explain_shapes

    if args.format:
        if args.format not in registry:
            print(
                f"unknown format {args.format!r}; see `repro formats`",
                file=sys.stderr,
            )
            return 2
        grammar_text = registry[args.format].grammar_text
    elif args.grammar:
        grammar_text = _read_text(args.grammar)
    else:
        print(
            "error: --explain-shapes needs --format or a grammar file",
            file=sys.stderr,
        )
        return 2
    grammar = prepare_grammar(grammar_text)
    width = max(len(name) for name in grammar.rules)
    for name, description in explain_shapes(grammar):
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_explain_ir(args) -> int:
    """``repro compile --explain``: dump the per-rule plan IR."""
    from .core.compiler import Optimizations
    from .core.ir import explain_plan, lower

    if args.format:
        if args.format not in registry:
            print(
                f"unknown format {args.format!r}; see `repro formats`",
                file=sys.stderr,
            )
            return 2
        grammar_text = registry[args.format].grammar_text
    elif args.grammar:
        grammar_text = _read_text(args.grammar)
    else:
        print("error: --explain needs --format or a grammar file", file=sys.stderr)
        return 2
    optimizations = Optimizations.none() if args.no_optimize else None
    plan = lower(prepare_grammar(grammar_text), optimizations=optimizations)
    print(explain_plan(plan), end="")
    return 0


def _cmd_compile_package(args) -> int:
    """``repro compile --package DIR``: one module per format + shared prelude."""
    import os

    from .core.codegen import render_package
    from .core.compiler import Optimizations, compile_grammar
    from .core.errors import CompilationError

    names = [args.format] if args.format else sorted(registry)
    optimizations = Optimizations.none() if args.no_optimize else None
    compiled = {}
    for name in names:
        if name not in registry:
            print(f"unknown format {name!r}; see `repro formats`", file=sys.stderr)
            return 2
        spec = registry[name]
        try:
            compiled[name] = compile_grammar(
                spec.grammar_text, optimizations=optimizations
            )
        except CompilationError as exc:
            print(
                f"error: format {name!r} cannot be compiled ahead of time: {exc}",
                file=sys.stderr,
            )
            return 1
    files = render_package(compiled)
    os.makedirs(args.package, exist_ok=True)
    total_lines = 0
    for filename, source in sorted(files.items()):
        path = os.path.join(args.package, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(source)
        total_lines += len(source.splitlines())
    print(
        f"wrote {len(files)} modules ({total_lines} lines) to {args.package}: "
        + ", ".join(sorted(files))
    )
    blackbox_notes = sorted(
        name for name, c in compiled.items() if c.grammar.blackboxes
    )
    for name in blackbox_notes:
        print(
            f"note: {name}: register blackbox parser(s) "
            f"{sorted(compiled[name].grammar.blackboxes)} with "
            f"register_blackbox() before parsing"
        )
    return 0


def cmd_compile(args) -> int:
    from .core.compiler import Optimizations, compile_grammar
    from .core.errors import CompilationError

    if args.explain_shapes:
        if args.package or args.output:
            print(
                "error: --explain-shapes prints the fixed-shape analysis "
                "and cannot be combined with --package or -o/--output",
                file=sys.stderr,
            )
            return 2
        return _cmd_explain_shapes(args)
    if args.explain:
        if args.package or args.output:
            print(
                "error: --explain prints the plan IR and cannot be combined "
                "with --package or -o/--output",
                file=sys.stderr,
            )
            return 2
        return _cmd_explain_ir(args)
    if args.package:
        if args.grammar or args.output:
            print(
                "error: --package emits the bundled format registry into DIR "
                "and cannot be combined with a grammar file or -o/--output",
                file=sys.stderr,
            )
            return 2
        if args.backend == "tablevm":
            print(
                "error: --package emits closure modules over a shared "
                "prelude; the table flavor is single-module only "
                "(--backend tablevm -o FILE)",
                file=sys.stderr,
            )
            return 2
        return _cmd_compile_package(args)
    if not args.format and not args.grammar:
        print(
            "error: compile needs --format, a grammar file, or --package DIR",
            file=sys.stderr,
        )
        return 2
    if args.format:
        if args.format not in registry:
            print(
                f"unknown format {args.format!r}; see `repro formats`",
                file=sys.stderr,
            )
            return 2
        spec = registry[args.format]
        grammar_text = spec.grammar_text
        blackbox_names = sorted(spec.blackboxes)
    else:
        grammar_text = _read_text(args.grammar)
        blackbox_names = None
    optimizations = Optimizations.none() if args.no_optimize else Optimizations()
    try:
        if args.backend == "tablevm":
            from .core.backends.tablevm import TableGrammar
            from .core.ir import lower

            plan = lower(
                prepare_grammar(grammar_text), optimizations=optimizations
            )
            source = TableGrammar(plan).to_source()
            declared = plan.grammar.blackboxes
        else:
            compiled = compile_grammar(grammar_text, optimizations=optimizations)
            source = compiled.to_source()
            declared = compiled.grammar.blackboxes
    except CompilationError as exc:
        # Unlike `parse`, ahead-of-time emission has no interpreter to fall
        # back to: report why the grammar cannot be specialized.
        print(f"error: grammar cannot be compiled ahead of time: {exc}", file=sys.stderr)
        return 1
    if blackbox_names is None:
        blackbox_names = sorted(declared)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {len(source.splitlines())} lines to {args.output}")
        if blackbox_names:
            print(
                f"note: register blackbox parser(s) {blackbox_names} with "
                f"register_blackbox() before parsing"
            )
    else:
        print(source, end="")
    return 0


def cmd_streamability(args) -> int:
    if args.format:
        if args.format not in registry:
            print(
                f"unknown format {args.format!r}; see `repro formats`",
                file=sys.stderr,
            )
            return 2
        report = analyze_streamability(registry[args.format].grammar_text)
    else:
        report = analyze_streamability(_read_text(args.grammar))
    print(report.summary())
    for violation in report.violations:
        print(f"  {violation}")
    return 0 if report.streamable else 1


def cmd_report(args) -> int:
    from .evaluation.report import generate_full_report

    print(generate_full_report(quick=not args.full))
    return 0


def cmd_serve(args) -> int:
    """Run the fault-tolerant parse service over stdin/stdout.

    Reads one input-file path per line from stdin and writes one JSON
    verdict line per request to stdout, in completion order (each line
    carries the echoed path).  Every line gets exactly one verdict —
    a tree / verdict / recovered document, a structured parse failure,
    or a service error — regardless of worker crashes, hangs, or
    poisonous inputs.  Service counters go to stderr at shutdown.
    """
    import json
    import time as _time

    from .core.errors import ServiceOverloaded
    from .service import ParseService, ServiceConfig

    if args.format is None and args.grammar is None:
        print("serve: pass --format or --grammar", file=sys.stderr)
        return EXIT_USAGE
    grammar_text = None
    if args.grammar is not None:
        try:
            grammar_text = _read_text(args.grammar)
        except OSError as exc:
            print(f"serve: {exc}", file=sys.stderr)
            return EXIT_USAGE

    emit = None if args.validate else "tree"
    config = ServiceConfig(
        workers=args.workers,
        default_deadline_ms=args.deadline_ms,
        backend=args.backend,
        quarantine_dir=args.quarantine_dir,
        blackbox_provider=args.blackbox_provider,
        retries=args.retries,
    )
    failures = 0
    with ParseService(config) as service:
        pending = []  # (path, future), answered in completion order

        def drain(block: bool) -> None:
            nonlocal failures
            while pending and (block or pending[0][1].done()):
                path, future = pending.pop(0)
                result = future.result()
                line = {"path": path, "kind": result.kind}
                if result.error is not None:
                    failures += 1
                    line["error"] = type(result.error).__name__
                    line["message"] = str(result.error)
                else:
                    if result.tree is not None and args.tree:
                        line["tree"] = result.tree
                    if result.document is not None:
                        line["document"] = result.document
                if result.elapsed_ms is not None:
                    line["elapsed_ms"] = round(result.elapsed_ms, 3)
                line["retried"] = result.retried
                print(json.dumps(line), flush=True)

        for raw in sys.stdin:
            path = raw.strip()
            if not path:
                continue
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except OSError as exc:
                failures += 1
                print(
                    json.dumps(
                        {"path": path, "kind": "error", "error": "OSError",
                         "message": str(exc)}
                    ),
                    flush=True,
                )
                continue
            while True:
                try:
                    future = service.submit(
                        data,
                        format=args.format,
                        grammar=grammar_text,
                        emit=emit,
                        recover=args.recover,
                    )
                    break
                except ServiceOverloaded as exc:
                    drain(block=True)
                    _time.sleep(min(exc.retry_after or 0.05, 0.5))
            pending.append((path, future))
            drain(block=False)
        drain(block=True)
        stats = service.stats()
    print(
        "serve: "
        + " ".join(f"{key}={value}" for key, value in sorted(stats.items())),
        file=sys.stderr,
    )
    return 0 if failures == 0 else EXIT_FAILURE


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Interval Parsing Grammars toolkit"
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("formats", help="list bundled format grammars").set_defaults(
        handler=cmd_formats
    )

    parse_command = commands.add_parser("parse", help="parse a file with an IPG")
    parse_command.add_argument("file", help="input file ('-' for stdin)")
    group = parse_command.add_mutually_exclusive_group(required=True)
    group.add_argument("--format", help="one of the bundled formats (see `formats`)")
    group.add_argument("--grammar", help="path to an IPG grammar file")
    mode_group = parse_command.add_mutually_exclusive_group()
    mode_group.add_argument(
        "--tree", action="store_true", help="print the full parse tree instead of a summary"
    )
    mode_group.add_argument(
        "--validate",
        action="store_true",
        help="accept/reject only: run the tree-elision fast path (no parse "
        "tree is built) and report whether the input matches",
    )
    mode_group.add_argument(
        "--spans",
        action="store_true",
        help="print the top-level attribute environment (field values and "
        "touched-byte spans) via the tree-elision fast path",
    )
    parse_command.add_argument(
        "--backend",
        choices=("compiled", "interpreted", "tablevm"),
        default="compiled",
        help="parse engine: staged compiler (default), reference "
        "interpreter, or the table-driven VM",
    )
    parse_command.add_argument(
        "--stream",
        action="store_true",
        help="consume the input incrementally in chunks (requires a grammar "
        "that passes the section-8 streamability analysis)",
    )
    parse_command.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=65536,
        metavar="N",
        help="chunk size in bytes for --stream (default: 65536)",
    )
    parse_command.add_argument(
        "--explain-error",
        action="store_true",
        help="on parse failure, print the structured error (failure class, "
        "byte offset with hex context, violated interval, rule stack) "
        "instead of a one-line message",
    )
    parse_command.add_argument(
        "--lazy",
        action="store_true",
        help="parse lazily: validate the input now, decode subtrees only as "
        "the output needs them, and report how many bytes were "
        "materialized",
    )
    parse_command.add_argument(
        "--lazy-threshold",
        type=int,
        default=None,
        metavar="N",
        help="minimum subtree window size in bytes left as a lazy stub "
        "(default: 4096; 0 stubs every top-level rule invocation)",
    )
    parse_command.add_argument(
        "--recover",
        action="store_true",
        help="error-recovering parse: failed subtrees become error nodes "
        "carrying the structured diagnosis, the salvage summary is "
        "printed, and the exit code is 0 when recovery succeeds; with "
        "--lazy, a stub that fails to decode degrades to an error node",
    )
    parse_command.add_argument(
        "--max-errors",
        type=_positive_int,
        default=None,
        metavar="N",
        help="with --recover: give up and report the classified failure "
        "once more than N error nodes accumulate",
    )
    parse_command.set_defaults(handler=cmd_parse)

    index_command = commands.add_parser(
        "index",
        help="lazily index a file: validate it and list the subtree "
        "windows that decode on demand",
    )
    index_command.add_argument("file", help="input file ('-' for stdin)")
    index_group = index_command.add_mutually_exclusive_group(required=True)
    index_group.add_argument(
        "--format", help="one of the bundled formats (see `formats`)"
    )
    index_group.add_argument("--grammar", help="path to an IPG grammar file")
    index_command.add_argument(
        "--backend",
        choices=("compiled", "interpreted", "tablevm"),
        default="compiled",
        help="parse engine backing the skeleton probes (default: compiled)",
    )
    index_command.add_argument(
        "--lazy-threshold",
        type=int,
        default=None,
        metavar="N",
        help="minimum subtree window size in bytes left as a lazy stub "
        "(default: 4096; 0 stubs every top-level rule invocation)",
    )
    index_command.set_defaults(handler=cmd_index)

    check_command = commands.add_parser("check", help="attribute + termination checking")
    check_command.add_argument("grammar", help="path to an IPG grammar file")
    check_command.set_defaults(handler=cmd_check)

    compile_command = commands.add_parser(
        "compile", help="emit an ahead-of-time standalone parser module"
    )
    compile_group = compile_command.add_mutually_exclusive_group()
    compile_group.add_argument(
        "--format", help="one of the bundled formats (see `formats`)"
    )
    compile_group.add_argument(
        "grammar", nargs="?", help="path to an IPG grammar file"
    )
    compile_command.add_argument(
        "-o", "--output", help="write the module to this file (default: stdout)"
    )
    compile_command.add_argument(
        "--package",
        metavar="DIR",
        help="emit a parser *package* into DIR: one module per bundled "
        "format (or just --format's) plus one shared runtime prelude "
        "module, instead of vendoring the prelude into every file",
    )
    compile_command.add_argument(
        "--backend",
        choices=("closures", "tablevm"),
        default="closures",
        help="module flavor: per-rule closure functions (default) or an "
        "embedded plan executed by the vendored table VM (smaller "
        "artifact, VM dispatch overhead)",
    )
    compile_command.add_argument(
        "--explain",
        action="store_true",
        help="print the per-rule plan IR (the analyze->lower output both "
        "backends consume) instead of emitting a module",
    )
    compile_command.add_argument(
        "--explain-shapes",
        action="store_true",
        help="print the fixed-shape layout analysis per rule (struct format "
        "strings, covered prefixes, bail-out reasons) instead of emitting "
        "a module",
    )
    compile_command.add_argument(
        "--no-optimize",
        action="store_true",
        help="disable the compiler optimization passes (module-level where "
        "rules, dense memo keys, memo elision, single-use inlining, "
        "first-byte dispatch tables, fixed-shape vectorization)",
    )
    compile_command.set_defaults(handler=cmd_compile)

    streamability_command = commands.add_parser(
        "streamability", help="stream-parser analysis (paper section 8)"
    )
    streamability_group = streamability_command.add_mutually_exclusive_group(
        required=True
    )
    streamability_group.add_argument(
        "--format", help="one of the bundled formats (see `formats`)"
    )
    streamability_group.add_argument(
        "grammar", nargs="?", help="path to an IPG grammar file"
    )
    streamability_command.set_defaults(handler=cmd_streamability)

    report_command = commands.add_parser("report", help="re-run the paper's evaluation")
    report_command.add_argument(
        "--full", action="store_true", help="more repetitions / larger workloads"
    )
    report_command.set_defaults(handler=cmd_report)

    serve_command = commands.add_parser(
        "serve",
        help="fault-tolerant parse service: file paths on stdin, JSON "
        "verdicts on stdout",
    )
    serve_group = serve_command.add_mutually_exclusive_group(required=True)
    serve_group.add_argument(
        "--format", help="one of the bundled formats (see `formats`)"
    )
    serve_group.add_argument("--grammar", help="path to an IPG grammar file")
    serve_command.add_argument(
        "--workers",
        type=_positive_int,
        default=2,
        help="worker processes in the pool (default 2)",
    )
    serve_command.add_argument(
        "--deadline-ms",
        type=_positive_int,
        default=10_000,
        help="per-request wall-clock deadline; on expiry the worker is "
        "killed and the request retried once before a structured "
        "DeadlineExceeded verdict (default 10000)",
    )
    serve_command.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-dispatches after a crash or deadline kill (default 1)",
    )
    serve_command.add_argument(
        "--backend",
        choices=("compiled", "interpreted", "tablevm"),
        default="compiled",
        help="parse engine workers use (default: staged compiler)",
    )
    serve_mode = serve_command.add_mutually_exclusive_group()
    serve_mode.add_argument(
        "--tree",
        action="store_true",
        help="include the full parse tree in each verdict line",
    )
    serve_mode.add_argument(
        "--validate",
        action="store_true",
        help="accept/reject only (tree-elision fast path in the workers)",
    )
    serve_mode.add_argument(
        "--recover",
        action="store_true",
        help="salvage hostile inputs: verdicts carry a recovered document "
        "instead of a parse failure",
    )
    serve_command.add_argument(
        "--quarantine-dir",
        help="quarantine worker-killing inputs to this crasher corpus "
        "(replayable via tools/fuzz_parsers.py --replay-quarantine)",
    )
    serve_command.add_argument(
        "--blackbox-provider",
        help="module:attribute resolving to the blackbox dict workers use "
        "for --grammar requests",
    )
    serve_command.set_defaults(handler=cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_arg_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
