"""Worker-process entry point for the parse service.

Each worker is a single-threaded loop over its supervisor pipe: receive
a request dict, parse, send a reply dict.  Parsers are built lazily and
cached by grammar fingerprint (sha256 of the grammar text + backend), so
a grammar is staged/compiled once per worker process and every later
request for it pays only the parse.  Input payloads arrive inline for
small requests or as a shared-memory spool file the worker maps
read-only and parses zero-copy (see :mod:`repro.service.wire`).

The worker converts every outcome into a reply:

* a parse tree / span env / validate verdict / recovered document,
  serialized to jsonable structures (never live ``memoryview``s — the
  spool mapping is closed before the reply is sent);
* a structured parse failure (class + offset + rule stack), re-raised
  as the same taxonomy exception on the supervisor side;
* a grammar/configuration error;
* as a last resort, an internal-error reply carrying the traceback —
  the worker survives anything that raises.

What the worker can *not* survive — segfaults, the OOM killer,
``os._exit`` — is the supervisor's job: it watches the process sentinel
and isolates the death to the in-flight request.

Requests also honour an in-process *soft deadline*: the supervisor
hands a ``soft_deadline_ms`` share of the request deadline, applied as
:attr:`~repro.core.limits.ParseLimits.max_wall_ms` so a slow parse
fails structurally (``LimitExceeded(limit="wall")``) without costing a
worker respawn.  The SIGKILL hard deadline remains the backstop for
stalls the fuel checks cannot see (a sleeping blackbox).

Fault injection (``op: "chaos"``) is only honoured when the service was
configured with ``allow_chaos`` — production services reject the
directives as errors.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import signal
import time
import traceback
from dataclasses import replace
from typing import Dict, Optional

from ..core.errors import IPGError, ParseFailure
from ..core.interpreter import Parser
from ..core.limits import DEFAULT_LIMITS
from ..core.parsetree import tree_to_jsonable
from .wire import SpooledInput, failure_to_wire

#: Wall budget compiled into cached parsers when the base limits carry
#: none: the per-request soft deadline rebinds the live budget, but the
#: wall *checks* must exist in the staged code from the start.
_FALLBACK_WALL_MS = 60_000


def grammar_fingerprint(kind: str, ident: str, backend: str) -> str:
    """Stable identity of a (grammar, backend) pair across processes."""
    blob = f"{kind}\x00{backend}\x00{ident}".encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def resolve_blackbox_provider(spec: Optional[str]) -> Dict[str, object]:
    """Import a ``"module:attribute"`` provider into a blackbox dict."""
    if not spec:
        return {}
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise IPGError(
            f"blackbox_provider {spec!r} is not of the form 'module:attribute'"
        )
    value = getattr(importlib.import_module(module_name), attr)
    if not isinstance(value, dict) and callable(value):
        value = value()
    return dict(value)


def _set_wall(parser: Parser, soft_ms: Optional[int]) -> None:
    """Point every engine of ``parser`` at a fresh wall budget.

    The interpreter and diagnostic re-run read ``parser.limits`` per
    parse; the staged compilation reads its module-global
    ``_wall_deadline`` factory (rebindable by design — AOT modules'
    ``set_limits`` uses the same seam); the table VM takes the dataclass.
    """
    if soft_ms is None:
        return
    limits = replace(parser.limits, max_wall_ms=soft_ms)
    parser.limits = limits
    from ..core.backends.closures import _make_wall_deadline

    factory = _make_wall_deadline(soft_ms)
    for compiled in (
        parser._compiled,
        parser._compiled_elided,
        *parser._compiled_stream.values(),
    ):
        if compiled is not None:
            compiled._new_state.__globals__["_wall_deadline"] = factory
            compiled.limits = limits
    if parser._tablevm is not None:
        parser._tablevm.set_limits(limits)


class _WorkerState:
    """Per-process state: the parser cache and resolved blackboxes."""

    def __init__(self, payload: dict):
        self.backend = payload.get("backend", "compiled")
        self.allow_chaos = bool(payload.get("allow_chaos"))
        self.spool_dir = payload.get("spool_dir")
        base = payload.get("limits") or DEFAULT_LIMITS
        if base.max_wall_ms is None:
            base = replace(base, max_wall_ms=_FALLBACK_WALL_MS)
        self.base_limits = base
        self.provider_blackboxes = resolve_blackbox_provider(
            payload.get("blackbox_provider")
        )
        self.parsers: Dict[str, Parser] = {}

    def parser_for(self, grammar_spec) -> Parser:
        kind, ident = grammar_spec
        key = grammar_fingerprint(kind, ident, self.backend)
        parser = self.parsers.get(key)
        if parser is not None:
            return parser
        if kind == "format":
            from ..formats import registry

            if ident not in registry:
                raise IPGError(f"unknown format {ident!r}; see `repro formats`")
            spec = registry[ident]
            parser = Parser(
                spec.grammar_text,
                blackboxes=dict(spec.blackboxes),
                backend=self.backend,
                limits=self.base_limits,
            )
        elif kind == "text":
            parser = Parser(
                ident,
                blackboxes=dict(self.provider_blackboxes),
                backend=self.backend,
                limits=self.base_limits,
            )
        else:
            raise IPGError(f"unknown grammar spec kind {kind!r}")
        self.parsers[key] = parser
        return parser


def _handle_parse(state: _WorkerState, msg: dict) -> dict:
    spooled = None
    try:
        parser = state.parser_for(msg["grammar"])
        if msg.get("spool") is not None:
            path, length = msg["spool"]
            spooled = SpooledInput(path, length)
            data = spooled.data
        else:
            data = msg.get("data", b"")
        _set_wall(parser, msg.get("soft_deadline_ms"))
        begin = time.perf_counter()
        if msg.get("recover"):
            from ..core.recover import document_to_jsonable

            document = parser.parse_recover(data, max_errors=msg.get("max_errors"))
            reply = {
                "kind": "recovered",
                "document": document_to_jsonable(document),
            }
            del document
        else:
            emit = msg.get("emit", "tree")
            result = parser.parse(data, emit=emit)
            if emit == "tree":
                reply = {"kind": "tree", "tree": tree_to_jsonable(result)}
            elif emit == "spans":
                reply = {"kind": "spans", "root": result.name, "env": dict(result.env)}
            else:
                reply = {"kind": "ok"}
            del result
        reply["elapsed_ms"] = (time.perf_counter() - begin) * 1000.0
    except ParseFailure as exc:
        reply = {"kind": "parse-error", **failure_to_wire(exc)}
    except IPGError as exc:
        reply = {
            "kind": "grammar-error",
            "class": type(exc).__name__,
            "message": str(exc),
        }
    except BaseException as exc:  # noqa: BLE001 - the worker must survive
        reply = {
            "kind": "worker-error",
            "class": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    finally:
        # The reply holds jsonable copies only; drop the mapping before
        # sending so the spool file never outlives the request here.
        if spooled is not None:
            spooled.close()
    return reply


def _handle_chaos(state: _WorkerState, msg: dict) -> dict:
    """Fault-injection directives (chaos harness / tests only)."""
    if not state.allow_chaos:
        return {
            "kind": "worker-error",
            "class": "ChaosDisabled",
            "message": "chaos directives require ServiceConfig.allow_chaos",
        }
    mode = msg.get("mode")
    seconds = float(msg.get("seconds", 0.0))
    if mode == "exit":  # a bare os._exit mid-request
        os._exit(int(msg.get("code", 3)))
    if mode == "segv":  # native crash
        import faulthandler

        faulthandler.disable()  # the fault is deliberate; keep logs clean
        os.kill(os.getpid(), signal.SIGSEGV)
    if mode == "oom":  # the kernel OOM killer's verdict, simulated
        os._exit(137)
    if mode == "leak":  # strand a file in the spool dir, then die
        if state.spool_dir:
            path = os.path.join(state.spool_dir, f"leak-{os.getpid()}.bin")
            with open(path, "wb") as handle:
                handle.write(b"\0" * 4096)
        os._exit(7)
    if mode == "hang":  # blackbox-style sleep the fuel checks cannot see
        time.sleep(seconds)
        return {"kind": "chaos-done", "mode": mode}
    if mode == "spin":  # busy loop (SIGKILL is the only way out early)
        deadline = time.monotonic() + seconds
        while time.monotonic() < deadline:
            pass
        return {"kind": "chaos-done", "mode": mode}
    return {
        "kind": "worker-error",
        "class": "ChaosUnknown",
        "message": f"unknown chaos mode {mode!r}",
    }


def worker_main(conn, payload: dict) -> None:
    """The worker process main loop (target of the supervisor's spawn)."""
    # The supervisor owns lifecycle; a terminal Ctrl-C must interrupt it,
    # not strand half a pool mid-request.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        state = _WorkerState(payload)
    except BaseException as exc:  # provider import failed: report and die
        try:
            conn.send(
                {
                    "id": None,
                    "kind": "worker-error",
                    "class": type(exc).__name__,
                    "message": f"worker initialization failed: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
        except OSError:
            pass
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        op = msg.get("op")
        if op == "shutdown":
            return
        if op == "ping":
            reply = {"kind": "pong"}
        elif op == "chaos":
            reply = _handle_chaos(state, msg)
        elif op == "parse":
            reply = _handle_parse(state, msg)
        else:
            reply = {
                "kind": "worker-error",
                "class": "ProtocolError",
                "message": f"unknown op {op!r}",
            }
        reply["id"] = msg.get("id")
        reply["pid"] = os.getpid()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
