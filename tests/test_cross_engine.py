"""Integration tests: the three execution engines must agree.

The paper ships a parser generator and a combinator library that implement
the same semantics; here the reference interpreter, the generated Python
parsers and (where a combinator equivalent exists) the combinator library
are checked against each other on the real format case studies.
"""

import pytest

from repro import Parser, samples
from repro.core.generator import compile_parser
from repro.core.parsetree import tree_equal_modulo_specials
from repro.formats import registry, toy


def _sample_for(fmt: str) -> bytes:
    if fmt in ("zip", "zip-meta"):
        return samples.build_zip(member_count=3, member_size=300)
    if fmt == "elf":
        return samples.build_elf(section_count=3, symbol_count=4, dynamic_entries=2)
    if fmt == "gif":
        return samples.build_gif(frame_count=2, bytes_per_frame=200)
    if fmt == "pe":
        return samples.build_pe(section_count=2)
    if fmt == "pdf":
        return samples.build_pdf(object_count=3)[0]
    if fmt == "dns":
        return samples.build_dns_response(answer_count=2, additional_count=1)
    if fmt == "ipv4":
        return samples.build_ipv4_udp_packet(payload_size=48, options_words=1)
    raise AssertionError(f"no sample builder for {fmt}")


class TestGeneratedParsersOnFormats:
    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_generated_parser_matches_interpreter(self, fmt):
        spec = registry[fmt]
        sample = _sample_for(fmt)
        interpreter = spec.build_parser()
        generated = compile_parser(spec.grammar_text, blackboxes=dict(spec.blackboxes))
        expected = interpreter.parse(sample)
        actual = generated.parse(sample)
        assert actual == expected

    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_generated_parser_rejects_corrupted_input(self, fmt):
        spec = registry[fmt]
        sample = bytearray(_sample_for(fmt))
        sample[0] ^= 0xFF
        generated = compile_parser(spec.grammar_text, blackboxes=dict(spec.blackboxes))
        interpreter = spec.build_parser()
        assert (generated.try_parse(bytes(sample)) is None) == (
            interpreter.try_parse(bytes(sample)) is None
        )


class TestMemoizationConsistency:
    @pytest.mark.parametrize("fmt", ["gif", "pdf", "dns"])
    def test_memoized_and_unmemoized_trees_agree(self, fmt):
        spec = registry[fmt]
        sample = _sample_for(fmt)
        memoized = Parser(spec.grammar_text, blackboxes=dict(spec.blackboxes), memoize=True)
        unmemoized = Parser(spec.grammar_text, blackboxes=dict(spec.blackboxes), memoize=False)
        assert memoized.parse(sample) == unmemoized.parse(sample)


class TestToyGrammarsAcrossEngines:
    @pytest.mark.parametrize("name", sorted(toy.ALL_GRAMMARS))
    def test_generated_equals_interpreter_on_valid_and_invalid_inputs(self, name):
        grammar = toy.ALL_GRAMMARS[name]
        interpreter = Parser(grammar)
        generated = compile_parser(grammar)
        probes = [
            b"",
            b"\x00",
            b"aaabbbccc",
            b"1011",
            b"magic" + b"A" * 5 + b"B" * 10,
            b"1000stop",
            toy.build_figure_6_input([3, 5, 7]),
            toy.build_two_pass_input([4, 2]),
            toy.build_figure_2_input(),
            b"4096",
        ]
        for probe in probes:
            expected = interpreter.try_parse(probe)
            actual = generated.try_parse(probe)
            if expected is None:
                assert actual is None
            else:
                assert actual == expected
                assert tree_equal_modulo_specials(actual, expected)


class TestNegativeShiftParity:
    def test_negative_shift_fails_alternative_on_all_engines(self):
        grammar = (
            "S -> U8[0, 1] {a = 0 - U8.val} {b = 1 << a} / U8[0, 1] {b = 42} ;"
        )
        data = b"\x02"
        interpreted = Parser(grammar, backend="interpreted").parse(data)
        compiled = Parser(grammar, backend="compiled").parse(data)
        generated = compile_parser(grammar).parse(data)
        assert interpreted["b"] == compiled["b"] == generated["b"] == 42
