"""Hand-written imperative parsers (the ``readelf`` / ``unzip`` baselines)."""

from . import dns, elf, gif, ipv4, pe, zipfmt

__all__ = ["dns", "elf", "gif", "ipv4", "pe", "zipfmt"]
