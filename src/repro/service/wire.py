"""Wire protocol between the parse-service supervisor and its workers.

Requests and replies are small picklable dicts over a
``multiprocessing`` pipe; input payloads above the inline threshold are
*spooled*: the supervisor writes the bytes once to a file under the
service's private spool directory (``/dev/shm`` when available, so the
file is RAM-backed shared memory) and ships only ``(path, length)``.
The worker maps the file read-only and parses the ``mmap`` directly —
the engines accept any buffer-protocol object without copying (the
zero-copy discipline of the buffer layer), so a large input crosses the
process boundary zero times.

The supervisor owns every spool file: it creates it at submit, keeps it
alive across retries (a respawned worker re-maps the same file), and
unlinks it when the request resolves — including the crash path, so a
SIGKILLed worker can never leak a segment.  Closing the service removes
the whole spool directory.

Parse failures cross the boundary as class-name + fields and are
reconstructed into the *same* structured taxonomy exception
(:func:`failure_from_wire`), so a service caller dispatches on
``TruncatedInput`` / ``GuardRejected`` / ... exactly as an in-process
caller would.
"""

from __future__ import annotations

import mmap
import os
from typing import Optional

from ..core import errors as _errors
from ..core.errors import ParseFailure

#: Failure classes allowed across the wire (name -> class).  A lookup
#: table rather than getattr-on-module so a hostile or corrupted reply
#: can only ever instantiate the parse taxonomy.
FAILURE_CLASSES = {
    cls.__name__: cls
    for cls in (
        _errors.ParseFailure,
        _errors.TruncatedInput,
        _errors.BoundsViolation,
        _errors.GuardRejected,
        _errors.LimitExceeded,
    )
}

#: Grammar/configuration error classes a worker may report.
CONFIG_ERROR_CLASSES = {
    cls.__name__: cls
    for cls in (
        _errors.IPGError,
        _errors.GrammarSyntaxError,
        _errors.AttributeCheckError,
        _errors.AutoCompletionError,
        _errors.TerminationCheckError,
        _errors.BlackboxError,
        _errors.CompilationError,
        _errors.NotStreamableError,
        _errors.EvaluationError,
    )
}


def failure_to_wire(exc: ParseFailure) -> dict:
    """Flatten a structured parse failure into a picklable dict."""
    wire = {
        "class": type(exc).__name__,
        "message": str(exc),
        "nonterminal": exc.nonterminal,
        "offset": exc.offset,
        "rule_stack": list(exc.rule_stack),
        "interval": list(exc.interval) if exc.interval is not None else None,
    }
    limit = getattr(exc, "limit", None)
    if limit is not None:
        wire["limit"] = limit
    return wire


def failure_from_wire(wire: dict) -> ParseFailure:
    """Rebuild the taxonomy exception a worker reported."""
    cls = FAILURE_CLASSES.get(wire.get("class"), ParseFailure)
    message = wire.get("message", "parse failed")
    kwargs = {
        "nonterminal": wire.get("nonterminal", ""),
        "rule_stack": tuple(wire.get("rule_stack") or ()),
        "interval": wire.get("interval"),
    }
    if cls is _errors.LimitExceeded:
        return cls(message, limit=wire.get("limit", ""), **kwargs)
    return cls(message, offset=wire.get("offset"), **kwargs)


def config_error_from_wire(wire: dict) -> Exception:
    cls = CONFIG_ERROR_CLASSES.get(wire.get("class"), _errors.IPGError)
    try:
        return cls(wire.get("message", "grammar error"))
    except TypeError:  # subclass with a stricter signature
        return _errors.IPGError(wire.get("message", "grammar error"))


# ---------------------------------------------------------------------------
# Spool files (shared-memory payload shipping)
# ---------------------------------------------------------------------------


def spool_write(spool_dir: str, request_id: int, data) -> str:
    """Write ``data`` to a spool file; returns its path.

    The name embeds the request id (unique per service instance), so
    concurrent requests never collide and a leftover file is attributable.
    """
    path = os.path.join(spool_dir, f"req-{request_id}.bin")
    with open(path, "wb") as handle:
        handle.write(data)
    return path


class SpooledInput:
    """A worker-side read-only mapping of a spooled payload.

    Exposes the mapped buffer via :attr:`data`; :meth:`close` drops it.
    An empty payload maps to ``b""`` (mmap refuses zero-length maps).
    """

    def __init__(self, path: str, length: int):
        self._mmap: Optional[mmap.mmap] = None
        if length == 0:
            self.data = b""
            return
        with open(path, "rb") as handle:
            self._mmap = mmap.mmap(handle.fileno(), length, access=mmap.ACCESS_READ)
        self.data = self._mmap

    def close(self) -> None:
        if self._mmap is None:
            return
        try:
            self._mmap.close()
        except BufferError:
            # A view escaped (shouldn't happen: replies are jsonable
            # copies); break collectable cycles and retry once.
            import gc

            gc.collect()
            try:
                self._mmap.close()
            except BufferError:
                pass
        self._mmap = None
