#!/usr/bin/env python3
"""readelf-style inspection of an ELF file with the IPG ELF grammar.

Parses an ELF64 binary (a synthetic one by default, or a file given on the
command line), prints the header, the section table, dynamic entries and
symbols — the information ``readelf -h -S --dyn-syms`` shows — and
cross-checks the result against the hand-written baseline parser.

Run with:  python examples/elf_inspect.py [path/to/binary]
"""

import sys

from repro import samples
from repro.baselines.handwritten import elf as handwritten_elf
from repro.formats import elf


def load_input() -> bytes:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "rb") as handle:
            return handle.read()
    # No file given: build a synthetic ELF with a few sections and symbols.
    return samples.build_elf(section_count=6, symbol_count=12, dynamic_entries=8)


def main() -> None:
    data = load_input()
    print(f"input: {len(data)} bytes")

    # Parse with the IPG grammar (section 4.1 of the paper).
    tree = elf.parse(data)
    summary = elf.summarize(tree, data)
    print(elf.render_readelf(summary))

    # The parse tree itself is available for ad-hoc queries; for example the
    # file offsets of every section the parser visited:
    print("\nsection intervals (from the parse tree):")
    for header, section in zip(summary.sections[1:], tree.array("Sec") or []):
        print(f"  {header.name:<12s} [{section.start:#x}, {section.end:#x})")

    # Cross-check against the hand-written parser (the Figure 12 baseline).
    baseline = handwritten_elf.parse(data)
    assert summary.section_count == baseline.header["shnum"]
    assert [s.offset for s in summary.sections] == [
        sh["offset"] for sh in baseline.section_headers
    ]
    print("\ncross-check against the hand-written readelf baseline: OK")


if __name__ == "__main__":
    main()
