"""IPG specifications of real file formats (section 4 and section 7).

Each module in this package contains:

* ``GRAMMAR`` — the IPG source text of the format specification,
* ``build_parser()`` — a ready-to-use :class:`repro.Parser` (with blackbox
  parsers registered where the format needs them, e.g. zlib for ZIP),
* ``parse(data)`` — parse one file/packet and return the parse tree,
* format-specific helpers that turn parse trees into Python summaries
  (section listings, archive member tables, ...), used by the examples and
  the benchmark harness.

Formats covered (same set as the paper's evaluation): ZIP, GIF, PE, ELF,
a PDF subset, IPv4+UDP and DNS, plus the paper's toy grammars in
:mod:`repro.formats.toy`.
"""

from . import dns, elf, gif, ipv4, pdf, pe, toy, zipfmt
from .base import FormatSpec, registry

__all__ = [
    "FormatSpec",
    "dns",
    "elf",
    "gif",
    "ipv4",
    "pdf",
    "pe",
    "registry",
    "toy",
    "zipfmt",
]
