"""Synthetic PE (Portable Executable) files for tests and benchmarks.

The generated binaries contain a DOS header with ``e_lfanew``, the PE
signature, a COFF header, a PE32+ optional header of standard size, a
section header table and the raw data of every section, laid out with the
usual file alignment.  They are not runnable programs, but they contain all
the structure the PE grammar (and the Kaitai-like baseline) parses.
"""

from __future__ import annotations

import struct
from typing import List, Optional

DOS_HEADER_SIZE = 64
COFF_SIZE = 20
OPTIONAL_HEADER_SIZE = 240  # PE32+ with 16 data directories
SECTION_HEADER_SIZE = 40
FILE_ALIGNMENT = 512


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def build_pe(
    section_count: int = 3,
    section_size: int = 512,
    machine: int = 0x8664,
    seed: int = 17,
) -> bytes:
    """Build a synthetic PE32+ image with ``section_count`` sections."""
    if section_count < 0 or section_size < 0:
        raise ValueError("section_count and section_size must be non-negative")

    lfanew = DOS_HEADER_SIZE
    dos_header = bytearray(b"MZ" + b"\x00" * (DOS_HEADER_SIZE - 2))
    struct.pack_into("<I", dos_header, 60, lfanew)

    headers_size = lfanew + 4 + COFF_SIZE + OPTIONAL_HEADER_SIZE + section_count * SECTION_HEADER_SIZE
    first_raw = _align(headers_size, FILE_ALIGNMENT)

    coff = struct.pack(
        "<HHIIIHH",
        machine,
        section_count,
        0x5F000000,  # timestamp
        0,
        0,
        OPTIONAL_HEADER_SIZE,
        0x0022,  # executable, large address aware
    )

    optional = bytearray(OPTIONAL_HEADER_SIZE)
    struct.pack_into("<H", optional, 0, 0x20B)  # PE32+ magic
    struct.pack_into("<I", optional, 16, 0x1000)  # entry point RVA
    struct.pack_into("<Q", optional, 24, 0x140000000)  # image base

    section_headers = bytearray()
    sections = bytearray()
    raw_ptr = first_raw
    rng_state = seed
    for index in range(section_count):
        name = f".sec{index}".encode("ascii")[:8].ljust(8, b"\x00")
        raw_size = _align(section_size, FILE_ALIGNMENT)
        body = bytearray()
        while len(body) < raw_size:
            rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
            body.append(rng_state & 0xFF)
        section_headers.extend(
            struct.pack(
                "<8sIIIIIIHHI",
                name,
                section_size,
                0x1000 * (index + 1),
                raw_size,
                raw_ptr,
                0,
                0,
                0,
                0,
                0x60000020,
            )
        )
        sections.extend(body[:raw_size])
        raw_ptr += raw_size

    blob = bytearray()
    blob.extend(dos_header)
    blob.extend(b"PE\x00\x00")
    blob.extend(coff)
    blob.extend(optional)
    blob.extend(section_headers)
    blob.extend(b"\x00" * (first_raw - len(blob)))
    blob.extend(sections)
    return bytes(blob)


def build_pe_series(section_counts: Optional[List[int]] = None, **kwargs) -> List[bytes]:
    """Build a series of PEs with growing section counts (Figure 13c)."""
    section_counts = section_counts or [1, 4, 8, 16]
    return [build_pe(section_count=count, **kwargs) for count in section_counts]
