#!/usr/bin/env python3
"""Specify a brand-new binary format as an IPG, end to end.

The format invented here ("TLVS") is a container of type-length-value
records with a trailing directory — small, but it needs every IPG feature a
real format needs: the type-length-value pattern (switch terms), a
random-access directory at the end of the file, attribute arithmetic,
implicit intervals, termination checking, and ahead-of-time emission.

Run with:  python examples/custom_format.py
"""

import struct

from repro import Parser
from repro.core.compiler import compile_grammar
from repro.core.termination import assert_terminates

GRAMMAR = """
// TLVS container:
//   "TLVS" magic, record count, directory offset,
//   then records (type-length-value), then a directory of record offsets.
File -> "TLVS"
        U32LE {count = U32LE.val}
        U32LE {dirofs = U32LE.val}
        for i = 0 to count do DirEntry[dirofs + 4 * i, dirofs + 4 * (i + 1)]
        for i = 0 to count do Record[DirEntry(i).ofs, EOI] ;

DirEntry -> U32LE {ofs = U32LE.val} ;

// A record is type (1 byte) + length (2 bytes) + value parsed by type.
Record -> U8 {rtype = U8.val}
          U16LE {len = U16LE.val}
          switch(rtype = 1 : TextValue[len]
                / rtype = 2 : NumberValue[len]
                / BlobValue[len]) ;

TextValue -> Bytes ;
NumberValue -> U32LE {val = U32LE.val} ;
BlobValue -> Raw ;
"""


def build_file() -> bytes:
    """Hand-assemble a TLVS container with three records."""
    records = [
        (1, b"hello, interval parsing"),      # text
        (2, struct.pack("<I", 123456789)),    # number
        (9, b"\xde\xad\xbe\xef" * 4),          # opaque blob
    ]
    body = bytearray()
    offsets = []
    base = 12  # header size
    for rtype, value in records:
        offsets.append(base + len(body))
        body.extend(struct.pack("<BH", rtype, len(value)))
        body.extend(value)
    directory_offset = base + len(body)
    directory = b"".join(struct.pack("<I", offset) for offset in offsets)
    header = b"TLVS" + struct.pack("<II", len(records), directory_offset)
    return header + bytes(body) + directory


def main() -> None:
    # Static termination checking before anything is parsed.
    report = assert_terminates(GRAMMAR)
    print(report.summary())

    data = build_file()
    tree = Parser(GRAMMAR).parse(data)

    print(f"records: {tree['count']}")
    for index, record in enumerate(tree.array("Record")):
        rtype = record["rtype"]
        if record.child("TextValue"):
            text = record.child("TextValue").child("Bytes").children[0].value
            rendered = f"text {text.decode()!r}"
        elif record.child("NumberValue"):
            rendered = f"number {record.child('NumberValue')['val']}"
        else:
            rendered = f"blob of {record['len']} bytes"
        print(f"  record {index}: type={rtype} -> {rendered}")

    # The same grammar emitted ahead of time produces the same tree — the
    # standalone module is what you would ship (`repro compile` writes it
    # to disk).
    compiled = compile_grammar(GRAMMAR)
    module = compiled.load_module("tlvs_parser")
    assert module.parse(data) == tree
    lines = len(compiled.to_source().splitlines())
    print(f"ahead-of-time parser ({lines} lines) agrees with the interpreter")


if __name__ == "__main__":
    main()
