"""Satisfiability checking for small conjunctions of linear constraints.

The termination checker produces, for every elementary cycle, a conjunction
of constraints of the shapes

* ``form = 0``      (a left interval endpoint must be 0),
* ``form = 0`` where ``form = e_r − EOI``  (a right endpoint must be EOI),
* ``form > 0``      (the ``A.end > 0`` refinement of section 5),
* ``form ≥ 0``      (well-formedness side conditions).

:func:`check_satisfiability` decides such conjunctions with three tiers:

1. **Equality elimination.**  Any equality with a ±1 coefficient variable is
   solved for that variable and substituted away.  Realistic IPG interval
   expressions (offsets, ``EOI − k``, ``base + i*size``) are all in this
   fragment, so after this step the system is usually variable-free.
2. **Constant checking.**  Variable-free constraints are decided directly;
   a single violated one makes the conjunction UNSAT.
3. **Bounded witness search.**  If variables remain, a small enumeration over
   candidate integer values looks for a witness.  A found witness is a sound
   SAT answer; exhausting the candidates yields UNKNOWN, which the
   termination checker treats like SAT (conservatively rejecting the cycle).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from .linear import LinearForm


class Satisfiability(Enum):
    """Result of a satisfiability query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


#: Relations supported in constraints: ``form REL 0``.
REL_EQ = "=="
REL_GT = ">"
REL_GE = ">="


@dataclass(frozen=True)
class Constraint:
    """A single constraint ``form REL 0``."""

    form: LinearForm
    relation: str = REL_EQ

    def substitute(self, name: str, replacement: LinearForm) -> "Constraint":
        return Constraint(self.form.substitute(name, replacement), self.relation)

    def holds_for_constant(self) -> Optional[bool]:
        """Decide the constraint if it is variable-free, else ``None``."""
        if not self.form.is_constant:
            return None
        value = self.form.constant
        if self.relation == REL_EQ:
            return value == 0
        if self.relation == REL_GT:
            return value > 0
        if self.relation == REL_GE:
            return value >= 0
        raise ValueError(f"unknown relation {self.relation}")

    def evaluate(self, assignment: Dict[str, int]) -> bool:
        value = self.form.evaluate(assignment)
        if self.relation == REL_EQ:
            return value == 0
        if self.relation == REL_GT:
            return value > 0
        if self.relation == REL_GE:
            return value >= 0
        raise ValueError(f"unknown relation {self.relation}")

    def __repr__(self) -> str:
        return f"{self.form!r} {self.relation} 0"


def _eliminate_equalities(constraints: List[Constraint]) -> Tuple[List[Constraint], bool]:
    """Substitute away equality-defined variables.

    Returns the reduced constraint list and a flag that is False when a
    contradiction was found during elimination (i.e. the system is UNSAT).
    """
    current = list(constraints)
    progress = True
    while progress:
        progress = False
        for position, constraint in enumerate(current):
            if constraint.relation != REL_EQ:
                continue
            decided = constraint.holds_for_constant()
            if decided is False:
                return current, False
            if decided is True:
                continue
            # Pick a variable with coefficient ±1 to solve for.
            pivot = None
            for var, coeff in constraint.form.coefficients.items():
                if coeff in (Fraction(1), Fraction(-1)):
                    pivot = (var, coeff)
                    break
            if pivot is None:
                continue
            var, coeff = pivot
            # form = coeff*var + rest = 0   =>   var = -rest / coeff
            rest = LinearForm(
                constraint.form.constant,
                {v: c for v, c in constraint.form.coefficients.items() if v != var},
            )
            replacement = rest.scale(Fraction(-1) / coeff)
            reduced = []
            for other_position, other in enumerate(current):
                if other_position == position:
                    continue
                reduced.append(other.substitute(var, replacement))
            current = reduced
            progress = True
            break
    return current, True


def _candidate_values(constraints: Sequence[Constraint], bound: int) -> List[int]:
    """Candidate integers for the bounded witness search."""
    candidates = set(range(0, bound + 1))
    candidates.update(-v for v in range(1, bound + 1))
    for constraint in constraints:
        magnitude = abs(constraint.form.constant)
        if magnitude.denominator == 1:
            value = int(magnitude)
            candidates.update({value, value + 1, value - 1, -value})
    return sorted(candidates)


def check_satisfiability(
    constraints: Sequence[Constraint],
    bound: int = 6,
    max_assignments: int = 200_000,
) -> Satisfiability:
    """Decide (or conservatively approximate) a conjunction of constraints."""
    reduced, consistent = _eliminate_equalities(list(constraints))
    if not consistent:
        return Satisfiability.UNSAT

    unresolved: List[Constraint] = []
    for constraint in reduced:
        decided = constraint.holds_for_constant()
        if decided is False:
            return Satisfiability.UNSAT
        if decided is None:
            unresolved.append(constraint)
    if not unresolved:
        return Satisfiability.SAT

    variables = sorted({var for c in unresolved for var in c.form.variables()})
    candidates = _candidate_values(unresolved, bound)
    total = len(candidates) ** len(variables)
    if total > max_assignments:
        return Satisfiability.UNKNOWN
    for combo in itertools.product(candidates, repeat=len(variables)):
        assignment = dict(zip(variables, combo))
        if all(constraint.evaluate(assignment) for constraint in unresolved):
            return Satisfiability.SAT
    return Satisfiability.UNKNOWN
