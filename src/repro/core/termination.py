"""Static termination checking for IPGs (section 5 of the paper).

The algorithm:

1. Build the *nonterminal dependency graph*: one vertex per nonterminal, and
   an edge ``A -> B`` labelled with the symbolic interval ``[e_l, e_r]`` for
   every occurrence ``B[e_l, e_r]`` in the rule of ``A`` (including array
   elements, switch targets and local ``where`` rules).
2. Enumerate all elementary cycles of the graph (Johnson's algorithm,
   :mod:`repro.core.cycles`).
3. For each cycle, ask the solver whether the conjunction

       (e_l0 = 0) ∧ (e_r0 = EOI) ∧ ... ∧ (e_ln = 0) ∧ (e_rn = EOI)

   is satisfiable.  Intervals strictly larger than ``[0, EOI]`` are invalid
   and stop the parser, so a non-decreasing cycle must keep the interval
   exactly ``[0, EOI]``; if the formula is unsatisfiable the intervals shrink
   somewhere around the cycle and the cycle cannot run forever.
4. *Extension* (paper, end of section 5): when an interval endpoint refers to
   ``X.end`` and the rule of ``X`` always consumes at least one terminal, the
   clause ``X.end > 0`` is added; this accepts chunk-list grammars such as
   GIF's ``Blocks -> Block Blocks[Block.end, EOI]``.

Blackbox parsers are assumed to terminate (their checking is delegated to
the programmer), and builtins always terminate.

The paper's Z3 queries are discharged by :mod:`repro.solver`; see DESIGN.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..solver import Constraint, LinearForm, Satisfiability, check_satisfiability, linearize
from ..solver.sat import REL_EQ, REL_GT
from .ast import (
    Alternative,
    Grammar,
    Rule,
    TermArray,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .builtins import BUILTINS, is_builtin
from .cycles import elementary_cycles
from .errors import TerminationCheckError
from .expr import Dot, Expr, Name
from .interpreter import prepare_grammar


# ---------------------------------------------------------------------------
# Dependency graph construction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Edge:
    """A labelled edge of the nonterminal dependency graph."""

    source: str
    target: str
    left: Expr
    right: Expr

    def __repr__(self) -> str:
        return f"{self.source} -[{self.left.to_source()}, {self.right.to_source()}]-> {self.target}"


class DependencyGraph:
    """The nonterminal dependency graph with symbolic interval labels."""

    def __init__(self) -> None:
        self.edges: List[Edge] = []
        self.vertices: Set[str] = set()

    def add_vertex(self, name: str) -> None:
        self.vertices.add(name)

    def add_edge(self, edge: Edge) -> None:
        self.edges.append(edge)
        self.vertices.add(edge.source)
        self.vertices.add(edge.target)

    def successors(self) -> Dict[str, List[str]]:
        graph: Dict[str, List[str]] = {vertex: [] for vertex in self.vertices}
        for edge in self.edges:
            graph[edge.source].append(edge.target)
        return graph

    def edges_between(self, source: str, target: str) -> List[Edge]:
        return [e for e in self.edges if e.source == source and e.target == target]


def build_dependency_graph(grammar: Grammar) -> DependencyGraph:
    """Build the nonterminal dependency graph of ``grammar``.

    Local rules appear as vertices qualified by their enclosing rule name
    (``"ELF::Sec"``) so that two unrelated local rules with the same name do
    not get conflated.
    """
    graph = DependencyGraph()

    def resolve(name: str, scope: Dict[str, str]) -> Optional[str]:
        if name in scope:
            return scope[name]
        if grammar.has_rule(name):
            return name
        return None  # builtin or blackbox: assumed terminating, no vertex

    def walk_rule(rule: Rule, vertex: str, scope: Dict[str, str]) -> None:
        graph.add_vertex(vertex)
        for alternative in rule.alternatives:
            inner_scope = dict(scope)
            for local in alternative.local_rules:
                inner_scope[local.name] = f"{vertex}::{local.name}"
            walk_alternative(alternative, vertex, inner_scope)
            for local in alternative.local_rules:
                walk_rule(local, inner_scope[local.name], inner_scope)

    def walk_alternative(alternative: Alternative, vertex: str, scope: Dict[str, str]) -> None:
        for term in alternative.terms:
            if isinstance(term, TermNonterminal):
                _add(term, vertex, scope)
            elif isinstance(term, TermArray):
                _add(term.element, vertex, scope)
            elif isinstance(term, TermSwitch):
                for case in term.cases:
                    _add(case.target, vertex, scope)

    def _add(term: TermNonterminal, vertex: str, scope: Dict[str, str]) -> None:
        target = resolve(term.name, scope)
        if target is None:
            return
        left = term.interval.left
        right = term.interval.right
        assert left is not None and right is not None, "intervals must be completed"
        graph.add_edge(Edge(vertex, target, left, right))

    for rule in grammar.iter_rules():
        walk_rule(rule, rule.name, {})
    return graph


# ---------------------------------------------------------------------------
# "Consumes at least one terminal" analysis (for the A.end > 0 extension)
# ---------------------------------------------------------------------------


def consuming_nonterminals(grammar: Grammar) -> Set[str]:
    """Nonterminals whose parsing always touches at least one input byte.

    Computed as a least fixpoint: a rule consumes when *every* alternative
    contains a non-empty terminal, a fixed-size builtin, or a nonterminal
    already known to consume.  This is the syntactic check the paper uses to
    justify adding ``A.end > 0``.
    """
    names = {rule.name for rule, _parent in grammar.iter_all_rules()}
    rules = {rule.name: rule for rule, _parent in grammar.iter_all_rules()}
    consuming: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in names:
            if name in consuming:
                continue
            if _rule_consumes(rules[name], consuming):
                consuming.add(name)
                changed = True
    return consuming


def _rule_consumes(rule: Rule, consuming: Set[str]) -> bool:
    return all(_alternative_consumes(alt, consuming) for alt in rule.alternatives)


def _alternative_consumes(alternative: Alternative, consuming: Set[str]) -> bool:
    local_names = alternative.local_rule_names()
    for term in alternative.terms:
        if isinstance(term, TermTerminal) and term.value:
            return True
        if isinstance(term, TermNonterminal):
            name = term.name
            if name in consuming and name not in local_names:
                return True
            if is_builtin(name) and BUILTINS[name].size:
                return True
            # Local rules: conservatively check their own alternatives.
            for local in alternative.local_rules:
                if local.name == name and _rule_consumes(local, consuming):
                    return True
    return False


# ---------------------------------------------------------------------------
# Cycle checking
# ---------------------------------------------------------------------------


@dataclass
class CycleVerdict:
    """Result of checking one elementary cycle."""

    cycle: List[str]
    edges: List[Edge]
    satisfiability: Satisfiability
    reason: str = ""

    @property
    def terminates(self) -> bool:
        return self.satisfiability is Satisfiability.UNSAT


@dataclass
class TerminationReport:
    """Full result of termination checking a grammar."""

    grammar_start: str
    cycles: List[CycleVerdict] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(verdict.terminates for verdict in self.cycles)

    @property
    def cycle_count(self) -> int:
        return len(self.cycles)

    def failing_cycles(self) -> List[CycleVerdict]:
        return [verdict for verdict in self.cycles if not verdict.terminates]

    def summary(self) -> str:
        status = "terminates" if self.ok else "MAY NOT TERMINATE"
        return (
            f"termination check: {status}; {self.cycle_count} elementary cycle(s) "
            f"examined in {self.elapsed_seconds * 1000:.2f} ms"
        )


def _edge_constraints(
    edge: Edge, index: int, consuming: Set[str], extra: List[Constraint]
) -> Optional[List[Constraint]]:
    """Constraints for one cycle edge, or ``None`` if outside the linear fragment."""

    def namer(expr: Expr) -> str:
        # EOI is shared along the cycle (the interval is exactly [0, EOI] at
        # every step of a non-decreasing cycle, so all local inputs coincide);
        # all other references are scoped to this edge.
        if isinstance(expr, Name) and expr.ident == "EOI":
            return "EOI"
        return f"edge{index}:{expr.to_source()}"

    left_form = linearize(edge.left, namer)
    right_form = linearize(edge.right, namer)
    if left_form is None or right_form is None:
        return None
    constraints = [
        Constraint(left_form, REL_EQ),
        Constraint(right_form - LinearForm.of_variable("EOI"), REL_EQ),
    ]
    # Extension: X.end > 0 whenever the endpoint references X.end and X's rule
    # always consumes at least one terminal.
    for endpoint in (edge.left, edge.right):
        for node in endpoint.walk():
            if isinstance(node, Dot) and node.attr == "end" and node.nonterminal in consuming:
                variable = f"edge{index}:{node.to_source()}"
                extra.append(Constraint(LinearForm.of_variable(variable), REL_GT))
    return constraints


def check_termination(grammar: Union[Grammar, str]) -> TerminationReport:
    """Run static termination checking and return a :class:`TerminationReport`."""
    grammar = prepare_grammar(grammar)
    started = time.perf_counter()
    graph = build_dependency_graph(grammar)
    consuming = consuming_nonterminals(grammar)
    report = TerminationReport(grammar_start=grammar.start)

    successors = graph.successors()
    for cycle in elementary_cycles(successors):
        verdicts = _check_cycle(graph, cycle, consuming)
        report.cycles.extend(verdicts)
    report.elapsed_seconds = time.perf_counter() - started
    return report


def _check_cycle(
    graph: DependencyGraph, cycle: Sequence[str], consuming: Set[str]
) -> List[CycleVerdict]:
    """Check every combination of parallel edges along one vertex cycle.

    Between two nonterminals there may be several edges with different
    intervals; a vertex cycle terminates only if *every* edge combination
    does, so each combination is checked separately.
    """
    edge_choices: List[List[Edge]] = []
    for position, vertex in enumerate(cycle):
        successor = cycle[(position + 1) % len(cycle)]
        parallel = graph.edges_between(vertex, successor)
        if not parallel:
            return []  # not a real cycle in the labelled graph
        edge_choices.append(parallel)

    verdicts: List[CycleVerdict] = []
    for combination in _product(edge_choices):
        extra: List[Constraint] = []
        constraints: List[Constraint] = []
        linearizable = True
        for index, edge in enumerate(combination):
            edge_constraints = _edge_constraints(edge, index, consuming, extra)
            if edge_constraints is None:
                linearizable = False
                break
            constraints.extend(edge_constraints)
        if not linearizable:
            verdicts.append(
                CycleVerdict(
                    cycle=list(cycle),
                    edges=list(combination),
                    satisfiability=Satisfiability.UNKNOWN,
                    reason="interval expressions outside the linear fragment",
                )
            )
            continue
        outcome = check_satisfiability(constraints + extra)
        reason = (
            "intervals must shrink around the cycle"
            if outcome is Satisfiability.UNSAT
            else "the cycle can keep the interval [0, EOI]"
        )
        verdicts.append(
            CycleVerdict(
                cycle=list(cycle),
                edges=list(combination),
                satisfiability=outcome,
                reason=reason,
            )
        )
    return verdicts


def _product(choices: List[List[Edge]]):
    if not choices:
        return
    indices = [0] * len(choices)
    while True:
        yield [choices[i][indices[i]] for i in range(len(choices))]
        position = len(choices) - 1
        while position >= 0:
            indices[position] += 1
            if indices[position] < len(choices[position]):
                break
            indices[position] = 0
            position -= 1
        if position < 0:
            return


def assert_terminates(grammar: Union[Grammar, str]) -> TerminationReport:
    """Raise :class:`TerminationCheckError` unless the grammar passes checking."""
    report = check_termination(grammar)
    if not report.ok:
        failing = report.failing_cycles()[0]
        cycle_text = " -> ".join(failing.cycle + [failing.cycle[0]])
        raise TerminationCheckError(
            f"grammar may not terminate: cycle {cycle_text} ({failing.reason})",
            cycle=failing.cycle,
        )
    return report
