"""The interpreter on the paper's own examples (sections 2, 3.5 and 4.3)."""

import struct

import pytest

from repro import ParseFailure, Parser
from repro.formats import toy


class TestFigure1:
    """Intervals anchor nonterminals to slices: accepts "aa...bb"."""

    def test_accepts_with_middle_garbage(self, figure1_parser):
        assert figure1_parser.accepts(b"aaxyzbb")

    def test_accepts_minimal_string(self, figure1_parser):
        assert figure1_parser.accepts(b"aabb")

    def test_rejects_wrong_prefix(self, figure1_parser):
        assert not figure1_parser.accepts(b"abxyzbb")

    def test_rejects_wrong_suffix(self, figure1_parser):
        assert not figure1_parser.accepts(b"aaxyzbc")

    def test_rejects_too_short(self, figure1_parser):
        assert not figure1_parser.accepts(b"aab")
        assert not figure1_parser.accepts(b"")

    def test_parse_raises_on_failure(self, figure1_parser):
        with pytest.raises(ParseFailure):
            figure1_parser.parse(b"zz")

    def test_parse_tree_shape(self, figure1_parser):
        tree = figure1_parser.parse(b"aaxbb")
        assert tree.name == "S"
        assert [child.name for child in tree.children] == ["A", "B"]
        assert tree.child("A").start == 0 and tree.child("A").end == 2
        assert tree.child("B").start == 3 and tree.child("B").end == 5


class TestFigure2RandomAccess:
    """The header stores offset/length of the data that follows."""

    def test_header_directs_data_parsing(self, figure2_parser):
        data = toy.build_figure_2_input(offset=10, length=4, payload=b"PAYL")
        tree = figure2_parser.parse(data)
        header = tree.child("H")
        assert header["offset"] == 10 and header["length"] == 4
        data_node = tree.child("Data")
        assert data_node.start == 10 and data_node.end == 14

    def test_data_may_overlap_header_region(self, figure2_parser):
        # Random access means the data interval is wherever the header says.
        data = struct.pack("<II", 8, 2) + b"ZZ"
        assert figure2_parser.accepts(data)

    def test_out_of_range_offset_fails(self, figure2_parser):
        data = struct.pack("<II", 100, 4) + b"xxxx"
        assert not figure2_parser.accepts(data)

    def test_length_beyond_input_fails(self, figure2_parser):
        data = struct.pack("<II", 8, 50) + b"xxxx"
        assert not figure2_parser.accepts(data)


class TestFigure3BinaryNumber:
    """Left recursion with shrinking intervals computes the binary value."""

    @pytest.mark.parametrize("text", ["0", "1", "10", "1011", "111111", "100000"])
    def test_value_matches_python_int(self, figure3_parser, text):
        assert figure3_parser.parse(text.encode())["val"] == int(text, 2)

    def test_rejects_empty_input(self, figure3_parser):
        assert not figure3_parser.accepts(b"")

    def test_rejects_leading_non_digit(self, figure3_parser):
        assert not figure3_parser.accepts(b"x01")


class TestFigure4SpecialAttributes:
    """`O.end` makes "stop" start right after the zeros."""

    def test_accepts_paper_example(self, figure4_parser):
        assert figure4_parser.accepts(b"1000stop")

    def test_accepts_single_zero(self, figure4_parser):
        assert figure4_parser.accepts(b"10stop")

    def test_rejects_without_zero(self, figure4_parser):
        assert not figure4_parser.accepts(b"1stop")

    def test_rejects_wrong_keyword(self, figure4_parser):
        assert not figure4_parser.accepts(b"1000stap")

    def test_end_attribute_is_rebased(self, figure4_parser):
        tree = figure4_parser.parse(b"1000stop")
        assert tree.child("O").end == 4  # adjusted into S's coordinates


class TestFigure6ArraysAndPredicates:
    def test_array_elements_and_guard(self, figure6_parser):
        data = toy.build_figure_6_input([3, 5, 7])
        tree = figure6_parser.parse(data)
        assert tree["a0"] == 3
        assert [node["val"] for node in tree.array("A")] == [3, 5, 7]

    def test_guard_rejects_out_of_range_first_element(self, figure6_parser):
        assert not figure6_parser.accepts(toy.build_figure_6_input([77, 5]))
        assert not figure6_parser.accepts(toy.build_figure_6_input([0, 5]))

    def test_too_few_elements_fails(self, figure6_parser):
        truncated = toy.build_figure_6_input([3, 5, 7])[:-4]
        assert not figure6_parser.accepts(truncated)


class TestAnBnCn:
    """Section 3.5: {a^n b^n c^n} is not context-free but is an IPG."""

    @pytest.mark.parametrize("n", [1, 2, 3, 7])
    def test_accepts_balanced(self, anbncn_parser, n):
        assert anbncn_parser.accepts(b"a" * n + b"b" * n + b"c" * n)

    @pytest.mark.parametrize(
        "text",
        [b"", b"abcc", b"aabbc", b"aabbbccc", b"abcabc", b"cba", b"aaabbbbcc"],
    )
    def test_rejects_unbalanced(self, anbncn_parser, text):
        assert not anbncn_parser.accepts(text)


class TestBackwardParsing:
    """Section 4.3: scanning a decimal number backwards from a known end."""

    @pytest.mark.parametrize("value", [0, 7, 42, 4096, 987654])
    def test_parses_decimal(self, value):
        parser = Parser(toy.BACKWARD_NUMBER)
        assert parser.parse(str(value).encode())["v"] == value

    def test_greedy_from_the_right(self):
        # Only the digits are described; where they start is discovered by
        # the recursion, mirroring the PDF startxref situation.
        parser = Parser(toy.BACKWARD_NUMBER)
        tree = parser.parse(b"123")
        assert tree["v"] == 123


class TestTwoPassParsing:
    """Section 4.3: object lengths live in *other* objects' headers."""

    def test_objects_are_recovered_with_cross_linked_lengths(self):
        parser = Parser(toy.TWO_PASS)
        payloads = [10, 20, 5]
        tree = parser.parse(toy.build_two_pass_input(payloads))
        objects = tree.array("Obj")
        # Each Obj spans its 8-byte header plus its payload.
        assert [node.end - node.start for node in objects] == [18, 28, 13]

    def test_headers_parsed_before_objects(self):
        parser = Parser(toy.TWO_PASS)
        tree = parser.parse(toy.build_two_pass_input([4, 4]))
        assert len(tree.array("OH")) == 2
        assert len(tree.array("SH")) == 2

    def test_missing_link_fails(self):
        parser = Parser(toy.TWO_PASS)
        data = bytearray(toy.build_two_pass_input([4, 4]))
        # Corrupt the link of the first object header so no header links to
        # object 0; the existential falls back to -1, an invalid interval.
        first_record_offset = struct.unpack_from("<I", data, 8)[0]
        struct.pack_into("<I", data, first_record_offset, 7)
        assert not parser.accepts(bytes(data))


class TestImplicitIntervalGrammar:
    def test_completed_grammar_parses(self):
        parser = Parser(toy.IMPLICIT_INTERVALS)
        tree = parser.parse(b"magic" + b"AAAAA" + b"B" * 10)
        assert tree.child("A").start == 5
        assert tree.child("A").end == 10
        assert tree.child("B").start == 10
