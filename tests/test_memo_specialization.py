"""Soundness tests for the memo-table specialization passes.

Two passes rewrite the packrat memo the PR-1 compiler allocated per rule:
non-recursive rules skip memoization entirely, and rules whose ``hi`` is
always the parse's ``EOI`` key their table by bare ``lo``.  Both are easy
to get subtly wrong — a skipped table must not conflate call sites, a
collapsed key must never be applied to a rule that can see two different
``hi`` values — so this module pins the edges directly.
"""

import pytest

from engine_matrix import matrix_for
from repro import Parser
from repro.core.compiler import Optimizations, compile_grammar


class TestMemoElisionSoundness:
    # The headline soundness edge: a non-recursive rule reached from two
    # call sites with different (lo, hi) windows.  With its memo elided
    # there is no table to conflate the windows in, but the result of the
    # first call must also never leak into the second.

    GRAMMAR = """
    S -> P[0, 4] P[2, 6] {a = P.v} Tail[6, EOI] ;
    P -> U16LE[0, 2] {v = U16LE.val} U16LE[2, 4] {w = U16LE.val} ;
    Tail -> Raw[0, EOI] ;
    """

    def test_rule_memo_is_elided(self):
        compiled = compile_grammar(self.GRAMMAR)
        assert compiled.memo_modes["P"] == "skipped"
        assert compiled.memo_modes["S"] == "skipped"

    def test_two_windows_parse_independently(self):
        data = bytes([1, 0, 2, 0, 3, 0, 9, 9])
        matrix = matrix_for(self.GRAMMAR)
        outcome = matrix.assert_agree(data)
        assert outcome[0] == "tree"
        tree = outcome[1]
        first, second = tree.children_named("P")
        # Overlapping windows: [0,4) reads (1,2); [2,6) reads (2,3).  A
        # leaked memo entry would repeat the first pair.
        assert (first["v"], first["w"]) == (1, 2)
        assert (second["v"], second["w"]) == (2, 3)
        # The recorded `P.v` is the *last* parse, per the env-record rule.
        assert tree["a"] == 2

    def test_same_window_twice_still_identical(self):
        grammar = """
        S -> P[0, 4] P[0, 4] {a = P.v} Tail[4, EOI] ;
        P -> U16LE[0, 2] {v = U16LE.val} U16LE[2, 4] {w = U16LE.val} ;
        Tail -> Raw[0, EOI] ;
        """
        compiled = compile_grammar(grammar)
        assert compiled.memo_modes["P"] == "skipped"
        matrix_for(grammar).assert_agree(bytes([1, 0, 2, 0, 5]))

    def test_elision_vs_full_memo_trees_match(self):
        data = bytes([1, 0, 2, 0, 3, 0, 9, 9])
        skipped = compile_grammar(self.GRAMMAR)
        memoized = compile_grammar(
            self.GRAMMAR, optimizations=Optimizations(skip_nonrecursive_memo=False)
        )
        assert memoized.memo_modes["P"] in ("dict", "dense")
        start = skipped.grammar.start
        assert skipped.parse_nonterminal(data, start, 0, len(data)) == \
            memoized.parse_nonterminal(data, start, 0, len(data))


class TestDenseKeySoundness:
    def test_mixed_hi_rule_is_never_dense(self):
        # P is called over [0,4) and [2,6): hi differs between call sites,
        # so collapsing its memo key to lo would conflate windows.
        compiled = compile_grammar(
            TestMemoElisionSoundness.GRAMMAR,
            optimizations=Optimizations(skip_nonrecursive_memo=False),
        )
        assert compiled.memo_modes["P"] == "dict"

    def test_eoi_anchored_recursive_rule_is_dense(self):
        grammar = """
        S -> Items[0, EOI] ;
        Items -> U8[0, 1] Items[1, EOI] / ""[0, 0] ;
        """
        compiled = compile_grammar(grammar)
        assert compiled.memo_modes["Items"] == "dense"
        matrix_for(grammar).assert_agree(bytes(range(7)))
        matrix_for(grammar).assert_agree(b"")

    def test_eoi_rebinding_disqualifies_dense(self):
        # {EOI = 4} rebinds the special before the call: the call site's
        # "EOI" is no longer the parse end, so Inner must keep (lo, hi).
        grammar = """
        S -> {EOI = 4} Inner[0, EOI] Tail[4, EOI] ;
        Inner -> Raw[0, EOI] ;
        Tail -> Raw[0, EOI] ;
        """
        compiled = compile_grammar(
            grammar, optimizations=Optimizations(skip_nonrecursive_memo=False)
        )
        assert compiled.memo_modes["Inner"] == "dict"
        # Tail's call site uses the rebound EOI too — conservative dict.
        assert compiled.memo_modes["Tail"] == "dict"
        matrix_for(grammar).assert_agree(b"abcdefgh")

    def test_anchoring_is_transitive(self):
        # Mid is EOI-anchored; Leaf is called from Mid with right = EOI, so
        # Leaf's hi is Mid's hi — anchored only because Mid is.  Break the
        # chain (call Mid over a sub-window) and Leaf must fall back too.
        anchored = """
        S -> Mid[0, EOI] ; S2 -> Mid[0, EOI] ;
        Mid -> U8[0, 1] Leaf[1, EOI] ;
        Leaf -> Raw[0, EOI] ;
        """
        compiled = compile_grammar(
            anchored, optimizations=Optimizations(skip_nonrecursive_memo=False)
        )
        assert compiled.memo_modes["Mid"] == "dense"
        assert compiled.memo_modes["Leaf"] == "dense"
        broken = """
        S -> Mid[0, 4] Rest[4, EOI] ;
        Mid -> U8[0, 1] Leaf[1, EOI] ;
        Leaf -> Raw[0, EOI] ;
        Rest -> Raw[0, EOI] ;
        """
        compiled = compile_grammar(
            broken, optimizations=Optimizations(skip_nonrecursive_memo=False)
        )
        assert compiled.memo_modes["Mid"] == "dict"
        assert compiled.memo_modes["Leaf"] == "dict"
        matrix_for(broken).assert_agree(bytes([1, 2, 3, 4, 5, 6]))


class TestStreamingKeepsFullMemo:
    def test_streaming_variant_never_skips(self):
        # Streaming re-entry replays completed work as memo hits; the
        # driver must get a compilation with elision off even though the
        # batch engine skips (see Parser._streaming_compiled).
        parser = Parser("S -> Hdr[0, 2] Raw[2, EOI] ;\n"
                        "Hdr -> U16LE[0, 2] {n = U16LE.val} ;")
        assert parser.backend == "compiled"
        assert parser._compiled.memo_modes["Hdr"] == "skipped"
        streaming = parser._streaming_compiled()
        assert streaming is not None
        assert "skipped" not in streaming.memo_modes.values()
        # And the streamed tree still matches the batch tree.
        data = bytes([7, 0]) + b"payload"
        chunks = [data[i : i + 3] for i in range(0, len(data), 3)]
        assert parser.parse_stream(chunks) == parser.parse(data)

    @pytest.mark.parametrize("chunk_size", [1, 2, 5])
    def test_streamed_trees_match_batch_under_passes(self, chunk_size):
        parser = Parser("S -> Hdr[0, 4] Body[4, EOI] ;\n"
                        "Hdr -> U16LE[0, 2] {a = U16LE.val} U16LE[2, 4] {b = U16LE.val} ;\n"
                        "Body -> Raw[0, EOI] {len = Raw.len} ;")
        data = bytes([1, 0, 2, 0]) + b"streamed body"
        chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]
        assert parser.parse_stream(chunks) == parser.parse(data)
