"""Synthetic DNS messages for tests and benchmarks.

:func:`build_dns_query` and :func:`build_dns_response` produce well-formed
wire-format messages.  Responses use name compression (a pointer back to the
question name) for the answer records, so the grammar's ``Pointer``
alternative is exercised, and the record counts scale the packet size for
the Figure 13e / Figure 14a experiments.
"""

from __future__ import annotations

import struct
from typing import List, Optional

QTYPE_A = 1
QCLASS_IN = 1


def encode_name(name: str) -> bytes:
    """Encode a dotted domain name into wire format (no compression)."""
    out = bytearray()
    for label in name.strip(".").split("."):
        if not label:
            continue
        raw = label.encode("ascii")
        if len(raw) > 63:
            raise ValueError(f"label too long: {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def _header(
    transaction_id: int,
    flags: int,
    qdcount: int,
    ancount: int,
    nscount: int,
    arcount: int,
) -> bytes:
    return struct.pack(">HHHHHH", transaction_id, flags, qdcount, ancount, nscount, arcount)


def build_dns_query(name: str = "www.example.com", transaction_id: int = 0x1234) -> bytes:
    """A single-question DNS query."""
    question = encode_name(name) + struct.pack(">HH", QTYPE_A, QCLASS_IN)
    return _header(transaction_id, 0x0100, 1, 0, 0, 0) + question


def build_dns_response(
    name: str = "www.example.com",
    answer_count: int = 2,
    additional_count: int = 0,
    transaction_id: int = 0x1234,
    use_compression: bool = True,
) -> bytes:
    """A DNS response with ``answer_count`` A records (and optional extras)."""
    if answer_count < 0 or additional_count < 0:
        raise ValueError("record counts must be non-negative")
    question_name = encode_name(name)
    question = question_name + struct.pack(">HH", QTYPE_A, QCLASS_IN)
    header = _header(
        transaction_id, 0x8180, 1, answer_count, 0, additional_count
    )
    out = bytearray(header + question)

    answer_name = struct.pack(">H", 0xC00C) if use_compression else question_name
    for index in range(answer_count):
        rdata = bytes([10, 0, (index >> 8) & 0xFF, index & 0xFF])
        out.extend(answer_name)
        out.extend(struct.pack(">HHIH", QTYPE_A, QCLASS_IN, 300 + index, len(rdata)))
        out.extend(rdata)

    for index in range(additional_count):
        extra_name = encode_name(f"extra{index}.example.com")
        rdata = bytes([192, 168, 0, index & 0xFF])
        out.extend(extra_name)
        out.extend(struct.pack(">HHIH", QTYPE_A, QCLASS_IN, 60, len(rdata)))
        out.extend(rdata)

    return bytes(out)


def build_dns_series(answer_counts: Optional[List[int]] = None, **kwargs) -> List[bytes]:
    """Responses with growing answer counts (Figure 13e / Figure 14a)."""
    answer_counts = answer_counts or [1, 4, 16, 64]
    return [build_dns_response(answer_count=count, **kwargs) for count in answer_counts]
