"""Tests for ``record_spans``: committed-derivation (rule, start, end) triples.

``Parser.parse(data, record_spans={...})`` returns ``(tree, spans)`` where
``spans`` lists every *committed* match of the requested rules as absolute
``(rule, start, end)`` byte offsets in post-order.  Matches inside
abandoned alternatives (backtracked choice points) must not appear.  The
contract holds identically on all three backends — recording disables
memoization and the decode fast paths, so the differential below is also
a regression net for those de-optimized paths.
"""

import pytest

from engine_matrix import format_sample
from repro import Parser
from repro.core.errors import IPGError
from repro.formats import registry

#: Formats paired with rules whose spans exercise arrays, recursion and
#: backtracking (zip's LFH/FileName sit behind a Stored/Deflated choice).
CASES = {
    "dns": {"Label"},
    "ipv4": {"IPv4Header"},
    "gif": {"ImageBlock", "SubBlock"},
    "zip": {"LFH", "FileName"},
    "elf": {"SH"},
    "pdf": {"Obj", "XrefEntry"},
}

BACKENDS = ("interpreted", "compiled", "tablevm")


def build(fmt: str, backend: str) -> Parser:
    spec = registry[fmt]
    return Parser(
        spec.grammar_text, blackboxes=dict(spec.blackboxes), backend=backend
    )


class TestRecordSpansDifferential:
    @pytest.mark.parametrize("fmt", sorted(CASES))
    def test_backends_agree_on_spans(self, fmt):
        data = format_sample(fmt)
        rules = CASES[fmt]
        reference_tree, reference_spans = build(fmt, "interpreted").parse(
            data, record_spans=rules
        )
        assert reference_spans, f"{fmt}: expected at least one recorded span"
        for backend in BACKENDS[1:]:
            tree, spans = build(fmt, backend).parse(data, record_spans=rules)
            assert tree == reference_tree, f"{backend}: tree differs"
            assert spans == reference_spans, f"{backend}: spans differ"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spans_are_absolute_and_ordered(self, backend):
        data = format_sample("dns")
        _, spans = build("dns", backend).parse(
            data, record_spans={"Label"}
        )
        for rule, start, end in spans:
            assert rule == "Label"
            assert 0 <= start <= end <= len(data)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_abandoned_alternatives_leave_no_spans(self, backend):
        # B matches inside A's first alternative, which then fails on the
        # trailing literal; the committed derivation goes through the
        # second alternative, which records exactly one B.
        grammar = (
            'S -> A[0, EOI] ; '
            'A -> B[0, 1] "x"[1, 2] / B[0, 1] "y"[1, 2] ; '
            'B -> U8[0, 1] {v = U8.val} ;'
        )
        parser = Parser(grammar, backend=backend)
        tree, spans = parser.parse(b"\x07y", record_spans={"B"})
        assert spans == [("B", 0, 1)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failure_returns_none_and_empty(self, backend):
        parser = build("gif", backend)
        tree, spans = parser.try_parse(b"not a gif", record_spans={"ImageBlock"})
        assert tree is None
        assert spans == []

    def test_record_spans_requires_tree_mode(self):
        parser = build("gif", "compiled")
        with pytest.raises(ValueError):
            parser.try_parse(b"", emit="spans", record_spans={"Frame"})

    def test_unknown_rule_raises(self):
        parser = build("gif", "compiled")
        with pytest.raises(IPGError):
            parser.parse(format_sample("gif"), record_spans={"NoSuchRule"})

    def test_tree_matches_plain_parse(self):
        # Recording must not perturb the tree (fast paths off, memo off).
        for backend in BACKENDS:
            parser = build("zip", backend)
            data = format_sample("zip")
            tree, _ = parser.parse(data, record_spans={"LFH"})
            assert tree == parser.parse(data)
