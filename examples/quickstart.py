#!/usr/bin/env python3
"""Quickstart: define an Interval Parsing Grammar and parse some bytes.

This walks through the core ideas of the paper with the toy file format of
Figure 2 (random access pattern): an 8-byte header stores the offset and
length of a data region somewhere else in the file, and the grammar's
intervals use the parsed attributes to jump there.

Run with:  python examples/quickstart.py
"""

import struct

from repro import Parser
from repro.core.compiler import compile_grammar
from repro.core.termination import check_termination

# An IPG is ordinary text.  Every nonterminal/terminal carries an interval
# [left, right) over its *local* input; attributes ({name = expr}) store
# parsed values; attributes may be used inside intervals.
GRAMMAR = """
// A tiny file format: header, then a data region located by the header.
S -> H[0, 8]
     Data[H.offset, H.offset + H.length]
     guard(H.length > 0) ;

H -> U32LE[0, 4] {offset = U32LE.val}
     U32LE[4, 8] {length = U32LE.val} ;

Data -> Bytes ;
"""


def build_sample_file() -> bytes:
    """A file whose header points at a payload 16 bytes in."""
    payload = b"interval parsing"
    header = struct.pack("<II", 16, len(payload))
    padding = b"\x00" * (16 - len(header))
    return header + padding + payload + b"trailing junk the grammar never touches"


def main() -> None:
    data = build_sample_file()

    # 1. Build a parser.  The front-end pipeline (interval auto-completion,
    #    attribute checking, term reordering) runs automatically.
    parser = Parser(GRAMMAR)

    # 2. Check termination statically (section 5 of the paper).
    report = check_termination(GRAMMAR)
    print(report.summary())

    # 3. Parse.  The result is a parse tree of Node/Array/Leaf values.
    tree = parser.parse(data)
    header = tree.child("H")
    print(f"header: offset={header['offset']} length={header['length']}")

    payload_node = tree.child("Data").child("Bytes")
    print(f"payload: {payload_node.children[0].value.decode()!r}")

    # 4. Parse trees carry the special attributes start/end: the byte range
    #    each nonterminal actually touched (relative to its parent's input).
    print(f"Data covers bytes [{tree.child('Data').start}, {tree.child('Data').end})")

    # 5. Two execution backends are available.  By default the grammar is
    #    staged into specialized Python closures (backend="compiled",
    #    typically 3-4x faster); backend="interpreted" runs the reference
    #    big-step interpreter.  Both produce identical trees.
    print(f"default engine: {parser.backend}")
    reference = Parser(GRAMMAR, backend="interpreted")
    assert reference.parse(data) == tree

    # 6. Grammars can also be emitted ahead of time as a standalone parser
    #    module (`repro compile` on the command line): stdlib-only at parse
    #    time, identical trees.
    source = compile_grammar(GRAMMAR).to_source()
    print(f"ahead-of-time parser module: {len(source.splitlines())} lines of Python")

    # 7. Invalid inputs are rejected, not mis-parsed.
    broken = struct.pack("<II", 9999, 4) + b"short"
    print(f"accepts(broken) = {parser.accepts(broken)}")


if __name__ == "__main__":
    main()
