"""The table-driven VM backend: one dispatch loop over lowered plan IR.

Where the closure backend (:mod:`repro.core.backends.closures`) emits one
specialized Python function per alternative, this backend *links* the
per-rule IR programs of a :class:`repro.core.ir.GrammarPlan` into compact
tables — first-byte dispatch rows, op tuples with pre-linked expression
closures, struct plans — and executes them in a single tight loop
(:meth:`_VMRun._run_alt`).  Both backends consume identical IR, so their
trees, spans and error classes agree by construction; the VM additionally
runs plans deserialized from JSON (:func:`repro.core.ir.plan_from_jsonable`),
which is what the table-backed AOT modules embed.

Engine facts (mirroring the closure backend where they differ from the
reference interpreter):

* fuel is charged on entries of *recursive* rules and on every array
  iteration (``RuleIR.fuel``), not on every rule entry;
* memoization follows the per-rule IR memo mode (``dict``/``dense``/
  ``skipped``/``unmemoized``; ``where`` locals are never memoized);
* rules whose whole body is a worthwhile fixed shape decode through the
  one-shot struct decoders of :mod:`repro.core.shapes`, and fixed-stride
  arrays of such rules bulk-decode record by record — both only when the
  plan still carries its source grammar (batch linking; deserialized plans
  and streaming runs take the generic op path).

Streaming: a run over a :class:`~repro.core.streaming.StreamBuffer` works
unchanged — the VM reads input only through indexing/slicing and compares
interval endpoints with ordinary operators, so
:class:`~repro.core.errors.NeedMoreInput` suspensions and ``EOIProxy``
endpoints propagate exactly as they do through the interpreter.  The
streaming driver uses a fully-memoized link (every rule at least ``dict``)
with the per-``(rule, lo)`` dispatch cache on, like the compiled variant.
"""

from __future__ import annotations

from time import monotonic as _monotonic
from typing import Dict, List, Optional, Set, Tuple

from ..builtins import (
    BUILTIN_FAIL,
    BUILTINS,
    is_builtin,
    normalize_blackbox_result,
)
from ..env import EvalContext, initial_env, upd_start_end_in_place
from ..errors import (
    BlackboxError,
    EvaluationError,
    IPGError,
    LimitExceeded,
)
from ..interpreter import FAIL
from ..ir import GrammarPlan, RuleIR
from ..limits import DEFAULT_LIMITS, ParseLimits
from ..parsetree import ArrayNode, Leaf, Node

__all__ = ["TableGrammar", "link_expr"]

_MISS = object()

# --- begin vendorable VM core (extracted verbatim into AOT table modules) ---


def _int_div(a: int, b: int) -> int:
    """Truncating integer division (C-like), as in the other engines."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def link_expr(prog):
    """Link a lowered expression program to a closure over an EvalContext.

    Implements the expression semantics of :mod:`repro.core.expr`:
    short-circuiting ``&&``/``||`` with 0/1 results, truncating ``/``/``%``
    that raise :class:`EvaluationError` on zero divisors, shift guards
    against negative amounts, and the ``exists`` binding protocol.
    """
    tag = prog[0]
    if tag == "num":
        value = prog[1]
        return lambda ctx: value
    if tag == "name":
        name = prog[1]
        return lambda ctx: ctx.lookup_name(name)
    if tag == "dot":
        nonterminal, attr = prog[1], prog[2]
        return lambda ctx: ctx.lookup_dot(nonterminal, attr)
    if tag == "idx":
        nonterminal, attr = prog[1], prog[2]
        index = link_expr(prog[3])
        return lambda ctx: ctx.lookup_index(nonterminal, index(ctx), attr)
    if tag == "bin":
        op = prog[1]
        left = link_expr(prog[2])
        right = link_expr(prog[3])
        if op == "&&":
            return lambda ctx: 1 if (left(ctx) != 0 and right(ctx) != 0) else 0
        if op == "||":
            return lambda ctx: 1 if (left(ctx) != 0 or right(ctx) != 0) else 0
        if op == "/":

            def _div(ctx):
                lhs, rhs = left(ctx), right(ctx)
                if rhs == 0:
                    raise EvaluationError("division by zero")
                return _int_div(lhs, rhs)

            return _div
        if op == "%":

            def _mod(ctx):
                lhs, rhs = left(ctx), right(ctx)
                if rhs == 0:
                    raise EvaluationError("modulo by zero")
                return lhs - _int_div(lhs, rhs) * rhs

            return _mod
        if op in ("<<", ">>"):
            shifter = (
                (lambda a, b: a << b) if op == "<<" else (lambda a, b: a >> b)
            )

            def _shift(ctx):
                lhs, rhs = left(ctx), right(ctx)
                if rhs < 0:
                    raise EvaluationError("negative shift amount")
                return shifter(lhs, rhs)

            return _shift
        table = {
            "+": lambda ctx: left(ctx) + right(ctx),
            "-": lambda ctx: left(ctx) - right(ctx),
            "*": lambda ctx: left(ctx) * right(ctx),
            "=": lambda ctx: 1 if left(ctx) == right(ctx) else 0,
            "!=": lambda ctx: 1 if left(ctx) != right(ctx) else 0,
            "<": lambda ctx: 1 if left(ctx) < right(ctx) else 0,
            ">": lambda ctx: 1 if left(ctx) > right(ctx) else 0,
            "<=": lambda ctx: 1 if left(ctx) <= right(ctx) else 0,
            ">=": lambda ctx: 1 if left(ctx) >= right(ctx) else 0,
            "&": lambda ctx: left(ctx) & right(ctx),
            "|": lambda ctx: left(ctx) | right(ctx),
        }
        fn = table.get(op)
        if fn is None:  # pragma: no cover - lowering validates operators
            raise IPGError(f"unknown binary operator {op!r}")
        return fn
    if tag == "cond":
        condition = link_expr(prog[1])
        then = link_expr(prog[2])
        otherwise = link_expr(prog[3])
        return lambda ctx: then(ctx) if condition(ctx) != 0 else otherwise(ctx)
    if tag == "exists":
        var, array_name = prog[1], prog[2]
        condition = link_expr(prog[3])
        then = link_expr(prog[4])
        otherwise = link_expr(prog[5])

        def _exists(ctx):
            if array_name is None:
                raise EvaluationError(
                    f"existential over {var!r} does not reference any array "
                    f"indexed by it"
                )
            length = ctx.array_length(array_name)
            env = ctx.env
            saved = env.get(var)
            had_binding = var in env
            try:
                for position in range(length):
                    env[var] = position
                    if condition(ctx) != 0:
                        return then(ctx)
                if had_binding:
                    env[var] = saved  # restore before the else branch
                else:
                    env.pop(var, None)
                return otherwise(ctx)
            finally:
                if had_binding:
                    env[var] = saved
                else:
                    env.pop(var, None)

        return _exists
    raise IPGError(f"unknown expression tag {tag!r}")  # pragma: no cover


#: Linked-op tags (first tuple element; dispatch in _VMRun._run_alt).
_ATTR, _GUARD, _LIT, _CALL, _ARRAY, _SWITCH = range(6)

#: Linked memo modes.
_M_NONE, _M_DICT, _M_DENSE = range(3)


class _Scope:
    """A linked chain of ``where`` local-rule scopes (name -> linked rule)."""

    __slots__ = ("rules", "parent")

    def __init__(self, rules, parent):
        self.rules = rules
        self.parent = parent

    def lookup(self, name):
        scope = self
        while scope is not None:
            rule = scope.rules.get(name)
            if rule is not None:
                return rule
            scope = scope.parent
        return None


class _LinkedAlt:
    """One linked alternative: an op tuple plus its local-rule table."""

    __slots__ = ("ops", "locals")

    def __init__(self, ops, locals_):
        self.ops = ops
        self.locals = locals_


class _LinkedRule:
    """One linked rule: alternatives plus dispatch/memo/fuel table entries."""

    __slots__ = (
        "name",
        "alts",
        "memo_mode",
        "fuel",
        "table",
        "empty",
        "pair",
        "decoder",
    )

    def __init__(self, name, alts, memo_mode, fuel, table, empty, pair, decoder):
        self.name = name
        self.alts = alts
        self.memo_mode = memo_mode
        self.fuel = fuel
        self.table = table
        self.empty = empty
        self.pair = pair
        self.decoder = decoder


def _link_rule(rule_ir: RuleIR, bulk_sites: set) -> _LinkedRule:
    alts = []
    for alt_ir in rule_ir.alts:
        ops = []
        for op in alt_ir.ops:
            tag = op[0]
            if tag == "attr":
                ops.append((_ATTR, op[1], link_expr(op[2])))
            elif tag == "guard":
                ops.append((_GUARD, link_expr(op[1])))
            elif tag == "lit":
                literal = op[3]
                ops.append(
                    (
                        _LIT,
                        link_expr(op[1]),
                        link_expr(op[2]),
                        literal,
                        len(literal),
                        Leaf(literal),
                    )
                )
            elif tag == "call":
                ops.append((_CALL, op[1], link_expr(op[2]), link_expr(op[3])))
            elif tag == "array":
                stride = op[7]
                if stride is not None:
                    bulk_sites.add((op[4], stride))
                ops.append(
                    (
                        _ARRAY,
                        op[1],
                        link_expr(op[2]),
                        link_expr(op[3]),
                        op[4],
                        link_expr(op[5]),
                        link_expr(op[6]),
                        stride,
                    )
                )
            elif tag == "switch":
                cases = tuple(
                    (
                        None if cond is None else link_expr(cond),
                        name,
                        link_expr(left),
                        link_expr(right),
                    )
                    for cond, name, left, right in op[1]
                )
                ops.append((_SWITCH, cases))
            else:  # pragma: no cover - lowering produces no other tags
                raise IPGError(f"unknown op tag {tag!r}")
        locals_ = {
            local.name: _link_rule(local, bulk_sites) for local in alt_ir.locals
        }
        alts.append(_LinkedAlt(tuple(ops), locals_))
    alts = tuple(alts)
    table = empty = pair = None
    if rule_ir.dispatch is not None:
        dispatch = rule_ir.dispatch

        def pick(entry):
            return tuple(alts[i] for i in entry)

        table = tuple(pick(entry) for entry in dispatch.table)
        empty = pick(dispatch.empty)
        if dispatch.pair:
            pair = {
                byte: (offset, tuple(pick(entry) for entry in row))
                for byte, (offset, row) in dispatch.pair.items()
            }
    memo_mode = {"dict": _M_DICT, "dense": _M_DENSE}.get(rule_ir.memo, _M_NONE)
    return _LinkedRule(
        rule_ir.name,
        alts,
        memo_mode,
        rule_ir.fuel,
        table,
        empty,
        pair,
        rule_ir.decoder,
    )


class TableGrammar:
    """A grammar linked for table-VM execution (cf. ``CompiledGrammar``).

    Parameters
    ----------
    plan:
        The lowered :class:`~repro.core.ir.GrammarPlan`.  A plan still
        carrying its source grammar/analysis links with struct decoders and
        bulk-array decoders; a deserialized plan runs the generic op path.
    blackboxes:
        The *live* blackbox registry (usually ``Parser.blackboxes`` itself,
        so later ``register_blackbox`` calls are visible).
    limits:
        Resource budgets; ``None`` selects the production defaults.
    use_decoders:
        Master switch for the struct/bulk decode paths (off for streaming
        links and for span-recording runs).
    """

    def __init__(
        self,
        plan: GrammarPlan,
        blackboxes: Optional[dict] = None,
        limits: Optional[ParseLimits] = None,
        use_decoders: bool = True,
    ):
        self.plan = plan
        self.blackboxes = blackboxes if blackboxes is not None else {}
        self.blackbox_names = set(plan.blackboxes)
        self.limits = DEFAULT_LIMITS if limits is None else limits
        self.start = plan.start
        self._bulk_sites: set = set()
        self.rules: Dict[str, _LinkedRule] = {
            name: _link_rule(rule_ir, self._bulk_sites)
            for name, rule_ir in plan.rules.items()
        }
        self.use_decoders = use_decoders and plan.grammar is not None
        #: build_tree -> {rule name -> one-shot decoder}.
        self._decoder_maps: Dict[bool, Dict[str, object]] = {}
        #: build_tree -> {(element rule, stride) -> per-record decoder}.
        self._bulk_maps: Dict[bool, Dict[tuple, object]] = {}

    def set_limits(self, limits: Optional[ParseLimits]) -> None:
        self.limits = DEFAULT_LIMITS if limits is None else limits

    def _decoders(self, build_tree: bool) -> Dict[str, object]:
        if not self.use_decoders:
            return {}
        decoders = self._decoder_maps.get(build_tree)
        if decoders is None:
            from ..shapes import make_decoder

            analysis = self.plan.analysis
            decoders = {}
            if analysis is not None:
                for name, rule in self.rules.items():
                    if rule.decoder:
                        shape = analysis.full_shapes.get(name)
                        if shape is not None:
                            decoders[name] = make_decoder(shape, build_tree)
            self._decoder_maps[build_tree] = decoders
        return decoders

    def _bulk_decoders(self, build_tree: bool) -> Dict[tuple, object]:
        if not self.use_decoders:
            return {}
        bulk = self._bulk_maps.get(build_tree)
        if bulk is None:
            from ..shapes import make_decoder, rule_shape

            grammar = self.plan.grammar
            bulk = {}
            for element, stride in self._bulk_sites:
                shape = rule_shape(grammar, element, width=stride)
                if shape is not None and shape.worthwhile:
                    bulk[(element, stride)] = make_decoder(shape, build_tree)
            self._bulk_maps[build_tree] = bulk
        return bulk

    def new_run(
        self,
        data,
        build_tree: bool = True,
        dispatch_cache: bool = False,
        span_rules: Optional[Set[str]] = None,
    ) -> "_VMRun":
        """A fresh execution state over ``data`` (bytes or StreamBuffer)."""
        return _VMRun(
            self,
            data,
            build_tree=build_tree,
            dispatch_cache=dispatch_cache,
            span_rules=span_rules,
        )

    def parse_nonterminal(self, data, name: str, lo: int, hi: int):
        """One-shot batch entry point matching ``CompiledGrammar``'s."""
        return self.new_run(data).parse_nonterminal(name, lo, hi, None, None)

    def to_source(self, module_doc: Optional[str] = None) -> str:
        """Render a standalone table-backed parser module for this plan.

        The module embeds the plan as JSON plus a vendored copy of this
        file's VM core (the marked slice) — see
        :func:`repro.core.codegen.render_tablevm_module`.  Only possible
        while the plan still carries its source grammar.
        """
        from ..codegen import render_tablevm_module  # deferred: avoids a cycle

        return render_tablevm_module(
            self.plan, limits=self.limits, module_doc=module_doc
        )

    def load_module(self, name: str = "ipg_aot_table_parser"):
        """Emit :meth:`to_source` and execute it as a fresh in-memory module.

        Counterpart of ``CompiledGrammar.load_module``: the returned module
        exposes the same standalone API, and blackboxes registered with
        this :class:`TableGrammar` are pre-registered on it.
        """
        import types

        module = types.ModuleType(name)
        exec(compile(self.to_source(), f"<{name}>", "exec"), module.__dict__)
        for blackbox_name, implementation in self.blackboxes.items():
            module.register_blackbox(blackbox_name, implementation)
        return module


class _VMRun:
    """Execution state for one parse (memo, budgets, span trail).

    The interface mirrors the interpreter's ``_Run`` — in particular
    ``parse_nonterminal(name, lo, hi, outer_ctx, scope)`` and
    ``reset_budgets()`` — so the streaming driver treats both identically.
    """

    __slots__ = (
        "vm",
        "data",
        "build",
        "memo",
        "memo_cap",
        "decoders",
        "bulk",
        "dispatch_cache",
        "spans",
        "span_rules",
        "limits",
        "fuel",
        "fuel0",
        "wall",
        "stack",
        "max_depth",
        "nodes",
    )

    def __init__(
        self,
        vm: TableGrammar,
        data,
        build_tree: bool = True,
        dispatch_cache: bool = False,
        span_rules: Optional[Set[str]] = None,
    ):
        self.vm = vm
        self.data = data
        self.build = build_tree
        self.memo: Dict[tuple, object] = {}
        self.dispatch_cache: Optional[dict] = {} if dispatch_cache else None
        # Span recording disables memoization (and the decode fast paths,
        # via TableGrammar): the recorded trail is then exactly the
        # committed derivation, identical across engines by construction.
        self.span_rules = span_rules
        self.spans: Optional[List[tuple]] = [] if span_rules is not None else None
        if span_rules is not None:
            self.decoders = {}
            self.bulk = {}
        else:
            self.decoders = vm._decoders(build_tree)
            self.bulk = vm._bulk_decoders(build_tree)
        limits = vm.limits
        self.limits = limits if limits is not None and limits.active else None
        if self.limits is not None:
            self.fuel0 = limits.fuel()
            self.fuel = [self.fuel0]
            # Wall budget: [tick countdown, monotonic deadline]; ticked
            # at the fuel-charge points, clock read once per 256 ticks.
            self.wall = (
                None if limits.max_wall_ms is None else [256, limits.deadline()]
            )
            self.stack: List[str] = []
            self.max_depth = (
                float("inf") if limits.max_depth is None else limits.max_depth
            )
            self.memo_cap = limits.max_memo_entries
            self.nodes = [
                float("inf")
                if limits.max_tree_nodes is None
                else limits.max_tree_nodes
            ]
        else:
            self.fuel0 = 0.0
            self.fuel = None
            self.wall = None
            self.stack = None
            self.max_depth = None
            self.memo_cap = None
            self.nodes = None

    def reset_budgets(self) -> None:
        """Restore per-attempt budgets (streaming re-entry)."""
        if self.limits is not None:
            self.fuel[0] = self.fuel0
            if self.wall is not None:
                self.wall[0] = 256
                self.wall[1] = self.limits.deadline()
            del self.stack[:]

    # -- nonterminal dispatch ----------------------------------------------
    def parse_nonterminal(self, name, lo, hi, outer_ctx, scope):
        if scope is not None:
            local = scope.lookup(name)
            if local is not None:
                return self._call_rule(local, lo, hi, outer_ctx, scope)
        rule = self.vm.rules.get(name)
        if rule is not None:
            spans = self.spans
            mode = _M_NONE if spans is not None else rule.memo_mode
            if mode:
                key = (name, lo) if mode == _M_DENSE else (name, lo, hi)
                memo = self.memo
                result = memo.get(key, _MISS)
                if result is not _MISS:
                    return result
            decoder = self.decoders.get(name)
            if decoder is not None:
                result = decoder(self.data, lo, hi)
            else:
                result = self._call_rule(rule, lo, hi, None, None)
            if mode:
                memo = self.memo
                memo[key] = result
                if self.memo_cap is not None and len(memo) > self.memo_cap:
                    raise LimitExceeded(
                        f"memo table exceeded max_memo_entries="
                        f"{self.memo_cap} while parsing {name!r}",
                        limit="max_memo_entries",
                        nonterminal=name,
                    )
            if (
                spans is not None
                and result is not FAIL
                and name in self.span_rules
            ):
                spans.append(
                    (name, lo + result.env["start"], lo + result.env["end"])
                )
            return result
        if is_builtin(name):
            return self._parse_builtin(name, lo, hi)
        if name in self.vm.blackbox_names:
            return self._parse_blackbox(name, lo, hi)
        raise IPGError(f"no rule, builtin or blackbox for nonterminal {name!r}")

    def _call_rule(self, rule, lo, hi, outer_ctx, scope):
        if self.limits is None:
            return self._run_rule(rule, lo, hi, outer_ctx, scope)
        stack = self.stack
        stack.append(rule.name)
        if rule.fuel:
            fuel = self.fuel
            fuel[0] -= 1
            if fuel[0] < 0:
                raise LimitExceeded(
                    f"parse step budget exhausted (max_steps="
                    f"{self.limits.max_steps}) while parsing {rule.name!r}",
                    limit="max_steps",
                    nonterminal=rule.name,
                    rule_stack=tuple(stack),
                )
            wall = self.wall
            if wall is not None:
                wall[0] -= 1
                if wall[0] < 0:
                    wall[0] = 256
                    if _monotonic() > wall[1]:
                        raise LimitExceeded(
                            f"parse wall-clock budget exhausted (max_wall_ms="
                            f"{self.limits.max_wall_ms}) while parsing "
                            f"{rule.name!r}",
                            limit="wall",
                            nonterminal=rule.name,
                            rule_stack=tuple(stack),
                        )
        if len(stack) > self.max_depth:
            raise LimitExceeded(
                f"rule recursion exceeded max_depth={self.limits.max_depth} "
                f"while parsing {rule.name!r}",
                limit="max_depth",
                nonterminal=rule.name,
                rule_stack=tuple(stack),
            )
        result = self._run_rule(rule, lo, hi, outer_ctx, scope)
        stack.pop()
        return result

    def _run_rule(self, rule, lo, hi, outer_ctx, scope):
        alternatives = rule.alts
        if rule.table is not None:
            if hi > lo:
                cache = self.dispatch_cache
                key = (id(rule), lo) if cache is not None else None
                alternatives = cache.get(key) if cache is not None else None
                if alternatives is None:
                    data = self.data
                    byte = data[lo]
                    pair = rule.pair
                    probe = pair.get(byte) if pair is not None else None
                    if probe is not None and lo + probe[0] < hi:
                        alternatives = probe[1][data[lo + probe[0]]]
                    else:
                        alternatives = rule.table[byte]
                    if cache is not None:
                        cache[key] = alternatives
            else:
                alternatives = rule.empty
        spans = self.spans
        checkpoint = len(spans) if spans is not None else 0
        for alt in alternatives:
            result = self._run_alt(rule.name, alt, lo, hi, outer_ctx, scope)
            if result is not FAIL:
                return result
            if spans is not None:
                del spans[checkpoint:]
        return FAIL

    # -- the dispatch loop --------------------------------------------------
    def _run_alt(self, name, alt, lo, hi, outer_ctx, scope):
        ctx = EvalContext(initial_env(hi - lo), outer=outer_ctx)
        env = ctx.env
        build = self.build
        children: List[object] = []
        if alt.locals:
            scope = _Scope(alt.locals, scope)
        data = self.data
        length = hi - lo
        try:
            for op in alt.ops:
                tag = op[0]
                if tag == _CALL:
                    left = op[2](ctx)
                    right = op[3](ctx)
                    if not 0 <= left <= right <= length:
                        return FAIL
                    result = self.parse_nonterminal(
                        op[1], lo + left, lo + right, ctx, scope
                    )
                    if result is FAIL:
                        return FAIL
                    renv = dict(result.env)
                    renv["start"] = left + result.env.get("start", 0)
                    renv["end"] = end = left + result.env.get("end", 0)
                    adjusted = Node(result.name, renv, result.children)
                    upd_start_end_in_place(
                        env, renv["start"], end, result.env["end"] != 0
                    )
                    ctx.nodes[result.name] = adjusted
                    if build:
                        children.append(adjusted)
                elif tag == _ATTR:
                    env[op[1]] = op[2](ctx)
                elif tag == _LIT:
                    left = op[1](ctx)
                    right = op[2](ctx)
                    if not 0 <= left <= right <= length:
                        return FAIL
                    size = op[4]
                    if right - left < size:
                        return FAIL
                    absolute = lo + left
                    if data[absolute : absolute + size] != op[3]:
                        return FAIL
                    upd_start_end_in_place(env, left, left + size, size != 0)
                    if build:
                        children.append(op[5])
                elif tag == _GUARD:
                    if op[1](ctx) == 0:
                        return FAIL
                elif tag == _ARRAY:
                    if not self._run_array(op, ctx, children, lo, hi, scope):
                        return FAIL
                elif tag == _SWITCH:
                    for cond, target, lfn, rfn in op[1]:
                        if cond is None or cond(ctx) != 0:
                            if not self._switch_call(
                                target, lfn, rfn, ctx, children, lo, hi, scope
                            ):
                                return FAIL
                            break
                    else:
                        return FAIL
        except EvaluationError:
            # A failing interval/attribute computation fails the
            # alternative, as in the reference interpreter.
            return FAIL
        nodes = self.nodes
        if nodes is not None:
            nodes[0] -= 1
            if nodes[0] < 0:
                raise LimitExceeded(
                    f"parse tree exceeded max_tree_nodes="
                    f"{self.limits.max_tree_nodes} result nodes",
                    limit="max_tree_nodes",
                    nonterminal=name,
                )
        return Node(name, dict(env), children)

    def _switch_call(self, target, lfn, rfn, ctx, children, lo, hi, scope):
        left = lfn(ctx)
        right = rfn(ctx)
        if not 0 <= left <= right <= hi - lo:
            return False
        result = self.parse_nonterminal(target, lo + left, lo + right, ctx, scope)
        if result is FAIL:
            return False
        renv = dict(result.env)
        renv["start"] = left + result.env.get("start", 0)
        renv["end"] = left + result.env.get("end", 0)
        adjusted = Node(result.name, renv, result.children)
        upd_start_end_in_place(
            ctx.env, renv["start"], renv["end"], result.env["end"] != 0
        )
        ctx.nodes[result.name] = adjusted
        if self.build:
            children.append(adjusted)
        return True

    def _run_array(self, op, ctx, children, lo, hi, scope):
        _, var, startfn, stopfn, element, lfn, rfn, stride = op
        env = ctx.env
        first = startfn(ctx)
        stop = stopfn(ctx)
        decoder = self.bulk.get((element, stride)) if stride is not None else None
        elements: List[Node] = []
        had_binding = var in env
        saved = env.get(var)
        had_array = element in ctx.arrays
        saved_array = ctx.arrays.get(element)
        # The (initially empty) array becomes visible after the bounds are
        # evaluated, and each array term gets its own element list — see the
        # reference interpreter for why both matter.
        ctx.arrays[element] = elements
        fuel = self.fuel
        wall = self.wall
        length = hi - lo
        data = self.data
        completed = False
        try:
            for index in range(first, stop):
                if fuel is not None:
                    fuel[0] -= 1
                    if fuel[0] < 0:
                        raise LimitExceeded(
                            f"parse step budget exhausted (max_steps="
                            f"{self.limits.max_steps}) while parsing "
                            f"{element!r}",
                            limit="max_steps",
                            nonterminal=element,
                            rule_stack=tuple(self.stack),
                        )
                if wall is not None:
                    wall[0] -= 1
                    if wall[0] < 0:
                        wall[0] = 256
                        if _monotonic() > wall[1]:
                            raise LimitExceeded(
                                f"parse wall-clock budget exhausted "
                                f"(max_wall_ms={self.limits.max_wall_ms}) "
                                f"while parsing {element!r}",
                                limit="wall",
                                nonterminal=element,
                                rule_stack=tuple(self.stack),
                            )
                env[var] = index
                left = lfn(ctx)
                right = rfn(ctx)
                if not 0 <= left <= right <= length:
                    return False
                if decoder is not None and right - left == stride:
                    result = decoder(data, lo + left, lo + right)
                else:
                    result = self.parse_nonterminal(
                        element, lo + left, lo + right, ctx, scope
                    )
                if result is FAIL:
                    return False
                renv = dict(result.env)
                renv["start"] = left + result.env.get("start", 0)
                renv["end"] = left + result.env.get("end", 0)
                adjusted = Node(result.name, renv, result.children)
                upd_start_end_in_place(
                    env, renv["start"], renv["end"], result.env["end"] != 0
                )
                elements.append(adjusted)
            completed = True
        finally:
            if had_binding:
                env[var] = saved
            else:
                env.pop(var, None)
            if not completed:
                if had_array:
                    ctx.arrays[element] = saved_array
                else:
                    ctx.arrays.pop(element, None)
        if self.build:
            children.append(ArrayNode(element, elements))
        return True

    # -- builtins / blackboxes ----------------------------------------------
    def _parse_builtin(self, name, lo, hi):
        outcome = BUILTINS[name].parse(self.data, lo, hi)
        if outcome is BUILTIN_FAIL:
            return FAIL
        attrs, end, payload = outcome
        env = {"EOI": hi - lo, "start": 0 if end else hi - lo, "end": end}
        env.update(attrs)
        children = [Leaf(payload)] if payload is not None and self.build else []
        return Node(name, env, children)

    def _parse_blackbox(self, name, lo, hi):
        implementation = self.vm.blackboxes.get(name)
        if implementation is None:
            raise BlackboxError(
                f"grammar declares blackbox {name!r} but no implementation "
                f"was registered with the Parser"
            )
        # Blackboxes receive real bytes; bytes() only copies when the run
        # is over a memoryview (bytes input slices are already bytes).
        window = bytes(self.data[lo:hi])
        try:
            raw = implementation(window)
        except Exception as exc:  # the blackbox itself failed
            raise BlackboxError(f"blackbox parser {name!r} raised: {exc}") from exc
        outcome = normalize_blackbox_result(raw, hi - lo)
        if outcome is BUILTIN_FAIL:
            return FAIL
        attrs, payload, end = outcome
        env = {"EOI": hi - lo, "start": 0 if end else hi - lo, "end": end}
        env.update(attrs)
        children = []
        if payload is not None and self.build:
            children.append(Leaf(payload))
        return Node(name, env, children)


# --- end vendorable VM core -------------------------------------------------
