"""Synthetic sample generators for every evaluated format.

The paper evaluates its parsers on real-world corpora (Linux and Windows
executables, GIFs from the Internet, captured network packets).  Those
corpora are not available offline, so this package provides generators that
build structurally valid files and packets of parameterized size; every
generator exercises the same grammar paths the real files would (random
access, central directories, chunk lists, variable-length names, length
fields).  See DESIGN.md, "Substitutions".

All generators are deterministic: the same parameters (and seed, where one
is accepted) always produce the same bytes, so benchmarks are reproducible.
"""

from .dns import build_dns_query, build_dns_response
from .elf import build_elf, write_elf
from .gif import build_gif
from .ipv4 import build_ipv4_udp_packet
from .pdf import build_pdf
from .pe import build_pe
from .zipfmt import build_zip

__all__ = [
    "build_dns_query",
    "build_dns_response",
    "build_elf",
    "write_elf",
    "build_gif",
    "build_ipv4_udp_packet",
    "build_pdf",
    "build_pe",
    "build_zip",
]
