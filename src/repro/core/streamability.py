"""Stream-parser analysis (section 8, future work, of the paper).

The paper sketches how stream parsers could be supported: *"we can first
have an analysis that determines if it is possible to generate a stream
parser from an IPG: within each production rule, it checks if the attribute
dependency is only from left to right."*  This module implements that
analysis.

An alternative is **streamable** when

1. no term references an attribute (or the parse result) of a term that
   appears *later* in the alternative as written — i.e. the dependency graph
   of section 3.2 needs no reordering, and
2. no interval endpoint moves the parsing position backwards relative to the
   previous positional term: every explicitly written left endpoint must be
   a forward reference (``0``, a constant, ``EOI``-relative offsets and
   ``X.end`` of an earlier term are fine; attributes holding arbitrary file
   offsets are not decidable statically and are reported as violations).

A grammar is streamable when every alternative of every (top-level and
local) rule is.  Directory-based formats such as ZIP and ELF fail this
analysis (their whole point is random access); the network formats
(IPv4+UDP, DNS) pass, which is exactly the class the paper's future-work
stream parsers target.  The position check is conservative: a parsed value
used as a *length* cannot be distinguished statically from one used as an
*offset*, so grammars like GIF (whose color-table sizes are computed from a
flags byte) are reported as non-streamable even though a streaming
implementation is possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .ast import (
    Alternative,
    Grammar,
    Rule,
    TermArray,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .attrcheck import dependency_edges
from .autocomplete import complete_grammar
from .expr import Dot, Expr, Name, Num
from .grammar_parser import parse_grammar


@dataclass
class StreamabilityViolation:
    """One reason an alternative cannot be parsed in streaming order."""

    rule: str
    alternative_index: int
    kind: str  # "backward-dependency" or "non-monotone-interval"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.rule} (alternative {self.alternative_index}): {self.kind}: {self.detail}"


@dataclass
class StreamabilityReport:
    """Result of analysing a grammar for stream parsing."""

    violations: List[StreamabilityViolation] = field(default_factory=list)

    @property
    def streamable(self) -> bool:
        return not self.violations

    def violating_rules(self) -> List[str]:
        return sorted({violation.rule for violation in self.violations})

    def summary(self) -> str:
        if self.streamable:
            return "streamable: every rule's dependencies flow left to right"
        rules = ", ".join(self.violating_rules())
        return (
            f"not streamable: {len(self.violations)} violation(s) in rules {rules}"
        )


def _is_forward_left_endpoint(expr: Optional[Expr], definitions: dict, depth: int = 0) -> bool:
    """Whether a left endpoint provably does not move backwards.

    Accepted shapes: integer constants, ``EOI``-based offsets, ``X.end`` /
    ``X.start`` references (positions of already parsed terms), conditionals
    whose branches are both forward, arithmetic over forward components, and
    local attributes whose defining expressions are themselves forward.
    Anything that feeds a parsed *value* (``X.val``-style attributes) into a
    position may encode the random access pattern and is flagged — this is
    deliberately conservative; a value used as a length would be fine for a
    stream parser but cannot be distinguished statically from an offset.
    """
    from .expr import BinOp, Cond, Index

    if expr is None or depth > 16:
        return expr is None
    if isinstance(expr, Num):
        return True
    if isinstance(expr, Name):
        if expr.ident == "EOI":
            return True
        defining = definitions.get(expr.ident)
        if defining is None:
            return False
        return _is_forward_left_endpoint(defining, definitions, depth + 1)
    if isinstance(expr, (Dot, Index)) and expr.attr in ("end", "start"):
        return True
    if isinstance(expr, BinOp) and expr.op in ("+", "-", "*", "/"):
        return _is_forward_left_endpoint(
            expr.left, definitions, depth + 1
        ) and _is_forward_left_endpoint(expr.right, definitions, depth + 1)
    if isinstance(expr, Cond):
        return _is_forward_left_endpoint(
            expr.then, definitions, depth + 1
        ) and _is_forward_left_endpoint(expr.otherwise, definitions, depth + 1)
    return False


def _check_alternative(
    rule: Rule, index: int, alternative: Alternative, report: StreamabilityReport
) -> None:
    # 1. Left-to-right attribute dependencies (no reordering needed).
    for definer, user in dependency_edges(alternative.terms):
        if definer > user:
            report.violations.append(
                StreamabilityViolation(
                    rule=rule.name,
                    alternative_index=index,
                    kind="backward-dependency",
                    detail=(
                        f"term {user + 1} uses a value defined by the later "
                        f"term {definer + 1}"
                    ),
                )
            )
    # 2. Monotone parsing position.
    from .ast import TermAttrDef

    definitions = {
        term.name: term.expr
        for term in alternative.terms
        if isinstance(term, TermAttrDef)
    }
    for position, term in enumerate(alternative.terms):
        intervals = []
        if isinstance(term, (TermTerminal, TermNonterminal)):
            intervals.append(term.interval)
        elif isinstance(term, TermArray):
            intervals.append(term.element.interval)
        elif isinstance(term, TermSwitch):
            intervals.extend(case.target.interval for case in term.cases)
        for interval in intervals:
            if not _is_forward_left_endpoint(interval.left, definitions):
                report.violations.append(
                    StreamabilityViolation(
                        rule=rule.name,
                        alternative_index=index,
                        kind="non-monotone-interval",
                        detail=(
                            f"term {position + 1} starts at "
                            f"{interval.left.to_source() if interval.left else '?'}, which may "
                            f"jump to an arbitrary offset"
                        ),
                    )
                )
                break


def analyze_streamability(grammar: Union[Grammar, str]) -> StreamabilityReport:
    """Analyse whether a stream parser could be generated for ``grammar``.

    The analysis runs on the grammar *as written* (before the attribute
    checker's topological reordering), so it is performed on a freshly
    parsed copy when a source text is available.
    """
    if isinstance(grammar, str):
        grammar = parse_grammar(grammar)
    elif grammar.checked and grammar.source is not None:
        # Re-parse to recover the original, un-reordered term order.
        grammar = parse_grammar(grammar.source)
    complete_grammar(grammar)

    report = StreamabilityReport()
    for rule, _parent in grammar.iter_all_rules():
        for index, alternative in enumerate(rule.alternatives):
            _check_alternative(rule, index, alternative, report)
    return report
