"""Tests for the interval-based parser combinator library (appendix A.2)."""

import pytest

from repro.core.combinators import (
    State,
    arr,
    byte_p,
    char_p,
    digit_p,
    eoi,
    fail,
    fix,
    get_interval,
    get_pos,
    int_p,
    local,
    many,
    many1,
    pure,
    seq,
    set_interval,
    set_pos,
    string_p,
    take,
    u8,
    u16be,
    u16le,
    u32be,
    u32le,
)
from repro.core.errors import ParseFailure


class TestPrimitives:
    def test_pure_succeeds_without_consuming(self):
        assert pure(42).run(b"abc") == 42

    def test_fail_always_fails(self):
        assert fail().try_run(b"abc") is None

    def test_get_interval_and_pos(self):
        value = seq(get_interval(), get_pos()).run(b"abcd")
        assert value == [(0, 4), 0]

    def test_set_interval_requires_non_empty(self):
        assert set_interval(2, 2)(b"abcd", State(0, 4, 0)) is None
        outcome = set_interval(1, 3)(b"abcd", State(0, 4, 0))
        assert outcome is not None
        assert outcome[1] == State(1, 3, 1)

    def test_set_pos_moves_cursor(self):
        parser = set_pos(2).then_(char_p("c"))
        assert parser.try_run(b"abc") == "c"

    def test_eoi_is_local_interval_length(self):
        assert eoi().run(b"abcdef") == 6
        assert (eoi() % (2, 5)).run(b"abcdef") == 3


class TestByteLevelParsers:
    def test_char_p(self):
        assert char_p("a").try_run(b"abc") == "a"
        assert char_p("z").try_run(b"abc") is None
        assert char_p("a").try_run(b"") is None

    def test_byte_p(self):
        assert byte_p().run(b"\x7fabc") == 0x7F

    def test_string_p(self):
        assert string_p(b"PK\x03\x04").try_run(b"PK\x03\x04rest") == b"PK\x03\x04"
        assert string_p(b"PK").try_run(b"P") is None

    def test_take(self):
        assert take(3).run(b"abcdef") == b"abc"
        assert take(7).try_run(b"abc") is None

    def test_integer_parsers(self):
        assert u8().run(b"\x2a") == 42
        assert u16le().run(b"\x01\x02") == 0x0201
        assert u16be().run(b"\x01\x02") == 0x0102
        assert u32le().run(b"\x78\x56\x34\x12") == 0x12345678
        assert u32be().run(b"\x12\x34\x56\x78") == 0x12345678


class TestCombinators:
    def test_bind_threads_values(self):
        parser = u8().bind(lambda n: take(n))
        assert parser.run(b"\x03abcdef") == b"abc"

    def test_rshift_is_bind(self):
        parser = u8() >> (lambda n: pure(n * 2))
        assert parser.run(b"\x05") == 10

    def test_map(self):
        assert u8().map(lambda v: v + 1).run(b"\x09") == 10

    def test_then_drops_left_value(self):
        assert string_p(b"hd").then_(u8()).run(b"hd\x07") == 7

    def test_biased_choice(self):
        parser = string_p(b"ab") | string_p(b"a")
        assert parser.run(b"ab") == b"ab"
        assert parser.run(b"ax") == b"a"
        assert (string_p(b"z") | string_p(b"a")).try_run(b"a") == b"a"

    def test_seq_collects_values(self):
        assert seq(u8(), u8(), u8()).run(b"\x01\x02\x03") == [1, 2, 3]

    def test_many_and_many1(self):
        assert many(char_p("a")).run(b"aaab") == ["a", "a", "a"]
        assert many(char_p("z")).run(b"abc") == []
        assert many1(char_p("a")).try_run(b"b") is None

    def test_many_stops_on_non_consuming_parser(self):
        assert many(pure(1)).run(b"abc") == []

    def test_arr_fixed_repetition(self):
        assert arr(3, u8()).run(b"\x01\x02\x03\x04") == [1, 2, 3]
        assert arr(0, u8()).run(b"") == []

    def test_run_raises_on_failure(self):
        with pytest.raises(ParseFailure):
            char_p("z").run(b"abc")


class TestLocalIntervals:
    def test_local_restricts_view(self):
        # A parser for "bb" succeeds only inside the window that contains it.
        parser = string_p(b"bb") % (3, 5)
        assert parser.try_run(b"xxxbbyy") == b"bb"
        assert (string_p(b"bb") % (0, 2)).try_run(b"xxxbbyy") is None

    def test_local_interval_out_of_range_fails(self):
        assert (take(1) % (0, 10)).try_run(b"abc") is None

    def test_position_moves_to_end_of_local_interval(self):
        parser = (take(1) % (0, 3)).then_(char_p("d"))
        assert parser.try_run(b"abcd") == "d"

    def test_figure_1_style_grammar(self):
        grammar = eoi().bind(
            lambda end: (string_p(b"aa") % (0, 2)).then_(
                (string_p(b"bb") % (end - 2, end)).map(lambda _value: True)
            )
        )
        assert grammar.try_run(b"aaxxxbb") is True
        assert grammar.try_run(b"aabb") is True
        assert grammar.try_run(b"abxbb") is None


class TestAppendixExample:
    """The binary-number parser of the appendix (combinator Figure 3)."""

    @pytest.mark.parametrize("text", ["0", "1", "10", "1011", "110110"])
    def test_matches_python_int(self, text):
        assert int_p().try_run(text.encode()) == int(text, 2)

    def test_empty_input_fails(self):
        assert int_p().try_run(b"") is None

    def test_digit_p(self):
        assert digit_p().try_run(b"0") == 0
        assert digit_p().try_run(b"1") == 1
        assert digit_p().try_run(b"2") is None

    def test_combinator_agrees_with_ipg_figure_3(self, figure3_parser):
        for text in (b"1", b"10", b"1101", b"100001"):
            assert int_p().try_run(text) == figure3_parser.parse(text)["val"]

    def test_fix_builds_recursive_parsers(self):
        # many 'a's followed by 'b', written with fix.
        parser = fix(lambda self: (char_p("a").then_(self)) | char_p("b"))
        assert parser.try_run(b"aaab") == "b"
        assert parser.try_run(b"c") is None
