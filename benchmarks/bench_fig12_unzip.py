"""E3 — Figure 12a/12b: unzip, IPG-generated parser vs hand-written parser.

Two measurements per archive size, for each side:

* *parsing time* (Figure 12b): the IPG metadata grammar (EOCD + central
  directory, zero-copy) vs the struct-unpacking walk of the hand-written
  parser;
* *end-to-end time* (Figure 12a): full IPG parse including the zlib blackbox
  plus member extraction and CRC verification, vs the hand-written
  parse + extract + CRC pipeline.

Expected shape (paper): the hand-written parser is much faster at parsing
proper, but end-to-end times are of the same order because decompression
dominates.
"""

import pytest

from repro.baselines.handwritten import zipfmt as handwritten_zip
from repro.core.compiler import compile_grammar
from repro.formats import zipfmt

from conftest import ZIP_MEMBER_COUNTS


@pytest.fixture(scope="module")
def ipg_metadata_parser():
    return compile_grammar(zipfmt.METADATA_GRAMMAR).load_module("_fig12_zip_meta")


@pytest.fixture(scope="module")
def ipg_full_parser():
    compiled = compile_grammar(
        zipfmt.GRAMMAR, blackboxes={"Inflate": zipfmt.inflate_blackbox}
    )
    return compiled.load_module("_fig12_zip_full")


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig12b_parse_ipg(benchmark, zip_series, ipg_metadata_parser, members):
    archive = zip_series[members]
    benchmark.group = f"fig12b-unzip-parse-{members}"
    tree = benchmark(ipg_metadata_parser.parse, archive)
    assert len(tree.array("CDE")) == members


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig12b_parse_handwritten(benchmark, zip_series, members):
    archive = zip_series[members]
    benchmark.group = f"fig12b-unzip-parse-{members}"
    parsed = benchmark(handwritten_zip.parse, archive)
    assert parsed.entry_count == members


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig12a_end_to_end_ipg(benchmark, zip_series, ipg_full_parser, members):
    archive = zip_series[members]
    benchmark.group = f"fig12a-unzip-endtoend-{members}"

    def unzip_with_ipg():
        tree = ipg_full_parser.parse(archive)
        extracted = zipfmt.extract_all(tree)
        assert zipfmt.verify_crc(extracted, zipfmt.list_members(tree))
        return extracted

    extracted = benchmark(unzip_with_ipg)
    assert len(extracted) == members


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig12a_end_to_end_handwritten(benchmark, zip_series, members):
    archive = zip_series[members]
    benchmark.group = f"fig12a-unzip-endtoend-{members}"
    extracted = benchmark(handwritten_zip.run_unzip, archive)
    assert len(extracted) == members


def test_fig12_end_to_end_results_agree(zip_series, ipg_full_parser):
    """Correctness side condition: both pipelines extract identical data."""
    archive = zip_series[ZIP_MEMBER_COUNTS[-1]]
    ipg_result = zipfmt.extract_all(ipg_full_parser.parse(archive))
    assert ipg_result == handwritten_zip.run_unzip(archive)


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig12a_end_to_end_ipg_compiled(
    benchmark, zip_series, compiled_parsers, members
):
    archive = zip_series[members]
    benchmark.group = f"fig12a-unzip-endtoend-{members}"
    parser = compiled_parsers["zip"]

    def unzip_with_compiled_backend():
        tree = parser.parse(archive)
        extracted = zipfmt.extract_all(tree)
        assert zipfmt.verify_crc(extracted, zipfmt.list_members(tree))
        return extracted

    extracted = benchmark(unzip_with_compiled_backend)
    assert len(extracted) == members


@pytest.mark.parametrize("members", ZIP_MEMBER_COUNTS)
def test_fig12a_end_to_end_ipg_interpreted(
    benchmark, zip_series, interpreted_parsers, members
):
    archive = zip_series[members]
    benchmark.group = f"fig12a-unzip-endtoend-{members}"
    parser = interpreted_parsers["zip"]

    def unzip_with_interpreted_backend():
        tree = parser.parse(archive)
        extracted = zipfmt.extract_all(tree)
        assert zipfmt.verify_crc(extracted, zipfmt.list_members(tree))
        return extracted

    extracted = benchmark(unzip_with_interpreted_backend)
    assert len(extracted) == members
