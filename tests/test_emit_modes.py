"""Tests for the tree-elision execution modes (``emit="spans"`` / ``None``).

The cross-engine matrix asserts spans/validate agreement on every input it
checks; this module covers the API surface itself — return types, the
``accepts`` fast path, streaming sessions, blackbox behaviour under
elision, the CLI flags, and the guarantee that elided parses never hand
out anything tree-shaped beyond the env-carrying root.
"""

import pytest

from engine_matrix import format_sample
from repro import Parser
from repro.cli import main as cli_main
from repro.core.compiler import compile_grammar
from repro.core.errors import IPGError, ParseFailure
from repro.formats import registry

FORMATS = ("dns", "ipv4", "gif", "elf", "pe", "zip", "pdf")


def build(fmt: str, **kwargs) -> Parser:
    spec = registry[fmt]
    return Parser(spec.grammar_text, blackboxes=dict(spec.blackboxes), **kwargs)


class TestParserEmitAPI:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    def test_spans_env_matches_tree_root(self, fmt, backend):
        parser = build(fmt, backend=backend)
        data = format_sample(fmt)
        tree = parser.parse(data)
        spans = parser.parse(data, emit="spans")
        assert spans.name == tree.name
        assert spans.env == tree.env
        assert list(spans.children) == []

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_validate_accepts_exactly_what_tree_mode_accepts(self, fmt):
        parser = build(fmt)
        data = format_sample(fmt)
        assert parser.parse(data, emit=None) is True
        truncated = data[: len(data) // 2]
        assert parser.try_parse(truncated, emit=None) is None
        assert parser.try_parse(truncated) is None

    def test_accepts_uses_the_fast_path(self):
        parser = build("gif")
        data = format_sample("gif")
        assert parser.accepts(data)
        assert not parser.accepts(data[:-1])
        # accepts() must not have built the tree-mode engine state beyond
        # the elided compilation.
        assert parser._compiled_elided is not None

    def test_unknown_emit_mode_raises(self):
        parser = build("gif")
        with pytest.raises(ValueError):
            parser.try_parse(b"", emit="forest")
        with pytest.raises(ValueError):
            parser.stream(emit="forest")

    def test_parse_failure_still_raises(self):
        parser = build("gif")
        with pytest.raises(ParseFailure):
            parser.parse(b"definitely not a gif", emit=None)

    def test_elided_compilation_is_cached_and_marked(self):
        parser = build("gif")
        parser.parse(format_sample("gif"), emit=None)
        elided = parser._elided_compiled()
        assert elided is parser._elided_compiled()
        assert elided.elide_tree
        assert not parser._compiled.elide_tree

    def test_builtin_start_symbol_is_elided_too(self):
        # The compiled fallback for a builtin start symbol must honour the
        # elision mode: no payload Leaf, same env as the interpreter.
        for backend in ("compiled", "interpreted"):
            parser = Parser('S -> "x"[0, 1] ;', backend=backend)
            spans = parser.parse(b"\x07", start="U8", emit="spans")
            assert list(spans.children) == []
            assert spans.env["val"] == 7
            assert parser.parse(b"\x07", start="U8", emit=None) is True

    def test_spans_children_cannot_poison_shared_state(self):
        # Elided nodes share one empty-children sentinel; it must be
        # immutable so a caller cannot corrupt later parses through it.
        parser = build("gif")
        data = format_sample("gif")
        spans = parser.parse(data, emit="spans")
        with pytest.raises((AttributeError, TypeError)):
            spans.children.append("junk")
        assert list(parser.parse(data, emit="spans").children) == []

    def test_elided_aot_emission_round_trips(self):
        # An elided compilation now emits a standalone module whose parses
        # stay elided: env-carrying root, no children, no payload leaves.
        compiled = compile_grammar(registry["gif"].grammar_text, elide_tree=True)
        module = compiled.load_module("_emit_modes_elided_aot")
        data = format_sample("gif")
        reference = build("gif").parse(data, emit="spans")
        root = module.parse(data)
        assert root.name == reference.name
        assert root.env == reference.env
        assert list(root.children) == []
        assert module.try_parse(data[: len(data) // 2]) is None


class TestStreamingEmit:
    @pytest.mark.parametrize("fmt", ["dns", "ipv4"])
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_stream_spans_and_validate(self, fmt, chunk_size):
        parser = build(fmt)
        data = format_sample(fmt)
        chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]
        tree = parser.parse(data)
        spans = parser.parse_stream(iter(chunks), emit="spans")
        assert spans.name == tree.name and spans.env == tree.env
        assert parser.parse_stream(iter(chunks), emit=None) is True

    def test_stream_validate_failure_raises(self):
        parser = build("dns")
        with pytest.raises(ParseFailure):
            parser.parse_stream([b"\x00"], emit=None)

    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    def test_dispatch_does_not_defeat_stream_compaction(self, backend):
        # A recursive spine rule with a pruning dispatch table stays
        # in-flight across every re-entry; its dispatch decision must be
        # cached, not re-read, or the compaction watermark pins at the
        # spine's window start and the whole stream stays buffered.
        grammar = (
            "S -> Items[0, EOI] ; "
            'Items -> Pair Items[Pair.end, EOI] / Mark Items[Mark.end, EOI] '
            '/ ""[0, 0] ; '
            'Pair -> "p"[0, 1] U8[1, 2] {v = U8.val} ; '
            "Mark -> U8[0, 1] {t = U8.val} guard(t >= 128) ;"
        )
        parser = Parser(grammar, backend=backend)
        data = b"p\x01" * 2500 + b"\x80" * 5000
        session = parser.stream()
        for i in range(0, len(data), 128):
            session.feed(data[i : i + 128])
        tree = session.finish()
        # The spine is ~7500 rules deep; == recurses, so compare under a
        # raised limit (the engines themselves raise it while parsing).
        import sys

        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(100_000)
        try:
            assert tree == parser.parse(data)
        finally:
            sys.setrecursionlimit(limit)
        assert session.max_buffered < len(data) / 4, (
            f"{backend}: peak buffer {session.max_buffered} of {len(data)} — "
            f"dispatch reads pinned the compaction watermark"
        )

    def test_stream_session_finish_is_idempotent(self):
        parser = build("dns")
        data = format_sample("dns")
        session = parser.stream(emit=None)
        session.feed(data)
        assert session.finish() is True
        assert session.finish() is True


class TestElisionSemantics:
    def test_blackbox_still_runs_but_payload_is_dropped(self):
        calls = []

        def box(window):
            calls.append(bytes(window))
            return {"n": len(window)}

        grammar = "blackbox B ; S -> U8[0, 1] B[1, EOI] {k = B.n} ;"
        parser = Parser(grammar, blackboxes={"B": box})
        data = b"\x07payload"
        tree = parser.parse(data)
        spans = parser.parse(data, emit="spans")
        assert spans.env == tree.env
        assert calls == [b"payload", b"payload"]

    def test_failing_blackbox_error_survives_elision(self):
        def box(window):
            raise RuntimeError("boom")

        grammar = "blackbox B ; S -> B[0, EOI] ;"
        parser = Parser(grammar, blackboxes={"B": box})
        with pytest.raises(IPGError):
            parser.parse(b"xx", emit=None)

    def test_array_attribute_references_work_elided(self):
        # A(i).attr reads go through the env-list _aidx variant.
        grammar = (
            "S -> U8[0, 1] {n = U8.val} "
            "for i = 0 to n do E[1 + 2 * i, 3 + 2 * i] "
            "{sum = n > 1 ? E(0).v + E(1).v : 0} ; "
            "E -> U8[0, 1] {v = U8.val} U8[1, 2] ;"
        )
        parser = Parser(grammar)
        data = bytes([2, 10, 0, 32, 0])
        assert parser.parse(data, emit="spans").env["sum"] == 42
        assert parser.parse(data, emit="spans").env == parser.parse(data).env

    def test_interpreter_fallback_grammars_support_emit(self):
        # Call-site-dependent where-rule dispatch forces the interpreter
        # fallback; emit modes must keep working through _Run's build flag.
        grammar = """
        S -> M[0, EOI]
               where {
                 L -> X[0, 1] ;
                 M -> L[0, EOI] where { X -> "x"[0, 1] ; } ;
               } ;
        X -> "y"[0, 1] ;
        """
        parser = Parser(grammar)
        assert parser.backend == "interpreted"  # automatic fallback
        tree = parser.try_parse(b"x")
        spans = parser.try_parse(b"x", emit="spans")
        assert tree is not None
        assert spans.env == tree.env
        assert list(spans.children) == []
        assert parser.parse(b"x", emit=None) is True
        assert parser.try_parse(b"q", emit=None) is None


class TestCliModes:
    def test_validate_flag(self, tmp_path, capsys):
        sample = tmp_path / "sample.gif"
        sample.write_bytes(format_sample("gif"))
        assert cli_main(["parse", "--format", "gif", "--validate", str(sample)]) == 0
        assert "matches" in capsys.readouterr().out

    def test_validate_flag_rejects(self, tmp_path, capsys):
        sample = tmp_path / "bad.bin"
        sample.write_bytes(b"nope")
        # 10 = EXIT_TRUNCATED: rejections exit with their error class.
        assert cli_main(["parse", "--format", "gif", "--validate", str(sample)]) == 10

    def test_spans_flag(self, tmp_path, capsys):
        sample = tmp_path / "sample.dns"
        sample.write_bytes(format_sample("dns"))
        assert cli_main(["parse", "--format", "dns", "--spans", str(sample)]) == 0
        out = capsys.readouterr().out
        assert "DNS" in out and "touched bytes" in out

    def test_stream_validate_flag(self, tmp_path, capsys):
        sample = tmp_path / "sample.dns"
        sample.write_bytes(format_sample("dns"))
        assert (
            cli_main(
                [
                    "parse",
                    "--format",
                    "dns",
                    "--validate",
                    "--stream",
                    "--chunk-size",
                    "16",
                    str(sample),
                ]
            )
            == 0
        )
        assert "matches" in capsys.readouterr().out

    def test_tree_and_validate_are_mutually_exclusive(self, tmp_path):
        sample = tmp_path / "sample.gif"
        sample.write_bytes(format_sample("gif"))
        with pytest.raises(SystemExit):
            cli_main(["parse", "--format", "gif", "--tree", "--validate", str(sample)])
