"""Normalization of IPG expressions into linear forms.

A :class:`LinearForm` is ``constant + Σ coeff_i · var_i`` with rational
coefficients.  Variables are opaque strings chosen by the caller (termination
checking scopes them per cycle edge).  Expressions that are not linear in
their variables (products of two variables, division by a variable,
conditionals, existentials) do not linearize; :func:`linearize` returns
``None`` for them and the caller falls back to a conservative answer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Optional

from ..core.expr import BinOp, Cond, Dot, Exists, Expr, Index, Name, Num


class LinearForm:
    """A linear combination of variables plus a constant."""

    __slots__ = ("constant", "coefficients")

    def __init__(self, constant: Fraction = Fraction(0), coefficients: Optional[Dict[str, Fraction]] = None):
        self.constant = Fraction(constant)
        self.coefficients: Dict[str, Fraction] = {
            var: Fraction(coeff)
            for var, coeff in (coefficients or {}).items()
            if coeff != 0
        }

    # -- constructors ---------------------------------------------------------
    @classmethod
    def of_constant(cls, value: int) -> "LinearForm":
        return cls(Fraction(value), {})

    @classmethod
    def of_variable(cls, name: str) -> "LinearForm":
        return cls(Fraction(0), {name: Fraction(1)})

    # -- queries --------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coefficients

    def variables(self):
        return set(self.coefficients)

    def coefficient(self, name: str) -> Fraction:
        return self.coefficients.get(name, Fraction(0))

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other: "LinearForm") -> "LinearForm":
        coefficients = dict(self.coefficients)
        for var, coeff in other.coefficients.items():
            coefficients[var] = coefficients.get(var, Fraction(0)) + coeff
        return LinearForm(self.constant + other.constant, coefficients)

    def __sub__(self, other: "LinearForm") -> "LinearForm":
        return self + other.scale(Fraction(-1))

    def scale(self, factor: Fraction) -> "LinearForm":
        return LinearForm(
            self.constant * factor,
            {var: coeff * factor for var, coeff in self.coefficients.items()},
        )

    def substitute(self, name: str, replacement: "LinearForm") -> "LinearForm":
        """Replace variable ``name`` by ``replacement``."""
        coeff = self.coefficients.get(name)
        if coeff is None:
            return self
        remaining = {v: c for v, c in self.coefficients.items() if v != name}
        return LinearForm(self.constant, remaining) + replacement.scale(coeff)

    def evaluate(self, assignment: Dict[str, int]) -> Fraction:
        total = Fraction(self.constant)
        for var, coeff in self.coefficients.items():
            total += coeff * assignment.get(var, 0)
        return total

    def __repr__(self) -> str:
        parts = [str(self.constant)] if self.constant or not self.coefficients else []
        for var, coeff in sorted(self.coefficients.items()):
            parts.append(f"{coeff}*{var}")
        return " + ".join(parts) if parts else "0"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, LinearForm)
            and self.constant == other.constant
            and self.coefficients == other.coefficients
        )

    def __hash__(self) -> int:
        return hash((self.constant, tuple(sorted(self.coefficients.items()))))


#: Maps an expression reference to a solver variable name.  Termination
#: checking scopes references per cycle edge via this hook.
VariableNamer = Callable[[Expr], str]


def default_namer(expr: Expr) -> str:
    """Default variable naming: the reference's surface syntax."""
    return expr.to_source()


def linearize(expr: Expr, namer: VariableNamer = default_namer) -> Optional[LinearForm]:
    """Convert ``expr`` into a :class:`LinearForm`, or ``None`` if non-linear."""
    if isinstance(expr, Num):
        return LinearForm.of_constant(expr.value)
    if isinstance(expr, (Name, Dot, Index)):
        return LinearForm.of_variable(namer(expr))
    if isinstance(expr, BinOp):
        return _linearize_binop(expr, namer)
    if isinstance(expr, (Cond, Exists)):
        return None
    return None


def _linearize_binop(expr: BinOp, namer: VariableNamer) -> Optional[LinearForm]:
    left = linearize(expr.left, namer)
    right = linearize(expr.right, namer)
    if left is None or right is None:
        return None
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        if left.is_constant:
            return right.scale(left.constant)
        if right.is_constant:
            return left.scale(right.constant)
        return None
    if expr.op == "/":
        if right.is_constant and right.constant != 0:
            return left.scale(Fraction(1, 1) / right.constant)
        return None
    # Comparisons, boolean connectives, shifts and bit operations are not
    # linear arithmetic; the caller treats them conservatively.
    return None
