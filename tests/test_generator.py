"""Tests for the parser generator (IPG → Python recursive-descent source)."""

import struct

import pytest

from repro import Parser
from repro.core.generator import compile_expr, compile_parser, generate_parser_source
from repro.core.grammar_parser import parse_expression
from repro.formats import toy


class TestExpressionCompilation:
    def test_number_and_name(self):
        assert compile_expr(parse_expression("42")) == "42"
        assert compile_expr(parse_expression("EOI")) == 'ctx.env["EOI"]'
        assert "lookup_name('x')" in compile_expr(parse_expression("x"))

    def test_dot_and_index(self):
        assert "lookup_dot('H', 'ofs')" in compile_expr(parse_expression("H.ofs"))
        assert "lookup_index('A'" in compile_expr(parse_expression("A(2).val"))

    def test_operators(self):
        assert compile_expr(parse_expression("1 + 2 * 3")) == "(1 + (2 * 3))"
        assert "_div" in compile_expr(parse_expression("a / 2"))
        assert "_mod" in compile_expr(parse_expression("a % 2"))
        assert "==" in compile_expr(parse_expression("a = 2"))

    def test_ternary_and_exists(self):
        assert "if" in compile_expr(parse_expression("a ? 1 : 2"))
        compiled = compile_expr(parse_expression("exists j . A(j).val = 0 ? j : 1"))
        assert compiled.startswith("_exists(ctx, 'j', 'A'")


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        source = generate_parser_source(toy.FIGURE_2)
        compile(source, "<generated>", "exec")

    def test_source_has_one_method_per_nonterminal(self):
        source = generate_parser_source(toy.FIGURE_2)
        assert "def _nt_S(" in source
        assert "def _nt_H(" in source
        assert "def _nt_Data(" in source

    def test_custom_class_name(self):
        source = generate_parser_source(toy.FIGURE_1, class_name="Fig1Parser")
        assert "class Fig1Parser:" in source
        assert source.strip().endswith("PARSER_CLASS = Fig1Parser")

    def test_blackboxes_recorded_in_class(self):
        source = generate_parser_source("blackbox Ext ;\nS -> Ext[0, EOI] ;")
        assert "BLACKBOX_NAMES = frozenset(['Ext'])" in source


class TestGeneratedBehaviour:
    """The generated parser must agree with the reference interpreter."""

    CASES = [
        (toy.FIGURE_1, [b"aaxyzbb", b"aabb", b"abx", b""]),
        (toy.FIGURE_3, [b"1011", b"0", b"", b"12"]),
        (toy.FIGURE_4, [b"1000stop", b"10stop", b"1stop"]),
        (toy.ANBNCN, [b"aaabbbccc", b"aabbcc", b"abc", b"aabbc"]),
        (toy.BACKWARD_NUMBER, [b"4096", b"7", b"x1"]),
        (toy.IMPLICIT_INTERVALS, [b"magic" + b"A" * 5 + b"B" * 10, b"nope"]),
    ]

    @pytest.mark.parametrize("grammar, inputs", CASES)
    def test_matches_interpreter(self, grammar, inputs):
        interpreter = Parser(grammar)
        generated = compile_parser(grammar)
        for data in inputs:
            expected = interpreter.try_parse(data)
            actual = generated.try_parse(data)
            if expected is None:
                assert actual is None
            else:
                assert actual == expected

    def test_figure_6_arrays_and_existentials(self):
        data = toy.build_figure_6_input([3, 5, 7, 9])
        interpreter = Parser(toy.FIGURE_6)
        generated = compile_parser(toy.FIGURE_6)
        assert generated.parse(data) == interpreter.parse(data)

    def test_two_pass_grammar(self):
        data = toy.build_two_pass_input([6, 3, 9])
        interpreter = Parser(toy.TWO_PASS)
        generated = compile_parser(toy.TWO_PASS)
        assert generated.parse(data) == interpreter.parse(data)

    def test_where_and_switch(self):
        grammar = """
        S -> U8[0, 1] {t = U8.val} D[1, EOI]
             where { D -> switch(t = 1 : A[0, EOI] / B[0, EOI]) ; } ;
        A -> "aaa" ;
        B -> Raw ;
        """
        interpreter = Parser(grammar)
        generated = compile_parser(grammar)
        for data in (b"\x01aaa", b"\x02zzz", b"\x01zzz"):
            assert generated.try_parse(data) == interpreter.try_parse(data)

    def test_blackbox_support(self):
        grammar = 'blackbox Ext ;\nS -> "h"[0, 1] Ext[1, EOI] {n = Ext.len} ;'
        blackboxes = {"Ext": lambda data: {"len": len(data)}}
        generated = compile_parser(grammar, blackboxes=blackboxes)
        assert generated.parse(b"h12345")["n"] == 5

    def test_parse_failure_raises(self):
        from repro.core.errors import ParseFailure

        generated = compile_parser(toy.FIGURE_1)
        with pytest.raises(ParseFailure):
            generated.parse(b"zz")

    def test_accepts_and_start_override(self):
        generated = compile_parser('S -> A[0, EOI] ; A -> "a"[0, 1] ;')
        assert generated.accepts(b"a", start="A")
        assert not generated.accepts(b"b", start="A")

    def test_memoization_toggle(self):
        data = struct.pack("<II", 10, 4) + b"xx" + b"PAYL"
        fast = compile_parser(toy.FIGURE_2)
        slow = compile_parser(toy.FIGURE_2)
        slow.memoize = False
        assert fast.parse(data) == slow.parse(data)
