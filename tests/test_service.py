"""Tests for the fault-tolerant parse service (``repro.service``).

The service's contract under test: every submitted request gets exactly
one reply — a tree byte-identical to an in-process parse, a recovered
document, a structured parse failure, or a structured
``ServiceError`` — and the worker pool repairs itself after crashes,
hangs, and poisonous inputs without leaking processes or spool files.
"""

from __future__ import annotations

import json
import os
import sys
import textwrap
import time

import pytest

from repro import samples
from repro.core.errors import (
    DeadlineExceeded,
    LimitExceeded,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    TruncatedInput,
    WorkerCrashed,
)
from repro.core.parsetree import tree_to_jsonable
from repro.core.recover import document_to_jsonable
from repro.formats import registry
from repro.service import (
    ParseService,
    QuarantineCorpus,
    ServiceConfig,
    parse_many,
)

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="parse service tests assume a fork-capable host",
)

DEADLINE = 30_000  # generous per-attempt budget for functional tests


@pytest.fixture(scope="module")
def dns_data() -> bytes:
    return samples.build_dns_response(answer_count=2, additional_count=1)


@pytest.fixture(scope="module")
def service():
    with ParseService(workers=2, allow_chaos=True, seed=7) as svc:
        yield svc


# ---------------------------------------------------------------------------
# Happy path: results match in-process parses exactly
# ---------------------------------------------------------------------------


def test_tree_matches_in_process(service, dns_data):
    expected = tree_to_jsonable(registry["dns"].build_parser().parse(dns_data))
    result = service.submit(dns_data, format="dns", deadline_ms=DEADLINE).result()
    assert result.ok
    assert result.kind == "tree"
    assert result.tree == expected
    assert result.worker_pid in service.audit()["worker_pids"]


def test_spans_and_validate_modes(service, dns_data):
    spans = service.submit(
        dns_data, format="dns", emit="spans", deadline_ms=DEADLINE
    ).result()
    assert spans.ok and spans.kind == "spans"
    assert spans.root == "DNS"
    assert "EOI" in spans.env

    verdict = service.submit(
        dns_data, format="dns", emit=None, deadline_ms=DEADLINE
    ).result()
    assert verdict.ok and verdict.kind == "ok"


def test_recover_matches_in_process(service, dns_data):
    hostile = dns_data[:20]
    expected = document_to_jsonable(
        registry["dns"].build_parser().parse_recover(hostile)
    )
    result = service.submit(
        hostile, format="dns", recover=True, deadline_ms=DEADLINE
    ).result()
    assert result.ok
    assert result.kind == "recovered"
    assert result.document == expected


def test_structured_failure_crosses_the_wire(service, dns_data):
    result = service.submit(dns_data[:5], format="dns", deadline_ms=DEADLINE).result()
    assert not result.ok
    assert isinstance(result.error, TruncatedInput)
    # Field parity with the in-process failure, not just the class.
    with pytest.raises(TruncatedInput) as excinfo:
        registry["dns"].build_parser().parse(dns_data[:5])
    assert result.error.offset == excinfo.value.offset
    assert result.error.nonterminal == excinfo.value.nonterminal
    with pytest.raises(TruncatedInput):
        result.raise_for_status()


def test_adhoc_grammar_and_unknown_format(service):
    grammar = "S -> U16BE {n = U16BE.val} Bytes[n] ;"
    ok = service.submit(
        b"\x00\x03abc", grammar=grammar, deadline_ms=DEADLINE
    ).result()
    assert ok.ok and ok.tree["env"]["n"] == 3

    unknown = service.submit(b"", format="nosuch", deadline_ms=DEADLINE).result()
    assert not unknown.ok
    assert "nosuch" in str(unknown.error)


def test_spooled_large_input_roundtrip(dns_data):
    # Force the shared-memory spool path for every payload.
    with ParseService(workers=1, inline_bytes_max=1) as svc:
        expected = tree_to_jsonable(registry["dns"].build_parser().parse(dns_data))
        result = svc.submit(dns_data, format="dns", deadline_ms=DEADLINE).result()
        assert result.ok and result.tree == expected
        assert svc.audit()["spool_files"] == 0  # unlinked at resolution


def test_parse_many_preserves_input_order(dns_data):
    inputs = [dns_data, dns_data[:5], dns_data]
    results = parse_many(inputs, format="dns", deadline_ms=DEADLINE)
    assert [r.ok for r in results] == [True, False, True]
    assert [r.request_id for r in results] == sorted(r.request_id for r in results)


def test_submit_argument_validation(service):
    with pytest.raises(ValueError):
        service.submit(b"", deadline_ms=DEADLINE)  # neither format nor grammar
    with pytest.raises(ValueError):
        service.submit(b"", format="dns", grammar="S -> U8 ;")
    with pytest.raises(ValueError):
        service.submit(b"", format="dns", deadline_ms=0)
    with pytest.raises(ValueError):
        service.submit(b"", format="dns", emit="spans", recover=True)


# ---------------------------------------------------------------------------
# Failure handling: crashes, deadlines, shedding, close
# ---------------------------------------------------------------------------


def test_worker_crash_is_isolated_and_pool_repairs(service, dns_data):
    before = service.stats()["respawns"]
    crashed = service.submit_chaos("exit").result()
    assert isinstance(crashed.error, WorkerCrashed)
    assert crashed.error.exitcode == 3
    # The pool keeps answering while (and after) it repairs itself.
    ok = service.submit(dns_data, format="dns", deadline_ms=DEADLINE).result()
    assert ok.ok
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        stats = service.stats()
        if stats["workers_alive"] == 2 and stats["respawns"] > before:
            break
        time.sleep(0.05)
    assert service.stats()["workers_alive"] == 2


def test_segfault_reports_signal_exitcode(service):
    crashed = service.submit_chaos("segv").result()
    assert isinstance(crashed.error, WorkerCrashed)
    assert crashed.error.exitcode == -11  # SIGSEGV


def test_hung_worker_is_killed_at_the_deadline(service, dns_data):
    begin = time.monotonic()
    result = service.submit_chaos("hang", seconds=60, deadline_ms=400).result()
    elapsed = time.monotonic() - begin
    assert isinstance(result.error, DeadlineExceeded)
    assert result.error.deadline_ms == 400
    assert elapsed < 30  # killed, not waited out
    assert service.submit(dns_data, format="dns", deadline_ms=DEADLINE).result().ok


def test_soft_deadline_degrades_to_wall_limit(dns_data):
    # A near-zero in-worker wall budget fails the parse structurally
    # (LimitExceeded limit="wall") — no SIGKILL, no respawn burned.
    big = samples.build_zip(member_count=200, member_size=200)
    with ParseService(
        workers=1, backend="interpreted", soft_deadline_fraction=0.001
    ) as svc:
        warm = svc.submit(big, format="zip", deadline_ms=120_000).result()
        assert warm.ok
        tight = svc.submit(big, format="zip", deadline_ms=2_000).result()
        assert isinstance(tight.error, LimitExceeded)
        assert tight.error.limit == "wall"
        stats = svc.stats()
        assert stats["deadline_kills"] == 0
        assert stats["crashes"] == 0


def test_overload_sheds_with_retry_after():
    with ParseService(
        workers=1, max_pending=2, allow_chaos=True, default_deadline_ms=10_000
    ) as svc:
        blocker = svc.submit_chaos("hang", seconds=1.0, deadline_ms=20_000)
        time.sleep(0.2)  # let the hang dispatch so the queue is empty
        accepted, shed = [], None
        for _ in range(10):
            try:
                accepted.append(svc.submit_chaos("hang", seconds=0.0))
            except ServiceOverloaded as exc:
                shed = exc
        assert shed is not None
        assert shed.retry_after > 0
        assert svc.stats()["shed"] >= 1
        for future in [blocker, *accepted]:
            assert future.result() is not None  # shed or not, no one hangs


def test_close_resolves_everything_and_rejects_new_work(dns_data):
    svc = ParseService(workers=1, default_deadline_ms=DEADLINE)
    futures = [svc.submit(dns_data, format="dns") for _ in range(5)]
    svc.close()
    for future in futures:
        assert future.result(timeout=1) is not None  # drained, not stranded
    with pytest.raises(ServiceClosed):
        svc.submit(dns_data, format="dns")
    assert not os.path.isdir(svc.audit()["spool_dir"])
    svc.close()  # idempotent


def test_retry_runs_on_a_fresh_worker(service, dns_data):
    # A crash with a parse in flight on the *other* worker: both answer.
    crash = service.submit_chaos("exit")
    parse = service.submit(dns_data, format="dns", deadline_ms=DEADLINE)
    assert isinstance(crash.result().error, WorkerCrashed)
    assert parse.result().ok


def test_chaos_requires_opt_in(dns_data):
    with ParseService(workers=1) as svc:
        with pytest.raises(ServiceError):
            svc.submit_chaos("exit")


# ---------------------------------------------------------------------------
# Satellite: crasher quarantine round-trip (deliberately crashing blackbox)
# ---------------------------------------------------------------------------

CRASHY_PROVIDER = textwrap.dedent(
    '''
    """Test-only blackbox provider: dies on a magic byte window."""
    import os

    def poison(data):
        if bytes(data).startswith(b"CRASH!"):
            os._exit(66)
        return {"n": len(data)}

    BLACKBOXES = {"Poison": poison}
    '''
)

CRASHY_GRAMMAR = """
S -> Hdr Body[Hdr.end, EOI] ;
Hdr -> U16BE {n = U16BE.val} ;
Body -> Poison ;
blackbox Poison ;
"""


@pytest.fixture()
def crashy_provider(tmp_path, monkeypatch):
    (tmp_path / "crashy_blackbox_mod.py").write_text(CRASHY_PROVIDER)
    monkeypatch.syspath_prepend(str(tmp_path))
    # Workers inherit sys.path via fork; spawn-start hosts are skipped above.
    return "crashy_blackbox_mod:BLACKBOXES"


def test_crasher_is_quarantined_and_replayable(tmp_path, crashy_provider):
    qdir = str(tmp_path / "quarantine")
    poison = b"\x00\x07" + b"CRASH!" + b"padding"
    benign = b"\x00\x07" + b"hello world"
    config = ServiceConfig(
        workers=2,
        quarantine_dir=qdir,
        blackbox_provider=crashy_provider,
        default_deadline_ms=DEADLINE,
    )
    with ParseService(config) as svc:
        assert svc.submit(benign, grammar=CRASHY_GRAMMAR).result().ok
        first = svc.submit(poison, grammar=CRASHY_GRAMMAR).result()
        assert isinstance(first.error, WorkerCrashed)
        assert first.retried  # one retry on a fresh worker before degrading
        # Resubmitting the same poison dedupes to one corpus entry.
        again = svc.submit(poison, grammar=CRASHY_GRAMMAR).result()
        assert isinstance(again.error, WorkerCrashed)

    corpus = QuarantineCorpus(qdir)
    assert len(corpus) == 1
    (entry,) = corpus.entries()
    assert entry.read_data() == poison
    assert entry.metadata["reason"] == "crash"
    assert entry.metadata["exitcode"] == 66
    assert entry.metadata["grammar_text"] == CRASHY_GRAMMAR
    assert entry.metadata["blackbox_provider"] == crashy_provider
    assert entry.metadata["input_length"] == len(poison)

    # The metadata alone rebuilds a service that reproduces the crash —
    # exactly what tools/fuzz_parsers.py --replay-quarantine does.
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
    try:
        from fuzz_parsers import replay_quarantine

        report = replay_quarantine(qdir, deadline_ms=DEADLINE)
    finally:
        sys.path.pop(0)
    assert report["entries"] == 1
    assert report["reproduced"] == 1
    assert report["hung"] == 0


def test_quarantine_corpus_dedupes_by_content(tmp_path):
    corpus = QuarantineCorpus(str(tmp_path / "q"))
    assert corpus.add(b"poison", {"reason": "crash"}) is not None
    assert corpus.add(b"poison", {"reason": "deadline"}) is None  # dupe
    assert corpus.add(b"other", {"reason": "crash"}) is not None
    assert len(corpus) == 2
    digests = [entry.digest for entry in corpus.entries()]
    assert digests == sorted(digests)
    # Metadata JSON is valid and carries the enrichment fields.
    for entry in corpus.entries():
        with open(entry.bin_path[: -len(".bin")] + ".json") as handle:
            meta = json.load(handle)
        assert meta["sha256_prefix"] == entry.digest
