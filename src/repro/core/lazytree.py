"""Lazy random-access parse trees: index the file, pay only for what you touch.

IPG intervals are exactly the right metadata for *not* parsing: every
nonterminal invocation carries the absolute window ``(lo, hi)`` it is
confined to, and top-level rule parses are context-free (the engines
call them with no outer scope), so a subtree is fully determined by
``(rule, lo, hi)`` over the input buffer.  This module exploits that:

* :meth:`LazyDocument.parse` validates the input once through the
  tree-elision fast path (``emit="spans"`` machinery: no tree, no
  payload copies) and returns a :class:`LazyNode` root;
* accessing a :class:`LazyNode`'s children runs the **skeleton spine**:
  a reference-interpreter pass that decodes small windows eagerly but
  replaces every top-level-rule invocation whose window is at least
  ``lazy_threshold`` bytes with another stub — probing only the rule's
  attribute environment (elided fast path again) so parent attribute
  references like ``SH(i).offset`` keep working;
* a stub decodes on first access by re-entering the engines on its
  recorded window, with the decoded children cached on the shared slot
  (every re-based occurrence of the same ``(rule, lo, hi)`` parse sees
  the one decode) and the parser's :class:`~repro.core.limits.
  ParseLimits` charged per materialization run.

Combined with the zero-copy input contract (:mod:`repro.core.buffers`)
this turns ``parse the file`` into ``index the file``: over an mmap'd
multi-gigabyte input, touching one ELF section materializes that
section's bytes and nothing else.

``LazyNode`` subclasses :class:`~repro.core.parsetree.Node`, so the
entire navigation API (``child``/``array``/``find_all``/``walk``),
equality, and :func:`~repro.core.parsetree.tree_to_jsonable` work
unchanged — they simply trigger materialization on demand, and a fully
materialized lazy tree compares ``==`` to the eager parse (the golden
corpus locks this in).
"""

from __future__ import annotations

import sys
from typing import List, Optional, Tuple

from .buffers import as_buffer
from .errors import BlackboxError, LimitExceeded, ParseFailure
from .interpreter import FAIL, _Run
from .parsetree import Node

__all__ = ["LazyDocument", "LazyNode"]

#: Default laziness cut-off: top-level-rule windows smaller than this
#: decode eagerly during a spine run (stubbing a 24-byte symbol record
#: costs more than decoding it).
DEFAULT_LAZY_THRESHOLD = 4096

#: Member descriptor of the ``children`` slot Node allocates.  LazyNode
#: shadows the attribute with a property, so its methods reach the
#: underlying storage through the descriptor.
_NODE_CHILDREN = Node.children
_node_new = Node.__new__


class _LazySlot:
    """Shared decode state of one ``(rule, lo, hi)`` stub.

    Re-based :class:`LazyNode` wrappers of the same underlying parse all
    point at one slot, so the subtree decodes at most once.
    """

    __slots__ = ("doc", "rule", "lo", "hi", "children")

    def __init__(self, doc: "LazyDocument", rule: str, lo: int, hi: int):
        self.doc = doc
        self.rule = rule
        self.lo = lo
        self.hi = hi
        self.children: Optional[list] = None

    def materialize(self) -> list:
        if self.children is None:
            self.children = self.doc._materialize(self)
        return self.children


class LazyNode(Node):
    """A parse-tree node whose children decode on first access.

    Carries the full attribute environment of an ordinary
    :class:`~repro.core.parsetree.Node` (probed through the tree-elision
    fast path), so attribute reads, interval arithmetic and grammar-level
    references never force a decode; only touching ``children`` (directly
    or through the navigation API, equality, or serialization) does.
    """

    __slots__ = ("_slot",)

    def __init__(self, slot: _LazySlot, env: dict):
        # Node.__init__ would defensively copy children (and there are
        # none yet); set the slots directly.
        self.name = slot.rule
        self.env = env
        _NODE_CHILDREN.__set__(self, None)
        self._slot = slot

    # -- lazy machinery -----------------------------------------------------
    @property
    def children(self):  # shadows the inherited slot
        children = _NODE_CHILDREN.__get__(self, LazyNode)
        if children is None:
            children = self._slot.materialize()
            _NODE_CHILDREN.__set__(self, children)
        return children

    def rebased(self, offset: int) -> "LazyNode":
        """Re-based wrapper sharing this node's decode slot (T-NTSucc)."""
        env = dict(self.env)
        env["start"] = offset + self.env.get("start", 0)
        env["end"] = offset + self.env.get("end", 0)
        return LazyNode(self._slot, env)

    @property
    def is_materialized(self) -> bool:
        """Whether this subtree has been decoded (without triggering it)."""
        return self._slot.children is not None

    @property
    def interval(self) -> Tuple[int, int]:
        """The absolute input window ``(lo, hi)`` this subtree decodes from."""
        return (self._slot.lo, self._slot.hi)

    @property
    def document(self) -> "LazyDocument":
        """The owning :class:`LazyDocument` (decode log, buffer, parser)."""
        return self._slot.doc

    def __repr__(self) -> str:  # must not force a decode
        state = "materialized" if self.is_materialized else "lazy"
        return (
            f"LazyNode({self.name}, [{self._slot.lo}, {self._slot.hi}), {state})"
        )


class _LazyRun(_Run):
    """The skeleton spine: a reference-interpreter run that plants stubs.

    Identical to an ordinary tree-building run except that a top-level
    rule invocation whose window is at least the document's threshold —
    and is not this run's own entry — resolves to a :class:`LazyNode`
    stub instead of recursing.  Everything context-dependent (``where``
    locals, builtins, blackboxes) takes the normal path, so the committed
    derivation is byte-for-byte the eager one with subtrees elided.
    """

    __slots__ = ("doc", "threshold", "entry_key", "stub_windows")

    def __init__(self, doc: "LazyDocument", entry_key: tuple):
        super().__init__(doc.parser, doc.buffer, build_tree=True)
        self.doc = doc
        self.threshold = doc.lazy_threshold
        self.entry_key = entry_key
        #: Distinct stub windows planted by this run: (lo, hi) -> size.
        #: Subtracted from the run's window when charging decoded bytes.
        self.stub_windows = {}

    def parse_nonterminal(self, name, lo, hi, outer_ctx, local_rules):
        if (
            hi - lo >= self.threshold
            and (local_rules is None or local_rules.lookup(name) is None)
            and self.grammar.has_rule(name)
            and (name, lo, hi) != self.entry_key
        ):
            return self._stub(name, lo, hi)
        return super().parse_nonterminal(name, lo, hi, outer_ctx, local_rules)

    def _stub(self, name, lo, hi):
        key = (name, lo, hi)
        if self.memoize and key in self.memo:
            result = self.memo[key]
        else:
            env = self.doc._probe_env(name, lo, hi)
            if env is FAIL:
                result = FAIL
            else:
                result = LazyNode(
                    _LazySlot(self.doc, name, lo, hi), dict(env)
                )
            if self.memoize:
                self.memo[key] = result
                if self.memo_cap is not None and len(self.memo) > self.memo_cap:
                    raise LimitExceeded(
                        f"memo table exceeded max_memo_entries="
                        f"{self.memo_cap} while parsing {name!r}",
                        limit="max_memo_entries",
                        nonterminal=name,
                    )
        if result is not FAIL:
            self.stub_windows[(lo, hi)] = hi - lo
        return result


class LazyDocument:
    """One lazily parsed input: buffer, decode cache, materialization log.

    Construct through :meth:`repro.core.interpreter.Parser.parse_lazy`
    (which returns the root :class:`LazyNode`; the document hangs off it
    as ``root.document``).

    Attributes
    ----------
    decoded:
        Materialization log: ``(rule, lo, hi, charged_bytes)`` per engine
        run, in decode order.  ``charged_bytes`` is the run's window
        minus the windows of the stubs it planted — i.e. the bytes whose
        structure (and payload copies) this run actually decoded.
    decoded_bytes:
        Sum of the charges: how much of the input has been materialized.
    """

    def __init__(
        self,
        parser,
        data,
        lazy_threshold: int = DEFAULT_LAZY_THRESHOLD,
        recover: bool = False,
    ):
        self.parser = parser
        self.buffer = as_buffer(data)
        self.lazy_threshold = max(0, int(lazy_threshold))
        #: Degrade failed stub decodes to ErrorNode children instead of
        #: raising (see Parser.parse_lazy(recover=True)).
        self.recover = bool(recover)
        self.decoded: List[Tuple[str, int, int, int]] = []
        self.decoded_bytes = 0
        self.root: Optional[LazyNode] = None

    # -- entry point --------------------------------------------------------
    def parse(self, start: Optional[str] = None) -> LazyNode:
        """Validate the input and return the lazy root.

        Costs one tree-elision pass over the input (the ``--validate``
        fast path: no tree, no payload copies) — a non-matching input
        fails *here*, diagnosed to the identical structured error class
        and offset every eager entry point raises.
        """
        parser = self.parser
        start_name = start or parser.grammar.start
        parser._validate_blackboxes(start_name)
        # The document owns a memoryview export of the caller's buffer;
        # when validation fails (or blows up) nothing will ever decode, so
        # release it before raising — an unclosed view would keep the
        # caller's mmap pinned open.
        try:
            env = self._probe_env(start_name, 0, len(self.buffer))
            if env is FAIL:
                from .diagnose import diagnose_parser

                error = diagnose_parser(parser, self.buffer, start_name)
                raise error
        except BaseException:
            self.close()
            raise
        self.root = LazyNode(
            _LazySlot(self, start_name, 0, len(self.buffer)), dict(env)
        )
        return self.root

    # -- engine re-entry ----------------------------------------------------
    def _probe_env(self, name: str, lo: int, hi: int):
        """The rule's attribute environment over ``[lo, hi)``, or ``FAIL``.

        Runs the parser's fastest tree-elision engine (compiled, table
        VM, or the plain interpreter in elision mode) — top-level rules
        are context-free, so this is exactly the env the eager parse
        records for the same window.
        """
        parser = self.parser
        with self._recursion_headroom():
            if parser._tablevm is not None:
                run = parser._tablevm.new_run(self.buffer, build_tree=False)
                result = run.parse_nonterminal(name, lo, hi, None, None)
            else:
                elided = parser._elided_compiled()
                if elided is not None:
                    result = elided.parse_nonterminal(self.buffer, name, lo, hi)
                else:
                    run = _Run(parser, self.buffer, build_tree=False)
                    result = run.parse_nonterminal(name, lo, hi, None, None)
        return FAIL if result is FAIL else result.env

    def _materialize(self, slot: _LazySlot) -> list:
        """Decode a stub's children (one budgeted skeleton-spine run)."""
        run = _LazyRun(self, (slot.rule, slot.lo, slot.hi))
        with self._recursion_headroom():
            try:
                result = run.parse_nonterminal(
                    slot.rule, slot.lo, slot.hi, None, None
                )
            except (BlackboxError, OSError) as exc:
                # A raising blackbox or an I/O fault from the underlying
                # buffer (a page-in error on an mmap, an injected fault):
                # in recovery mode the stub degrades instead of raising.
                if not self.recover:
                    raise
                return self._degraded_children(slot, exc)
            except (RecursionError, MemoryError) as exc:
                raise LimitExceeded(
                    f"{type(exc).__name__} while materializing {slot.rule!r} "
                    f"over [{slot.lo}, {slot.hi}); set ParseLimits.max_depth/"
                    f"max_steps to fail earlier",
                    limit="recursion",
                    nonterminal=slot.rule,
                ) from exc
        if result is FAIL:
            # The skeleton probe accepted this window; a failing re-parse
            # means the engines disagree (or the buffer's bytes changed
            # after validation).  Surface it rather than return a
            # half-decoded tree — or, in recovery mode, degrade to an
            # ErrorNode carrying the window's diagnosis.
            if self.recover:
                from .recover import diagnose_window

                return self._degraded_children(
                    slot,
                    diagnose_window(
                        self.parser, self.buffer, slot.rule, slot.lo, slot.hi
                    ),
                )
            raise ParseFailure(
                f"lazy materialization of {slot.rule!r} over "
                f"[{slot.lo}, {slot.hi}) failed although the skeleton "
                f"probe accepted it (engines out of sync?)",
                nonterminal=slot.rule,
            )
        charged = (slot.hi - slot.lo) - sum(run.stub_windows.values())
        if charged < 0:  # overlapping stub windows cannot overcharge
            charged = 0
        self.decoded.append((slot.rule, slot.lo, slot.hi, charged))
        self.decoded_bytes += charged
        return result.children

    def _degraded_children(self, slot: _LazySlot, error: Exception) -> list:
        """Recovery-mode stand-in for a stub that failed to decode."""
        from .recover import ErrorNode

        self.decoded.append((slot.rule, slot.lo, slot.hi, 0))
        return [ErrorNode(slot.rule, slot.lo, slot.hi, error)]

    def close(self) -> None:
        """Release the document's view of the input buffer.

        Materialized subtrees stay valid (their payloads are real
        ``bytes``), but un-materialized stubs can no longer decode.  Call
        this when done navigating so an underlying ``mmap`` can be
        closed — Python refuses to close a buffer with exported views.
        """
        buffer = self.buffer
        if isinstance(buffer, memoryview):
            buffer.release()

    def _recursion_headroom(self):
        """Same recursion-limit bump every eager entry point installs."""
        return _RecursionHeadroom(self.parser.recursion_limit)


class _RecursionHeadroom:
    __slots__ = ("limit", "previous")

    def __init__(self, limit: int):
        self.limit = limit
        self.previous = None

    def __enter__(self):
        self.previous = sys.getrecursionlimit()
        if self.limit > self.previous:
            sys.setrecursionlimit(self.limit)
        return self

    def __exit__(self, *_exc):
        if self.limit > self.previous:
            sys.setrecursionlimit(self.previous)
        return False
