"""IPG specification of the ELF format (64-bit, section view).

This is the directory-based case study of section 4.1: a fixed-size header
at offset 0 holds the offset, entry size and count of the section header
table; each section header holds the offset and size of its section.  The
grammar therefore uses the random access pattern twice (header → section
header table → sections), an array term for the table, and a ``switch`` term
(inside a ``where`` local rule) to pick the section parser by section type —
exactly the structure of Figure 9b in the paper, extended to the real ELF64
field layout.

Only the section view is modelled (as in the paper); the program-header view
would be specified the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.parsetree import Node
from .base import FormatSpec, register

#: Section types given dedicated sub-grammars (same spirit as the paper's
#: ``DynSec`` example): SHT_SYMTAB = 2, SHT_STRTAB = 3, SHT_DYNAMIC = 6.
GRAMMAR = r"""
// ELF64, section view.  Field layout follows the ELF specification.
ELF -> H[0, 64]
       for i = 0 to H.shnum do SH[H.shoff + i * H.shentsize, H.shoff + (i + 1) * H.shentsize]
       for i = 1 to H.shnum do Sec[SH(i).offset, SH(i).offset + SH(i).size]
         where {
           Sec -> switch(SH(i).type = 6 : DynSec[0, EOI]
                        / SH(i).type = 2 : SymTab[0, EOI]
                        / SH(i).type = 3 : StrTab[0, EOI]
                        / OtherSec[0, EOI]) ;
         } ;

// Fields whose intervals are omitted chain off the previous field through
// implicit-interval auto-completion (section 3.4); explicit intervals remain
// only where the layout skips padding bytes.
H -> "\x7fELF"
     U8 {class = U8.val}
     guard(class = 2)
     U8 {data = U8.val}
     U8 {version = U8.val}
     U16LE[16, 18] {etype = U16LE.val}
     U16LE {machine = U16LE.val}
     U64LE[24, 32] {entry = U64LE.val}
     U64LE {phoff = U64LE.val}
     U64LE {shoff = U64LE.val}
     U16LE[52, 54] {ehsize = U16LE.val}
     U16LE {phentsize = U16LE.val}
     U16LE {phnum = U16LE.val}
     U16LE {shentsize = U16LE.val}
     U16LE {shnum = U16LE.val}
     U16LE {shstrndx = U16LE.val} ;

SH -> U32LE {name = U32LE.val}
      U32LE {type = U32LE.val}
      U64LE {flags = U64LE.val}
      U64LE {addr = U64LE.val}
      U64LE {offset = U64LE.val}
      U64LE {size = U64LE.val}
      U32LE {link = U32LE.val}
      U32LE {info = U32LE.val}
      U64LE[48, 56] {addralign = U64LE.val}
      U64LE {entsize = U64LE.val} ;

// A dynamic section is an array of 16-byte entries (Figure 9b, line 11).
DynSec -> for i = 0 to EOI / 16 do DynEntry[16 * i, 16 * (i + 1)] ;
DynEntry -> U64LE {tag = U64LE.val}
            U64LE {value = U64LE.val} ;

// A symbol table is an array of 24-byte Elf64_Sym records.
SymTab -> for i = 0 to EOI / 24 do Sym[24 * i, 24 * (i + 1)] ;
Sym -> U32LE {name = U32LE.val}
       U8 {info = U8.val}
       U8 {other = U8.val}
       U16LE {shndx = U16LE.val}
       U64LE {value = U64LE.val}
       U64LE {size = U64LE.val} ;

StrTab -> Raw[0, EOI] ;
OtherSec -> Raw[0, EOI] ;
"""

SPEC = register(
    FormatSpec(
        name="elf",
        grammar_text=GRAMMAR,
        description="ELF64 executables, section view (directory-based format)",
    )
)


def build_parser():
    """Return a fresh ELF parser."""
    return SPEC.build_parser()


def parse(data: bytes) -> Node:
    """Parse an ELF file and return the parse tree."""
    return SPEC.parse(data)


# ---------------------------------------------------------------------------
# Tree → Python summaries (used by the readelf-like example and benchmarks)
# ---------------------------------------------------------------------------


@dataclass
class SectionInfo:
    """Summary of one section (offset/size/type plus its resolved name)."""

    index: int
    name: str
    sh_type: int
    offset: int
    size: int
    link: int
    entsize: int


@dataclass
class ElfSummary:
    """The information ``readelf -h -S --dyn-syms`` reports."""

    entry: int
    machine: int
    section_count: int
    shstrndx: int
    sections: List[SectionInfo]
    symbols: List[Dict[str, int]]
    dynamic_entries: List[Dict[str, int]]


def _string_at(table: bytes, offset: int) -> str:
    if offset >= len(table):
        return ""
    end = table.find(b"\x00", offset)
    if end < 0:
        end = len(table)
    return table[offset:end].decode("latin-1")


def summarize(tree: Node, data: bytes) -> ElfSummary:
    """Extract a readelf-style summary from an ELF parse tree."""
    header = tree.child("H")
    section_headers = tree.array("SH")
    assert header is not None and section_headers is not None

    shstrndx = header["shstrndx"]
    headers = list(section_headers)
    # Resolve section names through the section-header string table.
    strtab_bytes = b""
    if 0 <= shstrndx < len(headers):
        strtab_header = headers[shstrndx]
        start = strtab_header["offset"]
        strtab_bytes = data[start : start + strtab_header["size"]]

    sections: List[SectionInfo] = []
    for index, sh in enumerate(headers):
        sections.append(
            SectionInfo(
                index=index,
                name=_string_at(strtab_bytes, sh["name"]),
                sh_type=sh["type"],
                offset=sh["offset"],
                size=sh["size"],
                link=sh["link"],
                entsize=sh["entsize"],
            )
        )

    symbols: List[Dict[str, int]] = []
    dynamic_entries: List[Dict[str, int]] = []
    sections_array = tree.array("Sec")
    if sections_array is not None:
        for section_node in sections_array:
            symtab = section_node.child("SymTab")
            if symtab is not None:
                sym_array = symtab.array("Sym")
                if sym_array is not None:
                    for sym in sym_array:
                        symbols.append(dict(sym.attrs))
            dynsec = section_node.child("DynSec")
            if dynsec is not None:
                entry_array = dynsec.array("DynEntry")
                if entry_array is not None:
                    for entry in entry_array:
                        dynamic_entries.append(dict(entry.attrs))

    return ElfSummary(
        entry=header["entry"],
        machine=header["machine"],
        section_count=header["shnum"],
        shstrndx=shstrndx,
        sections=sections,
        symbols=symbols,
        dynamic_entries=dynamic_entries,
    )


def render_readelf(summary: ElfSummary) -> str:
    """Render a summary roughly like ``readelf -h -S --dyn-syms`` output."""
    lines = [
        "ELF Header:",
        f"  Entry point address: 0x{summary.entry:x}",
        f"  Machine: {summary.machine}",
        f"  Number of section headers: {summary.section_count}",
        f"  Section header string table index: {summary.shstrndx}",
        "",
        "Section Headers:",
        "  [Nr] Name                Type  Offset    Size      Link  EntSize",
    ]
    for section in summary.sections:
        lines.append(
            f"  [{section.index:2d}] {section.name:<18s} {section.sh_type:5d} "
            f"{section.offset:#9x} {section.size:#9x} {section.link:5d} {section.entsize:7d}"
        )
    lines.append("")
    lines.append(f"Symbol table entries: {len(summary.symbols)}")
    for position, symbol in enumerate(summary.symbols):
        lines.append(
            f"  {position:4d}: value={symbol.get('value', 0):#x} "
            f"size={symbol.get('size', 0)} name_off={symbol.get('name', 0)}"
        )
    lines.append(f"Dynamic entries: {len(summary.dynamic_entries)}")
    return "\n".join(lines)
