"""Compatibility surface of the staged compiler.

The monolithic compiler moved into the analyze -> lower -> emit pipeline:

* :mod:`repro.core.ir` — the analyze and lower stages: whole-grammar
  facts (:func:`repro.core.ir.analyze`) and per-rule plan-IR programs
  (:func:`repro.core.ir.lower`), shared by every backend;
* :mod:`repro.core.backends.closures` — the closure-emitting backend
  (everything this module used to contain);
* :mod:`repro.core.backends.tablevm` — the table-driven VM backend.

``repro.core.compiler`` remains the stable import path for the closure
backend's public API (`compile_grammar`, :class:`CompiledGrammar`,
:class:`Optimizations`) and for the runtime helpers the generated modules
and sibling modules bind against.
"""

from .backends.closures import (  # noqa: F401
    CompiledGrammar,
    Optimizations,
    compile_grammar,
    _FIXED_INTS,
    _MISS,
    _SHARED_EMPTY,
    _UB,
    _aidx,
    _aidx_env,
    _exists,
    _limit_refill,
    _limit_steps,
    _make_blackbox_runner,
    _make_builtin_runner,
    _make_builtin_runner_elided,
    _mk_array,
    _mk_leaf,
    _mk_node,
    _run_builtin,
    _wrap_outcome,
)
from .ir import GrammarAnalysis, analyze  # noqa: F401

__all__ = [
    "CompiledGrammar",
    "Optimizations",
    "compile_grammar",
    "GrammarAnalysis",
    "analyze",
]
