"""Tests for the GIF (section 4.2) and ZIP case studies."""

import zlib

import pytest

from repro import samples
from repro.baselines.handwritten import gif as handwritten_gif
from repro.baselines.handwritten import zipfmt as handwritten_zip
from repro.formats import gif, zipfmt


class TestGif:
    def test_header_and_screen_descriptor(self, gif_parser, gif_sample):
        summary = gif.summarize(gif_parser.parse(gif_sample))
        assert summary.version == "GIF89a"
        assert (summary.width, summary.height) == (32, 32)
        assert summary.has_global_color_table
        assert summary.global_color_table_size == 24

    def test_block_inventory(self, gif_parser, gif_sample):
        summary = gif.summarize(gif_parser.parse(gif_sample))
        kinds = [block.kind for block in summary.blocks]
        assert kinds.count("image") == 3
        assert kinds.count("extension") >= 3  # comment + one GCE per frame

    def test_agrees_with_handwritten_baseline(self, gif_parser, gif_sample):
        ours = gif.summarize(gif_parser.parse(gif_sample))
        baseline = handwritten_gif.parse(gif_sample)
        assert len(ours.blocks) == len(baseline.blocks)
        assert [b.kind for b in ours.blocks] == [b.kind for b in baseline.blocks]
        assert [b.data_length for b in ours.blocks] == [b.data_length for b in baseline.blocks]

    def test_gif87a_accepted(self, gif_parser):
        data = bytearray(samples.build_gif(frame_count=1))
        data[3:6] = b"87a"
        assert gif_parser.accepts(bytes(data))

    def test_rejects_bad_magic(self, gif_parser, gif_sample):
        assert not gif_parser.accepts(b"JIF89a" + gif_sample[6:])

    def test_rejects_missing_trailer(self, gif_parser, gif_sample):
        assert not gif_parser.accepts(gif_sample[:-1])

    def test_rejects_corrupt_sub_block_length(self, gif_parser):
        data = bytearray(samples.build_gif(frame_count=1, bytes_per_frame=64, with_comments=False))
        # The first sub-block length byte of the image data: make it run past
        # the end of the file.
        index = data.index(0x2C)  # image separator
        data[index + 11] = 250
        assert not gif_parser.accepts(bytes(data))

    def test_image_without_local_color_table(self, gif_parser):
        summary = gif.summarize(gif_parser.parse(samples.build_gif(frame_count=1)))
        image_blocks = [b for b in summary.blocks if b.kind == "image"]
        assert image_blocks[0].width == 32

    @pytest.mark.parametrize("frames", [0, 1, 5])
    def test_frame_count_scales(self, gif_parser, frames):
        if frames == 0:
            # A GIF with no image blocks still has the comment extension.
            data = samples.build_gif(frame_count=0, with_comments=False)
            # Blocks requires at least one block; such a file is degenerate
            # and correctly rejected by the grammar (Blocks has no empty case).
            assert not gif_parser.accepts(data)
            return
        data = samples.build_gif(frame_count=frames)
        summary = gif.summarize(gif_parser.parse(data))
        assert sum(1 for b in summary.blocks if b.kind == "image") == frames


class TestZip:
    def test_member_table(self, zip_parser, zip_sample):
        members = zipfmt.list_members(zip_parser.parse(zip_sample))
        assert [m.name for m in members] == [
            "member_0000.txt",
            "member_0001.txt",
            "member_0002.txt",
        ]
        assert all(m.method == 8 for m in members)  # deflated
        assert all(m.uncompressed_size == 600 for m in members)

    def test_extraction_via_blackbox(self, zip_parser, zip_sample):
        tree = zip_parser.parse(zip_sample)
        members = zipfmt.list_members(tree)
        extracted = zipfmt.extract_all(tree)
        assert set(extracted) == {m.name for m in members}
        assert all(len(data) == 600 for data in extracted.values())
        assert zipfmt.verify_crc(extracted, members)

    def test_extraction_matches_handwritten_unzip(self, zip_parser, zip_sample):
        ours = zipfmt.extract_all(zip_parser.parse(zip_sample))
        baseline = handwritten_zip.run_unzip(zip_sample)
        assert ours == baseline

    def test_stored_members(self, zip_parser):
        archive = samples.build_zip(member_count=2, member_size=128, compressed=False)
        tree = zip_parser.parse(archive)
        members = zipfmt.list_members(tree)
        assert all(m.method == 0 for m in members)
        extracted = zipfmt.extract_all(tree)
        assert zipfmt.verify_crc(extracted, members)

    def test_metadata_only_parser_skips_data(self, zip_sample):
        tree = zipfmt.build_metadata_parser().parse(zip_sample)
        assert len(tree.array("CDE")) == 3
        # No Entry nodes: the archived data is never touched.
        assert tree.array("Entry") is None

    def test_empty_archive(self, zip_parser):
        archive = samples.build_zip(member_count=0)
        tree = zip_parser.parse(archive)
        assert zipfmt.list_members(tree) == []

    def test_rejects_truncated_archive(self, zip_parser, zip_sample):
        assert not zip_parser.accepts(zip_sample[:-4])

    def test_rejects_corrupted_central_directory_magic(self, zip_parser, zip_sample):
        corrupted = bytearray(zip_sample)
        offset = corrupted.find(b"PK\x01\x02")
        corrupted[offset + 3] = 0x7F
        assert not zip_parser.accepts(bytes(corrupted))

    def test_crc_detects_corruption(self, zip_parser, zip_sample):
        tree = zip_parser.parse(zip_sample)
        members = zipfmt.list_members(tree)
        extracted = zipfmt.extract_all(tree)
        extracted["member_0000.txt"] = b"tampered"
        assert not zipfmt.verify_crc(extracted, members)

    def test_blackbox_decompression_is_correct(self, zip_parser):
        archive = samples.build_zip(member_count=1, member_size=2048)
        extracted = zipfmt.extract_all(zip_parser.parse(archive))
        (payload,) = extracted.values()
        assert len(payload) == 2048
        assert zlib.crc32(payload) == zlib.crc32(handwritten_zip.run_unzip(archive)["member_0000.txt"])
