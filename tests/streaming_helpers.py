"""Shared helpers for the streaming test modules.

Kept in its own module (not ``conftest.py``) because ``benchmarks/`` has a
``conftest.py`` too and the two would shadow each other on ``sys.path``.
"""

from __future__ import annotations

from typing import List


def chunked(data: bytes, size: int) -> List[bytes]:
    """Split ``data`` into ``size``-byte chunks."""
    return [data[i : i + size] for i in range(0, len(data), size)]
