"""Tests for the network-format case studies (DNS and IPv4+UDP)."""

import pytest

from repro import samples
from repro.baselines.handwritten import dns as handwritten_dns
from repro.baselines.handwritten import ipv4 as handwritten_ipv4
from repro.formats import dns, ipv4


class TestDnsQueries:
    def test_header_and_question(self, dns_parser, dns_query_sample):
        summary = dns.summarize(dns_parser.parse(dns_query_sample))
        assert summary.transaction_id == 0x1234
        assert len(summary.questions) == 1
        assert summary.questions[0].name == "www.example.com"
        assert summary.questions[0].qtype == 1
        assert summary.questions[0].qclass == 1
        assert summary.records == []

    def test_agrees_with_handwritten_baseline(self, dns_parser, dns_query_sample):
        ours = dns.summarize(dns_parser.parse(dns_query_sample))
        baseline = handwritten_dns.parse(dns_query_sample)
        assert ours.transaction_id == baseline.transaction_id
        assert ours.questions[0].name == baseline.questions[0].name


class TestDnsResponses:
    def test_record_sections(self, dns_parser, dns_response_sample):
        summary = dns.summarize(dns_parser.parse(dns_response_sample))
        assert len(summary.records) == 4  # 3 answers + 1 additional
        assert all(record.rtype == 1 for record in summary.records)

    def test_compression_pointers_recorded(self, dns_parser, dns_response_sample):
        summary = dns.summarize(dns_parser.parse(dns_response_sample))
        answers = summary.records[:3]
        assert all(record.name == "@12" for record in answers)  # pointer to offset 12

    def test_uncompressed_answer_names(self, dns_parser):
        packet = samples.build_dns_response(answer_count=2, use_compression=False)
        summary = dns.summarize(dns_parser.parse(packet))
        assert summary.records[0].name == "www.example.com"

    def test_variable_length_names_chain_records(self, dns_parser):
        packet = samples.build_dns_response(answer_count=1, additional_count=3)
        summary = dns.summarize(dns_parser.parse(packet))
        extra_names = [record.name for record in summary.records[1:]]
        assert extra_names == [f"extra{i}.example.com" for i in range(3)]

    def test_agrees_with_handwritten_baseline(self, dns_parser, dns_response_sample):
        ours = dns.summarize(dns_parser.parse(dns_response_sample))
        baseline = handwritten_dns.parse(dns_response_sample)
        assert [r.name for r in ours.records] == [r.name for r in baseline.records]
        assert [r.ttl for r in ours.records] == [r.ttl for r in baseline.records]

    def test_rejects_truncated_packet(self, dns_parser, dns_response_sample):
        assert not dns_parser.accepts(dns_response_sample[:-3])

    def test_rejects_short_header(self, dns_parser):
        assert not dns_parser.accepts(b"\x00\x01\x00")

    @pytest.mark.parametrize("answers", [0, 1, 16, 64])
    def test_answer_count_scales(self, dns_parser, answers):
        packet = samples.build_dns_response(answer_count=answers)
        summary = dns.summarize(dns_parser.parse(packet))
        assert len(summary.records) == answers


class TestIpv4Udp:
    def test_addresses_and_ports(self, ipv4_parser, ipv4_sample):
        summary = ipv4.summarize(ipv4_parser.parse(ipv4_sample))
        assert summary.source == "192.168.1.10"
        assert summary.destination == "10.0.0.1"
        assert summary.source_port == 53124
        assert summary.destination_port == 53
        assert summary.ttl == 64

    def test_options_shift_the_udp_header(self, ipv4_parser):
        plain = samples.build_ipv4_udp_packet(payload_size=10, options_words=0)
        with_options = samples.build_ipv4_udp_packet(payload_size=10, options_words=2)
        assert ipv4.summarize(ipv4_parser.parse(plain)).header_length == 20
        assert ipv4.summarize(ipv4_parser.parse(with_options)).header_length == 28
        assert (
            ipv4.summarize(ipv4_parser.parse(with_options)).destination_port
            == ipv4.summarize(ipv4_parser.parse(plain)).destination_port
        )

    def test_payload_bounded_by_udp_length(self, ipv4_parser):
        packet = samples.build_ipv4_udp_packet(payload_size=33)
        summary = ipv4.summarize(ipv4_parser.parse(packet))
        assert summary.udp_length == 41
        assert len(summary.payload) == 33

    def test_agrees_with_handwritten_baseline(self, ipv4_parser, ipv4_sample):
        ours = ipv4.summarize(ipv4_parser.parse(ipv4_sample))
        baseline = handwritten_ipv4.parse(ipv4_sample)
        assert ours.source == baseline.source
        assert ours.destination == baseline.destination
        assert ours.payload == baseline.payload

    def test_rejects_non_ipv4(self, ipv4_parser, ipv4_sample):
        corrupted = bytearray(ipv4_sample)
        corrupted[0] = 0x65  # version 6
        assert not ipv4_parser.accepts(bytes(corrupted))

    def test_rejects_non_udp_protocol(self, ipv4_parser, ipv4_sample):
        corrupted = bytearray(ipv4_sample)
        corrupted[9] = 6  # TCP
        assert not ipv4_parser.accepts(bytes(corrupted))

    def test_rejects_bad_ihl(self, ipv4_parser, ipv4_sample):
        corrupted = bytearray(ipv4_sample)
        corrupted[0] = 0x42  # IHL = 2 words
        assert not ipv4_parser.accepts(bytes(corrupted))

    def test_rejects_truncated_payload(self, ipv4_parser):
        packet = samples.build_ipv4_udp_packet(payload_size=64)
        assert not ipv4_parser.accepts(packet[:-10])

    @pytest.mark.parametrize("size", [0, 1, 512, 1400])
    def test_payload_size_scales(self, ipv4_parser, size):
        packet = samples.build_ipv4_udp_packet(payload_size=size)
        summary = ipv4.summarize(ipv4_parser.parse(packet))
        expected = b"" if size == 0 else summary.payload
        assert summary.udp_length == 8 + size
        if size:
            assert len(summary.payload) == size
