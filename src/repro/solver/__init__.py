"""A small integer constraint solver used by termination checking.

The paper discharges the per-cycle satisfiability query

    (e_l0 = 0) ∧ (e_r0 = EOI) ∧ ... ∧ (e_ln = 0) ∧ (e_rn = EOI)

with Z3.  In this offline reproduction the solver is replaced by the module
in this package (see DESIGN.md — substitutions): interval expressions are
normalized into linear forms, equalities are eliminated by substitution,
constant contradictions are detected, and a bounded enumeration searches for
a witness when variables remain.  The queries arising from realistic IPGs
are tiny linear systems, which this solver decides exactly.
"""

from .linear import LinearForm, linearize
from .sat import Constraint, Satisfiability, check_satisfiability

__all__ = [
    "Constraint",
    "LinearForm",
    "Satisfiability",
    "check_satisfiability",
    "linearize",
]
