"""Differential tests: the compiled backend must equal the interpreter.

The staged compiler (:mod:`repro.core.compiler`) is the default parse
engine, so its equivalence guarantee carries the whole test suite.  This
module drives the cross-engine matrix (``tests/engine_matrix.py``) over
every bundled format grammar, every toy grammar of the paper, and the
property-based workload generators: the compiled backend — optimized,
unoptimized, and ahead-of-time emitted — must produce identical parse
trees to the reference interpreter, or fail identically, on the same
inputs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from engine_matrix import format_sample, matrix_for
from repro import Parser, samples
from repro.core.compiler import compile_grammar
from repro.formats import registry, toy


def format_matrix(fmt):
    spec = registry[fmt]
    return matrix_for(spec.grammar_text, blackboxes=dict(spec.blackboxes))


class TestFormatGrammars:
    """Every bundled format grammar, on valid and corrupted inputs."""

    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_valid_input_produces_identical_tree(self, fmt):
        format_matrix(fmt).assert_agree(format_sample(fmt))

    @pytest.mark.parametrize("fmt", sorted(registry))
    @pytest.mark.parametrize("flip", [0, 1, -1])
    def test_corrupted_input_fails_identically(self, fmt, flip):
        sample = bytearray(format_sample(fmt))
        sample[flip] ^= 0xFF
        format_matrix(fmt).assert_agree(bytes(sample))

    @pytest.mark.parametrize("fmt", ["dns", "gif", "elf"])
    def test_unmemoized_backends_agree(self, fmt):
        spec = registry[fmt]
        matrix = matrix_for(
            spec.grammar_text, blackboxes=dict(spec.blackboxes), memoize=False
        )
        matrix.assert_agree(format_sample(fmt))

    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_truncated_prefixes_fail_identically(self, fmt):
        matrix = format_matrix(fmt)
        sample = format_sample(fmt)
        for cut in (0, 1, len(sample) // 2, len(sample) - 1):
            matrix.assert_agree(sample[:cut])


class TestToyGrammars:
    """The paper's toy grammars over byte-string fuzz inputs."""

    @pytest.mark.parametrize("name", sorted(toy.ALL_GRAMMARS))
    @given(data=st.binary(min_size=0, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_fuzzed_inputs_agree(self, name, data):
        matrix_for(toy.ALL_GRAMMARS[name]).assert_agree(data)

    @given(value=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_binary_number_values_agree(self, value):
        matrix = matrix_for(toy.FIGURE_3)
        text = format(value, "b").encode()
        outcome = matrix.assert_agree(text)
        assert outcome[0] == "tree"
        assert outcome[1]["val"] == value

    @given(text=st.text(alphabet="abc", min_size=0, max_size=15))
    @settings(max_examples=80, deadline=None)
    def test_anbncn_membership_agrees(self, text):
        matrix_for(toy.ANBNCN).assert_agree(text.encode())

    def test_alternate_start_symbol(self):
        matrix = matrix_for(toy.FIGURE_3)
        matrix.assert_agree(b"1", start="Digit")
        matrix.assert_agree(b"x", start="Digit")


class TestPropertyBasedWorkloads:
    """The generators of test_property_based.py, run through all engines."""

    @given(
        members=st.integers(min_value=0, max_value=8),
        size=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=15, deadline=None)
    def test_zip_archives_agree(self, members, size):
        archive = samples.build_zip(member_count=members, member_size=size)
        format_matrix("zip").assert_agree(archive)

    @given(
        answers=st.integers(min_value=0, max_value=12),
        compress=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_dns_responses_agree(self, answers, compress):
        packet = samples.build_dns_response(
            answer_count=answers, use_compression=compress
        )
        format_matrix("dns").assert_agree(packet)

    @given(
        size=st.integers(min_value=0, max_value=600),
        options=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=15, deadline=None)
    def test_ipv4_packets_agree(self, size, options):
        packet = samples.build_ipv4_udp_packet(
            payload_size=size, options_words=options
        )
        format_matrix("ipv4").assert_agree(packet)

    @given(objects=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_pdf_documents_agree(self, objects):
        document, _offsets = samples.build_pdf(object_count=objects)
        format_matrix("pdf").assert_agree(document)


class TestCompiledGrammarObject:
    def test_source_is_kept_for_inspection(self):
        compiled = compile_grammar(toy.FIGURE_1)
        assert "def " in compiled.source
        assert "_ENTRY" in compiled.source

    def test_blackbox_registration_after_compilation(self):
        grammar = "blackbox Ext ;\nS -> Ext[0, EOI] {n = Ext.len} ;"
        parser = Parser(grammar, backend="compiled")
        assert parser.backend == "compiled"
        parser.register_blackbox("Ext", lambda data: {"len": len(data)})
        assert parser.parse(b"12345")["n"] == 5

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Parser(toy.FIGURE_1, backend="jit")

    def test_exists_expression_agrees(self):
        grammar = """
        S -> H[0, 1]
             for i = 0 to H.num do A[1 + i, 2 + i]
             {found = exists j . A(j).val = 7 ? j + 1 : 0} ;
        H -> U8[0, 1] {num = U8.val} ;
        A -> U8[0, 1] {val = U8.val} ;
        """
        matrix = matrix_for(grammar)
        hit = bytes([3, 1, 7, 9])
        miss = bytes([3, 1, 2, 9])
        matrix.assert_agree(hit)
        matrix.assert_agree(miss)
        assert matrix.compiled.parse(hit)["found"] == 2
        assert matrix.compiled.parse(miss)["found"] == 0


class TestAdversarialConstructs:
    """Tricky corners not exercised by the bundled format grammars."""

    def _diff(self, grammar, inputs, starts=(None,), blackboxes=None, engines=None):
        matrix = matrix_for(grammar, blackboxes=blackboxes)
        for start in starts:
            for data in inputs:
                matrix.assert_agree(data, start, engines=engines)

    def test_special_attribute_rebinding(self):
        # Attribute definitions may overwrite EOI/start/end; guards may read
        # the specials mid-alternative; empty terminals never touch input.
        self._diff(
            'S -> ""[0, 0] "ab"[0, 2] guard(end = 2) {EOI = 99} {start = 1} ;',
            [b"ab", b"abX", b"a", b""],
        )

    def test_attribute_self_rebinding(self):
        self._diff('S -> {x = 1} {x = x + 1} guard(x = 2) "a"[0, 1] ;', [b"a", b"b"])

    def test_nested_where_rules_with_recursion(self):
        self._diff(
            """
            S -> {k = 2} A[0, EOI]
                 where {
                   A -> B[0, k] C[k, EOI]
                        where { C -> "c"[0, 1] C[1, EOI] / "c"[0, 1] ; } ;
                   B -> "bb"[0, 2] ;
                 } ;
            """,
            [b"bbccc", b"bbc", b"bb", b"bbx", b"xbccc"],
        )

    def test_local_rule_shadows_top_level_rule(self):
        self._diff(
            'S -> A[0, EOI] where { A -> "x"[0, 1] ; } ;\nA -> "y"[0, 1] ;',
            [b"x", b"y", b""],
            starts=(None, "A"),
        )

    def test_switch_target_attribute_reference(self):
        # `A.val` after the switch is only bound when the first branch ran;
        # the compiled conditional record must fail the alternative otherwise.
        self._diff(
            """
            S -> U8[0, 1] {t = U8.val}
                 switch(t = 1 : A[1, 2] / t = 2 : B[1, 2] / C[1, 2])
                 {r = t = 1 ? A.val : 0} ;
            A -> U8[0, 1] {val = U8.val + 10} ;
            B -> U8[0, 1] {val = U8.val + 20} ;
            C -> U8[0, 1] {val = U8.val + 30} ;
            """,
            [bytes([1, 5]), bytes([2, 5]), bytes([9, 5]), bytes([1])],
        )

    def test_exists_over_where_rule_array(self):
        self._diff(
            """
            S -> U8[0, 1] {n = U8.val}
                 for i = 0 to n do E[1 + i, 2 + i]
                 for i = 0 to n do F[1 + n + i, 2 + n + i]
                 {sum = exists j . E(j).val > 40 ? j : 0 - 1}
                 {sum2 = exists j . F(j).val > 90 ? j + 100 : 0 - 1}
                   where { F -> U8[0, 1] {val = U8.val + E(i).val} ; } ;
            E -> U8[0, 1] {val = U8.val} ;
            """,
            [bytes([2, 1, 50, 30, 90]), bytes([2, 1, 2, 50]), bytes([0]), b""],
        )

    def test_division_failure_fails_alternative(self):
        self._diff(
            """
            S -> U8[0, 1] {d = U8.val} A[1, 1 + 8 / d] / U8[0, 1] {d = 99} ;
            A -> Raw[0, EOI] ;
            """,
            [bytes([2, 1, 2, 3, 4]), bytes([0, 1]), b""],
        )

    def test_builtin_and_blackbox_start_symbols(self):
        # The legacy parser generator does not support builtin/blackbox
        # *start* symbols; the compiled engines all must.
        self._diff(
            "blackbox Ext ;\nS -> Ext[0, EOI] {n = Ext.len} ;",
            [b"abc", b""],
            starts=(None, "Ext", "U16LE"),
            blackboxes={"Ext": lambda data: {"len": len(data)}},
            engines=("compiled", "compiled-unoptimized", "aot"),
        )


class TestParseIsolation:
    """Each parse gets its own memo state, like the interpreter's _Run."""

    def test_reentrant_blackbox_parse_does_not_corrupt_memo(self):
        # The blackbox re-enters the same parser on its window bytes; the
        # outer parse's memoized `Inner[0, 2]` result must not be replaced
        # by the inner parse's entry for the same (lo, hi) key.
        grammar = """
        blackbox Ext ;
        S -> Inner[0, 2] Ext[2, 4] Inner[0, 2] {a = Inner.v + Ext.n} ;
        Inner -> U8[0, 1] U8[1, 2] {v = U8.val} ;
        """
        data = bytes([1, 2, 3, 4])

        def make(backend):
            parser = Parser(grammar, backend=backend)
            parser.register_blackbox(
                "Ext", lambda window: {"n": parser.parse(window, start="Inner")["v"]}
            )
            return parser

        compiled, interpreted = make("compiled"), make("interpreted")
        assert compiled.backend == "compiled"
        expected = interpreted.parse(data)
        actual = compiled.parse(data)
        assert actual == expected
        assert actual["a"] == 2 + 4  # second Inner.v is 2, not the window's 4

    def test_where_with_duplicate_array_names_falls_back(self):
        # Static array resolution inside where-rules is only equivalent when
        # element names are unique per alternative; the compiler must hand
        # this shape to the interpreter rather than risk divergence.
        grammar = """
        S -> U8[0, 1] {n = U8.val}
             for i = 0 to n do E[1 + i, 2 + i]
             for i = 0 to n do E[1 + n + i, 2 + n + i]
             W[0, 1]
               where { W -> U8[0, 1] {w = E(0).val} ; } ;
        E -> U8[0, 1] {val = U8.val} ;
        """
        parser = Parser(grammar, backend="compiled")
        assert parser.backend == "interpreted"  # automatic fallback
        tree = parser.parse(bytes([2, 10, 11, 20, 21]))
        assert tree.child("W")["w"] == 20


class TestWhereRuleScopeLiveness:
    """Where-rule bodies must see bindings as of the *call*, not the scope."""

    def test_loop_variable_dead_after_loop(self):
        # W runs after the array loop; the interpreter has popped `i`, so
        # the parse must fail — the compiled closure must not read the
        # stale last-iteration value.
        grammar = """
        S -> U8[0, 1] {n = U8.val}
             for i = 0 to n do E[1 + i, 2 + i]
             W[1 + n, 2 + n]
               where { W -> U8[0, 1] {w = i} ; } ;
        E -> U8[0, 1] {val = U8.val} ;
        """
        matrix = matrix_for(grammar)
        data = bytes([2, 10, 11, 99])
        outcome = matrix.assert_agree(data)
        assert outcome == ("none",)

    def test_ancestor_record_not_yet_parsed_falls_through(self):
        # When W runs, the middle scope's X has not parsed yet; resolution
        # must fall through to the outermost scope's X (value 5), exactly
        # like the interpreter's dynamic chain walk.
        grammar = """
        S -> X[0, 1] A[1, EOI]
               where {
                 A -> W[0, 1] X[1, 2]
                        where { W -> U8[0, 1] {w = X.val} ; } ;
               } ;
        X -> U8[0, 1] {val = U8.val} ;
        """
        matrix = matrix_for(grammar)
        data = bytes([5, 6, 7])
        outcome = matrix.assert_agree(data)
        assert outcome[0] == "tree"
        assert outcome[1].child("A").child("W")["w"] == 5

    def test_loop_variable_live_during_loop(self):
        # The usual ELF/ZIP shape: the where-rule is the array element and
        # reads the loop variable while the loop is running.
        grammar = """
        S -> U8[0, 1] {n = U8.val}
             for i = 0 to n do W[1 + i, 2 + i]
               where { W -> U8[0, 1] {w = U8.val + 100 * i} ; } ;
        """
        matrix = matrix_for(grammar)
        data = bytes([2, 7, 8])
        outcome = matrix.assert_agree(data)
        assert outcome[0] == "tree"
        values = [e["w"] for e in outcome[1].array("W")]
        assert values == [7, 108]

    def test_call_site_dependent_where_dispatch_falls_back(self):
        # L's body references X; the nested where inside M shadows X, and
        # the interpreter resolves through the *caller's* chain when M
        # invokes L.  The compiler binds lexically, so it must refuse this
        # shape and fall back rather than parse differently.
        grammar = """
        S -> M[0, EOI]
               where {
                 L -> X[0, 1] ;
                 M -> L[0, EOI] where { X -> "x"[0, 1] ; } ;
               } ;
        X -> "y"[0, 1] ;
        """
        compiled = Parser(grammar, backend="compiled")
        interpreted = Parser(grammar, backend="interpreted")
        assert compiled.backend == "interpreted"  # automatic fallback
        for data in (b"x", b"y", b""):
            assert compiled.accepts(data) == interpreted.accepts(data)

    def test_popped_loop_variable_falls_through_to_outer_binding(self):
        # After B's loop, `i` is popped from B's env; the interpreter then
        # resolves L's `i` in the enclosing scope ({i = 5}).  The compiled
        # closure must fall through the same way, not fail on the poisoned
        # loop local.
        grammar = """
        S -> {i = 5} B[0, EOI]
               where { B -> for i = 0 to 2 do A[i, i + 1]
                            L[2, 3]
                              where { L -> U8[0, 1] {v = i} ; } ; } ;
        A -> U8[0, 1] ;
        """
        matrix = matrix_for(grammar)
        data = bytes([1, 2, 3])
        outcome = matrix.assert_agree(data)
        assert outcome[0] == "tree"
        assert outcome[1].child("B").child("L")["v"] == 5

    def test_loop_variable_not_yet_bound_falls_through_to_outer_binding(self):
        # L runs *before* the loop term (attrcheck order keeps it first);
        # the loop binding does not exist yet, so `i` is the outer 5.
        grammar = """
        S -> {i = 5} B[0, EOI]
               where { B -> L[0, 1]
                            for i = 1 to 3 do A[i, i + 1]
                              where { L -> U8[0, 1] {v = i} ; } ; } ;
        A -> U8[0, 1] ;
        """
        matrix = matrix_for(grammar)
        data = bytes([9, 2, 3])
        outcome = matrix.assert_agree(data)
        assert outcome[0] == "tree"
        assert outcome[1].child("B").child("L")["v"] == 5
