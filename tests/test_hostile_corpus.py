"""Golden hostile corpus: curated adversarial inputs with pinned errors.

``tests/hostile/`` holds a small committed selection of the deterministic
adversarial corpus ``tools/hostile.py`` generates (truncations inside
records, length-field lies, bit flips, DNS pointer loops and deep label
chains), together with ``expectations.json`` pinning the structured error
class and byte offset each input must produce.

Every entry is replayed through :meth:`EngineMatrix.assert_error_agree`:
the reference interpreter (with and without fast paths), both compiled
variants, the AOT module and — for streamable grammars — incremental
streaming sessions at record-straddling chunk sizes (1, 7, 23 bytes) must
all surface the *same* ``ParseFailure`` subclass at the *same* offset,
and that pair must match the golden expectation.

Regenerate after an intentional classification change::

    PYTHONPATH=src python tools/hostile.py --curate tests/hostile
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.formats import registry

from engine_matrix import matrix_for

HOSTILE_DIR = Path(__file__).parent / "hostile"

with open(HOSTILE_DIR / "expectations.json", "r", encoding="utf-8") as _handle:
    EXPECTATIONS = json.load(_handle)


def _matrix(fmt: str):
    spec = registry[fmt]
    return matrix_for(spec.grammar_text, blackboxes=dict(spec.blackboxes))


@pytest.mark.parametrize("relpath", sorted(EXPECTATIONS))
def test_hostile_sample_agrees_with_golden(relpath):
    fmt = relpath.split("/", 1)[0]
    data = (HOSTILE_DIR / relpath).read_bytes()
    expected = EXPECTATIONS[relpath]
    _matrix(fmt).assert_error_agree(
        data, expect=(expected["error"], expected["offset"])
    )


def test_corpus_files_and_expectations_in_sync():
    on_disk = {
        str(path.relative_to(HOSTILE_DIR)).replace("\\", "/")
        for path in HOSTILE_DIR.rglob("*.bin")
    }
    assert on_disk == set(EXPECTATIONS), (
        "tests/hostile/ and expectations.json disagree; regenerate with "
        "`python tools/hostile.py --curate tests/hostile`"
    )


def test_expectations_cover_every_format():
    covered = {relpath.split("/", 1)[0] for relpath in EXPECTATIONS}
    expected = {"zip", "elf", "gif", "pe", "pdf", "dns", "ipv4"}
    assert covered == expected
