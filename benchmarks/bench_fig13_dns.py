"""E9 — Figure 13e: DNS parsing time, IPG vs Kaitai-like vs Nail-like."""

import pytest

from repro.baselines import nail_like
from repro.baselines.kaitai_like import specs as kaitai_specs

from conftest import DNS_ANSWER_COUNTS, build_generated_parser


@pytest.fixture(scope="module")
def ipg_dns_parser():
    return build_generated_parser("dns")


@pytest.fixture(scope="module")
def kaitai_dns_engine():
    return kaitai_specs.get_engine("dns")


@pytest.mark.parametrize("answers", DNS_ANSWER_COUNTS)
def test_fig13e_ipg(benchmark, dns_series, ipg_dns_parser, answers):
    packet = dns_series[answers]
    benchmark.group = f"fig13e-dns-{answers}"
    tree = benchmark(ipg_dns_parser.parse, packet)
    assert len(tree.array("RR")) == answers


@pytest.mark.parametrize("answers", DNS_ANSWER_COUNTS)
def test_fig13e_kaitai_like(benchmark, dns_series, kaitai_dns_engine, answers):
    packet = dns_series[answers]
    benchmark.group = f"fig13e-dns-{answers}"
    obj = benchmark(kaitai_dns_engine.parse, packet)
    assert len(obj["records"]) == answers


@pytest.mark.parametrize("answers", DNS_ANSWER_COUNTS)
def test_fig13e_nail_like(benchmark, dns_series, answers):
    packet = dns_series[answers]
    benchmark.group = f"fig13e-dns-{answers}"
    message, _arena = benchmark(nail_like.parse_dns, packet)
    assert len(message.records) == answers


@pytest.mark.parametrize("answers", DNS_ANSWER_COUNTS)
def test_fig13e_ipg_compiled(benchmark, dns_series, compiled_parsers, answers):
    packet = dns_series[answers]
    benchmark.group = f"fig13e-dns-{answers}"
    tree = benchmark(compiled_parsers["dns"].parse, packet)
    assert len(tree.array("RR")) == answers


@pytest.mark.parametrize("answers", DNS_ANSWER_COUNTS)
def test_fig13e_ipg_interpreted(benchmark, dns_series, interpreted_parsers, answers):
    packet = dns_series[answers]
    benchmark.group = f"fig13e-dns-{answers}"
    tree = benchmark(interpreted_parsers["dns"].parse, packet)
    assert len(tree.array("RR")) == answers
