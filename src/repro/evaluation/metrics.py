"""Specification metrics: Table 1 (spec sizes) and Table 2 (intervals).

Table 1 compares lines of format specification across IPG, Kaitai Struct and
Nail.  Here the IPG column is measured on the grammars in
:mod:`repro.formats`, the Kaitai column on the Kaitai-like specs in
:mod:`repro.baselines.kaitai_like.specs`, and the Nail column on the
Nail-like parser sources for the two network formats (reported as a single
code size, since our Nail stand-in has no separate C helper layer).

Table 2 counts, per IPG grammar, how many intervals appear in total and how
many of them the grammar author could omit (fully implicit) or write as a
length only — the auto-completion pass records this on every
:class:`~repro.core.ast.Interval` via its ``form`` flag.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.kaitai_like import specs as kaitai_specs
from ..baselines.nail_like import dns as nail_dns
from ..baselines.nail_like import ipv4 as nail_ipv4
from ..core.ast import (
    Grammar,
    INTERVAL_EXPLICIT,
    INTERVAL_IMPLICIT,
    INTERVAL_LENGTH,
    TermArray,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from ..core.grammar_parser import parse_grammar
from ..formats import registry

#: Formats reported in Tables 1 and 2, in the paper's column order.
TABLE_FORMATS = ("zip", "gif", "pe", "elf", "pdf", "ipv4", "dns")

#: The paper's own numbers, kept for side-by-side reporting in EXPERIMENTS.md.
PAPER_TABLE1_IPG = {"zip": 102, "gif": 61, "pe": 109, "elf": 96, "pdf": 108, "ipv4": 22, "dns": 34}
PAPER_TABLE1_KAITAI = {"zip": 256, "gif": 163, "pe": 223, "elf": 244, "ipv4": 69, "dns": 105}
PAPER_TABLE2_TOTAL = {"zip": 87, "gif": 55, "pe": 97, "elf": 82, "pdf": 241, "ipv4": 17, "dns": 28}


# ---------------------------------------------------------------------------
# Table 1: lines of format specification
# ---------------------------------------------------------------------------


@dataclass
class SpecSizeRow:
    """One column of Table 1 (sizes for one format)."""

    fmt: str
    ipg_lines: int
    kaitai_lines: Optional[int]
    nail_lines: Optional[int]


def _python_loc(module) -> int:
    """Non-empty, non-comment, non-docstring-ish lines of a module's source."""
    source = inspect.getsource(module)
    count = 0
    in_docstring = False
    for line in source.splitlines():
        stripped = line.strip()
        if stripped.startswith('"""') or stripped.startswith("'''"):
            quote = stripped[:3]
            # Toggle unless the docstring opens and closes on the same line.
            if not (len(stripped) > 3 and stripped.endswith(quote)):
                in_docstring = not in_docstring
            continue
        if in_docstring or not stripped or stripped.startswith("#"):
            continue
        count += 1
    return count


def spec_size_table() -> List[SpecSizeRow]:
    """Measure Table 1 on this repository's specifications."""
    kaitai_counts = kaitai_specs.spec_line_counts()
    nail_counts = {"dns": _python_loc(nail_dns), "ipv4": _python_loc(nail_ipv4)}
    rows: List[SpecSizeRow] = []
    for fmt in TABLE_FORMATS:
        spec = registry[fmt]
        rows.append(
            SpecSizeRow(
                fmt=fmt,
                ipg_lines=spec.spec_line_count(),
                kaitai_lines=kaitai_counts.get(fmt),
                nail_lines=nail_counts.get(fmt),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2: intervals and implicit intervals
# ---------------------------------------------------------------------------


@dataclass
class IntervalStats:
    """Interval counts of one grammar (one column of Table 2)."""

    fmt: str
    total: int
    explicit: int
    length_only: int
    fully_implicit: int

    @property
    def eliminated(self) -> int:
        """Intervals that did not need both endpoints written."""
        return self.length_only + self.fully_implicit


def _iter_intervals(grammar: Grammar):
    for rule, _parent in grammar.iter_all_rules():
        for alternative in rule.alternatives:
            for term in alternative.terms:
                if isinstance(term, (TermTerminal, TermNonterminal)):
                    yield term.interval
                elif isinstance(term, TermArray):
                    yield term.element.interval
                elif isinstance(term, TermSwitch):
                    for case in term.cases:
                        yield case.target.interval


def interval_statistics(fmt: str) -> IntervalStats:
    """Count intervals by original form for one registered format grammar."""
    spec = registry[fmt]
    grammar = parse_grammar(spec.grammar_text)
    total = explicit = length_only = fully_implicit = 0
    for interval in _iter_intervals(grammar):
        total += 1
        if interval.form == INTERVAL_EXPLICIT:
            explicit += 1
        elif interval.form == INTERVAL_LENGTH:
            length_only += 1
        elif interval.form == INTERVAL_IMPLICIT:
            fully_implicit += 1
    return IntervalStats(fmt, total, explicit, length_only, fully_implicit)


def interval_table() -> List[IntervalStats]:
    """Measure Table 2 for every evaluated format."""
    return [interval_statistics(fmt) for fmt in TABLE_FORMATS]


def aggregate_interval_shares(rows: Optional[List[IntervalStats]] = None) -> Dict[str, float]:
    """Overall shares of fully-implicit and length-only intervals.

    The paper reports that 27.0% of intervals can be fully eliminated and
    52.9% need only a length; this returns the same two aggregates for this
    repository's grammars.
    """
    rows = rows if rows is not None else interval_table()
    total = sum(row.total for row in rows)
    if total == 0:
        return {"fully_implicit": 0.0, "length_only": 0.0}
    return {
        "fully_implicit": 100.0 * sum(row.fully_implicit for row in rows) / total,
        "length_only": 100.0 * sum(row.length_only for row in rows) / total,
    }
