#!/usr/bin/env python3
"""Termination checking versus imperative seek loops (section 5 / 6.2).

Shows the three behaviours side by side:

* IPG grammars equivalent to Kaitai's seek-loop and repeat-epsilon examples
  (Figure 11) are rejected *statically* by the termination checker;
* the same patterns written as Kaitai-like specs type-check fine but loop at
  runtime until the engine's iteration budget trips;
* realistic recursive IPGs (the binary-number grammar, GIF's block list) are
  proven terminating, including the ``A.end > 0`` refinement.

Run with:  python examples/termination_demo.py
"""

from repro.baselines.kaitai_like import KaitaiEngine, KaitaiNonTermination, specs
from repro.core.termination import check_termination
from repro.formats import gif, toy


def show(name: str, grammar: str) -> None:
    report = check_termination(grammar)
    verdict = "terminates" if report.ok else "MAY NOT TERMINATE"
    print(f"  {name:<28} {verdict:<20} ({report.cycle_count} elementary cycles, "
          f"{report.elapsed_seconds * 1000:.1f} ms)")


def main() -> None:
    print("Static termination checking of IPGs:")
    show("figure 3 (binary number)", toy.FIGURE_3)
    show("backward number (PDF)", toy.BACKWARD_NUMBER)
    show("GIF (chunk list)", gif.GRAMMAR)
    show("mutual recursion (sec. 5)", toy.NON_TERMINATING_MUTUAL)
    show("seek loop (fig. 11b)", toy.NON_TERMINATING_SEEK)
    show("repeat epsilon (fig. 11d)", toy.NON_TERMINATING_EPSILON)

    print("\nThe same pathological patterns as Kaitai-like specs only fail at runtime:")
    for label, spec, payload in (
        ("seek loop (fig. 11a)", specs.NONTERMINATING_SEEK_SPEC, b"\x00"),
        ("repeat epsilon (fig. 11c)", specs.NONTERMINATING_EPSILON_SPEC, b"abc"),
    ):
        engine = KaitaiEngine(spec, max_operations=20_000)
        try:
            engine.parse(payload)
            outcome = "finished (unexpected)"
        except KaitaiNonTermination as error:
            outcome = f"looped until the runtime budget tripped: {error}"
        print(f"  {label:<28} {outcome}")


if __name__ == "__main__":
    main()
