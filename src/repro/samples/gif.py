"""Synthetic GIF files for tests and benchmarks.

The generated images are structurally valid GIF89a files: header, logical
screen descriptor with a global color table, a graphic-control extension and
an image block per frame (with LZW-style data stored as correctly framed
sub-blocks), and the trailer.  The pixel data is filler — the IPG grammar
(like Kaitai's) treats the LZW payload as opaque sub-blocks, so only the
framing matters for parsing.
"""

from __future__ import annotations

import struct
from typing import List, Optional


def _sub_blocks(payload: bytes) -> bytes:
    """Split ``payload`` into GIF data sub-blocks (<=255 bytes each)."""
    out = bytearray()
    for start in range(0, len(payload), 255):
        chunk = payload[start : start + 255]
        out.append(len(chunk))
        out.extend(chunk)
    out.append(0)  # block terminator
    return bytes(out)


def _graphic_control_extension(delay_cs: int) -> bytes:
    body = struct.pack("<BBHB", 0, 0x04, delay_cs, 0)
    return b"\x21\xf9" + bytes([len(body)]) + body + b"\x00"


def _comment_extension(text: bytes) -> bytes:
    return b"\x21\xfe" + _sub_blocks(text)


def _image_block(width: int, height: int, payload: bytes, local_table: bool) -> bytes:
    flags = 0x80 | 0x02 if local_table else 0  # local color table of 2^(2+1)=8 entries
    descriptor = struct.pack("<BHHHHB", 0x2C, 0, 0, width, height, flags)
    table = bytes(range(24)) if local_table else b""
    lzw_min = b"\x08"
    return descriptor + table + lzw_min + _sub_blocks(payload)


def build_gif(
    frame_count: int = 1,
    width: int = 32,
    height: int = 32,
    bytes_per_frame: int = 256,
    with_comments: bool = True,
    seed: int = 11,
) -> bytes:
    """Build a synthetic GIF89a image.

    ``frame_count`` image blocks are emitted, each preceded by a graphic
    control extension; ``bytes_per_frame`` controls the size of the opaque
    coded data, which is what scales the file for the Figure 13b benchmark.
    """
    if frame_count < 0:
        raise ValueError("frame_count must be non-negative")
    header = b"GIF89a"
    # Logical screen descriptor: flags 0xF2 -> global color table, 8 entries.
    lsd = struct.pack("<HHBBB", width, height, 0xF2, 0, 0)
    global_table = bytes((i * 31) & 0xFF for i in range(3 * (2 << 2)))

    blob = bytearray(header + lsd + global_table)
    rng_state = seed
    for frame in range(frame_count):
        if with_comments and frame == 0:
            blob.extend(_comment_extension(b"synthetic GIF for IPG benchmarks"))
        blob.extend(_graphic_control_extension(delay_cs=4))
        payload = bytearray()
        while len(payload) < bytes_per_frame:
            rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
            payload.append(rng_state & 0xFF)
        blob.extend(_image_block(width, height, bytes(payload), local_table=frame % 2 == 1))
    blob.append(0x3B)  # trailer
    return bytes(blob)


def build_gif_series(frame_counts: Optional[List[int]] = None, **kwargs) -> List[bytes]:
    """Build a series of GIFs with growing frame counts (Figure 13b)."""
    frame_counts = frame_counts or [1, 4, 16, 32]
    return [build_gif(frame_count=count, **kwargs) for count in frame_counts]
