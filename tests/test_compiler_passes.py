"""Property-based tests for the compiler optimization passes.

Every combination of :class:`repro.core.compiler.Optimizations` flags must
compile every grammar to the *same* observable parser: identical trees,
identical failures.  This module fuzzes that claim over the paper's toy
grammars, the workload generators of ``test_property_based.py``, and a set
of adversarial shapes aimed at each pass — and checks that ahead-of-time
emitted modules round-trip through both ``exec`` and a real ``importlib``
import.
"""

import importlib.util
import sys

import pytest
from hypothesis import given, settings, strategies as st

from engine_matrix import format_sample, load_aot_module
from repro import Parser, samples
from repro.core.compiler import Optimizations, compile_grammar
from repro.core.interpreter import FAIL
from repro.formats import registry, toy

#: All-on, all-off, and each pass individually disabled / enabled.
TOGGLE_CONFIGS = {
    "all": Optimizations(),
    "none": Optimizations.none(),
    "no-module-where": Optimizations(module_level_where=False),
    "no-dense": Optimizations(dense_memo=False),
    "no-skip": Optimizations(skip_nonrecursive_memo=False),
    "no-inline": Optimizations(inline_single_use=False),
    "no-dispatch": Optimizations(first_byte_dispatch=False),
    "no-bulk": Optimizations(bulk_fixed_shape=False),
    "only-module-where": Optimizations(True, False, False, False, False, False),
    "only-dense": Optimizations(False, True, False, False, False, False),
    "only-skip": Optimizations(False, False, True, False, False, False),
    "only-inline": Optimizations(False, False, False, True, False, False),
    "only-dispatch": Optimizations(False, False, False, False, True, False),
    "only-bulk": Optimizations(False, False, False, False, False, True),
}

#: Shapes chosen to light up individual passes: single-use chains for the
#: inliner, recursion + EOI anchors for the memo passes, where-rules with
#: loops for the closure-cell conversion.
PASS_SENSITIVE_GRAMMARS = {
    "inline-chain": """
        S -> Hdr[0, 4] Body[4, EOI] ;
        Hdr -> Magic[0, 2] U16LE[2, 4] {n = U16LE.val} ;
        Magic -> "ab"[0, 2] ;
        Body -> Raw[0, EOI] {len = Raw.len} ;
    """,
    "eoi-recursion": """
        S -> Items[0, EOI] ;
        Items -> U8[0, 1] {n = U8.val} Items[1, EOI] / ""[0, 0] ;
    """,
    "mixed-windows": """
        S -> P[0, 4] P[2, 6] Tail[6, EOI] ;
        P -> U16LE[0, 2] {v = U16LE.val} U16LE[2, 4] {w = U16LE.val} ;
        Tail -> Raw[0, EOI] ;
    """,
    "where-loop": """
        S -> U8[0, 1] {n = U8.val}
             for i = 0 to n do E[1 + 2 * i, 3 + 2 * i]
             where { E -> U8[0, 1] {v = U8.val} U8[1, 2] {w = U8.val + 100 * i} ; } ;
    """,
    # Single-use rules reached through an array element and through switch
    # targets: the extended inliner expands all three site kinds.
    "inline-array-switch": """
        S -> U8[0, 1] {n = U8.val}
             for i = 0 to n do Elem[1 + 2 * i, 3 + 2 * i]
             U8[1 + 2 * n, 2 + 2 * n] {tag = U8.val}
             switch(tag = 1 : CaseA[2 + 2 * n, EOI] / CaseB[2 + 2 * n, EOI]) ;
        Elem -> U8[0, 1] {v = U8.val} U8[1, 2] {w = U8.val} ;
        CaseA -> Raw[0, EOI] {len = Raw.len} ;
        CaseB -> U8[0, 1] {b = U8.val} Raw[1, EOI] ;
    """,
    # Dispatch-sensitive shapes: disjoint first bytes, a guarded leading
    # byte, and an alternative that can match the empty window.
    "dispatch-choice": """
        S -> Items[0, EOI] ;
        Items -> Pair Items[Pair.end, EOI] / Mark Items[Mark.end, EOI] / ""[0, 0] ;
        Pair -> "p"[0, 1] U8[1, 2] {v = U8.val} ;
        Mark -> U8[0, 1] {t = U8.val} guard(t >= 128) ;
    """,
    # Bulk-sensitive shapes: a fused fixed prefix with a literal and guard,
    # plus a fixed-stride array the bulk pass lowers to iter_unpack.
    "bulk-records": """
        S -> "hd"[0, 2] U16LE[2, 4] {n = U16LE.val} guard(n < 1000)
             for i = 0 to n do Rec[4 + 6 * i, 4 + 6 * (i + 1)]
             Tail[4 + 6 * n, EOI] ;
        Rec -> U16LE {a = U16LE.val} U16LE {b = U16LE.val}
               U16LE {c = U16LE.val} guard(c != 9) ;
        Tail -> Raw[0, EOI] ;
    """,
}


def _compile_pair(grammar_text, config, blackboxes=None):
    compiled = compile_grammar(
        grammar_text, blackboxes=dict(blackboxes or {}), optimizations=config
    )
    interpreted = Parser(grammar_text, blackboxes=dict(blackboxes or {}),
                         backend="interpreted")
    return compiled, interpreted


def _assert_config_equivalent(grammar_text, config, data, blackboxes=None):
    compiled, interpreted = _compile_pair(grammar_text, config, blackboxes)
    expected = interpreted.try_parse(data)
    result = compiled.parse_nonterminal(
        bytes(data), compiled.grammar.start, 0, len(data)
    )
    if expected is None:
        assert result is FAIL
    else:
        assert result is not FAIL
        assert result == expected


class TestToggleEquivalence:
    @pytest.mark.parametrize("config", sorted(TOGGLE_CONFIGS))
    @pytest.mark.parametrize("name", sorted(PASS_SENSITIVE_GRAMMARS))
    @given(data=st.binary(min_size=0, max_size=24))
    @settings(max_examples=30, deadline=None)
    def test_pass_sensitive_grammars(self, config, name, data):
        _assert_config_equivalent(
            PASS_SENSITIVE_GRAMMARS[name], TOGGLE_CONFIGS[config], data
        )

    @pytest.mark.parametrize("config", sorted(TOGGLE_CONFIGS))
    @pytest.mark.parametrize("name", sorted(toy.ALL_GRAMMARS))
    @given(data=st.binary(min_size=0, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_toy_grammars(self, config, name, data):
        _assert_config_equivalent(toy.ALL_GRAMMARS[name], TOGGLE_CONFIGS[config], data)

    @pytest.mark.parametrize("config", sorted(TOGGLE_CONFIGS))
    @pytest.mark.parametrize("fmt", ["zip", "dns", "elf"])
    def test_format_grammars(self, config, fmt):
        spec = registry[fmt]
        _assert_config_equivalent(
            spec.grammar_text,
            TOGGLE_CONFIGS[config],
            format_sample(fmt),
            blackboxes=dict(spec.blackboxes),
        )

    @given(
        answers=st.integers(min_value=0, max_value=8),
        compress=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_dns_workloads_under_every_config(self, answers, compress):
        packet = samples.build_dns_response(
            answer_count=answers, use_compression=compress
        )
        for config in TOGGLE_CONFIGS.values():
            _assert_config_equivalent(registry["dns"].grammar_text, config, packet)


class TestAOTRoundTrip:
    @pytest.mark.parametrize("config", ["all", "none", "no-skip", "only-inline"])
    @pytest.mark.parametrize("fmt", sorted(registry))
    def test_emitted_module_execs_and_parses(self, config, fmt):
        spec = registry[fmt]
        module = load_aot_module(
            spec.grammar_text,
            blackboxes=dict(spec.blackboxes),
            optimizations=TOGGLE_CONFIGS[config],
        )
        sample = format_sample(fmt)
        expected = spec.build_parser(backend="interpreted").parse(sample)
        assert module.parse(sample) == expected
        assert module.try_parse(sample[: max(len(sample) // 2, 1)]) is None

    def test_emitted_module_imports_from_disk(self, tmp_path):
        # The real importlib path (not just exec): the artifact story is a
        # .py file on disk that `import` picks up like any other module.
        spec = registry["gif"]
        source = compile_grammar(spec.grammar_text).to_source()
        path = tmp_path / "gif_parser.py"
        path.write_text(source, encoding="utf-8")
        loader_spec = importlib.util.spec_from_file_location("gif_parser_aot", path)
        module = importlib.util.module_from_spec(loader_spec)
        sys.modules["gif_parser_aot"] = module
        try:
            loader_spec.loader.exec_module(module)
            sample = format_sample("gif")
            expected = spec.build_parser(backend="interpreted").parse(sample)
            assert module.parse(sample) == expected
            assert module.START == compile_grammar(spec.grammar_text).grammar.start
        finally:
            del sys.modules["gif_parser_aot"]

    def test_emitted_source_is_deterministic(self):
        spec = registry["dns"]
        first = compile_grammar(spec.grammar_text).to_source()
        second = compile_grammar(spec.grammar_text).to_source()
        assert first == second

    @given(value=st.integers(min_value=0, max_value=2**24 - 1))
    @settings(max_examples=25, deadline=None)
    def test_aot_binary_numbers_fuzz(self, value):
        module = load_aot_module(toy.FIGURE_3)
        text = format(value, "b").encode()
        assert module.parse(text)["val"] == value


class TestOptimizationReporting:
    def test_memo_modes_reflect_passes(self):
        grammar = PASS_SENSITIVE_GRAMMARS["eoi-recursion"]
        full = compile_grammar(grammar)
        # Items recurses with an EOI-pinned right endpoint: dense key.
        assert full.memo_modes["Items"] == "dense"
        # S is non-recursive: memo elided.
        assert full.memo_modes["S"] == "skipped"
        baseline = compile_grammar(grammar, optimizations=Optimizations.none())
        assert set(baseline.memo_modes.values()) == {"dict"}
        unmemoized = compile_grammar(grammar, memoize=False)
        assert set(unmemoized.memo_modes.values()) == {"unmemoized"}

    def test_single_use_rule_remains_entry_callable(self):
        # An inlined rule must stay individually parseable (parse start=...).
        grammar = PASS_SENSITIVE_GRAMMARS["inline-chain"]
        compiled = compile_grammar(grammar)
        result = compiled.parse_nonterminal(b"ab\x01\x00", "Hdr", 0, 4)
        assert result is not FAIL
        assert result["n"] == 1

    def test_inliner_covers_array_and_switch_sites(self):
        # The extended inliner expands single-use rules referenced as array
        # elements and as switch-case targets, not only plain nonterminals.
        compiled = compile_grammar(PASS_SENSITIVE_GRAMMARS["inline-array-switch"])
        assert {"Elem", "CaseA", "CaseB"} <= compiled.inlined_rules
        baseline = compile_grammar(
            PASS_SENSITIVE_GRAMMARS["inline-array-switch"],
            optimizations=Optimizations(inline_single_use=False),
        )
        assert baseline.inlined_rules == frozenset()

    def test_dispatch_tables_reported_and_emitted(self):
        compiled = compile_grammar(PASS_SENSITIVE_GRAMMARS["dispatch-choice"])
        assert "Items" in compiled.dispatched_rules
        assert "_fbt_r1_Items" in compiled.source  # the 256-entry tuple table
        off = compile_grammar(
            PASS_SENSITIVE_GRAMMARS["dispatch-choice"],
            optimizations=Optimizations(first_byte_dispatch=False),
        )
        assert off.dispatched_rules == frozenset()
        assert "_fbt_" not in off.source
