"""Resource budgets (ParseLimits) and the structured error taxonomy.

Unit coverage for the robustness layer:

* :class:`~repro.core.limits.ParseLimits` — defaults, ``unlimited()``,
  the ``active``/``fuel`` helpers;
* budget enforcement per engine: interpreter depth/steps/memo/tree-node
  budgets, the compiled engines' shared fuel cell (compiled *out* under
  ``unlimited()``), the streaming buffer cap, AOT ``set_limits``;
* the taxonomy classes and their carried context (offset, rule stack,
  violated interval), ``render_explain``, and the CLI ``--explain-error``
  path;
* ``RecursionError``/``MemoryError`` wrapping at public entry points.

Cross-engine *agreement* on hostile inputs lives in
``test_hostile_corpus.py``; this file checks the mechanisms themselves.
"""

from __future__ import annotations

import pytest

from repro import (
    BoundsViolation,
    GuardRejected,
    LimitExceeded,
    ParseFailure,
    ParseLimits,
    Parser,
    TruncatedInput,
    compile_grammar,
    render_explain,
)
from repro.core.limits import DEFAULT_LIMITS
from repro.formats import toy
from repro.samples.dns import build_dns_response
from repro.formats.dns import GRAMMAR as DNS_GRAMMAR


# ---------------------------------------------------------------------------
# ParseLimits itself
# ---------------------------------------------------------------------------


class TestParseLimits:
    def test_defaults_are_finite_and_active(self):
        limits = ParseLimits()
        assert limits.active
        assert limits.max_depth == 10_000
        assert limits.max_steps == 50_000_000
        assert limits.max_buffer_bytes == 64 * 1024 * 1024
        assert limits.fuel() == limits.max_steps

    def test_unlimited_is_inactive(self):
        limits = ParseLimits.unlimited()
        assert not limits.active
        assert limits.max_steps is None
        assert limits.fuel() == float("inf")
        assert limits.max_wall_ms is None
        assert limits.deadline() == float("inf")

    def test_wall_budget_off_by_default_but_activates(self):
        assert ParseLimits().max_wall_ms is None
        wall_only = ParseLimits(
            max_depth=None,
            max_steps=None,
            max_tree_nodes=None,
            max_memo_entries=None,
            max_buffer_bytes=None,
            max_wall_ms=50,
        )
        assert wall_only.active
        assert wall_only.deadline() != float("inf")

    def test_default_limits_singleton_used_by_parser(self):
        assert Parser(toy.FIGURE_1).limits is DEFAULT_LIMITS

    def test_frozen(self):
        with pytest.raises(Exception):
            ParseLimits().max_steps = 1


# ---------------------------------------------------------------------------
# Budget enforcement
# ---------------------------------------------------------------------------


class TestInterpreterBudgets:
    def _parser(self, **kwargs):
        return Parser(
            toy.FIGURE_3, backend="interpreted", limits=ParseLimits(**kwargs)
        )

    def test_max_steps_trips(self):
        parser = self._parser(max_steps=3)
        with pytest.raises(LimitExceeded) as info:
            parser.parse(b"1" * 64, "Int")
        assert info.value.limit == "max_steps"
        assert info.value.offset is None
        assert info.value.rule_stack  # carries the active rules at abort

    def test_max_depth_trips(self):
        parser = self._parser(max_depth=5)
        with pytest.raises(LimitExceeded) as info:
            parser.parse(b"1" * 64, "Int")
        assert info.value.limit == "max_depth"

    def test_max_tree_nodes_trips(self):
        parser = self._parser(max_tree_nodes=2)
        with pytest.raises(LimitExceeded) as info:
            parser.parse(b"1" * 64, "Int")
        assert info.value.limit == "max_tree_nodes"

    def test_max_memo_entries_trips(self):
        parser = self._parser(max_memo_entries=1)
        with pytest.raises(LimitExceeded) as info:
            parser.parse(b"1" * 64, "Int")
        assert info.value.limit == "max_memo_entries"

    def test_generous_budgets_leave_parses_alone(self):
        parser = self._parser()
        tree = parser.parse(b"101", "Int")
        assert tree["val"] == 0b101


class TestCompiledBudgets:
    def test_fuel_cell_trips(self):
        parser = Parser(toy.FIGURE_3, limits=ParseLimits(max_steps=3))
        assert parser.backend == "compiled"
        with pytest.raises(LimitExceeded) as info:
            parser.parse(b"1" * 64, "Int")
        assert info.value.limit == "max_steps"

    def test_unlimited_compiles_the_check_out(self):
        limited = compile_grammar(toy.FIGURE_3)
        unlimited = compile_grammar(toy.FIGURE_3, limits=ParseLimits.unlimited())
        assert limited.fuel_slot is not None
        assert "_limit_refill(_c)" in limited.source
        assert unlimited.fuel_slot is None
        assert "_limit_refill(_c)" not in unlimited.source

    def test_fresh_fuel_per_parse(self):
        parser = Parser(toy.FIGURE_3, limits=ParseLimits(max_steps=500))
        for _ in range(5):  # budget must not accumulate across parses
            assert parser.parse(b"101", "Int")["val"] == 0b101


#: Recursion + a sleeping blackbox: the blackbox burns the wall budget up
#: front, then the recursive spine charges fuel, so the first amortized
#: refill (≤ 256 charges later) observes the expired deadline on every
#: engine — deterministic regardless of machine speed.
_WALL_GRAMMAR = """
blackbox Doze ;
S -> Doze[0, 0] R[0, EOI] ;
R -> U8 R[U8.end, EOI] / "" ;
"""


def _doze(data):
    import time

    time.sleep(0.05)
    return {}


class TestWallClockBudget:
    def _parser(self, backend, **kwargs):
        return Parser(
            _WALL_GRAMMAR,
            blackboxes={"Doze": _doze},
            backend=backend,
            limits=ParseLimits(**kwargs),
        )

    @pytest.mark.parametrize("backend", ["compiled", "interpreted", "tablevm"])
    def test_wall_trips_on_every_engine(self, backend):
        parser = self._parser(backend, max_wall_ms=10)
        with pytest.raises(LimitExceeded) as info:
            parser.parse(bytes(2000))
        assert info.value.limit == "wall"

    @pytest.mark.parametrize("backend", ["compiled", "interpreted", "tablevm"])
    def test_generous_wall_budget_leaves_parses_alone(self, backend):
        parser = self._parser(backend, max_wall_ms=60_000)
        assert parser.parse(bytes(64)) is not None

    def test_wall_only_limits_still_allocate_the_fuel_cell(self):
        # max_steps=None normally compiles the cell out; a wall budget
        # alone must keep it (with infinite step fuel) so refills happen.
        parser = self._parser("compiled", max_steps=None, max_wall_ms=10)
        with pytest.raises(LimitExceeded) as info:
            parser.parse(bytes(2000))
        assert info.value.limit == "wall"

    def test_no_wall_budget_means_no_deadline_in_cell(self):
        compiled = compile_grammar(toy.FIGURE_3)
        state = compiled.new_state()
        cell = state[compiled.fuel_slot]
        assert len(cell) == 3 and cell[2] is None

    def test_aot_module_wall_budget(self):
        module = compile_grammar(_WALL_GRAMMAR).load_module("_limits_aot_wall")
        module.register_blackbox("Doze", _doze)
        assert module.parse(bytes(64)) is not None
        module.set_limits(None, max_wall_ms=10)
        with pytest.raises(module.LimitExceeded):
            module.parse(bytes(2000))
        module.set_limits(None, max_wall_ms=None)
        assert module.parse(bytes(64)) is not None


class TestStreamingBudgets:
    def test_buffer_cap_trips_on_feed(self):
        # compact=False retains every byte, so the cap must fire; with
        # compaction on, decided prefixes are discarded and the same cap
        # rides the (bounded) high-water mark instead.
        parser = Parser(DNS_GRAMMAR, limits=ParseLimits(max_buffer_bytes=16))
        session = parser.stream(compact=False)
        with pytest.raises(LimitExceeded) as info:
            for _ in range(4):
                session.feed(b"\x00" * 8)
        assert info.value.limit == "max_buffer_bytes"

    def test_default_cap_does_not_disturb_streaming(self):
        parser = Parser(DNS_GRAMMAR)
        data = build_dns_response(answer_count=2, additional_count=1)
        assert parser.parse_stream([data[:7], data[7:]]) == parser.parse(data)


class TestAotBudgets:
    def test_set_limits_round_trip(self):
        module = compile_grammar(toy.FIGURE_3).load_module("_limits_aot_fig3")
        assert module.parse(b"101", "Int")["val"] == 0b101
        module.set_limits(2)
        with pytest.raises(module.LimitExceeded):
            module.parse(b"1" * 64, "Int")
        module.set_limits(None)
        assert module.parse(b"101", "Int")["val"] == 0b101

    def test_emitted_module_carries_budget_and_grammar(self):
        source = compile_grammar(toy.FIGURE_2).to_source()
        assert "_MAX_STEPS = 50000000" in source
        assert "GRAMMAR_SOURCE = " in source
        assert "def set_limits(" in source


# ---------------------------------------------------------------------------
# The taxonomy and its carried context
# ---------------------------------------------------------------------------


class TestTaxonomy:
    def test_truncated_input(self):
        parser = Parser(toy.FIGURE_1)
        with pytest.raises(TruncatedInput) as info:
            parser.parse(b"a")  # "aa" needs a byte past the end
        assert info.value.offset == 1
        assert info.value.rule_stack[0] == "S"

    def test_bounds_violation_carries_interval(self):
        # H claims the data lives at [255, 259) of a 12-byte input.
        parser = Parser(toy.FIGURE_2)
        data = bytes([255, 0, 0, 0, 4, 0, 0, 0]) + b"zzzz"
        with pytest.raises(TruncatedInput) as truncated:
            parser.parse(data)
        assert truncated.value.offset == len(data)
        # An *inverted* interval (right < left) is a bounds violation.
        inverted = Parser("S -> U8[0,1] {n = U8.val} A[4, n] ; A -> Raw[0, EOI] ;")
        with pytest.raises(BoundsViolation) as info:
            inverted.parse(bytes([2, 0, 0, 0, 0, 0]))
        assert info.value.interval is not None

    def test_guard_rejected_at_first_differing_byte(self):
        parser = Parser(toy.FIGURE_1)
        with pytest.raises(GuardRejected) as info:
            parser.parse(b"aaxxxbq")  # 'q' breaks the trailing "bb"
        assert info.value.offset == 6

    def test_guard_expression_rejection(self):
        parser = Parser(toy.FIGURE_6)
        data = bytes([1, 0, 0, 0]) + bytes([99, 0, 0, 0])  # a0 = 99 > 10
        with pytest.raises(GuardRejected):
            parser.parse(data)

    def test_limit_exceeded_is_a_parse_failure(self):
        assert issubclass(LimitExceeded, ParseFailure)
        assert issubclass(TruncatedInput, ParseFailure)
        assert issubclass(BoundsViolation, ParseFailure)
        assert issubclass(GuardRejected, ParseFailure)


class TestRecursionWrapping:
    def test_interpreter_wraps_deep_recursion(self):
        # Below the Python frame limit but above a tiny configured depth.
        parser = Parser(
            toy.FIGURE_3, backend="interpreted", limits=ParseLimits(max_depth=10)
        )
        with pytest.raises(LimitExceeded) as info:
            parser.parse(b"1" * 1000, "Int")
        assert info.value.limit in ("max_depth", "recursion")


# ---------------------------------------------------------------------------
# render_explain and the CLI
# ---------------------------------------------------------------------------


class TestRenderExplain:
    def test_full_rendering(self):
        parser = Parser(toy.FIGURE_1)
        data = b"aaxxxbq"
        with pytest.raises(GuardRejected) as info:
            parser.parse(data)
        text = render_explain(info.value, data)
        assert "GuardRejected" in text
        assert "offset:   6" in text
        assert "[71]" in text  # the offending 'q', bracketed in hex context
        assert "rules:" in text

    def test_limit_rendering_has_no_offset(self):
        error = LimitExceeded("budget gone", limit="max_steps", rule_stack=("S",))
        text = render_explain(error)
        assert "limit:    max_steps" in text
        assert "offset" not in text

    def test_long_rule_stack_is_trimmed(self):
        error = ParseFailure("nope", offset=0, rule_stack=tuple(f"R{i}" for i in range(40)))
        text = render_explain(error, b"x")
        assert "more" in text and "R39" in text

    def test_cli_explain_error(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.dns"
        bad.write_bytes(build_dns_response(answer_count=2)[:-4])
        code = main(["parse", "--format", "dns", "--explain-error", str(bad)])
        captured = capsys.readouterr()
        assert code == 10  # EXIT_TRUNCATED: the class is also the exit code
        assert "TruncatedInput" in captured.err
        assert "offset:" in captured.err

    def test_cli_explain_error_stream(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.dns"
        bad.write_bytes(build_dns_response(answer_count=2)[:-4])
        code = main(
            ["parse", "--format", "dns", "--stream", "--chunk-size", "7",
             "--explain-error", str(bad)]
        )
        captured = capsys.readouterr()
        # --explain-error streaming retains the full buffer, so the failure
        # classifies and the class exit code (EXIT_TRUNCATED) applies.
        assert code == 10
        assert "TruncatedInput" in captured.err
