"""Unit tests for spans, parse trees and evaluation environments."""

import pytest

from repro.core.env import EvalContext, initial_env, upd_start_end, upd_start_end_in_place
from repro.core.errors import EvaluationError
from repro.core.parsetree import ArrayNode, Leaf, Node, tree_equal_modulo_specials
from repro.core.span import Span


class TestSpan:
    def test_whole_covers_buffer(self):
        span = Span.whole(b"hello")
        assert (span.lo, span.hi, len(span)) == (0, 5, 5)

    def test_sub_is_relative(self):
        span = Span(b"abcdefgh", 2, 8)
        sub = span.sub(1, 4)
        assert (sub.lo, sub.hi) == (3, 6)
        assert sub.bytes() == b"def"

    def test_sub_validates_bounds(self):
        span = Span(b"abcdef", 0, 4)
        with pytest.raises(ValueError):
            span.sub(2, 5)
        with pytest.raises(ValueError):
            span.sub(-1, 2)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Span(b"abc", 2, 1)
        with pytest.raises(ValueError):
            Span(b"abc", 0, 4)

    def test_peek_and_byte_at(self):
        span = Span(b"abcdef", 1, 5)
        assert span.peek(0, 2) == b"bc"
        assert span.byte_at(3) == ord("e")
        with pytest.raises(IndexError):
            span.byte_at(4)

    def test_starts_with(self):
        span = Span(b"xxmagicyy", 2, 9)
        assert span.starts_with(b"magic")
        assert span.starts_with(b"agi", at=1)
        assert not span.starts_with(b"magicyyz")


class TestParseTree:
    def build(self):
        leaf = Leaf(b"PK")
        child_a = Node("A", {"EOI": 2, "start": 0, "end": 2, "val": 7}, [leaf])
        child_b = Node("A", {"EOI": 2, "start": 2, "end": 4, "val": 9}, [Leaf(b"xy")])
        array = ArrayNode("A", [child_a, child_b])
        root = Node("S", {"EOI": 4, "start": 0, "end": 4, "count": 2}, [array, child_a])
        return root, array, child_a, child_b

    def test_attr_access(self):
        root, *_ = self.build()
        assert root["count"] == 2
        assert root.attr("missing", 42) == 42
        with pytest.raises(KeyError):
            root["missing"]

    def test_attrs_strips_specials(self):
        root, *_ = self.build()
        assert root.attrs == {"count": 2}

    def test_child_and_children_named(self):
        root, _array, child_a, _child_b = self.build()
        assert root.child("A") is child_a
        assert root.child("B") is None
        assert root.children_named("A") == [child_a]

    def test_array_lookup(self):
        root, array, *_ = self.build()
        assert root.array("A") is array
        assert root.array("Z") is None
        assert len(array) == 2
        assert list(array)[1]["val"] == 9

    def test_find_all_walks_recursively(self):
        root, *_ = self.build()
        assert len(root.find_all("A")) == 3  # two array elements + direct child

    def test_walk_and_size(self):
        root, *_ = self.build()
        assert root.size() == 8

    def test_equality_and_pretty(self):
        root, *_ = self.build()
        other, *_ = self.build()
        assert root == other
        assert "S" in root.pretty()

    def test_tree_equal_modulo_specials(self):
        left = Node("S", {"EOI": 4, "start": 0, "end": 4, "x": 1}, [Leaf(b"ab")])
        right = Node("S", {"EOI": 9, "start": 3, "end": 7, "x": 1}, [Leaf(b"ab")])
        different = Node("S", {"EOI": 4, "start": 0, "end": 4, "x": 2}, [Leaf(b"ab")])
        assert tree_equal_modulo_specials(left, right)
        assert not tree_equal_modulo_specials(left, different)


class TestEnvironment:
    def test_initial_env(self):
        assert initial_env(10) == {"EOI": 10, "start": 10, "end": 0}

    def test_upd_start_end_widens(self):
        env = initial_env(10)
        updated = upd_start_end(env, 3, 5, True)
        assert (updated["start"], updated["end"]) == (3, 5)
        assert (env["start"], env["end"]) == (10, 0)  # original untouched

    def test_upd_start_end_untouched(self):
        env = initial_env(10)
        assert upd_start_end(env, 3, 5, False) is env

    def test_upd_start_end_in_place_matches_functional(self):
        cases = [(3, 5, True), (0, 0, False), (7, 9, True), (1, 2, True)]
        functional = initial_env(10)
        destructive = initial_env(10)
        for left, right, touched in cases:
            functional = upd_start_end(functional, left, right, touched)
            upd_start_end_in_place(destructive, left, right, touched)
        assert functional == destructive

    def test_context_lookup_and_binding(self):
        ctx = EvalContext(initial_env(4))
        ctx.bind("x", 3)
        assert ctx.lookup_name("x") == 3
        with pytest.raises(EvaluationError):
            ctx.lookup_name("y")

    def test_context_array_length(self):
        ctx = EvalContext(initial_env(4))
        ctx.arrays["A"] = [Node("A", {"val": 1}, [])]
        assert ctx.array_length("A") == 1
        with pytest.raises(EvaluationError):
            ctx.array_length("B")

    def test_child_context_sees_outer_bindings(self):
        outer = EvalContext(initial_env(4))
        outer.bind("x", 1)
        outer.record_node(Node("H", {"ofs": 9}, []))
        inner = outer.child()
        assert inner.lookup_name("x") == 1
        assert inner.lookup_dot("H", "ofs") == 9
