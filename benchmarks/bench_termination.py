"""E12 — termination checking cost (section 7 text).

The paper reports that every evaluated grammar passes termination checking
in under 20 ms, with no more than five elementary cycles per grammar.  This
benchmark times :func:`repro.core.termination.check_termination` per format
and asserts the cycle counts and verdicts.
"""

import pytest

from repro.core.termination import check_termination
from repro.formats import registry


@pytest.mark.parametrize("fmt", sorted(registry))
def test_termination_checking(benchmark, fmt):
    grammar_text = registry[fmt].grammar_text
    benchmark.group = "termination-checking"
    report = benchmark(check_termination, grammar_text)
    benchmark.extra_info["elementary_cycles"] = report.cycle_count

    assert report.ok, report.failing_cycles()
    assert report.cycle_count <= 5


def test_termination_rejects_seek_loop(benchmark):
    from repro.formats import toy

    benchmark.group = "termination-checking"
    report = benchmark(check_termination, toy.NON_TERMINATING_SEEK)
    assert not report.ok
