"""A Nail-like baseline: combinator parsers with arena allocation.

Nail (Bangert & Zeldovich, OSDI 2014) generates C parsers that build their
internal representation inside arena allocators.  This package reproduces
that execution model in Python for the two network formats the paper
compares against Nail (IPv4+UDP and DNS, Figure 13e/f and Figure 14):
parsers read fields through a small cursor object and every parsed structure
and copied byte range is allocated inside an :class:`~repro.baselines.nail_like.arena.Arena`
made of fixed-size blocks, so heap consumption can be measured the same way
the paper measures Nail's.
"""

from .arena import Arena
from .dns import parse_dns
from .ipv4 import parse_ipv4_udp

__all__ = ["Arena", "parse_dns", "parse_ipv4_udp"]
