"""Synthetic PDF files matching the subset handled by the PDF grammar.

The generated documents are classic single-revision PDFs: a header, a
configurable number of indirect objects, a cross-reference table with
20-byte entries, a trailer dictionary and the ``startxref`` pointer ending
in ``%%EOF`` (no trailing newline, no incremental updates, no
linearization — the same restrictions the paper states for its PDF case
study).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


def build_pdf(object_count: int = 4, body_padding: int = 32, version: int = 4) -> Tuple[bytes, List[int]]:
    """Build a synthetic PDF.

    Returns the document bytes and the list of object byte offsets (useful
    for tests that cross-check the xref table).
    """
    if object_count < 1:
        raise ValueError("a PDF needs at least one object")
    out = bytearray()
    out.extend(f"%PDF-1.{version}\n".encode("ascii"))

    offsets: List[int] = []
    for number in range(1, object_count + 1):
        offsets.append(len(out))
        filler = "x" * body_padding
        body = (
            f"{number} 0 obj\n"
            f"<< /Type /Synthetic /Index {number} /Pad ({filler}) >>\n"
            f"endobj\n"
        )
        out.extend(body.encode("ascii"))

    xref_offset = len(out)
    entry_count = object_count + 1
    out.extend(f"xref\n0 {entry_count}\n".encode("ascii"))
    out.extend(b"0000000000 65535 f \n")
    for offset in offsets:
        out.extend(f"{offset:010d} 00000 n \n".encode("ascii"))

    out.extend(
        f"trailer\n<< /Size {entry_count} /Root 1 0 R >>\n".encode("ascii")
    )
    out.extend(f"startxref\n{xref_offset}\n%%EOF".encode("ascii"))
    return bytes(out), offsets


def build_pdf_bytes(object_count: int = 4, body_padding: int = 32, version: int = 4) -> bytes:
    """Like :func:`build_pdf` but returns only the document bytes."""
    return build_pdf(object_count, body_padding, version)[0]


def build_pdf_series(object_counts: Optional[List[int]] = None, **kwargs) -> List[bytes]:
    """Build a series of PDFs with growing object counts."""
    object_counts = object_counts or [1, 4, 16, 64]
    return [build_pdf_bytes(object_count=count, **kwargs) for count in object_counts]
