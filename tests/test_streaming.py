"""Tests for the streaming execution subsystem (§8 stream parsers).

Covers the chunk-boundary behaviour the driver must survive (1-byte chunks,
chunks splitting a terminal, empty chunks, empty final chunk), the
feed()/finish() session API, buffer compaction, and — most importantly —
the differential guarantee: ``parse_stream`` produces trees *identical*
(``==``, special attributes included) to ``parse`` on every streamable
bundled grammar, for both execution backends and many chunkings.
"""

import pytest

from repro import (
    NeedMoreInput,
    NotStreamableError,
    ParseFailure,
    Parser,
)
from repro.core.streaming import EOIProxy, StreamBuffer
from repro.formats import registry
from repro.samples import (
    build_dns_query,
    build_dns_response,
    build_ipv4_udp_packet,
)

from streaming_helpers import chunked

BACKENDS = ("compiled", "interpreted")


#: Sample inputs for every bundled format the §8 analysis accepts.
STREAMABLE_SAMPLES = {
    "dns": build_dns_response(answer_count=3, additional_count=2),
    "ipv4": build_ipv4_udp_packet(payload_size=200),
}


def test_streamable_formats_are_the_network_formats():
    # The differential suite below must not silently shrink: the two
    # network formats of the paper's evaluation are exactly the bundled
    # grammars the (fixed) analysis accepts.
    streamable = {name for name, spec in registry.items() if spec.streamable}
    assert streamable == set(STREAMABLE_SAMPLES)


class TestChunkBoundaries:
    GRAMMAR = 'S -> "MAGIC" U32LE {n = U32LE.val} Raw[n] "END" ;'
    DATA = b"MAGIC" + (7).to_bytes(4, "little") + b"payload" + b"END"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_byte_chunks(self, backend):
        parser = Parser(self.GRAMMAR, backend=backend)
        assert parser.parse_stream(chunked(self.DATA, 1)) == parser.parse(self.DATA)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chunk_splitting_a_terminal(self, backend):
        parser = Parser(self.GRAMMAR, backend=backend)
        # "MAGIC" arrives in three pieces; "END" in two.
        pieces = [b"MA", b"GI", b"C" + self.DATA[5:-3], b"E", b"ND"]
        assert b"".join(pieces) == self.DATA
        assert parser.parse_stream(pieces) == parser.parse(self.DATA)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_chunks_and_empty_final_chunk(self, backend):
        parser = Parser(self.GRAMMAR, backend=backend)
        pieces = [b"", self.DATA[:4], b"", self.DATA[4:], b""]
        assert parser.parse_stream(pieces) == parser.parse(self.DATA)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_chunk_and_no_chunks(self, backend):
        parser = Parser(self.GRAMMAR, backend=backend)
        assert parser.parse_stream([self.DATA]) == parser.parse(self.DATA)
        empty = Parser('S -> "" ;', backend=backend)
        assert empty.parse_stream([]) == empty.parse(b"")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_eoi_anchored_tail(self, backend):
        # EOI - k stays accepted by the analysis; at runtime the tail read
        # suspends until finish() and then resolves against the real length.
        grammar = 'S -> A[0, 2] B[EOI - 2, EOI] ; A -> "aa" ; B -> "bb" ;'
        parser = Parser(grammar, backend=backend)
        assert parser.streamability_report().streamable
        data = b"aaxxxbb"
        for size in (1, 3, len(data)):
            assert parser.parse_stream(chunked(data, size)) == parser.parse(data)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_length_tail_builtins(self, backend):
        # Raw / Bytes over an EOI-bounded window: their len/val attributes
        # depend on the total length and must be resolved in the final tree.
        for grammar, data in (
            ('S -> "x" Raw ;', b"x" + b"tail" * 9),
            ('S -> "hd" Bytes ;', b"hdPAYLOAD"),
        ):
            parser = Parser(grammar, backend=backend)
            batch = parser.parse(data)
            tree = parser.parse_stream(chunked(data, 1))
            assert tree == batch
            assert all(
                isinstance(value, int)
                for node in tree.walk()
                if hasattr(node, "env")
                for value in node.env.values()
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trailing_unparsed_bytes(self, backend):
        # parse() does not require consuming the whole input; neither does
        # parse_stream, and EOI still reflects the *total* length.
        parser = Parser('S -> "ab"[0, 2] ;', backend=backend)
        data = b"ab" + b"junk"
        tree = parser.parse_stream(chunked(data, 2))
        assert tree == parser.parse(data)
        assert tree.env["EOI"] == len(data)


class TestDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fmt", sorted(STREAMABLE_SAMPLES))
    @pytest.mark.parametrize("chunk_size", (1, 7, 64, 1 << 20))
    def test_parse_stream_equals_parse(self, fmt, backend, chunk_size):
        data = STREAMABLE_SAMPLES[fmt]
        parser = registry[fmt].build_parser(backend=backend)
        assert parser.parse_stream(chunked(data, chunk_size)) == parser.parse(data)

    @pytest.mark.parametrize("fmt", sorted(STREAMABLE_SAMPLES))
    def test_backends_agree_while_streaming(self, fmt):
        data = STREAMABLE_SAMPLES[fmt]
        trees = [
            registry[fmt].build_parser(backend=backend).parse_stream(chunked(data, 13))
            for backend in BACKENDS
        ]
        assert trees[0] == trees[1]

    def test_dns_query_and_response_shapes(self):
        from repro.formats import dns

        for data in (build_dns_query(), build_dns_response(answer_count=5)):
            parser = registry["dns"].build_parser()
            tree = parser.parse_stream(chunked(data, 5))
            assert dns.summarize(tree) == dns.summarize(parser.parse(data))


class TestSession:
    def test_feed_reports_completion(self):
        parser = Parser('S -> "ab"[0, 2] ;')
        session = parser.stream()
        assert session.feed(b"a") is False
        assert session.feed(b"b") is True
        assert session.done
        assert session.finish().env["end"] == 2

    def test_finish_is_idempotent(self):
        parser = registry["dns"].build_parser()
        data = build_dns_query()
        session = parser.stream()
        for chunk in chunked(data, 3):
            session.feed(chunk)
        assert session.finish() is session.finish()

    def test_feed_after_finish_rejected(self):
        parser = Parser('S -> "" ;')
        session = parser.stream()
        session.finish()
        with pytest.raises(Exception):
            session.feed(b"x")

    def test_definitive_failure_is_detected_early(self):
        parser = Parser('S -> "MAGIC" Raw ;')
        session = parser.stream()
        # Five wrong bytes are enough to reject every extension of the
        # stream: no biased-choice decision depended on unseen input.
        assert session.feed(b"WRONG") is True
        assert session.done
        session.feed(b"more bytes, still rejected")
        with pytest.raises(ParseFailure):
            session.finish()

    def test_stream_of_non_streamable_grammar_raises(self):
        parser = registry["zip"].build_parser()
        with pytest.raises(NotStreamableError) as excinfo:
            parser.stream()
        assert excinfo.value.report is not None
        assert not excinfo.value.report.streamable

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_stream_of_random_access_grammar(self, backend):
        # Outside the streamable class, force=True degrades to buffering
        # (EOI-anchored reads wait for finish) but stays correct — ZIP's
        # directory walk and zlib blackboxes included.
        from repro.samples import build_zip

        data = build_zip(member_count=2, member_size=128)
        parser = registry["zip"].build_parser(backend=backend)
        tree = parser.parse_stream(
            chunked(data, 64), force=True, compact=False
        )
        assert tree == parser.parse(data)

    def test_probe_reentry_attempts_once_per_chunk(self):
        # The driver probes after every suspension rather than waiting for
        # the NeedMoreInput 'needed' hint: each feed() while suspended
        # re-enters the parse exactly once, keeping the compaction
        # watermark fresh (one chunk + largest in-flight term, see
        # TestCompaction).  Feeding byte by byte therefore attempts once
        # per byte — bounded by the chunk count, never more.
        parser = registry["ipv4"].build_parser()
        data = build_ipv4_udp_packet(payload_size=512)
        session = parser.stream()
        for chunk in chunked(data, 1):
            session.feed(chunk)
        session.finish()
        assert session.attempts <= len(data) + 1
        assert session.attempts > len(data) // 2  # probes actually happen

    def test_parser_usable_for_batch_after_streaming(self):
        parser = registry["dns"].build_parser()
        data = build_dns_response(answer_count=2)
        before = parser.parse(data)
        streamed = parser.parse_stream(chunked(data, 9))
        after = parser.parse(data)
        assert before == streamed == after


class TestCompaction:
    def test_peak_buffer_tracks_suspended_term_not_file_size(self):
        # A DNS message with many records completes record by record; the
        # consumed prefix is discarded, so the peak buffered byte count is
        # bounded by one chunk + the largest suspended term, not the
        # message size.  Probe re-entry after every chunk keeps the
        # watermark fresh, so the floor is one chunk (not two) plus the
        # largest in-flight record (~48 bytes here).
        data = build_dns_response(answer_count=40, additional_count=40)
        parser = registry["dns"].build_parser()
        session = parser.stream()
        chunk_size = 32
        for chunk in chunked(data, chunk_size):
            session.feed(chunk)
        tree = session.finish()
        assert tree == parser.parse(data)
        assert session.max_buffered <= chunk_size + 64, session.max_buffered
        assert session.buffer.max_buffered >= 32  # sanity: it did buffer

    def test_eoi_anchored_tail_does_not_defeat_compaction(self):
        # A forward record spine followed by an EOI-anchored trailer: the
        # trailer read pins only its (moving) lower bound while suspended,
        # so the consumed records are still shed and peak buffering stays
        # bounded by chunk size + largest term + the trailer, not the file.
        # Note the DNS-style shape: the count lives in a sub-*rule* H, not
        # a bare builtin in the start alternative.  Only rule results are
        # memoized, so an inlined builtin/terminal directly in the start
        # rule would be re-read on every re-entry and pin the buffer at
        # its offset (see the StreamingParse docstring).
        grammar = (
            "S -> H for i = 0 to H.n do E[i = 0 ? H.end : E(i - 1).end, EOI] "
            'T[EOI - 2, EOI] ; H -> U8 {n = U8.val} ; E -> U32LE ; T -> "zz" ;'
        )
        count = 120
        data = bytes([count]) + b"\x01\x02\x03\x04" * count + b"zz"
        for backend in BACKENDS:
            parser = Parser(grammar, backend=backend)
            assert parser.streamability_report().streamable
            session = parser.stream()
            for chunk in chunked(data, 8):
                session.feed(chunk)
            assert session.finish() == parser.parse(data)
            assert session.max_buffered < 100, session.max_buffered

    def test_compaction_disabled_keeps_everything(self):
        data = build_dns_response(answer_count=10)
        parser = registry["dns"].build_parser()
        session = parser.stream(compact=False)
        for chunk in chunked(data, 16):
            session.feed(chunk)
        assert session.finish() == parser.parse(data)
        assert session.max_buffered == len(data)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_analysis_evasion_is_caught_at_runtime(self, backend):
        # Known gap, pinned deliberately: the analysis classifies endpoint
        # shapes, not symbolic reach, so indirecting the constant interval
        # through an attribute slips a revisiting grammar past it.  The
        # contract is then: never a wrong tree — a compacted stream stops
        # with the descriptive watermark error, and compact=False restores
        # full equivalence with batch parsing.
        grammar = (
            "S -> {z = 4} H[0, z] "
            "for i = 0 to H.n do E[i = 0 ? H.end : E(i - 1).end, EOI] "
            "C[0, 4] ; H -> U32LE {n = U32LE.val} ; E -> U32LE ; C -> U32LE ;"
        )
        count = 20
        data = count.to_bytes(4, "little") + b"\x05\x06\x07\x08" * count
        parser = Parser(grammar, backend=backend)
        assert parser.streamability_report().streamable  # the gap
        batch = parser.parse(data)
        assert parser.parse_stream([data]) == batch  # one chunk: no discard
        session = parser.stream()
        with pytest.raises(Exception, match="compact"):
            for chunk in chunked(data, 8):
                session.feed(chunk)
            session.finish()
        assert parser.parse_stream(chunked(data, 8), compact=False) == batch

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backwards_constant_read_detected(self, backend):
        # A constant left endpoint below an offset an earlier term already
        # reached jumps backwards; the analysis flags the sequence, so
        # streaming it requires force=True.  Under force the buffer still
        # guards the compaction policy at runtime: once bytes below the
        # watermark are discarded (after the suspension inside A), the
        # final term's jump back to offset 0 raises a clear error pointing
        # at compact=False...
        grammar = 'S -> U32LE[4, 8] A[8, EOI] "x"[0, 1] ; A -> "zz" ;'
        data = b"x___\x01\x00\x00\x00zz"
        parser = Parser(grammar, backend=backend)
        assert not parser.streamability_report().streamable
        session = parser.stream(compact=True, force=True)
        with pytest.raises(Exception, match="compact"):
            for chunk in chunked(data, 4):
                session.feed(chunk)
            session.finish()
        # ... and compact=False parses it fine, whatever the chunking.
        for size in (1, 4, len(data)):
            assert parser.parse_stream(
                chunked(data, size), force=True, compact=False
            ) == parser.parse(data)


class TestStreamPrimitives:
    """Unit coverage for StreamBuffer / EOIProxy themselves."""

    def test_buffer_matches_bytes_semantics_once_finished(self):
        buffer = StreamBuffer()
        buffer.feed(b"hello")
        buffer.finish()
        data = b"hello"
        assert buffer[1:4] == data[1:4]
        assert buffer[3:100] == data[3:100]  # clipped, like bytes
        assert buffer[7:9] == data[7:9] == b""
        assert buffer[2] == data[2]
        assert len(buffer) == len(data)
        with pytest.raises(IndexError):
            buffer[5]

    def test_buffer_suspends_on_unavailable_reads(self):
        buffer = StreamBuffer()
        buffer.feed(b"ab")
        with pytest.raises(NeedMoreInput) as excinfo:
            buffer[0:4]
        assert excinfo.value.needed == 4
        with pytest.raises(NeedMoreInput):
            len(buffer)
        assert buffer[0:2] == b"ab"

    def test_buffer_compaction_keeps_absolute_offsets(self):
        buffer = StreamBuffer()
        buffer.feed(b"0123456789")
        buffer.discard_below(4)
        assert buffer[4:8] == b"4567"
        assert buffer.buffered == 6
        with pytest.raises(Exception, match="compact"):
            buffer[0:2]

    def test_proxy_decidable_comparisons(self):
        buffer = StreamBuffer()
        buffer.feed(b"0123")
        end = buffer.end  # total + 0, with total >= 4
        assert (end >= 4) is True
        assert (end > 3) is True
        assert (end < 2) is False
        assert (end == 1) is False
        assert ((end - 2) >= 2) is True
        assert (end - buffer.end) == 0
        with pytest.raises(NeedMoreInput):
            end > 10  # might become true later: undecidable
        with pytest.raises(NeedMoreInput):
            int(end)
        buffer.finish()
        assert int(end) == 4
        assert (end > 10) is False
        assert end - 1 == 3

    def test_proxy_memo_key_stability(self):
        buffer = StreamBuffer()
        buffer.feed(b"x")
        memo = {(0, buffer.end): "cached"}
        buffer.feed(b"more bytes")
        assert memo[(0, buffer.end)] == "cached"
        buffer.finish()
        assert memo[(0, buffer.end)] == "cached"
