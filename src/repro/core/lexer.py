"""Tokenizer for the IPG surface syntax.

The surface syntax follows the paper closely; the ASCII spellings of the
paper's notation are:

=====================  =====================================================
Paper                  Surface syntax
=====================  =====================================================
``A → alt1 / alt2``    ``A -> alt1 / alt2 ;``
``"aa"[0, 2]``         ``"aa"[0, 2]``
``{offset=Int.val}``   ``{offset = Int.val}``
``⟨e⟩`` (predicate)    ``guard(e)``
``for i=e1 to e2 do``  ``for i = e1 to e2 do``
``switch(...)``        ``switch(...)``
``∃ j . e1 ? e2 : e3`` ``exists j . e1 ? e2 : e3``
``where`` local rules  ``where { D -> ... ; }``
``∧`` / ``∨``          ``&&`` / ``||``
=====================  =====================================================

Comments start with ``//`` or ``#`` and run to the end of the line.
Terminal strings accept the escapes ``\\xNN``, ``\\n``, ``\\r``, ``\\t``,
``\\0``, ``\\\\`` and ``\\"`` and denote byte strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import GrammarSyntaxError

#: Multi-character punctuation, longest first so the lexer is greedy.
_PUNCT = (
    "->",
    "<<",
    ">>",
    "<=",
    ">=",
    "!=",
    "&&",
    "||",
    "[",
    "]",
    "{",
    "}",
    "(",
    ")",
    ",",
    ";",
    "/",
    ".",
    ":",
    "?",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "%",
    "&",
    "|",
)

KEYWORDS = frozenset(
    {"for", "to", "do", "where", "switch", "guard", "exists", "blackbox"}
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: str  # "ident", "keyword", "number", "string", "punct", "eof"
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Convert IPG source text into a list of :class:`Token` objects."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- public entry point ---------------------------------------------------
    def tokenize(self) -> List[Token]:
        tokens = list(self._iter_tokens())
        tokens.append(Token("eof", None, self.line, self.column))
        return tokens

    # -- internals ------------------------------------------------------------
    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                return
            char = self.text[self.pos]
            if char == '"':
                yield self._lex_string()
            elif char.isdigit():
                yield self._lex_number()
            elif char.isalpha() or char == "_":
                yield self._lex_ident()
            else:
                yield self._lex_punct()

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self._advance()
            elif char == "#" or self.text.startswith("//", self.pos):
                while self.pos < len(self.text) and self.text[self.pos] != "\n":
                    self._advance()
            else:
                return

    def _advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        self._advance()  # opening quote
        out = bytearray()
        while True:
            if self.pos >= len(self.text):
                raise GrammarSyntaxError("unterminated terminal string", line, column)
            char = self._advance()
            if char == '"':
                break
            if char == "\\":
                out.extend(self._lex_escape(line, column))
            else:
                code = ord(char)
                if code > 0xFF:
                    raise GrammarSyntaxError(
                        f"non-byte character {char!r} in terminal string", line, column
                    )
                out.append(code)
        return Token("string", bytes(out), line, column)

    def _lex_escape(self, line: int, column: int) -> bytes:
        if self.pos >= len(self.text):
            raise GrammarSyntaxError("unterminated escape sequence", line, column)
        char = self._advance()
        simple = {"n": b"\n", "t": b"\t", "r": b"\r", "0": b"\0", "\\": b"\\", '"': b'"'}
        if char in simple:
            return simple[char]
        if char == "x":
            if self.pos + 1 >= len(self.text):
                raise GrammarSyntaxError("truncated \\x escape", line, column)
            digits = self._advance() + self._advance()
            try:
                return bytes([int(digits, 16)])
            except ValueError as exc:
                raise GrammarSyntaxError(
                    f"invalid hex escape \\x{digits}", line, column
                ) from exc
        raise GrammarSyntaxError(f"unknown escape sequence \\{char}", line, column)

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        if self.text.startswith(("0x", "0X"), self.pos):
            self._advance()
            self._advance()
            while self.pos < len(self.text) and self.text[self.pos] in "0123456789abcdefABCDEF":
                self._advance()
            value = int(self.text[start : self.pos], 16)
        else:
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self._advance()
            value = int(self.text[start : self.pos])
        return Token("number", value, line, column)

    def _lex_ident(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self._advance()
        name = self.text[start : self.pos]
        kind = "keyword" if name in KEYWORDS else "ident"
        return Token(kind, name, line, column)

    def _lex_punct(self) -> Token:
        line, column = self.line, self.column
        for punct in _PUNCT:
            if self.text.startswith(punct, self.pos):
                for _ in punct:
                    self._advance()
                return Token("punct", punct, line, column)
        raise GrammarSyntaxError(
            f"unexpected character {self.text[self.pos]!r}", line, column
        )


def tokenize(text: str) -> List[Token]:
    """Tokenize IPG source text."""
    return Lexer(text).tokenize()
