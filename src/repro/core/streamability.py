"""Stream-parser analysis (section 8, future work, of the paper).

The paper sketches how stream parsers could be supported: *"we can first
have an analysis that determines if it is possible to generate a stream
parser from an IPG: within each production rule, it checks if the attribute
dependency is only from left to right."*  This module implements that
analysis.

An alternative is **streamable** when

1. no term references an attribute (or the parse result) of a term that
   appears *later* in the alternative as written — i.e. the dependency graph
   of section 3.2 needs no reordering, and
2. no interval endpoint moves the parsing position backwards relative to the
   previous positional term: every explicitly written left endpoint must be
   a forward reference (``0``, a constant, ``EOI``-relative offsets and
   ``X.end`` of an earlier term are fine; attributes holding arbitrary file
   offsets are not decidable statically and are reported as violations).

A grammar is streamable when every alternative of every (top-level and
local) rule is.  Directory-based formats such as ZIP and ELF fail this
analysis (their whole point is random access); the network formats
(IPv4+UDP, DNS) pass, which is exactly the class the paper's future-work
stream parsers target.  The position check is conservative: a parsed value
used as a *length* cannot be distinguished statically from one used as an
*offset*, so grammars like GIF (whose color-table sizes are computed from a
flags byte) are reported as non-streamable even though a streaming
implementation is possible.

The monotonicity side is conservative in the other direction too: it
classifies endpoint *shapes* (plus a constant-sequence floor), not the
symbolic reach of every term, so adversarially constructed grammars can
pass and still revisit consumed bytes.  That never yields a wrong parse —
the streaming buffer detects reads below its compaction watermark at
runtime (:class:`~repro.core.streaming.StreamingParse`) — it only means a
descriptive error instead of an up-front rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from .ast import (
    Alternative,
    Grammar,
    Rule,
    TermArray,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .attrcheck import dependency_edges
from .autocomplete import complete_grammar
from .expr import Dot, Expr, Name, Num
from .grammar_parser import parse_grammar


@dataclass
class StreamabilityViolation:
    """One reason an alternative cannot be parsed in streaming order."""

    rule: str
    alternative_index: int
    kind: str  # "backward-dependency" or "non-monotone-interval"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.rule} (alternative {self.alternative_index}): {self.kind}: {self.detail}"


@dataclass
class StreamabilityReport:
    """Result of analysing a grammar for stream parsing."""

    violations: List[StreamabilityViolation] = field(default_factory=list)

    @property
    def streamable(self) -> bool:
        return not self.violations

    def violating_rules(self) -> List[str]:
        return sorted({violation.rule for violation in self.violations})

    def summary(self) -> str:
        if self.streamable:
            return "streamable: every rule's dependencies flow left to right"
        rules = ", ".join(self.violating_rules())
        return (
            f"not streamable: {len(self.violations)} violation(s) in rules {rules}"
        )


#: Endpoint classification used by :func:`_is_forward_left_endpoint`:
#: ``"const"`` — a compile-time constant; ``"pos"`` — anchored at the
#: position of an already parsed term (``X.end``, ``X.start``, the
#: ``start``/``end`` specials); ``"eoi"`` — anchored at the end of input
#: (``EOI`` plus or minus a constant); ``None`` — not provably forward.
_KIND_CONST = "const"
_KIND_POS = "pos"
_KIND_EOI = "eoi"


def _endpoint_kind(expr: Optional[Expr], definitions: dict, depth: int = 0):
    """Classify a left endpoint; ``None`` means it may move backwards.

    A previous version of this analysis accepted any arithmetic whose
    operands were individually forward, which is unsound: ``X.end - 4``
    re-reads bytes *before* an already consumed position, and ``X.end / 2``
    or ``X.end * 0`` can shrink a position arbitrarily.  Positions are
    therefore only forward under addition (``p + q >= max(p, q)`` since
    positions are non-negative); subtraction, multiplication, division,
    modulo, shifts and bit operations over a position-anchored operand are
    all flagged.  ``EOI``-anchored offsets (``EOI - k`` for constant ``k``)
    stay accepted: they sit at the end of the stream, which a stream parser
    handles by buffering its (bounded) tail until the end arrives — they
    never force re-reading bytes an earlier term already consumed and
    released.
    """
    from .expr import BinOp, Cond, Index

    if expr is None or depth > 16:
        return None
    if isinstance(expr, Num):
        return _KIND_CONST
    if isinstance(expr, Name):
        if expr.ident == "EOI":
            return _KIND_EOI
        if expr.ident == "end":
            return _KIND_POS
        if expr.ident == "start":
            # The running `start` special is the *leftmost* touched offset:
            # anchoring a later term there points back over consumed bytes.
            return None
        defining = definitions.get(expr.ident)
        if defining is None:
            return None
        return _endpoint_kind(defining, definitions, depth + 1)
    if isinstance(expr, (Dot, Index)):
        if expr.attr == "end":
            return _KIND_POS
        if expr.attr == "start":
            # X.start is where an earlier term *began*; every byte of X
            # lies at or after it, so a term anchored there re-reads them.
            return None
    if isinstance(expr, BinOp):
        left = _endpoint_kind(expr.left, definitions, depth + 1)
        right = _endpoint_kind(expr.right, definitions, depth + 1)
        if left is None or right is None:
            return None
        if expr.op == "+":
            # Sums of non-negative forward anchors only move forward.  An
            # EOI anchor dominates (EOI + k is still end-anchored); a
            # position anchor dominates constants.
            if _KIND_EOI in (left, right):
                return _KIND_EOI if _KIND_CONST in (left, right) else None
            return _KIND_POS if _KIND_POS in (left, right) else _KIND_CONST
        if expr.op == "-":
            if left == _KIND_CONST and right == _KIND_CONST:
                return _KIND_CONST
            if left == _KIND_EOI and right == _KIND_CONST:
                return _KIND_EOI  # EOI - k: the bounded tail of the stream
            # Subtracting from a position (X.end - 4) jumps backwards over
            # bytes already consumed; subtracting a position from anything
            # is unbounded in both directions.  Both are non-monotone.
            return None
        # *, /, %, shifts and bit operations can shrink any anchor
        # (X.end / 2, X.end * 0, EOI >> 1, ...): only constants survive.
        if left == _KIND_CONST and right == _KIND_CONST:
            return _KIND_CONST
        return None
    if isinstance(expr, Cond):
        then = _endpoint_kind(expr.then, definitions, depth + 1)
        otherwise = _endpoint_kind(expr.otherwise, definitions, depth + 1)
        if then is None or otherwise is None:
            return None
        return then if then == otherwise else _KIND_POS
    return None


def _is_forward_left_endpoint(expr: Optional[Expr], definitions: dict) -> bool:
    """Whether a left endpoint provably does not move backwards.

    Accepted shapes: integer constants, ``EOI``-relative tail offsets
    (``EOI - k``), ``X.end`` references (one past an already parsed term —
    ``X.start`` is *not* forward: it points back to where that term began)
    combined by addition, conditionals whose branches are both forward, and
    local attributes whose defining expressions are themselves forward.
    Anything that feeds a parsed *value*
    (``X.val``-style attributes) into a position may encode the random
    access pattern and is flagged — this is deliberately conservative; a
    value used as a length would be fine for a stream parser but cannot be
    distinguished statically from an offset.
    """
    if expr is None:
        return True
    return _endpoint_kind(expr, definitions) is not None


def _constant_endpoint(expr: Optional[Expr]) -> Optional[int]:
    """The endpoint's compile-time value, when it folds to a constant."""
    from .exprcomp import fold

    if expr is None:
        return None
    folded = fold(expr)
    return folded.value if isinstance(folded, Num) else None


def _check_alternative(
    rule: Rule, index: int, alternative: Alternative, report: StreamabilityReport
) -> None:
    # 1. Left-to-right attribute dependencies (no reordering needed).
    for definer, user in dependency_edges(alternative.terms):
        if definer > user:
            report.violations.append(
                StreamabilityViolation(
                    rule=rule.name,
                    alternative_index=index,
                    kind="backward-dependency",
                    detail=(
                        f"term {user + 1} uses a value defined by the later "
                        f"term {definer + 1}"
                    ),
                )
            )
    # 2. Monotone parsing position.
    from .ast import TermAttrDef

    definitions = {
        term.name: term.expr
        for term in alternative.terms
        if isinstance(term, TermAttrDef)
    }
    #: Highest constant offset an earlier term's interval provably reached;
    #: a later *constant* left endpoint below it jumps backwards even though
    #: each constant is individually "forward" (a hole the shape analysis
    #: alone cannot see — it classifies endpoints, not their sequence).
    constant_floor = 0
    for position, term in enumerate(alternative.terms):
        intervals = []
        advances = False  # may this term's interval raise the constant floor?
        if isinstance(term, (TermTerminal, TermNonterminal)):
            intervals.append(term.interval)
            advances = True
        elif isinstance(term, TermArray):
            # Element intervals are re-evaluated per iteration and switch
            # branches are alternatives of each other, so neither advances
            # the floor — but their constant endpoints must still respect it.
            intervals.append(term.element.interval)
        elif isinstance(term, TermSwitch):
            intervals.extend(case.target.interval for case in term.cases)
        for interval in intervals:
            if not _is_forward_left_endpoint(interval.left, definitions):
                report.violations.append(
                    StreamabilityViolation(
                        rule=rule.name,
                        alternative_index=index,
                        kind="non-monotone-interval",
                        detail=(
                            f"term {position + 1} starts at "
                            f"{interval.left.to_source() if interval.left else '?'}, which may "
                            f"jump to an arbitrary offset"
                        ),
                    )
                )
                break
            left_const = _constant_endpoint(interval.left)
            if left_const is not None and left_const < constant_floor:
                report.violations.append(
                    StreamabilityViolation(
                        rule=rule.name,
                        alternative_index=index,
                        kind="non-monotone-interval",
                        detail=(
                            f"term {position + 1} starts at constant offset "
                            f"{left_const}, before offset {constant_floor} "
                            f"already reached by an earlier term"
                        ),
                    )
                )
                break
            if advances:
                right_const = _constant_endpoint(interval.right)
                for value in (left_const, right_const):
                    if value is not None and value > constant_floor:
                        constant_floor = value


def analyze_streamability(grammar: Union[Grammar, str]) -> StreamabilityReport:
    """Analyse whether a stream parser could be generated for ``grammar``.

    The analysis runs on the grammar *as written* (before the attribute
    checker's topological reordering), so it is performed on a freshly
    parsed copy when a source text is available.
    """
    if isinstance(grammar, str):
        grammar = parse_grammar(grammar)
    elif grammar.checked and grammar.source is not None:
        # Re-parse to recover the original, un-reordered term order.
        grammar = parse_grammar(grammar.source)
    complete_grammar(grammar)

    report = StreamabilityReport()
    for rule, _parent in grammar.iter_all_rules():
        for index, alternative in enumerate(rule.alternatives):
            _check_alternative(rule, index, alternative, report)
    return report
