"""Synthetic ELF64 files (section view) for tests and benchmarks.

The generated files contain a valid ELF64 header, a NULL section, a
``.shstrtab`` string table, an optional ``.dynamic`` section, an optional
``.symtab`` symbol table, and a configurable number of payload sections —
the same structural elements ``readelf -h -S --dyn-syms`` touches in the
paper's Figure 12 experiment.
"""

from __future__ import annotations

import struct
from typing import List, Optional

ELF_HEADER_SIZE = 64
SECTION_HEADER_SIZE = 64
SYM_SIZE = 24
DYN_ENTRY_SIZE = 16

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_DYNAMIC = 6


def _section_header(
    name_offset: int,
    sh_type: int,
    offset: int,
    size: int,
    link: int = 0,
    entsize: int = 0,
    flags: int = 0,
    addr: int = 0,
) -> bytes:
    return struct.pack(
        "<IIQQQQIIQQ",
        name_offset,
        sh_type,
        flags,
        addr,
        offset,
        size,
        link,
        0,
        8,
        entsize,
    )


def build_elf(
    section_count: int = 4,
    section_size: int = 128,
    symbol_count: int = 16,
    dynamic_entries: int = 8,
    entry_point: int = 0x400000,
    seed: int = 7,
) -> bytes:
    """Build a synthetic ELF64 file.

    Parameters
    ----------
    section_count:
        Number of ``.data<i>`` payload sections (on top of the NULL section,
        ``.shstrtab``, ``.dynamic`` and ``.symtab``).
    section_size:
        Byte size of each payload section.
    symbol_count:
        Entries in the symbol table (0 omits the table).
    dynamic_entries:
        Entries in the dynamic section (0 omits the section).
    """
    if section_count < 0 or section_size < 0:
        raise ValueError("section_count and section_size must be non-negative")

    # --- plan the section list --------------------------------------------
    names: List[str] = [""]  # index 0: NULL section
    payload_sizes: List[int] = [0]
    types: List[int] = [SHT_NULL]
    entsizes: List[int] = [0]

    for index in range(section_count):
        names.append(f".data{index}")
        payload_sizes.append(section_size)
        types.append(SHT_PROGBITS)
        entsizes.append(0)

    if dynamic_entries > 0:
        names.append(".dynamic")
        payload_sizes.append(dynamic_entries * DYN_ENTRY_SIZE)
        types.append(SHT_DYNAMIC)
        entsizes.append(DYN_ENTRY_SIZE)

    if symbol_count > 0:
        names.append(".symtab")
        payload_sizes.append(symbol_count * SYM_SIZE)
        types.append(SHT_SYMTAB)
        entsizes.append(SYM_SIZE)

    # .shstrtab always last
    names.append(".shstrtab")
    types.append(SHT_STRTAB)
    entsizes.append(0)

    # Build the section-header string table and record name offsets.
    name_offsets: List[int] = []
    strtab = bytearray(b"\x00")
    for name in names:
        if not name:
            name_offsets.append(0)
            continue
        name_offsets.append(len(strtab))
        strtab.extend(name.encode("ascii") + b"\x00")
    payload_sizes.append(len(strtab))  # size of .shstrtab itself

    shstrndx = len(names) - 1
    total_sections = len(names)

    # --- lay out section contents ------------------------------------------
    offset = ELF_HEADER_SIZE
    section_offsets: List[int] = []
    contents: List[bytes] = []
    rng_state = seed
    for index in range(total_sections):
        size = payload_sizes[index]
        section_offsets.append(offset if size else 0)
        if types[index] == SHT_NULL or size == 0:
            contents.append(b"")
            continue
        if types[index] == SHT_PROGBITS:
            body = bytearray()
            while len(body) < size:
                rng_state = (rng_state * 1103515245 + 12345) & 0x7FFFFFFF
                body.append(rng_state & 0xFF)
            contents.append(bytes(body[:size]))
        elif types[index] == SHT_DYNAMIC:
            body = b"".join(
                struct.pack("<QQ", tag, tag * 16 + 1) for tag in range(dynamic_entries)
            )
            contents.append(body)
        elif types[index] == SHT_SYMTAB:
            body = b"".join(
                struct.pack("<IBBHQQ", 1 + sym, 0x12, 0, 1, 0x400000 + sym * 8, 8)
                for sym in range(symbol_count)
            )
            contents.append(body)
        elif types[index] == SHT_STRTAB:
            contents.append(bytes(strtab))
        else:  # pragma: no cover - defensive
            contents.append(b"\x00" * size)
        offset += len(contents[-1])

    shoff = offset

    # --- section header table -----------------------------------------------
    headers = bytearray()
    for index in range(total_sections):
        link = 0
        if types[index] == SHT_SYMTAB:
            link = shstrndx  # string table for symbol names (simplified)
        headers.extend(
            _section_header(
                name_offsets[index],
                types[index],
                section_offsets[index],
                payload_sizes[index],
                link=link,
                entsize=entsizes[index],
            )
        )

    # --- ELF header ----------------------------------------------------------
    e_ident = b"\x7fELF" + bytes([2, 1, 1, 0]) + b"\x00" * 8
    header = struct.pack(
        "<16sHHIQQQIHHHHHH",
        e_ident,
        2,  # ET_EXEC
        0x3E,  # EM_X86_64
        1,
        entry_point,
        0,  # phoff (no program headers in the section view)
        shoff,
        0,
        ELF_HEADER_SIZE,
        0,
        0,
        SECTION_HEADER_SIZE,
        total_sections,
        shstrndx,
    )
    assert len(header) == ELF_HEADER_SIZE

    blob = bytearray(header)
    for body in contents:
        blob.extend(body)
    blob.extend(headers)
    return bytes(blob)


def build_elf_series(section_counts: Optional[List[int]] = None, **kwargs) -> List[bytes]:
    """Build a series of ELF files of increasing size (for Figure 12/13)."""
    section_counts = section_counts or [2, 8, 32, 64]
    return [build_elf(section_count=count, **kwargs) for count in section_counts]


def write_elf(
    path: str,
    section_count: int = 4,
    section_size: int = 128,
    symbol_count: int = 16,
    dynamic_entries: int = 8,
    entry_point: int = 0x400000,
) -> int:
    """Stream a synthetic ELF64 to ``path``; returns the file size.

    Same section layout as :func:`build_elf`, but the ``.data<i>``
    payload sections are zero-filled holes (the writer seeks past them),
    so a multi-hundred-megabyte benchmark input is produced in
    milliseconds using no memory beyond the metadata.  The mmap/lazy
    benchmarks depend on exactly this: payload *content* is irrelevant
    to the grammar (``Raw``), only the layout is parsed.
    """
    if section_count < 0 or section_size < 0:
        raise ValueError("section_count and section_size must be non-negative")

    names: List[str] = [""]
    payload_sizes: List[int] = [0]
    types: List[int] = [SHT_NULL]
    entsizes: List[int] = [0]
    for index in range(section_count):
        names.append(f".data{index}")
        payload_sizes.append(section_size)
        types.append(SHT_PROGBITS)
        entsizes.append(0)
    if dynamic_entries > 0:
        names.append(".dynamic")
        payload_sizes.append(dynamic_entries * DYN_ENTRY_SIZE)
        types.append(SHT_DYNAMIC)
        entsizes.append(DYN_ENTRY_SIZE)
    if symbol_count > 0:
        names.append(".symtab")
        payload_sizes.append(symbol_count * SYM_SIZE)
        types.append(SHT_SYMTAB)
        entsizes.append(SYM_SIZE)
    names.append(".shstrtab")
    types.append(SHT_STRTAB)
    entsizes.append(0)

    name_offsets: List[int] = []
    strtab = bytearray(b"\x00")
    for name in names:
        if not name:
            name_offsets.append(0)
            continue
        name_offsets.append(len(strtab))
        strtab.extend(name.encode("ascii") + b"\x00")
    payload_sizes.append(len(strtab))
    shstrndx = len(names) - 1
    total_sections = len(names)

    offset = ELF_HEADER_SIZE
    section_offsets: List[int] = []
    for index in range(total_sections):
        size = payload_sizes[index]
        section_offsets.append(offset if size else 0)
        if types[index] != SHT_NULL:
            offset += size
    shoff = offset

    e_ident = b"\x7fELF" + bytes([2, 1, 1, 0]) + b"\x00" * 8
    header = struct.pack(
        "<16sHHIQQQIHHHHHH",
        e_ident,
        2,
        0x3E,
        1,
        entry_point,
        0,
        shoff,
        0,
        ELF_HEADER_SIZE,
        0,
        0,
        SECTION_HEADER_SIZE,
        total_sections,
        shstrndx,
    )
    assert len(header) == ELF_HEADER_SIZE

    with open(path, "wb") as handle:
        handle.write(header)
        for index in range(total_sections):
            size = payload_sizes[index]
            if types[index] == SHT_NULL or size == 0:
                continue
            if types[index] == SHT_PROGBITS:
                continue  # a hole: zeros, materialized by the filesystem
            handle.seek(section_offsets[index])
            if types[index] == SHT_DYNAMIC:
                body = b"".join(
                    struct.pack("<QQ", tag, tag * 16 + 1)
                    for tag in range(dynamic_entries)
                )
            elif types[index] == SHT_SYMTAB:
                body = b"".join(
                    struct.pack(
                        "<IBBHQQ", 1 + sym, 0x12, 0, 1, 0x400000 + sym * 8, 8
                    )
                    for sym in range(symbol_count)
                )
            else:  # SHT_STRTAB
                body = bytes(strtab)
            handle.write(body)
        handle.seek(shoff)
        for index in range(total_sections):
            link = shstrndx if types[index] == SHT_SYMTAB else 0
            handle.write(
                _section_header(
                    name_offsets[index],
                    types[index],
                    section_offsets[index],
                    payload_sizes[index],
                    link=link,
                    entsize=entsizes[index],
                )
            )
        return handle.tell()
