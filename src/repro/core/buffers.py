"""Input-buffer normalization: the zero-copy entry contract.

Every raising/entry point of every engine funnels its input through
:func:`as_buffer` exactly once.  The contract:

* ``bytes`` passes through untouched — the overwhelmingly common case
  stays on the fastest indexing/slicing path CPython has, and the
  benchmark gate (``tools/bench_gate.py``) keeps it honest;
* anything else exposing the buffer protocol (``bytearray``,
  ``memoryview``, ``mmap.mmap``, ``array.array``, numpy arrays, ...) is
  wrapped in a flat byte-``memoryview`` **without copying the payload**.  Slicing a memoryview yields another memoryview (a window,
  not a copy), indexing yields an ``int``, comparison against ``bytes``
  compares contents, and ``int.from_bytes`` / ``struct.unpack_from`` /
  ``struct.iter_unpack`` consume it natively — which is everything the
  engines do with the input.

Downstream, small ``bytes`` objects are materialized only where the
public API promises real bytes: ``Bytes``/terminal ``Leaf`` payloads,
blackbox windows, and error-context rendering.  An ``mmap``-backed view
therefore parses a multi-gigabyte file at constant RSS: the engines only
ever touch the pages the grammar actually reads.

This module is mirrored verbatim into the AOT preludes
(:data:`repro.core.codegen._PRELUDE_BASE`) so emitted standalone modules
honour the identical contract.
"""

from __future__ import annotations

__all__ = ["as_buffer"]


def as_buffer(data):
    """Normalize ``data`` to an engine-consumable buffer without copying.

    ``bytes`` (and subclasses) are returned as-is; any other
    buffer-protocol object becomes a flat ``uint8`` ``memoryview`` over
    the same memory.  Raises ``TypeError`` for non-buffer inputs with a
    message naming the offending type.
    """
    if isinstance(data, bytes):
        return data
    try:
        view = data if type(data) is memoryview else memoryview(data)
    except TypeError:
        raise TypeError(
            f"parse input must be a bytes-like object (bytes, bytearray, "
            f"memoryview, mmap, ...), not {type(data).__name__}"
        ) from None
    if view.ndim != 1 or view.format != "B":
        # Multi-dimensional or typed views (e.g. an array('I')) flatten to
        # their underlying byte storage; cast() never copies.
        view = view.cast("B")
    return view
