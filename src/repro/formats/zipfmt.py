"""IPG specification of the ZIP format (directory-based, with a blackbox).

ZIP is the second directory-based case study of the paper and the format
used for the ``unzip`` comparison of section 7:

* the End Of Central Directory (EOCD) record sits at the *end* of the file
  and holds the offset and entry count of the central directory — parsed
  with the interval ``[EOI - 22, EOI]`` (archives without a trailing comment,
  as produced by the sample generator);
* the central directory is a sequence of variable-length entries; each
  element's interval chains from the previous element's ``end`` attribute
  (``CDE(i-1).end``), demonstrating attribute references into arrays;
* each central directory entry stores the offset of the member's local file
  header, from which the compressed data is located — random access again;
* decompression is delegated to a *blackbox parser* (section 3.4) backed by
  :mod:`zlib`, mirroring the paper's reuse of zlib inside the IPG ZIP parser.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.builtins import BlackboxResult
from ..core.parsetree import Node
from .base import FormatSpec, register

GRAMMAR = r"""
blackbox Inflate ;

ZIP -> EOCD[EOI - 22, EOI]
       for i = 0 to EOCD.total do CDE[i = 0 ? EOCD.cdofs : CDE(i - 1).end, EOI]
       for i = 0 to EOCD.total do Entry[CDE(i).lfhofs, EOI]
         where {
           Entry -> LFH
                    switch(CDE(i).method = 8 : Deflated[CDE(i).csize]
                          / Stored[CDE(i).csize]) ;
         } ;

// End of central directory record ("PK\x05\x06"), 22 bytes without comment.
// The field intervals are implicit: each chains off the previous field.
EOCD -> "PK\x05\x06"
        U16LE {disk = U16LE.val}
        U16LE {cddisk = U16LE.val}
        U16LE {diskentries = U16LE.val}
        U16LE {total = U16LE.val}
        U32LE {cdsize = U32LE.val}
        U32LE {cdofs = U32LE.val}
        U16LE {commentlen = U16LE.val} ;

// Central directory entry ("PK\x01\x02"), 46 bytes plus three variable parts.
CDE -> "PK\x01\x02"
       U16LE {vermade = U16LE.val}
       U16LE {verneed = U16LE.val}
       U16LE {flags = U16LE.val}
       U16LE {method = U16LE.val}
       U16LE {mtime = U16LE.val}
       U16LE {mdate = U16LE.val}
       U32LE {crc = U32LE.val}
       U32LE {csize = U32LE.val}
       U32LE {usize = U32LE.val}
       U16LE {fnlen = U16LE.val}
       U16LE {eflen = U16LE.val}
       U16LE {cmlen = U16LE.val}
       U16LE {diskno = U16LE.val}
       U16LE {iattr = U16LE.val}
       U32LE {eattr = U32LE.val}
       U32LE {lfhofs = U32LE.val}
       FileName[fnlen]
       Raw[eflen + cmlen] ;

FileName -> Bytes ;

// Local file header ("PK\x03\x04"), 30 bytes plus file name and extra field.
LFH -> "PK\x03\x04"
       U16LE {verneed = U16LE.val}
       U16LE {flags = U16LE.val}
       U16LE {method = U16LE.val}
       U16LE {mtime = U16LE.val}
       U16LE {mdate = U16LE.val}
       U32LE {crc = U32LE.val}
       U32LE {csize = U32LE.val}
       U32LE {usize = U32LE.val}
       U16LE {fnlen = U16LE.val}
       U16LE {eflen = U16LE.val}
       FileName[fnlen]
       Raw[eflen] ;

Stored -> Bytes ;
Deflated -> Inflate ;
"""

#: Metadata-only variant: parses the end-of-central-directory record and the
#: central directory but never touches (or copies) the archived data — the
#: "zero-copy parser that just skips archived file data" the paper credits
#: for IPG's advantage over Kaitai Struct on ZIP (section 7, Figure 13a).
METADATA_GRAMMAR = r"""
ZIP -> EOCD[EOI - 22, EOI]
       for i = 0 to EOCD.total do CDE[i = 0 ? EOCD.cdofs : CDE(i - 1).end, EOI] ;

EOCD -> "PK\x05\x06"
        U16LE {disk = U16LE.val}
        U16LE {cddisk = U16LE.val}
        U16LE {diskentries = U16LE.val}
        U16LE {total = U16LE.val}
        U32LE {cdsize = U32LE.val}
        U32LE {cdofs = U32LE.val}
        U16LE {commentlen = U16LE.val} ;

CDE -> "PK\x01\x02"
       U16LE {vermade = U16LE.val}
       U16LE {verneed = U16LE.val}
       U16LE {flags = U16LE.val}
       U16LE {method = U16LE.val}
       U16LE {mtime = U16LE.val}
       U16LE {mdate = U16LE.val}
       U32LE {crc = U32LE.val}
       U32LE {csize = U32LE.val}
       U32LE {usize = U32LE.val}
       U16LE {fnlen = U16LE.val}
       U16LE {eflen = U16LE.val}
       U16LE {cmlen = U16LE.val}
       U16LE {diskno = U16LE.val}
       U16LE {iattr = U16LE.val}
       U32LE {eattr = U32LE.val}
       U32LE {lfhofs = U32LE.val}
       FileName[fnlen]
       Raw[eflen + cmlen] ;

FileName -> Bytes ;
"""


def inflate_blackbox(data: bytes) -> BlackboxResult:
    """Blackbox parser wrapping zlib's raw-deflate decoder.

    The grammar hands this callable exactly the compressed bytes of one
    archive member (the interval ``[LFH.end, LFH.end + CDE(i).csize]``);
    the decompressed payload is attached to the parse tree as a leaf.
    """
    decompressor = zlib.decompressobj(-zlib.MAX_WBITS)
    payload = decompressor.decompress(data) + decompressor.flush()
    return BlackboxResult(attrs={"usize": len(payload)}, payload=payload)


SPEC = register(
    FormatSpec(
        name="zip",
        grammar_text=GRAMMAR,
        description="ZIP archives (directory-based format, zlib blackbox)",
        blackboxes={"Inflate": inflate_blackbox},
    )
)

#: Zero-copy variant used by the Figure 13a comparison (metadata only).
METADATA_SPEC = register(
    FormatSpec(
        name="zip-meta",
        grammar_text=METADATA_GRAMMAR,
        description="ZIP central directory only (zero-copy, no decompression)",
    )
)


def build_parser():
    """Return a fresh ZIP parser (with the zlib blackbox registered)."""
    return SPEC.build_parser()


def build_metadata_parser():
    """Return a parser for the zero-copy, metadata-only ZIP grammar."""
    return METADATA_SPEC.build_parser()


def parse(data: bytes) -> Node:
    """Parse a ZIP archive and return the parse tree."""
    return SPEC.parse(data)


# ---------------------------------------------------------------------------
# Tree → Python summaries (used by the unzip-like example and benchmarks)
# ---------------------------------------------------------------------------


@dataclass
class ZipMember:
    """One archive member: central-directory metadata plus extracted data."""

    name: str
    method: int
    compressed_size: int
    uncompressed_size: int
    crc32: int
    data: Optional[bytes]


def list_members(tree: Node) -> List[ZipMember]:
    """Return the member table of a parsed archive (metadata only)."""
    members: List[ZipMember] = []
    entries = tree.array("CDE")
    if entries is None:
        return members
    for entry in entries:
        name_node = entry.child("FileName")
        raw_name = b""
        if name_node is not None:
            bytes_node = name_node.child("Bytes")
            if bytes_node is not None and bytes_node.children:
                raw_name = bytes_node.children[0].value
        members.append(
            ZipMember(
                name=raw_name.decode("utf-8", "replace"),
                method=entry["method"],
                compressed_size=entry["csize"],
                uncompressed_size=entry["usize"],
                crc32=entry["crc"],
                data=None,
            )
        )
    return members


def extract_all(tree: Node) -> Dict[str, bytes]:
    """Extract every member's decompressed contents from the parse tree."""
    members = list_members(tree)
    out: Dict[str, bytes] = {}
    entry_nodes = tree.array("Entry")
    if entry_nodes is None:
        return out
    for member, entry in zip(members, entry_nodes):
        stored = entry.child("Stored")
        deflated = entry.child("Deflated")
        if deflated is not None:
            inflate = deflated.child("Inflate")
            if inflate is not None and inflate.children:
                out[member.name] = inflate.children[0].value
            else:
                out[member.name] = b""
        elif stored is not None:
            payload_node = stored.child("Bytes")
            out[member.name] = (
                payload_node.children[0].value
                if payload_node is not None and payload_node.children
                else b""
            )
        else:
            out[member.name] = b""
    return out


def verify_crc(extracted: Dict[str, bytes], members: List[ZipMember]) -> bool:
    """Check the CRC32 of every extracted member against the directory."""
    by_name = {member.name: member for member in members}
    for name, payload in extracted.items():
        member = by_name.get(name)
        if member is None:
            return False
        if zlib.crc32(payload) & 0xFFFFFFFF != member.crc32:
            return False
    return True
