"""Tests for the stream-parser analysis (§8) and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.streamability import analyze_streamability
from repro.formats import dns, elf, gif, ipv4, toy, zipfmt


class TestStreamability:
    def test_sequential_grammar_is_streamable(self):
        report = analyze_streamability(
            'S -> "hdr" U32LE {n = U32LE.val} Raw[n] ;'
        )
        assert report.streamable
        assert report.violations == []
        assert "streamable" in report.summary()

    def test_backward_dependency_is_flagged(self):
        report = analyze_streamability(
            "S -> B1[0, B2.a] B2[a1, EOI] {a1 = 2} ; B1 -> Raw ; B2 -> U8[0, 1] {a = U8.val} ;"
        )
        assert not report.streamable
        assert any(v.kind == "backward-dependency" for v in report.violations)

    def test_random_access_interval_is_flagged(self):
        report = analyze_streamability(toy.FIGURE_2)
        assert not report.streamable
        assert any(v.kind == "non-monotone-interval" for v in report.violations)
        assert "S" in report.violating_rules()

    def test_directory_based_formats_are_not_streamable(self):
        assert not analyze_streamability(elf.GRAMMAR).streamable
        assert not analyze_streamability(zipfmt.GRAMMAR).streamable

    def test_network_formats_are_streamable(self):
        # IPv4+UDP and DNS parse strictly left to right — the candidates the
        # paper's future-work stream parsers target.
        assert analyze_streamability(ipv4.GRAMMAR).streamable
        assert analyze_streamability(dns.GRAMMAR).streamable

    def test_gif_is_conservatively_rejected(self):
        # GIF's color-table sizes are computed from a parsed flags byte; the
        # analysis cannot tell a data-dependent length from a data-dependent
        # offset, so it conservatively reports the grammar as non-streamable.
        report = analyze_streamability(gif.GRAMMAR)
        assert not report.streamable
        assert "ImageBlock" in report.violating_rules() or "LSD" in report.violating_rules()

    def test_checked_grammar_reanalysed_from_source(self):
        # Even after the attribute checker reordered terms, the analysis must
        # judge the original textual order.
        from repro.core.interpreter import prepare_grammar

        grammar = prepare_grammar(
            "S -> B1[0, B2.a] B2[a1, EOI] {a1 = 2} ; B1 -> Raw ; B2 -> U8[0, 1] {a = U8.val} ;"
        )
        assert not analyze_streamability(grammar).streamable


class TestCli:
    def test_formats_command(self, capsys):
        assert main(["formats"]) == 0
        output = capsys.readouterr().out
        for name in ("elf", "gif", "zip", "dns"):
            assert name in output

    def test_parse_with_bundled_format(self, capsys, tmp_path, elf_sample):
        path = tmp_path / "sample.elf"
        path.write_bytes(elf_sample)
        assert main(["parse", "--format", "elf", str(path)]) == 0
        assert "Section Headers:" in capsys.readouterr().out

    def test_parse_with_tree_output(self, capsys, tmp_path, ipv4_sample):
        path = tmp_path / "packet.bin"
        path.write_bytes(ipv4_sample)
        assert main(["parse", "--format", "ipv4", "--tree", str(path)]) == 0
        assert "IPv4Header" in capsys.readouterr().out

    def test_parse_with_grammar_file(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text('S -> "hi" Raw ;')
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"hi there")
        assert main(["parse", "--grammar", str(grammar), str(payload)]) == 0
        assert "S" in capsys.readouterr().out

    def test_parse_failure_exit_code(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text('S -> "hi" ;')
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"nope")
        assert main(["parse", "--grammar", str(grammar), str(payload)]) == 1

    def test_parse_unknown_format(self, tmp_path, capsys):
        payload = tmp_path / "payload.bin"
        payload.write_bytes(b"x")
        assert main(["parse", "--format", "tar", str(payload)]) == 2

    def test_check_command_accepts_good_grammar(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text(toy.FIGURE_3)
        assert main(["check", str(grammar)]) == 0
        assert "terminates" in capsys.readouterr().out

    def test_check_command_rejects_nonterminating_grammar(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text(toy.NON_TERMINATING_MUTUAL)
        assert main(["check", str(grammar)]) == 1
        assert "non-termination" in capsys.readouterr().out

    def test_generate_command_writes_parser(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text(toy.FIGURE_1)
        output = tmp_path / "parser.py"
        assert main(["generate", str(grammar), "-o", str(output)]) == 0
        source = output.read_text()
        assert "class GeneratedParser" in source
        compile(source, str(output), "exec")

    def test_generate_command_prints_to_stdout(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text(toy.FIGURE_1)
        assert main(["generate", str(grammar), "--class-name", "Fig1"]) == 0
        assert "class Fig1" in capsys.readouterr().out

    def test_streamability_command(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text(toy.FIGURE_2)
        assert main(["streamability", str(grammar)]) == 1
        assert "not streamable" in capsys.readouterr().out

    def test_streamability_command_on_streamable_grammar(self, capsys, tmp_path):
        grammar = tmp_path / "grammar.ipg"
        grammar.write_text('S -> "x" Raw ;')
        assert main(["streamability", str(grammar)]) == 0


def test_parse_reports_grammar_errors_without_traceback(tmp_path, capsys):
    from repro.cli import main

    grammar = tmp_path / "bad.ipg"
    grammar.write_text("S -> broken {")
    payload = tmp_path / "input.bin"
    payload.write_bytes(b"x")
    assert main(["parse", "--grammar", str(grammar), str(payload)]) == 1
    assert "error:" in capsys.readouterr().err
