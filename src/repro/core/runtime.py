"""Shared arithmetic runtime for the compiled parsers.

The expression language's partial operators (truncating division, modulo,
shifts) must behave identically in the tree-walking interpreter
(:meth:`repro.core.expr.BinOp.evaluate`) and the staged compiler backend
(:mod:`repro.core.compiler`).  This module is the single definition the
latter binds at code-generation time; the rounding rule itself lives in
:func:`repro.core.expr._int_div`, which the interpreter also uses.
"""

from __future__ import annotations

from .errors import EvaluationError
from .expr import _int_div


def _div(a: int, b: int) -> int:
    """Truncating integer division matching the reference interpreter."""
    if b == 0:
        raise EvaluationError("division by zero")
    return _int_div(a, b)


def _mod(a: int, b: int) -> int:
    if b == 0:
        raise EvaluationError("modulo by zero")
    return a - _int_div(a, b) * b


def _shift_l(a: int, b: int) -> int:
    if b < 0:
        raise EvaluationError("negative shift amount")
    return a << b


def _shift_r(a: int, b: int) -> int:
    if b < 0:
        raise EvaluationError("negative shift amount")
    return a >> b
