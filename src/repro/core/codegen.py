"""Ahead-of-time parser emission: compiled grammars -> standalone modules.

:func:`repro.core.compiler.compile_grammar` stages a grammar into Python
*source* already — it just executes that source immediately and keeps the
resulting closures in memory.  This module is the ahead-of-time half: it
wraps the same generated rule functions with a small **vendored runtime
prelude** and a public ``parse``/``try_parse`` API, producing one
self-contained ``.py`` file that imports and parses with **nothing but the
standard library** on ``sys.path``.  That is the artifact story of
Kaitai-style toolchains: the optimized parser is an inspectable, diffable,
shippable module instead of an opaque in-memory object.

Two deliberate design points:

* **Parse-tree compatibility.**  The prelude first tries to import
  ``repro``'s :class:`~repro.core.parsetree.Node` / ``Leaf`` /
  ``ArrayNode`` and only falls back to vendored equivalents when ``repro``
  is absent.  When both are importable the emitted module therefore
  produces *the same classes* as the other engines, so trees compare
  ``==`` across all of them (enforced by ``tests/engine_matrix.py``);
  without ``repro`` the vendored classes implement the same structural
  equality among themselves.
* **Blackboxes are late-bound.**  A blackbox parser is an arbitrary Python
  callable and cannot be serialized; the emitted module exposes
  ``register_blackbox(name, fn)`` and defers the lookup to parse time,
  exactly like :class:`repro.Parser`'s live registry.

Entry points: :meth:`repro.core.compiler.CompiledGrammar.to_source` and the
``repro compile`` CLI subcommand.
"""

from __future__ import annotations

from typing import Optional

#: Runtime support emitted into every standalone module (and once, as the
#: shared ``_prelude`` module, per package).  Everything the generated rule
#: functions reference lives here (or in the per-grammar constants section
#: rendered by :func:`render_standalone_module`) except the blackbox
#: *registry*, which is per-module state (:data:`_PRELUDE_BLACKBOX`); the
#: only non-stdlib import is the *optional* reuse of repro's parse-tree
#: classes.
_PRELUDE_BASE = '''\
import struct as _struct
import sys as _sys

#: Internal sentinels: parse failure (biased choice), memo miss, and a
#: not-live binding (loop variable outside its loop / closure cell before
#: its defining term ran).
FAIL = object()
_MISS = object()
_UB = object()
_BFAIL = object()
_ifb = int.from_bytes


class IPGError(Exception):
    """Base class for all errors raised by this generated parser."""


class EvaluationError(IPGError):
    """An attribute/interval computation failed (fails the alternative)."""


class BlackboxError(IPGError):
    """A blackbox parser is missing or raised."""


class ParseFailure(IPGError):
    """The input does not match the grammar (raised by ``parse``).

    Mirrors ``repro.core.errors.ParseFailure``: carries the failing
    nonterminal, the absolute byte ``offset`` of the failure point, the
    active ``rule_stack`` and the violated ``interval`` when known.  The
    structured subclasses below match repro's taxonomy by *name*, so
    ``type(exc).__name__`` comparisons agree across engines even when
    repro itself is not importable.
    """

    def __init__(self, message, nonterminal="", offset=None, rule_stack=(), interval=None):
        self.nonterminal = nonterminal
        self.offset = offset
        self.rule_stack = tuple(rule_stack)
        self.interval = tuple(interval) if interval is not None else None
        super().__init__(message)


class TruncatedInput(ParseFailure):
    """The parse needed bytes past the end of the input."""


class BoundsViolation(ParseFailure):
    """An interval was invalid within the available data."""


class GuardRejected(ParseFailure):
    """Bytes were present but semantically wrong (guard/terminal/switch)."""


class LimitExceeded(ParseFailure):
    """A resource budget was exhausted (``limit`` names which one)."""

    def __init__(self, message, limit="", nonterminal="", rule_stack=(), interval=None):
        self.limit = limit
        super().__init__(
            message,
            nonterminal=nonterminal,
            offset=None,
            rule_stack=rule_stack,
            interval=interval,
        )


def _limit_steps():
    raise LimitExceeded(
        "parse step budget exhausted (max_steps); call set_limits(None) "
        "to lift the budget for trusted input",
        limit="max_steps",
    )


def _limit_refill(cell):
    # Slow path of the step budget: the hot counter cell[0] stays within
    # CPython's cached small-int range so the per-rule decrement never
    # allocates; every 256 rule entries this charges the big remainder.
    remaining = cell[1]
    if remaining <= 0:
        _limit_steps()
    take = 256 if remaining > 256 else remaining
    cell[0] = take - 1
    cell[1] = remaining - take


try:  # Reuse repro's parse-tree classes when available so trees produced
    # by this module compare == with the other engines'; fall back to
    # structurally identical vendored classes when repro is not importable.
    from repro.core.parsetree import ArrayNode, Leaf, Node
except ImportError:

    class _ParseTree:
        __slots__ = ()

        def walk(self):
            yield self

    class Leaf(_ParseTree):
        """A matched terminal string."""

        __slots__ = ("value",)

        def __init__(self, value):
            self.value = bytes(value)

        def __eq__(self, other):
            return isinstance(other, Leaf) and self.value == other.value

        def __hash__(self):
            return hash(("Leaf", self.value))

        def __repr__(self):
            return f"Leaf({self.value!r})"

    class ArrayNode(_ParseTree):
        """The result of parsing a ``for`` (array) term."""

        __slots__ = ("name", "elements")

        def __init__(self, name, elements):
            self.name = name
            self.elements = list(elements)

        def __len__(self):
            return len(self.elements)

        def __getitem__(self, index):
            return self.elements[index]

        def __iter__(self):
            return iter(self.elements)

        def walk(self):
            yield self
            for element in self.elements:
                yield from element.walk()

        def __eq__(self, other):
            return (
                isinstance(other, ArrayNode)
                and self.name == other.name
                and self.elements == other.elements
            )

        def __hash__(self):
            return hash(("Array", self.name, len(self.elements)))

        def __repr__(self):
            return f"Array({self.name}, {len(self.elements)} elements)"

    class Node(_ParseTree):
        """A successfully parsed nonterminal: name, attribute env, children."""

        __slots__ = ("name", "env", "children")

        def __init__(self, name, env, children):
            self.name = name
            self.env = dict(env)
            self.children = list(children)

        def attr(self, name, default=None):
            return self.env.get(name, default)

        def __getitem__(self, name):
            if name not in self.env:
                raise KeyError(f"nonterminal {self.name} has no attribute {name!r}")
            return self.env[name]

        @property
        def attrs(self):
            return {
                k: v for k, v in self.env.items() if k not in ("EOI", "start", "end")
            }

        def child(self, name, index=0):
            seen = 0
            for tree in self.children:
                if isinstance(tree, Node) and tree.name == name:
                    if seen == index:
                        return tree
                    seen += 1
            return None

        def array(self, name):
            for tree in self.children:
                if isinstance(tree, ArrayNode) and tree.name == name:
                    return tree
            return None

        def walk(self):
            yield self
            for child in self.children:
                yield from child.walk()

        def __eq__(self, other):
            return (
                isinstance(other, Node)
                and self.name == other.name
                and self.env == other.env
                and self.children == other.children
            )

        def __hash__(self):
            return hash(("Node", self.name, len(self.children)))

        def __repr__(self):
            return f"Node({self.name}, attrs={self.attrs}, children={len(self.children)})"


_node_new = Node.__new__
_leaf_new = Leaf.__new__
_array_new = ArrayNode.__new__


def _mk_node(name, env, children):
    node = _node_new(Node)
    node.name = name
    node.env = env
    node.children = children
    return node


def _mk_leaf(value):
    leaf = _leaf_new(Leaf)
    leaf.value = value
    return leaf


def _mk_array(name, elements):
    array = _array_new(ArrayNode)
    array.name = name
    array.elements = elements
    return array


# -- expression runtime ------------------------------------------------------


def _int_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _div(a, b):
    if b == 0:
        raise EvaluationError("division by zero")
    return _int_div(a, b)


def _mod(a, b):
    if b == 0:
        raise EvaluationError("modulo by zero")
    return a - _int_div(a, b) * b


def _shift_l(a, b):
    if b < 0:
        raise EvaluationError("negative shift amount")
    return a << b


def _shift_r(a, b):
    if b < 0:
        raise EvaluationError("negative shift amount")
    return a >> b


def _aidx(elements, position, name, attr):
    if 0 <= position < len(elements):
        return elements[position].env[attr]
    raise EvaluationError(
        f"array reference {name}({position}) out of range "
        f"(array has {len(elements)} elements)"
    )


def _undef(name):
    raise EvaluationError(f"undefined attribute or loop variable {name!r}")


def _nonode(name):
    raise EvaluationError(f"reference to {name} but it has not been parsed yet")


def _noarr(name):
    raise EvaluationError(
        f"reference to array {name} but no such array has been parsed"
    )


def _badexists(source):
    raise EvaluationError(
        f"existential does not reference any array indexed by its bound "
        f"variable: {source}"
    )


def _exists(length, condition, then, otherwise):
    for position in range(length):
        if condition(position) != 0:
            return then(position)
    return otherwise()


# -- builtin nonterminals ----------------------------------------------------


def _fixed_int(size, byteorder, signed=False):
    def parse(data, lo, hi):
        if hi - lo < size:
            return _BFAIL
        window = data[lo : lo + size]
        return {"val": _ifb(window, byteorder, signed=signed)}, size, window

    return parse


def _p_raw(data, lo, hi):
    length = hi - lo
    return {"len": length, "val": length}, length, None


def _p_bytes(data, lo, hi):
    window = data[lo:hi]
    return {"len": len(window), "val": len(window)}, len(window), window


def _p_ascii_int(data, lo, hi):
    window = data[lo:hi]
    text = window.strip()
    if not text or not text.isdigit():
        return _BFAIL
    return {"val": int(text)}, len(window), window


def _p_bin_int(data, lo, hi):
    window = data[lo:hi]
    if not window or any(byte not in (0x30, 0x31) for byte in window):
        return _BFAIL
    value = 0
    for byte in window:
        value = value * 2 + (byte - 0x30)
    return {"val": value}, len(window), window


_BUILTINS = {
    "U8": _fixed_int(1, "little"),
    "Byte": _fixed_int(1, "little"),
    "U16LE": _fixed_int(2, "little"),
    "U16BE": _fixed_int(2, "big"),
    "U32LE": _fixed_int(4, "little"),
    "U32BE": _fixed_int(4, "big"),
    "U64LE": _fixed_int(8, "little"),
    "U64BE": _fixed_int(8, "big"),
    "I32LE": _fixed_int(4, "little", signed=True),
    "Raw": _p_raw,
    "Bytes": _p_bytes,
    "AsciiInt": _p_ascii_int,
    "BinInt": _p_bin_int,
}


def _wrap_outcome(name, attrs, end, payload, length):
    env = {"EOI": length, "start": 0 if end else length, "end": end}
    env.update(attrs)
    children = [_mk_leaf(payload)] if payload is not None else []
    return _mk_node(name, env, children)


def _make_builtin_runner(name):
    parse = _BUILTINS[name]

    def run(data, lo, hi):
        outcome = parse(data, lo, hi)
        if outcome is _BFAIL:
            return FAIL
        attrs, end, payload = outcome
        return _wrap_outcome(name, attrs, end, payload, hi - lo)

    return run


def _run_builtin(name, data, lo, hi):
    return _make_builtin_runner(name)(data, lo, hi)


# -- blackbox parsers --------------------------------------------------------


def _normalize_blackbox_result(result, interval_length):
    if result is None:
        return _BFAIL
    if isinstance(result, dict):
        return dict(result), None, interval_length
    if isinstance(result, (bytes, bytearray)):
        return {}, bytes(result), interval_length
    # Duck-typed BlackboxResult: attrs / payload / end attributes.
    if hasattr(result, "attrs") and hasattr(result, "payload"):
        end = getattr(result, "end", None)
        if end is None:
            end = interval_length
        return dict(result.attrs), result.payload, end
    raise TypeError(
        f"blackbox parser returned unsupported type {type(result).__name__}"
    )
'''

#: The blackbox *registry*: module-level mutable state, emitted once per
#: parser module — into the standalone module, and into every per-format
#: module of a package (two formats may declare same-named blackboxes with
#: different implementations, and the shared prelude module must not offer
#: a registration API nothing consults).
_PRELUDE_BLACKBOX = '''\
#: Late-bound blackbox implementations; fill with ``register_blackbox``.
BLACKBOXES = {}


def register_blackbox(name, parser):
    """Register (or replace) the implementation of a blackbox parser."""
    BLACKBOXES[name] = parser


def _bb(name, data, lo, hi):
    implementation = BLACKBOXES.get(name)
    if implementation is None:
        raise BlackboxError(
            f"grammar declares blackbox {name!r} but no implementation was "
            f"registered; call register_blackbox({name!r}, fn) first"
        )
    window = data[lo:hi]
    try:
        raw = implementation(window)
    except Exception as exc:  # the blackbox itself failed
        raise BlackboxError(f"blackbox parser {name!r} raised: {exc}") from exc
    outcome = _normalize_blackbox_result(raw, hi - lo)
    if outcome is _BFAIL:
        return FAIL
    attrs, payload, end = outcome
    return _wrap_outcome(name, attrs, end, payload, hi - lo)
'''

#: The full standalone prelude: shared runtime plus the per-module
#: blackbox registry.
_PRELUDE = _PRELUDE_BASE + "\n\n" + _PRELUDE_BLACKBOX

#: Public entry points emitted after the generated rule functions.
_EPILOGUE = '''\
_RECURSION_LIMIT = 100000


def set_limits(max_steps):
    """Change (or lift, with ``None``) this module's parse step budget.

    The budget was baked in at generation time as ``_MAX_STEPS``; each
    top-level parse gets a fresh fuel cell initialized from it.  Modules
    generated with an unlimited budget have the per-rule check compiled
    out entirely, so ``set_limits`` cannot *introduce* a budget there —
    regenerate with limits instead.
    """
    global _MAX_STEPS
    _MAX_STEPS = float("inf") if max_steps is None else max_steps


def parse_nonterminal(data, name, lo, hi):
    """``s[lo, hi] |- name`` -> Node or the FAIL sentinel."""
    state = _new_state()
    fn = _ENTRY.get(name)
    if fn is not None:
        return fn(state, data, lo, hi)
    if name in _BUILTINS:
        return _run_builtin(name, data, lo, hi)
    if name in DECLARED_BLACKBOXES:
        return _bb(name, data, lo, hi)
    raise IPGError(f"no rule, builtin or blackbox for nonterminal {name!r}")


def try_parse(data, start=None):
    """Parse ``data``; returns the root Node, or None on non-matching input."""
    data = bytes(data)
    name = START if start is None else start
    previous_limit = _sys.getrecursionlimit()
    if _RECURSION_LIMIT > previous_limit:
        _sys.setrecursionlimit(_RECURSION_LIMIT)
    try:
        result = parse_nonterminal(data, name, 0, len(data))
    except (RecursionError, MemoryError) as exc:
        raise LimitExceeded(
            f"{type(exc).__name__} while parsing {name!r}; the input drives "
            f"unbounded recursion or allocation",
            limit="recursion",
            nonterminal=name,
        ) from exc
    finally:
        if _RECURSION_LIMIT > previous_limit:
            _sys.setrecursionlimit(previous_limit)
    return None if result is FAIL else result


def parse(data, start=None):
    """Parse ``data``; raises a ParseFailure subclass on non-matching input.

    When the ``repro`` package is importable the failure is re-diagnosed
    by the reference interpreter (same classification as every other
    engine: TruncatedInput / BoundsViolation / GuardRejected with the
    furthest-failure offset).  Standalone, a plain ParseFailure with the
    matching class names vendored above is raised instead.
    """
    data = bytes(data)
    name = START if start is None else start
    result = try_parse(data, name)
    if result is not None:
        return result
    if GRAMMAR_SOURCE is not None:
        try:
            from repro.core.diagnose import diagnose_failure
        except ImportError:
            pass
        else:
            diagnosed = diagnose_failure(
                GRAMMAR_SOURCE, data, start=name, blackboxes=dict(BLACKBOXES)
            )
            # Re-raise on this module's vendored class of the same name,
            # so `except module.TruncatedInput:` works identically whether
            # or not repro happened to be importable.
            cls = globals().get(type(diagnosed).__name__, ParseFailure)
            if cls is LimitExceeded:
                raise cls(
                    str(diagnosed),
                    limit=diagnosed.limit,
                    nonterminal=diagnosed.nonterminal,
                    rule_stack=diagnosed.rule_stack,
                ) from None
            raise cls(
                str(diagnosed),
                nonterminal=diagnosed.nonterminal,
                offset=diagnosed.offset,
                rule_stack=diagnosed.rule_stack,
                interval=diagnosed.interval,
            ) from None
    raise ParseFailure(
        f"input of length {len(data)} does not match nonterminal {name!r}",
        nonterminal=name,
    )
'''


#: Names every per-format package module pulls from the shared prelude
#: module.  Everything else the generated rule functions and the public
#: epilogue reference is either module-local (constants, dispatch tables,
#: ``_ENTRY``/``_new_state``, the blackbox registry) or stdlib.
_PACKAGE_IMPORTS = (
    "ArrayNode",
    "BlackboxError",
    "BoundsViolation",
    "EvaluationError",
    "FAIL",
    "GuardRejected",
    "IPGError",
    "Leaf",
    "LimitExceeded",
    "Node",
    "ParseFailure",
    "TruncatedInput",
    "_BFAIL",
    "_BUILTINS",
    "_MISS",
    "_UB",
    "_aidx",
    "_badexists",
    "_div",
    "_exists",
    "_ifb",
    "_limit_refill",
    "_limit_steps",
    "_make_builtin_runner",
    "_mk_array",
    "_mk_leaf",
    "_mk_node",
    "_mod",
    "_noarr",
    "_nonode",
    "_normalize_blackbox_result",
    "_run_builtin",
    "_shift_l",
    "_shift_r",
    "_struct",
    "_undef",
    "_wrap_outcome",
)

def _module_body(compiled) -> str:
    """The generated rule functions, stripped of the in-memory docstring."""
    body = compiled.source
    marker = '"""Module staged by repro.core.compiler — one closure per alternative."""'
    if body.startswith(marker):
        body = body[len(marker) :].lstrip("\n")
    return body.rstrip("\n")


def _constant_lines(compiled) -> list:
    limits = getattr(compiled, "limits", None)
    max_steps = None if limits is None else limits.max_steps
    constants = [
        "#: Parse step budget: fuel per top-level parse (see set_limits).",
        '_MAX_STEPS = float("inf")'
        if max_steps is None
        else f"_MAX_STEPS = {max_steps}",
        "#: Original grammar text; lets repro (when importable) re-diagnose",
        "#: failed parses into the structured error taxonomy.",
        f"GRAMMAR_SOURCE = {compiled.grammar.source!r}",
    ]
    for var in sorted(compiled._leaf_consts):
        constants.append(f"{var} = _mk_leaf({compiled._leaf_consts[var]!r})")
    for var in sorted(compiled._builtin_runner_names):
        constants.append(
            f"{var} = _make_builtin_runner({compiled._builtin_runner_names[var]!r})"
        )
    return constants


def render_package(compiled_by_name, package_doc: Optional[str] = None):
    """Render several compiled grammars as one package of parser modules.

    Returns a mapping of file name to module source: one ``<format>.py``
    per entry of ``compiled_by_name`` (keys are sanitized into module
    names), a single shared ``_prelude.py`` carrying the runtime, and an
    ``__init__.py``.  Unlike :func:`render_standalone_module`, the ~400
    prelude lines are **not** vendored per format — each format module
    only carries its grammar's generated functions, its constants, its
    own late-bound blackbox registry and the public API.  The package
    imports with nothing but the standard library on ``sys.path``
    (``repro``'s parse-tree classes are still reused when importable, so
    trees compare ``==`` across engines).
    """
    modules = {
        name: f"{name.replace('-', '_')}" for name in compiled_by_name
    }
    if len(set(modules.values())) != len(modules):
        raise ValueError("format names collide after module-name sanitization")
    files = {}
    # The shared module carries the runtime only; the blackbox registry is
    # per-format state and lives in each format module.
    files["_prelude.py"] = "\n".join(
        [
            '"""Shared runtime prelude for the generated parser package."""',
            "",
            _PRELUDE_BASE,
        ]
    )
    if package_doc is None:
        package_doc = (
            "Ahead-of-time IPG parser package (generated by `repro compile "
            "--package`).\n\nOne module per format, sharing the runtime "
            "prelude module `_prelude`:\n"
            + "\n".join(
                f"  {module} (start symbol: {compiled_by_name[name].grammar.start})"
                for name, module in sorted(modules.items())
            )
        )
    files["__init__.py"] = "\n".join(
        [
            f'"""{package_doc}\n"""',
            "",
            f"FORMATS = {tuple(sorted(modules.values()))!r}",
            "",
        ]
    )
    imports = ",\n    ".join(_PACKAGE_IMPORTS)
    for name, module in modules.items():
        compiled = compiled_by_name[name]
        grammar = compiled.grammar
        declared = "".join(f"{bb!r}, " for bb in sorted(grammar.blackboxes))
        module_doc = (
            f"Standalone IPG parser for {name!r} (start symbol: "
            f"{grammar.start}).\n\n"
            "Generated ahead of time by `repro compile --package`; imports "
            "with only the\nstandard library on sys.path (runtime shared "
            "via the sibling `_prelude` module).\nPublic API: parse(data, "
            "start=None), try_parse(data, start=None),\n"
            "parse_nonterminal(data, name, lo, hi), register_blackbox(name, "
            "fn), START,\nDECLARED_BLACKBOXES."
        )
        parts = [
            f'"""{module_doc}\n"""',
            "",
            "import sys as _sys",
            "",
            f"from ._prelude import (\n    {imports},\n)",
            "",
            _PRELUDE_BLACKBOX,
            "",
            "# -- grammar constants -------------------------------------------------------",
            "",
        ]
        parts += _constant_lines(compiled)
        parts += [
            "",
            "",
            "# -- generated rule functions ------------------------------------------------",
            "",
            _module_body(compiled),
            "",
            "",
            "# -- public API --------------------------------------------------------------",
            "",
            f"START = {grammar.start!r}",
            f"DECLARED_BLACKBOXES = frozenset(({declared}))" if declared
            else "DECLARED_BLACKBOXES = frozenset()",
            "",
            _EPILOGUE,
        ]
        files[f"{module}.py"] = "\n".join(parts)
    return files


def render_standalone_module(compiled, module_doc: Optional[str] = None) -> str:
    """Render a :class:`~repro.core.compiler.CompiledGrammar` as module source.

    The result is importable with only the standard library available; see
    the module docstring for the two compatibility guarantees (tree classes
    and late-bound blackboxes).
    """
    grammar = compiled.grammar
    if module_doc is None:
        module_doc = (
            f"Standalone IPG parser (start symbol: {grammar.start}).\n\n"
            "Generated ahead of time by `repro compile`; imports with only the\n"
            "standard library on sys.path.  Public API: parse(data, start=None),\n"
            "try_parse(data, start=None), parse_nonterminal(data, name, lo, hi),\n"
            "register_blackbox(name, fn), START, DECLARED_BLACKBOXES."
        )
    declared = "".join(f"{name!r}, " for name in sorted(grammar.blackboxes))
    parts = [
        f'"""{module_doc}\n"""',
        "",
        _PRELUDE,
        "",
        "# -- grammar constants -------------------------------------------------------",
        "",
    ]
    parts += _constant_lines(compiled)
    parts += [
        "",
        "",
        "# -- generated rule functions ------------------------------------------------",
        "",
        _module_body(compiled),
        "",
        "",
        "# -- public API --------------------------------------------------------------",
        "",
        f"START = {grammar.start!r}",
        f"DECLARED_BLACKBOXES = frozenset(({declared}))" if declared
        else "DECLARED_BLACKBOXES = frozenset()",
        "",
        _EPILOGUE,
    ]
    return "\n".join(parts)
