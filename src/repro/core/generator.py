"""Parser generation: compile an IPG into Python recursive-descent source.

The paper's implementation is a parser *generator*: each nonterminal becomes
a function of the target language (C++ there, Python here) that checks
terminal strings and calls the functions of other nonterminals according to
its rule (section 7).  This module performs the same translation:

* every top-level nonterminal ``A`` becomes a method ``_nt_A`` implementing
  biased choice over its alternatives, with packrat memoization;
* every alternative becomes a method with straight-line code for its
  (already reordered) terms;
* local ``where`` rules become additional methods whose callers pass the
  enclosing evaluation context;
* interval and attribute expressions are compiled into inline Python
  expressions (name resolution goes through the shared
  :class:`~repro.core.env.EvalContext` so scoping matches the interpreter);
* builtin and blackbox nonterminals are bound statically at generation time.

The generated parser produces exactly the same parse trees as the reference
interpreter; the test suite checks this on every toy grammar and every
format case study.

Public API:

``generate_parser_source(grammar)``
    Return the generated module source as a string.

``compile_parser(grammar, blackboxes=None)``
    Exec the generated source and return a ready-to-use parser instance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .ast import (
    Alternative,
    Grammar,
    Rule,
    Term,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .builtins import is_builtin
from .errors import GenerationError
from .expr import BinOp, Cond, Dot, Exists, Expr, Index, Name, Num
from .interpreter import prepare_grammar


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def compile_expr(expr: Expr) -> str:
    """Compile an IPG expression to a Python expression string.

    The generated code evaluates under a local variable ``ctx`` holding an
    :class:`~repro.core.env.EvalContext`.
    """
    if isinstance(expr, Num):
        return repr(expr.value)
    if isinstance(expr, Name):
        if expr.ident == "EOI":
            return 'ctx.env["EOI"]'
        return f"ctx.lookup_name({expr.ident!r})"
    if isinstance(expr, Dot):
        return f"ctx.lookup_dot({expr.nonterminal!r}, {expr.attr!r})"
    if isinstance(expr, Index):
        return (
            f"ctx.lookup_index({expr.nonterminal!r}, {compile_expr(expr.index)}, "
            f"{expr.attr!r})"
        )
    if isinstance(expr, BinOp):
        return _compile_binop(expr)
    if isinstance(expr, Cond):
        return (
            f"({compile_expr(expr.then)} if ({compile_expr(expr.condition)}) != 0 "
            f"else {compile_expr(expr.otherwise)})"
        )
    if isinstance(expr, Exists):
        array_name = expr._target_array()
        if array_name is None:
            raise GenerationError(
                f"existential does not reference an array indexed by its bound "
                f"variable: {expr.to_source()}"
            )
        return (
            f"_exists(ctx, {expr.var!r}, {array_name!r}, "
            f"lambda ctx: {compile_expr(expr.condition)}, "
            f"lambda ctx: {compile_expr(expr.then)}, "
            f"lambda ctx: {compile_expr(expr.otherwise)})"
        )
    raise GenerationError(f"cannot compile expression {expr!r}")


def _compile_binop(expr: BinOp) -> str:
    left = compile_expr(expr.left)
    right = compile_expr(expr.right)
    op = expr.op
    if op in ("+", "-", "*", "&", "|"):
        return f"({left} {op} {right})"
    if op == "<<":
        return f"_shift_l({left}, {right})"
    if op == ">>":
        return f"_shift_r({left}, {right})"
    if op == "/":
        return f"_div({left}, {right})"
    if op == "%":
        return f"_mod({left}, {right})"
    if op == "=":
        return f"(1 if {left} == {right} else 0)"
    if op == "!=":
        return f"(1 if {left} != {right} else 0)"
    if op in ("<", ">", "<=", ">="):
        return f"(1 if {left} {op} {right} else 0)"
    if op == "&&":
        return f"(1 if (({left}) != 0 and ({right}) != 0) else 0)"
    if op == "||":
        return f"(1 if (({left}) != 0 or ({right}) != 0) else 0)"
    raise GenerationError(f"cannot compile binary operator {op!r}")


# ---------------------------------------------------------------------------
# Code emission helpers
# ---------------------------------------------------------------------------


class _Emitter:
    """Accumulates indented Python source lines."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        if line:
            self.lines.append("    " * self.indent + line)
        else:
            self.lines.append("")

    def block(self) -> "_Block":
        return _Block(self)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _Block:
    def __init__(self, emitter: _Emitter):
        self.emitter = emitter

    def __enter__(self) -> None:
        self.emitter.indent += 1

    def __exit__(self, *exc) -> None:
        self.emitter.indent -= 1


_MODULE_PRELUDE = '''\
"""Parser generated by repro.core.generator — do not edit by hand."""

import sys

from repro.core.builtins import BUILTIN_FAIL, BUILTINS, normalize_blackbox_result
from repro.core.env import EvalContext, initial_env, upd_start_end_in_place
from repro.core.errors import BlackboxError, EvaluationError, IPGError, ParseFailure
from repro.core.parsetree import ArrayNode, Leaf, Node
from repro.core.runtime import _div, _mod, _shift_l, _shift_r

FAIL = object()


def _exists(ctx, var, array_name, condition, then, otherwise):
    """Runtime support for existential expressions (section 3.4)."""
    length = ctx.array_length(array_name)
    had = var in ctx.env
    saved = ctx.env.get(var)
    try:
        for position in range(length):
            ctx.env[var] = position
            if condition(ctx) != 0:
                return then(ctx)
        if had:
            ctx.env[var] = saved
        else:
            ctx.env.pop(var, None)
        return otherwise(ctx)
    finally:
        if had:
            ctx.env[var] = saved
        else:
            ctx.env.pop(var, None)
'''


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class ParserGenerator:
    """Translates one prepared grammar into Python parser source."""

    def __init__(self, grammar: Grammar, class_name: str = "GeneratedParser"):
        self.grammar = grammar
        self.class_name = class_name
        self.emitter = _Emitter()
        self._counter = 0
        self._local_methods: Dict[int, str] = {}

    # -- naming ----------------------------------------------------------------
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    # -- top level ---------------------------------------------------------------
    def generate(self) -> str:
        emitter = self.emitter
        emitter.lines.append(_MODULE_PRELUDE)
        emitter.emit("")
        emitter.emit(f"class {self.class_name}:")
        with emitter.block():
            emitter.emit(f'"""Recursive-descent parser generated from an IPG."""')
            emitter.emit("")
            emitter.emit(f"GRAMMAR_START = {self.grammar.start!r}")
            emitter.emit(
                f"BLACKBOX_NAMES = frozenset({sorted(self.grammar.blackboxes)!r})"
            )
            emitter.emit("")
            self._emit_runtime_methods()
            for rule in self.grammar.iter_rules():
                self._emit_rule(rule, method_name=f"_nt_{rule.name}", scope={}, memoized=True)
        emitter.emit("")
        emitter.emit("")
        emitter.emit("PARSER_CLASS = " + self.class_name)
        return emitter.source()

    def _emit_runtime_methods(self) -> None:
        emitter = self.emitter
        emitter.emit("def __init__(self, blackboxes=None, memoize=True, recursion_limit=100000):")
        with emitter.block():
            emitter.emit("self.blackboxes = dict(blackboxes or {})")
            emitter.emit("self.memoize = memoize")
            emitter.emit("self.recursion_limit = recursion_limit")
            emitter.emit("self._data = b''")
            emitter.emit("self._memo = {}")
        emitter.emit("")
        emitter.emit("def register_blackbox(self, name, parser):")
        with emitter.block():
            emitter.emit("self.blackboxes[name] = parser")
        emitter.emit("")
        emitter.emit("def parse(self, data, start=None):")
        with emitter.block():
            emitter.emit("result = self.try_parse(data, start)")
            emitter.emit("if result is None:")
            with emitter.block():
                emitter.emit(
                    "raise ParseFailure('input of length %d does not match nonterminal %r'"
                )
                emitter.emit(
                    "                   % (len(data), start or self.GRAMMAR_START),"
                )
                emitter.emit("                   nonterminal=start or self.GRAMMAR_START)")
            emitter.emit("return result")
        emitter.emit("")
        emitter.emit("def try_parse(self, data, start=None):")
        with emitter.block():
            emitter.emit("name = start or self.GRAMMAR_START")
            emitter.emit("method = getattr(self, '_nt_' + name, None)")
            emitter.emit("if method is None:")
            with emitter.block():
                emitter.emit("raise IPGError('no rule for nonterminal %r' % name)")
            emitter.emit("self._data = bytes(data)")
            emitter.emit("self._memo = {}")
            emitter.emit("previous_limit = sys.getrecursionlimit()")
            emitter.emit("if self.recursion_limit > previous_limit:")
            with emitter.block():
                emitter.emit("sys.setrecursionlimit(self.recursion_limit)")
            emitter.emit("try:")
            with emitter.block():
                emitter.emit("result = method(0, len(self._data), None)")
            emitter.emit("finally:")
            with emitter.block():
                emitter.emit("if self.recursion_limit > previous_limit:")
                with emitter.block():
                    emitter.emit("sys.setrecursionlimit(previous_limit)")
            emitter.emit("return None if result is FAIL else result")
        emitter.emit("")
        emitter.emit("def accepts(self, data, start=None):")
        with emitter.block():
            emitter.emit("return self.try_parse(data, start) is not None")
        emitter.emit("")
        emitter.emit("def _builtin(self, name, lo, hi):")
        with emitter.block():
            emitter.emit("spec = BUILTINS[name]")
            emitter.emit("outcome = spec.parse(self._data, lo, hi)")
            emitter.emit("if outcome is BUILTIN_FAIL:")
            with emitter.block():
                emitter.emit("return FAIL")
            emitter.emit("attrs, end, payload = outcome")
            emitter.emit("env = {'EOI': hi - lo, 'start': 0 if end else hi - lo, 'end': end}")
            emitter.emit("env.update(attrs)")
            emitter.emit("children = [Leaf(payload)] if payload is not None else []")
            emitter.emit("return Node(name, env, children)")
        emitter.emit("")
        emitter.emit("def _blackbox(self, name, lo, hi):")
        with emitter.block():
            emitter.emit("implementation = self.blackboxes.get(name)")
            emitter.emit("if implementation is None:")
            with emitter.block():
                emitter.emit(
                    "raise BlackboxError('blackbox %r has no registered implementation' % name)"
                )
            emitter.emit("window = self._data[lo:hi]")
            emitter.emit("try:")
            with emitter.block():
                emitter.emit("raw = implementation(window)")
            emitter.emit("except Exception as exc:")
            with emitter.block():
                emitter.emit("raise BlackboxError('blackbox parser %r raised: %s' % (name, exc))")
            emitter.emit("outcome = normalize_blackbox_result(raw, hi - lo)")
            emitter.emit("if outcome is BUILTIN_FAIL:")
            with emitter.block():
                emitter.emit("return FAIL")
            emitter.emit("attrs, payload, end = outcome")
            emitter.emit("env = {'EOI': hi - lo, 'start': 0 if end else hi - lo, 'end': end}")
            emitter.emit("env.update(attrs)")
            emitter.emit("children = [Leaf(payload)] if payload is not None else []")
            emitter.emit("return Node(name, env, children)")
        emitter.emit("")

    # -- rules -------------------------------------------------------------------
    def _emit_rule(
        self,
        rule: Rule,
        method_name: str,
        scope: Dict[str, str],
        memoized: bool,
    ) -> None:
        emitter = self.emitter
        alternative_methods: List[str] = []
        local_methods_to_emit: List = []
        for position, alternative in enumerate(rule.alternatives):
            alt_method = f"{method_name}_alt{position}"
            alternative_methods.append(alt_method)
        emitter.emit(f"def {method_name}(self, lo, hi, outer):")
        with emitter.block():
            emitter.emit(f'"""Nonterminal {rule.name!r}: biased choice over its alternatives."""')
            if memoized:
                emitter.emit(f"key = ({rule.name!r}, lo, hi)")
                emitter.emit("if self.memoize and key in self._memo:")
                with emitter.block():
                    emitter.emit("return self._memo[key]")
            emitter.emit("result = FAIL")
            for alt_method in alternative_methods:
                emitter.emit("if result is FAIL:")
                with emitter.block():
                    emitter.emit(f"result = self.{alt_method}(lo, hi, outer)")
            if memoized:
                emitter.emit("if self.memoize:")
                with emitter.block():
                    emitter.emit("self._memo[key] = result")
            emitter.emit("return result")
        emitter.emit("")
        for position, alternative in enumerate(rule.alternatives):
            self._emit_alternative(
                rule, alternative, alternative_methods[position], scope
            )

    def _emit_alternative(
        self,
        rule: Rule,
        alternative: Alternative,
        method_name: str,
        scope: Dict[str, str],
    ) -> None:
        emitter = self.emitter
        inner_scope = dict(scope)
        pending_locals = []
        for local in alternative.local_rules:
            local_method = f"{method_name}_where_{local.name}"
            inner_scope[local.name] = local_method
            pending_locals.append((local, local_method))
        emitter.emit(f"def {method_name}(self, lo, hi, outer):")
        with emitter.block():
            emitter.emit("ctx = EvalContext(initial_env(hi - lo), outer=outer)")
            emitter.emit("children = []")
            emitter.emit("try:")
            with emitter.block():
                if not alternative.terms:
                    emitter.emit("pass")
                for term in alternative.terms:
                    self._emit_term(term, inner_scope)
            emitter.emit("except EvaluationError:")
            with emitter.block():
                emitter.emit("return FAIL")
            emitter.emit(f"return Node({rule.name!r}, dict(ctx.env), children)")
        emitter.emit("")
        for local, local_method in pending_locals:
            # Local rules are never memoized: their results depend on the
            # enclosing context.
            self._emit_rule(local, local_method, inner_scope, memoized=False)

    # -- terms -------------------------------------------------------------------
    def _emit_term(self, term: Term, scope: Dict[str, str]) -> None:
        if isinstance(term, TermAttrDef):
            self.emitter.emit(f"ctx.env[{term.name!r}] = {compile_expr(term.expr)}")
            return
        if isinstance(term, TermGuard):
            self.emitter.emit(f"if ({compile_expr(term.expr)}) == 0:")
            with self.emitter.block():
                self.emitter.emit("return FAIL")
            return
        if isinstance(term, TermTerminal):
            self._emit_terminal(term)
            return
        if isinstance(term, TermNonterminal):
            self._emit_nonterminal(term, scope, indexed=False)
            return
        if isinstance(term, TermArray):
            self._emit_array(term, scope)
            return
        if isinstance(term, TermSwitch):
            self._emit_switch(term, scope)
            return
        raise GenerationError(f"unknown term kind {type(term).__name__}")

    def _emit_interval(self, term: TermNonterminal) -> tuple:
        emitter = self.emitter
        left_var = self._fresh("_l")
        right_var = self._fresh("_r")
        emitter.emit(f"{left_var} = {compile_expr(term.interval.left)}")
        emitter.emit(f"{right_var} = {compile_expr(term.interval.right)}")
        emitter.emit(f"if not (0 <= {left_var} <= {right_var} <= hi - lo):")
        with emitter.block():
            emitter.emit("return FAIL")
        return left_var, right_var

    def _emit_terminal(self, term: TermTerminal) -> None:
        emitter = self.emitter
        left_var = self._fresh("_l")
        right_var = self._fresh("_r")
        emitter.emit(f"{left_var} = {compile_expr(term.interval.left)}")
        emitter.emit(f"{right_var} = {compile_expr(term.interval.right)}")
        emitter.emit(f"if not (0 <= {left_var} <= {right_var} <= hi - lo):")
        with emitter.block():
            emitter.emit("return FAIL")
        literal = term.value
        emitter.emit(f"if {right_var} - {left_var} < {len(literal)}:")
        with emitter.block():
            emitter.emit("return FAIL")
        if literal:
            emitter.emit(
                f"if self._data[lo + {left_var} : lo + {left_var} + {len(literal)}] != {literal!r}:"
            )
            with emitter.block():
                emitter.emit("return FAIL")
        touched = "True" if literal else "False"
        emitter.emit(
            f"upd_start_end_in_place(ctx.env, {left_var}, {left_var} + {len(literal)}, {touched})"
        )
        emitter.emit(f"children.append(Leaf({literal!r}))")

    def _dispatch_call(self, name: str, scope: Dict[str, str], lo_expr: str, hi_expr: str) -> str:
        """Statically bind a nonterminal reference to its parsing call."""
        if name in scope:
            # Local rules receive the enclosing evaluation context.
            return f"self.{scope[name]}({lo_expr}, {hi_expr}, ctx)"
        if self.grammar.has_rule(name):
            return f"self._nt_{name}({lo_expr}, {hi_expr}, None)"
        if is_builtin(name):
            return f"self._builtin({name!r}, {lo_expr}, {hi_expr})"
        if name in self.grammar.blackboxes:
            return f"self._blackbox({name!r}, {lo_expr}, {hi_expr})"
        raise GenerationError(f"nonterminal {name!r} has no rule, builtin or blackbox")

    def _emit_nonterminal(
        self, term: TermNonterminal, scope: Dict[str, str], indexed: bool
    ) -> Optional[str]:
        emitter = self.emitter
        left_var, right_var = self._emit_interval(term)
        result_var = self._fresh("_res")
        call = self._dispatch_call(term.name, scope, f"lo + {left_var}", f"lo + {right_var}")
        emitter.emit(f"{result_var} = {call}")
        emitter.emit(f"if {result_var} is FAIL:")
        with emitter.block():
            emitter.emit("return FAIL")
        env_var = self._fresh("_env")
        node_var = self._fresh("_node")
        emitter.emit(f"{env_var} = dict({result_var}.env)")
        emitter.emit(f"{env_var}['start'] = {left_var} + {result_var}.env.get('start', 0)")
        emitter.emit(f"{env_var}['end'] = {left_var} + {result_var}.env.get('end', 0)")
        emitter.emit(f"{node_var} = Node({result_var}.name, {env_var}, {result_var}.children)")
        emitter.emit(
            f"upd_start_end_in_place(ctx.env, {env_var}['start'], {env_var}['end'], "
            f"{result_var}.env.get('end', 0) != 0)"
        )
        if indexed:
            return node_var
        emitter.emit(f"ctx.record_node({node_var})")
        emitter.emit(f"children.append({node_var})")
        return node_var

    def _emit_array(self, term: TermArray, scope: Dict[str, str]) -> None:
        emitter = self.emitter
        first_var = self._fresh("_first")
        stop_var = self._fresh("_stop")
        elements_var = self._fresh("_elements")
        saved_var = self._fresh("_saved")
        had_var = self._fresh("_had")
        had_arr_var = self._fresh("_hadarr")
        saved_arr_var = self._fresh("_savedarr")
        index_var = self._fresh("_idx")
        ok_var = self._fresh("_ok")
        element_name = term.element.name
        emitter.emit(f"{first_var} = {compile_expr(term.start)}")
        emitter.emit(f"{stop_var} = {compile_expr(term.stop)}")
        # Each array term gets its own fresh element list (bound after the
        # loop bounds are evaluated); a failed term restores the previous
        # binding.  This matches the interpreter's _exec_array.
        emitter.emit(f"{elements_var} = []")
        emitter.emit(f"{had_arr_var} = {element_name!r} in ctx.arrays")
        emitter.emit(f"{saved_arr_var} = ctx.arrays.get({element_name!r})")
        emitter.emit(f"ctx.arrays[{element_name!r}] = {elements_var}")
        emitter.emit(f"{had_var} = {term.var!r} in ctx.env")
        emitter.emit(f"{saved_var} = ctx.env.get({term.var!r})")
        emitter.emit(f"{ok_var} = True")
        emitter.emit(f"for {index_var} in range({first_var}, {stop_var}):")
        with emitter.block():
            emitter.emit(f"ctx.env[{term.var!r}] = {index_var}")
            left_var = self._fresh("_l")
            right_var = self._fresh("_r")
            emitter.emit(f"{left_var} = {compile_expr(term.element.interval.left)}")
            emitter.emit(f"{right_var} = {compile_expr(term.element.interval.right)}")
            emitter.emit(f"if not (0 <= {left_var} <= {right_var} <= hi - lo):")
            with emitter.block():
                emitter.emit(f"{ok_var} = False")
                emitter.emit("break")
            result_var = self._fresh("_res")
            call = self._dispatch_call(
                element_name, scope, f"lo + {left_var}", f"lo + {right_var}"
            )
            emitter.emit(f"{result_var} = {call}")
            emitter.emit(f"if {result_var} is FAIL:")
            with emitter.block():
                emitter.emit(f"{ok_var} = False")
                emitter.emit("break")
            env_var = self._fresh("_env")
            node_var = self._fresh("_node")
            emitter.emit(f"{env_var} = dict({result_var}.env)")
            emitter.emit(f"{env_var}['start'] = {left_var} + {result_var}.env.get('start', 0)")
            emitter.emit(f"{env_var}['end'] = {left_var} + {result_var}.env.get('end', 0)")
            emitter.emit(
                f"{node_var} = Node({result_var}.name, {env_var}, {result_var}.children)"
            )
            emitter.emit(
                f"upd_start_end_in_place(ctx.env, {env_var}['start'], {env_var}['end'], "
                f"{result_var}.env.get('end', 0) != 0)"
            )
            emitter.emit(f"{elements_var}.append({node_var})")
        emitter.emit(f"if {had_var}:")
        with emitter.block():
            emitter.emit(f"ctx.env[{term.var!r}] = {saved_var}")
        emitter.emit("else:")
        with emitter.block():
            emitter.emit(f"ctx.env.pop({term.var!r}, None)")
        emitter.emit(f"if not {ok_var}:")
        with emitter.block():
            emitter.emit(f"if {had_arr_var}:")
            with emitter.block():
                emitter.emit(f"ctx.arrays[{element_name!r}] = {saved_arr_var}")
            emitter.emit("else:")
            with emitter.block():
                emitter.emit(f"ctx.arrays.pop({element_name!r}, None)")
            emitter.emit("return FAIL")
        emitter.emit(f"children.append(ArrayNode({element_name!r}, {elements_var}))")

    def _emit_switch(self, term: TermSwitch, scope: Dict[str, str]) -> None:
        emitter = self.emitter
        first = True
        has_default = False
        for case in term.cases:
            if case.condition is None:
                has_default = True
                emitter.emit("else:" if not first else "if True:")
                with emitter.block():
                    self._emit_nonterminal(case.target, scope, indexed=False)
            else:
                keyword = "if" if first else "elif"
                emitter.emit(f"{keyword} ({compile_expr(case.condition)}) != 0:")
                with emitter.block():
                    self._emit_nonterminal(case.target, scope, indexed=False)
            first = False
        if not has_default:
            emitter.emit("else:")
            with emitter.block():
                emitter.emit("return FAIL")


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def generate_parser_source(
    grammar: Union[Grammar, str], class_name: str = "GeneratedParser"
) -> str:
    """Generate Python parser source code for ``grammar``."""
    prepared = prepare_grammar(grammar)
    return ParserGenerator(prepared, class_name).generate()


def compile_parser(
    grammar: Union[Grammar, str],
    blackboxes: Optional[Dict[str, object]] = None,
    class_name: str = "GeneratedParser",
):
    """Generate, exec and instantiate a parser for ``grammar``."""
    source = generate_parser_source(grammar, class_name)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated parser {class_name}>", "exec"), namespace)
    parser_class = namespace["PARSER_CLASS"]
    return parser_class(blackboxes=blackboxes)
