"""Unit tests for builtin nonterminals and blackbox plumbing."""

import pytest

from repro.core.builtins import (
    BUILTIN_FAIL,
    BUILTINS,
    BlackboxResult,
    builtin_attrs,
    is_builtin,
    normalize_blackbox_result,
)


def run(name, data, lo=0, hi=None):
    return BUILTINS[name].parse(data, lo, len(data) if hi is None else hi)


class TestIntegerBuiltins:
    def test_u8(self):
        attrs, end, payload = run("U8", b"\x2a\xff")
        assert attrs == {"val": 42}
        assert end == 1
        assert payload == b"\x2a"

    def test_u16_endianness(self):
        assert run("U16LE", b"\x01\x02")[0]["val"] == 0x0201
        assert run("U16BE", b"\x01\x02")[0]["val"] == 0x0102

    def test_u32_and_u64(self):
        assert run("U32LE", b"\x78\x56\x34\x12")[0]["val"] == 0x12345678
        assert run("U32BE", b"\x12\x34\x56\x78")[0]["val"] == 0x12345678
        assert run("U64LE", b"\x01" + b"\x00" * 7)[0]["val"] == 1
        assert run("U64BE", b"\x00" * 7 + b"\x01")[0]["val"] == 1

    def test_signed_builtin(self):
        assert run("I32LE", b"\xff\xff\xff\xff")[0]["val"] == -1

    def test_short_input_fails(self):
        assert run("U32LE", b"\x01\x02") is BUILTIN_FAIL
        assert run("U8", b"") is BUILTIN_FAIL

    def test_fixed_size_consumes_only_its_width(self):
        attrs, end, payload = run("U16LE", b"\x01\x02\x03\x04")
        assert end == 2
        assert payload == b"\x01\x02"

    def test_byte_alias(self):
        assert run("Byte", b"\x07")[0]["val"] == 7

    def test_reads_at_offset(self):
        attrs, end, _ = BUILTINS["U16LE"].parse(b"\x00\x00\x05\x00", 2, 4)
        assert attrs["val"] == 5


class TestVariableSizeBuiltins:
    def test_raw_is_zero_copy(self):
        attrs, end, payload = run("Raw", b"abcdef")
        assert attrs == {"len": 6, "val": 6}
        assert end == 6
        assert payload is None  # no copy of the skipped bytes

    def test_raw_accepts_empty_interval(self):
        attrs, end, payload = BUILTINS["Raw"].parse(b"abc", 1, 1)
        assert attrs["len"] == 0 and end == 0

    def test_bytes_keeps_payload(self):
        attrs, end, payload = run("Bytes", b"name.txt")
        assert payload == b"name.txt"
        assert attrs["len"] == 8

    def test_ascii_int(self):
        attrs, end, payload = run("AsciiInt", b"0000000042")
        assert attrs["val"] == 42
        assert end == 10

    def test_ascii_int_strips_whitespace(self):
        assert run("AsciiInt", b" 17 ")[0]["val"] == 17

    def test_ascii_int_rejects_non_digits(self):
        assert run("AsciiInt", b"12a4") is BUILTIN_FAIL
        assert run("AsciiInt", b"") is BUILTIN_FAIL

    def test_bin_int(self):
        assert run("BinInt", b"1011")[0]["val"] == 11
        assert run("BinInt", b"0") [0]["val"] == 0

    def test_bin_int_rejects_other_characters(self):
        assert run("BinInt", b"102") is BUILTIN_FAIL
        assert run("BinInt", b"") is BUILTIN_FAIL


class TestRegistry:
    def test_is_builtin(self):
        assert is_builtin("U32LE")
        assert not is_builtin("NotABuiltin")

    def test_builtin_attrs(self):
        assert builtin_attrs("U32LE") == ("val",)
        assert set(builtin_attrs("Raw")) == {"len", "val"}

    def test_every_builtin_declares_its_attributes(self):
        probe = b"1" * 16  # ASCII '1' bytes satisfy every builtin, incl. BinInt
        for name, spec in BUILTINS.items():
            outcome = spec.parse(probe, 0, len(probe))
            assert outcome is not BUILTIN_FAIL, name
            attrs, _end, _payload = outcome
            assert set(attrs) <= set(spec.attrs), name


class TestBlackboxNormalization:
    def test_none_means_failure(self):
        assert normalize_blackbox_result(None, 10) is BUILTIN_FAIL

    def test_dict_result(self):
        attrs, payload, end = normalize_blackbox_result({"x": 1}, 10)
        assert attrs == {"x": 1} and payload is None and end == 10

    def test_bytes_result(self):
        attrs, payload, end = normalize_blackbox_result(b"data", 10)
        assert payload == b"data" and end == 10

    def test_blackbox_result_object(self):
        result = BlackboxResult(attrs={"n": 2}, payload=b"xy", end=4)
        attrs, payload, end = normalize_blackbox_result(result, 10)
        assert (attrs, payload, end) == ({"n": 2}, b"xy", 4)

    def test_blackbox_result_defaults_end_to_interval(self):
        attrs, payload, end = normalize_blackbox_result(BlackboxResult(), 7)
        assert end == 7

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            normalize_blackbox_result(3.14, 10)
