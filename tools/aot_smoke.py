#!/usr/bin/env python
"""AOT emission smoke check: every bundled format, standalone, in a subprocess.

Run from a checkout with ``repro`` importable::

    PYTHONPATH=src python tools/aot_smoke.py --out aot-parsers

For every bundled format grammar this script

1. emits the ahead-of-time parser module (``CompiledGrammar.to_source()``,
   the same artifact as ``repro compile``) into ``--out``, plus the
   table-backed flavor (``TableGrammar.to_source()``, the artifact of
   ``repro compile --backend tablevm``),
2. writes the format's canonical deterministic sample input next to it,
3. launches an **isolated subprocess** (``python -I``) whose ``sys.path``
   contains only the stdlib and the output directory — it asserts that
   ``repro`` is *not* importable, imports each emitted module (both
   flavors), registers the one stdlib-implementable blackbox (ZIP's
   raw-deflate ``Inflate``), parses the sample, checks a truncated input
   is cleanly rejected, checks both flavors agree on the root and node
   count, and — for the streamable formats — runs one chunked
   ``parse_stream`` per flavor and checks it equals the batch tree.

CI runs this after the test suite and uploads ``--out`` as an artifact, so
every PR leaves behind the inspectable generated parsers it shipped.
Exit code 0 = all formats emitted, imported and parsed standalone.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import samples  # noqa: E402
from repro.core.compiler import compile_grammar  # noqa: E402
from repro.formats import registry  # noqa: E402

#: Canonical sample builders (same parameters as tests/engine_matrix.py).
SAMPLES = {
    "zip": lambda: samples.build_zip(member_count=3, member_size=300),
    "zip-meta": lambda: samples.build_zip(member_count=3, member_size=300),
    "elf": lambda: samples.build_elf(section_count=3, symbol_count=4, dynamic_entries=2),
    "gif": lambda: samples.build_gif(frame_count=2, bytes_per_frame=200),
    "pe": lambda: samples.build_pe(section_count=2),
    "pdf": lambda: samples.build_pdf(object_count=3)[0],
    "dns": lambda: samples.build_dns_response(answer_count=2, additional_count=1),
    "ipv4": lambda: samples.build_ipv4_udp_packet(payload_size=48, options_words=1),
}

#: The isolated runner; executed with ``python -I`` so no environment or
#: user site-packages leak in.  Only the stdlib (plus the emitted modules'
#: directory) may be imported.
RUNNER = '''\
import importlib
import json
import sys
import zlib

out_dir = sys.argv[1]
sys.path.insert(0, out_dir)

try:
    import repro  # noqa: F401
except ImportError:
    pass
else:
    print("FATAL: repro is importable inside the isolated runner")
    sys.exit(2)


class InflateResult:
    """Duck-typed BlackboxResult (attrs / payload / end)."""

    def __init__(self, attrs, payload):
        self.attrs = attrs
        self.payload = payload
        self.end = None


def inflate(data):
    decompressor = zlib.decompressobj(-zlib.MAX_WBITS)
    payload = decompressor.decompress(data) + decompressor.flush()
    return InflateResult({"usize": len(payload)}, payload)


manifest = json.load(open(f"{out_dir}/manifest.json"))
failures = 0
for fmt, entry in sorted(manifest.items()):
    data = open(f"{out_dir}/{entry['sample']}", "rb").read()
    shapes = {}
    for flavor, module_name in (
        ("closure", entry["module"]),
        ("table", entry["table_module"]),
    ):
        module = importlib.import_module(module_name)
        for blackbox in entry["blackboxes"]:
            if blackbox != "Inflate":
                print(f"FATAL: no stdlib implementation for blackbox {blackbox!r}")
                sys.exit(2)
            module.register_blackbox("Inflate", inflate)
        tree = module.try_parse(data)
        if tree is None:
            print(f"FAIL {fmt}/{flavor}: sample did not parse")
            failures += 1
            continue
        nodes = sum(1 for _ in tree.walk())
        # Each flavor vendors its own tree classes, so cross-flavor
        # equality is structural: root name/env plus node count.
        shapes[flavor] = (tree.name, dict(tree.env), nodes)
        truncated = module.try_parse(data[: max(1, len(data) // 2)])
        if truncated is not None:
            print(f"FAIL {fmt}/{flavor}: truncated sample unexpectedly parsed")
            failures += 1
            continue
        streamed = ""
        if module.STREAMABLE:
            chunks = [data[i : i + 7] for i in range(0, len(data), 7)]
            if module.parse_stream(chunks) != tree:
                print(f"FAIL {fmt}/{flavor}: streamed parse differs from batch")
                failures += 1
                continue
            streamed = f" streamed({len(chunks)} chunks)"
        print(
            f"ok   {fmt}/{flavor}: root={tree.name} nodes={nodes} "
            f"bytes={len(data)}{streamed}"
        )
    if len(shapes) == 2 and shapes["closure"] != shapes["table"]:
        print(f"FAIL {fmt}: closure and table flavors disagree: {shapes}")
        failures += 1
sys.exit(1 if failures else 0)
'''


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", default="aot-parsers", help="directory for emitted modules + samples"
    )
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    manifest = {}
    for fmt in sorted(registry):
        spec = registry[fmt]
        compiled = compile_grammar(spec.grammar_text, blackboxes=dict(spec.blackboxes))
        module_name = f"{fmt.replace('-', '_')}_parser"
        module_path = os.path.join(args.out, f"{module_name}.py")
        with open(module_path, "w", encoding="utf-8") as handle:
            handle.write(compiled.to_source())
        table_name = f"{fmt.replace('-', '_')}_table_parser"
        table_path = os.path.join(args.out, f"{table_name}.py")
        with open(table_path, "w", encoding="utf-8") as handle:
            handle.write(spec.build_parser(backend="tablevm")._tablevm.to_source())
        sample_name = f"{fmt}.sample.bin"
        with open(os.path.join(args.out, sample_name), "wb") as handle:
            handle.write(SAMPLES[fmt]())
        manifest[fmt] = {
            "module": module_name,
            "table_module": table_name,
            "sample": sample_name,
            "blackboxes": sorted(spec.blackboxes),
        }
        print(f"emitted {module_path} + {table_path}")

    import json

    with open(os.path.join(args.out, "manifest.json"), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)

    runner_path = os.path.join(args.out, "_isolated_runner.py")
    with open(runner_path, "w", encoding="utf-8") as handle:
        handle.write(RUNNER)
    # -I: isolated mode — ignores PYTHONPATH and user site-packages, so the
    # subprocess sees only the stdlib and the emitted modules.
    completed = subprocess.run(
        [sys.executable, "-I", runner_path, args.out], cwd=os.getcwd()
    )
    if completed.returncode == 0:
        print(f"all {len(manifest)} formats parse standalone (stdlib only)")
    return completed.returncode


if __name__ == "__main__":
    sys.exit(main())
