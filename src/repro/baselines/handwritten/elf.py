"""Hand-written ELF64 parser, mimicking the parsing core of ``readelf``.

This is the baseline of Figure 12c/12d: a direct struct-unpacking parser
that maps file bytes onto Python tuples/dicts with no grammar machinery.
``parse`` performs only the parsing; ``run_readelf`` adds the
post-processing (name resolution and report rendering), so the benchmark can
separate "parsing time" from "end-to-end time" the way the paper does.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List


@dataclass
class HandwrittenElf:
    """The parsed pieces a ``readelf -h -S --dyn-syms`` run needs."""

    header: Dict[str, int]
    section_headers: List[Dict[str, int]]
    symbols: List[Dict[str, int]]
    dynamic_entries: List[Dict[str, int]]


def parse(data: bytes) -> HandwrittenElf:
    """Parse the ELF header, section headers, symbol and dynamic tables."""
    if data[:4] != b"\x7fELF":
        raise ValueError("not an ELF file")
    if data[4] != 2:
        raise ValueError("only ELF64 is supported")
    (
        etype,
        machine,
        _version,
        entry,
        phoff,
        shoff,
        _flags,
        ehsize,
        phentsize,
        phnum,
        shentsize,
        shnum,
        shstrndx,
    ) = struct.unpack_from("<HHIQQQIHHHHHH", data, 16)
    header = {
        "etype": etype,
        "machine": machine,
        "entry": entry,
        "phoff": phoff,
        "shoff": shoff,
        "ehsize": ehsize,
        "phentsize": phentsize,
        "phnum": phnum,
        "shentsize": shentsize,
        "shnum": shnum,
        "shstrndx": shstrndx,
    }

    section_headers: List[Dict[str, int]] = []
    for index in range(shnum):
        base = shoff + index * shentsize
        name, sh_type, flags, addr, offset, size, link, info, addralign, entsize = struct.unpack_from(
            "<IIQQQQIIQQ", data, base
        )
        section_headers.append(
            {
                "name": name,
                "type": sh_type,
                "flags": flags,
                "addr": addr,
                "offset": offset,
                "size": size,
                "link": link,
                "info": info,
                "addralign": addralign,
                "entsize": entsize,
            }
        )

    symbols: List[Dict[str, int]] = []
    dynamic_entries: List[Dict[str, int]] = []
    for sh in section_headers:
        if sh["type"] == 2:  # SHT_SYMTAB
            count = sh["size"] // 24
            for position in range(count):
                base = sh["offset"] + position * 24
                name, info, other, shndx, value, size = struct.unpack_from(
                    "<IBBHQQ", data, base
                )
                symbols.append(
                    {
                        "name": name,
                        "info": info,
                        "other": other,
                        "shndx": shndx,
                        "value": value,
                        "size": size,
                    }
                )
        elif sh["type"] == 6:  # SHT_DYNAMIC
            count = sh["size"] // 16
            for position in range(count):
                base = sh["offset"] + position * 16
                tag, value = struct.unpack_from("<QQ", data, base)
                dynamic_entries.append({"tag": tag, "value": value})

    return HandwrittenElf(header, section_headers, symbols, dynamic_entries)


def section_names(parsed: HandwrittenElf, data: bytes) -> List[str]:
    """Resolve every section's name through the section header string table."""
    shstrndx = parsed.header["shstrndx"]
    if not 0 <= shstrndx < len(parsed.section_headers):
        return ["" for _ in parsed.section_headers]
    strtab_header = parsed.section_headers[shstrndx]
    table = data[strtab_header["offset"] : strtab_header["offset"] + strtab_header["size"]]
    names = []
    for sh in parsed.section_headers:
        offset = sh["name"]
        end = table.find(b"\x00", offset)
        if end < 0:
            end = len(table)
        names.append(table[offset:end].decode("latin-1"))
    return names


def run_readelf(data: bytes) -> str:
    """End-to-end baseline: parse, resolve names, render a report."""
    parsed = parse(data)
    names = section_names(parsed, data)
    lines = [
        "ELF Header:",
        f"  Entry point address: 0x{parsed.header['entry']:x}",
        f"  Machine: {parsed.header['machine']}",
        f"  Number of section headers: {parsed.header['shnum']}",
        f"  Section header string table index: {parsed.header['shstrndx']}",
        "",
        "Section Headers:",
        "  [Nr] Name                Type  Offset    Size      Link  EntSize",
    ]
    for index, (sh, name) in enumerate(zip(parsed.section_headers, names)):
        lines.append(
            f"  [{index:2d}] {name:<18s} {sh['type']:5d} "
            f"{sh['offset']:#9x} {sh['size']:#9x} {sh['link']:5d} {sh['entsize']:7d}"
        )
    lines.append("")
    lines.append(f"Symbol table entries: {len(parsed.symbols)}")
    for position, symbol in enumerate(parsed.symbols):
        lines.append(
            f"  {position:4d}: value={symbol['value']:#x} "
            f"size={symbol['size']} name_off={symbol['name']}"
        )
    lines.append(f"Dynamic entries: {len(parsed.dynamic_entries)}")
    return "\n".join(lines)
