"""Benchmark regression gate: fail CI when the compiled speedup collapses.

Compares a freshly measured Fig. 13 benchmark report (the CI smoke run of
``benchmarks/bench_compiler_speedup.py``) against the committed
``BENCH_compiler.json`` trajectory and exits non-zero when the median
compiled-backend speedup regressed more than the tolerance (default 15%)
below the committed value.

The tolerance absorbs machine-to-machine and quick-vs-full noise (the
committed JSON is a full run on the development machine; CI measures a
``--quick`` workload on shared runners).  A genuine regression — an
optimization pass broken or accidentally disabled — drops the median far
more than 15%, while ordinary jitter stays well inside it.

Usage::

    python tools/bench_gate.py CURRENT.json [BASELINE.json] [--tolerance 0.15]

``BASELINE.json`` defaults to ``BENCH_compiler.json`` at the repository
root.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def gate(current_path: str, baseline_path: str, tolerance: float) -> int:
    current = _load(current_path)
    baseline = _load(baseline_path)
    failures = []
    checks = [
        ("median_speedup", "median compiled speedup"),
        ("aot_median_speedup", "median AOT speedup"),
    ]
    for key, label in checks:
        committed = baseline.get(key)
        measured = current.get(key)
        if committed is None or measured is None:
            print(f"bench-gate: {label}: missing ({key}); skipped")
            continue
        floor = committed * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"bench-gate: {label}: measured {measured:.2f}x vs committed "
            f"{committed:.2f}x (floor {floor:.2f}x at -{tolerance:.0%}): {verdict}"
        )
        if measured < floor:
            failures.append(label)
    # Informational only: the tree-elision win is asserted functionally by
    # the test suite; its ratio is printed for the record.
    elision = current.get("validate_median_speedup_vs_tree")
    if elision is not None:
        print(f"bench-gate: validate-only vs tree (informational): {elision:.2f}x")
    if failures:
        print(
            f"bench-gate: FAILED — {', '.join(failures)} regressed more than "
            f"{tolerance:.0%} below the committed BENCH_compiler.json",
            file=sys.stderr,
        )
        return 1
    print("bench-gate: passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly measured benchmark JSON")
    parser.add_argument(
        "baseline",
        nargs="?",
        default=os.path.join(_REPO_ROOT, "BENCH_compiler.json"),
        help="committed trajectory JSON (default: BENCH_compiler.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression below the committed median "
        "(default: 0.15)",
    )
    args = parser.parse_args(argv)
    return gate(args.current, args.baseline, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
