"""The IPG parsing engine: a direct implementation of the big-step semantics.

This module implements the judgments of Figure 8 (and Figure 15 for arrays)
as a recursive-descent interpreter:

* ``s ⊢ A ⇓ R``               →  :meth:`_Run.parse_nonterminal`
* ``s, A ⊢ alt... ⇓ R``        →  biased choice over alternatives
* ``s, A, E, Tr ⊢ tm... ⇓ R``  →  sequential execution of (reordered) terms
* ``s, A, E, Tr ⊢ tm ⇓ E', R`` →  :meth:`_Run._exec_term`

Key behaviours taken from the paper:

* every alternative starts with ``E = {EOI ↦ |s|, start ↦ |s|, end ↦ 0}``;
* terminals and nonterminals evaluate their interval first and parse only
  the local input confined by it (zero-copy: a :class:`~repro.core.span.Span`
  window, never a byte copy);
* a nonterminal's ``start``/``end`` are re-based by ``+l`` into the caller's
  coordinates, and ``updStartEnd`` widens the caller's window only when the
  callee actually touched input (``end ≠ 0``);
* choice is biased: the first successful alternative wins;
* results are memoized on ``(nonterminal, lo, hi)`` as in PEG packrat
  parsing, giving the O(n²) bound of section 3.3.

The public entry point is :class:`Parser`.
"""

from __future__ import annotations

import sys
from time import monotonic as _monotonic
from typing import Dict, List, Optional, Union

from .ast import (
    Alternative,
    Grammar,
    Rule,
    Term,
    TermArray,
    TermAttrDef,
    TermGuard,
    TermNonterminal,
    TermSwitch,
    TermTerminal,
)
from .attrcheck import check_grammar
from .autocomplete import complete_grammar
from .buffers import as_buffer
from .builtins import (
    BUILTIN_FAIL,
    BUILTINS,
    BlackboxCallable,
    is_builtin,
    normalize_blackbox_result,
)
from .env import EvalContext, initial_env, upd_start_end_in_place
from .errors import (
    BlackboxError,
    CompilationError,
    EvaluationError,
    IPGError,
    LimitExceeded,
    ParseFailure,
)
from .grammar_parser import parse_grammar
from .limits import DEFAULT_LIMITS, ParseLimits
from .parsetree import ArrayNode, Leaf, Node, ParseTree

#: Sentinel returned by the internal machinery when parsing fails; public
#: entry points convert it into :class:`ParseFailure`.
FAIL = object()


class _LocalRules:
    """A linked scope of ``where`` local rules visible to an invocation."""

    __slots__ = ("rules", "parent")

    def __init__(self, rules: Dict[str, Rule], parent: Optional["_LocalRules"]):
        self.rules = rules
        self.parent = parent

    def lookup(self, name: str) -> Optional[Rule]:
        scope: Optional[_LocalRules] = self
        while scope is not None:
            if name in scope.rules:
                return scope.rules[name]
            scope = scope.parent
        return None


def prepare_grammar(grammar: Union[Grammar, str]) -> Grammar:
    """Run the front-end pipeline: parse text, complete intervals, check."""
    if isinstance(grammar, str):
        grammar = parse_grammar(grammar)
    if not grammar.completed:
        complete_grammar(grammar)
    if not grammar.checked:
        check_grammar(grammar)
    return grammar


class Parser:
    """A parser for one Interval Parsing Grammar.

    Parameters
    ----------
    grammar:
        Either IPG source text or an already constructed
        :class:`~repro.core.ast.Grammar`.  Interval auto-completion and
        attribute checking are run automatically if they have not been.
    blackboxes:
        Mapping from blackbox nonterminal names to Python callables
        (section 3.4).  Each callable receives the bytes of its interval.
    memoize:
        Enable packrat-style memoization of nonterminal results.
    recursion_limit:
        Python recursion limit to install while parsing; IPG rules such as
        the GIF ``Blocks`` list are deliberately recursive.
    backend:
        ``"compiled"`` (the default) stages the grammar into specialized
        Python closures via :mod:`repro.core.backends.closures`;
        ``"tablevm"`` lowers it onto the plan IR and executes the linked
        tables in the :mod:`repro.core.backends.tablevm` dispatch loop;
        ``"interpreted"`` uses the reference tree-walking interpreter.
        All produce identical parse trees; when the closure compiler
        cannot specialize a construct the parser silently falls back to
        the interpreter (the :attr:`backend` attribute reports the engine
        actually in use).
    first_byte_dispatch:
        Enable first-byte dispatch (:mod:`repro.core.firstsets`): rules
        whose alternatives have distinguishable admissible first bytes
        consult a byte-indexed jump table instead of trying alternatives
        in order.  On by default for both backends; dispatch preserves
        biased order among the admitted alternatives, so trees are
        identical either way (the flag exists for differential testing
        and as an escape hatch).
    bulk_fixed_shape:
        Enable fixed-shape vectorization (:mod:`repro.core.shapes`): rules
        whose byte layout is statically fixed decode through precompiled
        ``struct`` plans — the compiled backend fuses fixed prefixes and
        bulk-decodes fixed-stride arrays, the interpreter runs one-shot
        plan decoders.  On by default; plans are observably identical to
        the per-term path (the flag exists for differential testing and
        as an escape hatch).
    limits:
        :class:`~repro.core.limits.ParseLimits` resource budgets applied
        to every parse (``None`` selects the production defaults).  Pass
        ``ParseLimits.unlimited()`` to disable budgeting for trusted
        input.  Tripped budgets raise
        :class:`~repro.core.errors.LimitExceeded`.
    """

    BACKENDS = ("compiled", "interpreted", "tablevm")

    #: Valid values of the ``emit`` execution-mode argument.
    EMIT_MODES = ("tree", "spans", None)

    def __init__(
        self,
        grammar: Union[Grammar, str],
        blackboxes: Optional[Dict[str, BlackboxCallable]] = None,
        memoize: bool = True,
        recursion_limit: int = 100_000,
        backend: str = "compiled",
        first_byte_dispatch: bool = True,
        bulk_fixed_shape: bool = True,
        limits: Optional[ParseLimits] = None,
    ):
        if backend not in self.BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {self.BACKENDS}"
            )
        self.grammar = prepare_grammar(grammar)
        self.blackboxes = dict(blackboxes or {})
        self.memoize = memoize
        self.recursion_limit = recursion_limit
        self.limits = DEFAULT_LIMITS if limits is None else limits
        self.requested_backend = backend
        self.backend = backend
        self.first_byte_dispatch = bool(first_byte_dispatch)
        self.bulk_fixed_shape = bool(bulk_fixed_shape)
        self._compiled = None
        self._compiled_elided = None
        self._compiled_stream: Dict[bool, object] = {}
        self._tablevm = None
        self._tablevm_stream = None
        self._interp_dispatch = None
        self._shape_decoder_maps: Dict[bool, Dict[str, object]] = {}
        self._validated_starts: set = set()
        self._streamability = None
        #: record_spans engines, keyed by the frozen rule-name set (the
        #: instrumentation bakes the recorded set into the wrappers).
        self._span_engines: Dict[frozenset, object] = {}
        if backend == "compiled":
            from .compiler import compile_grammar  # deferred: avoids an import cycle

            try:
                self._compiled = compile_grammar(
                    self.grammar,
                    memoize=memoize,
                    blackboxes=self.blackboxes,
                    optimizations=self._optimizations(),
                    limits=self.limits,
                )
            except CompilationError:
                # Automatic fallback: constructs the compiler does not yet
                # specialize run on the reference interpreter instead.
                self.backend = "interpreted"
        elif backend == "tablevm":
            from .backends.tablevm import TableGrammar
            from .ir import lower

            self._tablevm = TableGrammar(
                lower(
                    self.grammar,
                    memoize=memoize,
                    optimizations=self._optimizations(),
                ),
                blackboxes=self.blackboxes,
                limits=self.limits,
            )

    def _optimizations(self):
        """The compiler pass set honouring the per-parser toggles."""
        if self.first_byte_dispatch and self.bulk_fixed_shape:
            return None  # compiler default: every pass on
        from .compiler import Optimizations

        return Optimizations(
            first_byte_dispatch=self.first_byte_dispatch,
            bulk_fixed_shape=self.bulk_fixed_shape,
        )

    def _shape_decoders(self, build_tree: bool) -> Optional[Dict[str, object]]:
        """One-shot fixed-shape decoders for the interpreter (cached).

        Maps top-level rule names to plan decoders
        (:func:`repro.core.shapes.rule_decoders`); ``None`` when
        vectorization is disabled or no rule has a worthwhile full plan.
        """
        if not self.bulk_fixed_shape:
            return None
        if build_tree not in self._shape_decoder_maps:
            from .shapes import rule_decoders

            self._shape_decoder_maps[build_tree] = rule_decoders(
                self.grammar, build_tree
            )
        return self._shape_decoder_maps[build_tree] or None

    def _elided_compiled(self):
        """The tree-elision compilation backing ``emit="spans"``/``None``."""
        if self._compiled is None:
            return None
        if self._compiled_elided is None:
            from .compiler import compile_grammar

            try:
                self._compiled_elided = compile_grammar(
                    self.grammar,
                    memoize=self.memoize,
                    blackboxes=self.blackboxes,
                    optimizations=self._optimizations(),
                    elide_tree=True,
                    limits=self.limits,
                )
            except CompilationError:  # pragma: no cover - same checks as batch
                self._compiled_elided = False
        return self._compiled_elided or None

    def _span_engine(self, span_rules: frozenset):
        """The compiled record_spans engine for ``span_rules`` (cached).

        A dedicated unmemoized compilation in which every rule and
        alternative is reached through a late-bound global name (no
        inlining, no dispatch tables, no decode fast paths), instrumented
        by :func:`~repro.core.backends.closures.instrument_span_recording`.
        Returns ``(compiled, holder)``, or ``None`` to fall back to the
        reference interpreter's native span trail.
        """
        engine = self._span_engines.get(span_rules)
        if engine is None:
            from .backends.closures import instrument_span_recording
            from .compiler import Optimizations, compile_grammar

            try:
                compiled = compile_grammar(
                    self.grammar,
                    memoize=False,
                    blackboxes=self.blackboxes,
                    optimizations=Optimizations(
                        module_level_where=True,
                        inline_single_use=False,
                        first_byte_dispatch=False,
                        bulk_fixed_shape=False,
                    ),
                    limits=self.limits,
                )
            except CompilationError:
                engine = False
            else:
                engine = (compiled, instrument_span_recording(compiled, span_rules))
            self._span_engines[span_rules] = engine
        return engine or None

    def _try_parse_recording(self, data, start_name, span_rules):
        """The ``record_spans`` execution path: ``(result, spans)``.

        Every engine runs with memoization and the decode fast paths off,
        records ``(rule, abs_start, abs_end)`` post-order at rule success,
        and discards spans recorded inside abandoned alternatives — so the
        trail is exactly the committed derivation and identical across
        engines (differential-tested by the cross-engine matrix).
        """
        unknown = sorted(
            name for name in span_rules if not self.grammar.has_rule(name)
        )
        if unknown:
            raise IPGError(
                f"record_spans names unknown top-level rule(s) {unknown}; "
                f"builtins and blackboxes have no rule spans"
            )
        data = as_buffer(data)
        self._validate_blackboxes(start_name)
        previous_limit = sys.getrecursionlimit()
        if self.recursion_limit > previous_limit:
            sys.setrecursionlimit(self.recursion_limit)
        try:
            if self._tablevm is not None:
                run = self._tablevm.new_run(data, span_rules=span_rules)
                result = run.parse_nonterminal(start_name, 0, len(data), None, None)
                spans = run.spans
            else:
                engine = (
                    self._span_engine(span_rules)
                    if self.backend == "compiled"
                    else None
                )
                if engine is not None:
                    compiled, holder = engine
                    holder[0] = spans = []
                    result = compiled.parse_nonterminal(data, start_name, 0, len(data))
                else:
                    run = _Run(self, data, span_rules=span_rules)
                    result = run.parse_nonterminal(
                        start_name, 0, len(data), None, None
                    )
                    spans = run.spans
        except (RecursionError, MemoryError) as exc:
            raise LimitExceeded(
                f"{type(exc).__name__} while parsing {start_name!r}; the input "
                f"drives unbounded recursion or allocation — set "
                f"ParseLimits.max_depth/max_steps to fail earlier",
                limit="recursion",
                nonterminal=start_name,
            ) from exc
        finally:
            if self.recursion_limit > previous_limit:
                sys.setrecursionlimit(previous_limit)
        if result is FAIL:
            return None, []
        return result, spans

    def _interpreter_dispatch(self) -> Dict[int, tuple]:
        """First-byte jump tables for the interpreter, keyed by rule id.

        Each entry maps a rule — top-level *or* ``where`` local — to
        ``(table, empty, pair_table)`` where ``table[byte]`` is the
        biased-ordered tuple of alternatives still admissible for that
        first byte, ``empty`` the tuple to try on an empty window, and
        ``pair_table`` the optional FIRST₂ prefix-probe refinement
        (first byte -> probe offset + probed-byte row).
        """
        if not self.first_byte_dispatch:
            return {}
        if self._interp_dispatch is None:
            from .firstsets import dispatch_plans, local_dispatch_plans

            def convert(rule, plan):
                alternatives = rule.alternatives

                def alts(entry):
                    return tuple(alternatives[i] for i in entry)

                pair_table = None
                if plan.pair_table:
                    pair_table = {
                        byte: (offset, tuple(alts(entry) for entry in row))
                        for byte, (offset, row) in plan.pair_table.items()
                    }
                return (
                    tuple(alts(entry) for entry in plan.table),
                    alts(plan.empty),
                    pair_table,
                )

            tables: Dict[int, tuple] = {}
            for name, plan in dispatch_plans(self.grammar).items():
                rule = self.grammar.rule(name)
                tables[id(rule)] = convert(rule, plan)
            for rule, plan in local_dispatch_plans(self.grammar):
                tables[id(rule)] = convert(rule, plan)
            self._interp_dispatch = tables
        return self._interp_dispatch

    def _streaming_compiled(self, elide_tree: bool = False):
        """The compiled grammar the streaming driver re-enters (cached).

        Streaming soundness leans on *complete* memoization: after a
        suspension the engine re-enters from the start symbol and every
        already-decided sub-parse must be replayed as a memo hit, never by
        re-reading bytes the compaction policy may have discarded.  The
        default batch-parse compilation elides memo tables for
        non-recursive rules and inlines single-use rules, so streaming uses
        a dedicated variant with those two passes off (dense tables and
        module-level where-rules keep working: ``lo`` stays a plain offset
        and memo persistence is per-slot either way).  First-byte dispatch
        also keeps working: an undecidable byte read suspends via
        ``NeedMoreInput`` like any other read.  ``elide_tree`` selects the
        tree-elision variant for ``emit="spans"``/validate-only streams.
        """
        if self._compiled is None:
            return None
        if elide_tree not in self._compiled_stream:
            from .compiler import Optimizations, compile_grammar

            try:
                self._compiled_stream[elide_tree] = compile_grammar(
                    self.grammar,
                    memoize=self.memoize,
                    blackboxes=self.blackboxes,
                    optimizations=Optimizations(
                        module_level_where=True,
                        dense_memo=True,
                        skip_nonrecursive_memo=False,
                        inline_single_use=False,
                        first_byte_dispatch=self.first_byte_dispatch,
                        bulk_fixed_shape=self.bulk_fixed_shape,
                    ),
                    elide_tree=elide_tree,
                    # Dispatch decisions are memoized per parse so stream
                    # re-entries never re-read already-dispatched bytes
                    # (a re-read of an in-flight spine rule's first byte
                    # would pin the compaction watermark at its window
                    # start, reverting compact=True to whole-stream
                    # buffering).
                    stream_dispatch_cache=True,
                    limits=self.limits,
                )
            except CompilationError:  # pragma: no cover - same checks as batch
                self._compiled_stream[elide_tree] = None
        return self._compiled_stream[elide_tree]

    def _tablevm_streaming(self):
        """The table-VM link the streaming driver re-enters (cached).

        Same memo policy as the compiled streaming variant (see
        :meth:`_streaming_compiled`): every rule memoizes, so stream
        re-entries replay already-decided sub-parses as memo hits instead
        of re-reading bytes compaction may have discarded.  The struct
        decode fast paths are off — plan decoders read whole fixed windows
        at once, which bypasses the ``NeedMoreInput`` suspension protocol.
        """
        if self._tablevm_stream is None:
            from .backends.tablevm import TableGrammar
            from .ir import Optimizations, lower

            self._tablevm_stream = TableGrammar(
                lower(
                    self.grammar,
                    memoize=self.memoize,
                    optimizations=Optimizations(
                        module_level_where=True,
                        dense_memo=True,
                        skip_nonrecursive_memo=False,
                        inline_single_use=False,
                        first_byte_dispatch=self.first_byte_dispatch,
                        bulk_fixed_shape=self.bulk_fixed_shape,
                    ),
                ),
                blackboxes=self.blackboxes,
                limits=self.limits,
                use_decoders=False,
            )
        return self._tablevm_stream

    def register_blackbox(self, name: str, parser: BlackboxCallable) -> None:
        """Register (or replace) the implementation of a blackbox parser.

        The compiled backend resolves blackboxes through this parser's live
        registry, so registration after construction works for both engines.
        """
        self.blackboxes[name] = parser

    def _validate_blackboxes(self, start: str) -> None:
        """Check that every blackbox reachable from ``start`` is registered.

        Runs once per start symbol, at the first ``parse()``/``try_parse()``
        call, and raises :class:`~repro.core.errors.BlackboxError` naming the
        missing implementations — instead of failing deep inside a parse (or
        silently accepting a mis-configured parser whose blackbox branch is
        never reached by the inputs at hand).
        """
        if start in self._validated_starts:
            return
        missing = sorted(
            _reachable_blackboxes(self.grammar, start) - set(self.blackboxes)
        )
        if missing:
            raise BlackboxError(
                f"grammar uses blackbox parser(s) {missing} reachable from "
                f"{start!r} but no implementation was registered; pass "
                f"blackboxes=... or call register_blackbox()"
            )
        self._validated_starts.add(start)

    # -- public parsing API ---------------------------------------------------
    def parse(
        self,
        data: bytes,
        start: Optional[str] = None,
        emit: Optional[str] = "tree",
        record_spans=None,
    ):
        """Parse ``data`` and return the parse result for ``emit``.

        ``emit`` selects the execution mode:

        * ``"tree"`` (default) — the full parse tree, as always;
        * ``"spans"`` — the root :class:`~repro.core.parsetree.Node` with
          its complete attribute environment (``start``/``end`` spans and
          every computed attribute) but **no children**: the engines run a
          tree-elision fast path that skips all ``Node``/``Leaf``/
          ``ArrayNode`` construction and payload copies;
        * ``None`` — validate only: returns ``True`` on success, same fast
          path, nothing is retained.

        ``record_spans`` — a set of top-level rule names — switches the
        return value to ``(tree, spans)`` where ``spans`` is the list of
        ``(rule, start, end)`` byte-offset triples of every *committed*
        occurrence of those rules, in completion (post) order.  Recording
        runs with memoization and the decode fast paths disabled so each
        occurrence really executes; spans from abandoned alternatives are
        discarded.  Only combined with ``emit="tree"``.

        Raises a structured :class:`~repro.core.errors.ParseFailure`
        subclass when the grammar does not accept the input: the failed
        parse is re-run through the diagnostic interpreter
        (:mod:`repro.core.diagnose`) to classify the furthest failure
        point, so the exception carries the failure class
        (:class:`~repro.core.errors.TruncatedInput`, ...), byte offset,
        rule stack, and violated interval.
        """
        result = self.try_parse(data, start, emit=emit, record_spans=record_spans)
        failed = (result[0] if record_spans is not None else result) is None
        if failed:
            from .diagnose import diagnose_parser

            raise diagnose_parser(self, data, start or self.grammar.start)
        return result

    def try_parse(
        self,
        data: bytes,
        start: Optional[str] = None,
        emit: Optional[str] = "tree",
        record_spans=None,
    ):
        """Like :meth:`parse` but returns ``None`` on non-matching input
        (``(None, [])`` under ``record_spans``).

        Configuration errors still raise: an unknown start symbol
        (:class:`~repro.core.errors.IPGError`) or a reachable blackbox with
        no registered implementation
        (:class:`~repro.core.errors.BlackboxError`).
        """
        if emit not in self.EMIT_MODES:
            raise ValueError(
                f"unknown emit mode {emit!r}; expected one of {self.EMIT_MODES}"
            )
        start_name = start or self.grammar.start
        if record_spans is not None:
            if emit != "tree":
                raise ValueError(
                    'record_spans requires emit="tree" (the recording '
                    "engines always run the tree-building path)"
                )
            return self._try_parse_recording(
                data, start_name, frozenset(record_spans)
            )
        data = as_buffer(data)
        self._validate_blackboxes(start_name)
        previous_limit = sys.getrecursionlimit()
        if self.recursion_limit > previous_limit:
            sys.setrecursionlimit(self.recursion_limit)
        try:
            if self._tablevm is not None:
                run = self._tablevm.new_run(data, build_tree=emit == "tree")
                result = run.parse_nonterminal(start_name, 0, len(data), None, None)
            else:
                if emit == "tree":
                    compiled = self._compiled
                else:
                    compiled = self._elided_compiled()
                if compiled is not None:
                    result = compiled.parse_nonterminal(data, start_name, 0, len(data))
                else:
                    run = _Run(self, data, build_tree=emit == "tree")
                    result = run.parse_nonterminal(start_name, 0, len(data), None, None)
        except (RecursionError, MemoryError) as exc:
            # Safety net: the explicit max_depth check fires first under the
            # default limits; a bare interpreter-stack or allocator blowup
            # (e.g. with ParseLimits.unlimited()) still surfaces as a
            # structured LimitExceeded instead of a raw stack trace.
            raise LimitExceeded(
                f"{type(exc).__name__} while parsing {start_name!r}; the input "
                f"drives unbounded recursion or allocation — set "
                f"ParseLimits.max_depth/max_steps to fail earlier",
                limit="recursion",
                nonterminal=start_name,
            ) from exc
        finally:
            if self.recursion_limit > previous_limit:
                sys.setrecursionlimit(previous_limit)
        if result is FAIL:
            return None
        if emit is None:
            return True
        assert isinstance(result, Node)
        return result

    def accepts(self, data: bytes, start: Optional[str] = None) -> bool:
        """Whether the grammar accepts ``data`` (tree-elision fast path)."""
        return self.try_parse(data, start, emit=None) is not None

    def parse_recover(
        self,
        data,
        start: Optional[str] = None,
        *,
        max_errors: Optional[int] = None,
        resync_scan_bytes: Optional[int] = None,
        resync_probes: Optional[int] = None,
    ):
        """Parse ``data``, salvaging everything that parses.

        Returns a :class:`~repro.core.recover.RecoveredDocument`: a normal
        parse tree in which failed subtrees are replaced by
        :class:`~repro.core.recover.ErrorNode` leaves carrying the same
        structured taxonomy diagnosis :meth:`parse` would have raised,
        plus the window-ordered ``errors`` list and salvage accounting
        (``salvaged_bytes`` / ``error_bytes``).  Input that parses cleanly
        costs one normal engine pass and comes back with ``errors == []``.

        Never raises for input-shaped problems — a wholly unrecoverable
        document (or a tripped :class:`~repro.core.limits.ParseLimits`
        budget) degrades to a root ``ErrorNode`` — but configuration
        errors (unknown start symbol, unregistered reachable blackbox)
        still raise like every other entry point.  ``max_errors`` bounds
        acceptable degradation: when the recovered document carries more
        errors, the original structured diagnosis is raised as if
        recovery were off.

        ``resync_scan_bytes`` / ``resync_probes`` bound the FIRST-set
        resync scan (see :mod:`repro.core.recover`).
        """
        from . import recover as _recover

        kwargs = {}
        if resync_scan_bytes is not None:
            kwargs["resync_scan_bytes"] = resync_scan_bytes
        if resync_probes is not None:
            kwargs["resync_probes"] = resync_probes
        return _recover.parse_recover(
            self, data, start, max_errors=max_errors, **kwargs
        )

    def parse_lazy(
        self,
        data,
        start: Optional[str] = None,
        *,
        lazy_threshold: Optional[int] = None,
        recover: bool = False,
    ):
        """Parse ``data`` lazily: validate now, decode subtrees on access.

        Returns the root :class:`~repro.core.lazytree.LazyNode` of a tree
        whose structure decodes on demand — validation runs immediately
        (one tree-elision pass, same cost as ``emit=None``; non-matching
        input raises the identical structured
        :class:`~repro.core.errors.ParseFailure` subclass as
        :meth:`parse`), but a subtree's children are only materialized by
        re-entering the engines on its recorded input window the first
        time they are accessed.  Over an mmap'd file this gives
        random access to multi-gigabyte inputs at near-``--validate``
        cost plus the bytes actually touched.

        ``lazy_threshold`` is the minimum window size (bytes) at which a
        top-level-rule invocation is left as a stub instead of being
        decoded with its parent; defaults to
        :data:`~repro.core.lazytree.DEFAULT_LAZY_THRESHOLD`.  ``0`` stubs
        every top-level rule invocation (useful for pinning decode
        granularity in tests); a threshold larger than the input degrades
        to a fully eager decode on first access.

        The document-wide decode log lives on ``root.document``
        (:class:`~repro.core.lazytree.LazyDocument`): ``decoded`` holds
        one ``(rule, lo, hi, charged_bytes)`` entry per materialization
        and ``decoded_bytes`` their running total.  A fully materialized
        lazy tree compares equal to :meth:`parse`'s tree.

        ``recover=True`` composes laziness with
        :meth:`parse_recover`-style degradation: a stub whose window
        fails to decode on access (an injected I/O fault, a buffer whose
        bytes changed after validation) materializes as a single
        :class:`~repro.core.recover.ErrorNode` child instead of raising.
        The validating pass is unchanged — non-matching input still
        raises up front.
        """
        from .lazytree import DEFAULT_LAZY_THRESHOLD, LazyDocument

        if lazy_threshold is None:
            lazy_threshold = DEFAULT_LAZY_THRESHOLD
        document = LazyDocument(
            self, data, lazy_threshold=lazy_threshold, recover=recover
        )
        return document.parse(start)

    # -- streaming API --------------------------------------------------------
    def streamability_report(self):
        """The §8 stream-parser analysis for this grammar (cached)."""
        if self._streamability is None:
            from .streamability import analyze_streamability

            self._streamability = analyze_streamability(self.grammar)
        return self._streamability

    def stream(
        self,
        start: Optional[str] = None,
        *,
        force: bool = False,
        compact: bool = True,
        emit: Optional[str] = "tree",
    ):
        """Begin a streaming parse; returns a feed()/finish() session.

        The grammar must pass the §8 streamability analysis
        (:meth:`streamability_report`) unless ``force=True`` — a forced
        stream still parses correctly, but reads that the analysis would
        have flagged simply buffer input until the stream is finished, so
        the bounded-memory property is lost.  A forced stream left with the
        default ``compact=True`` may additionally detect, mid-stream, that
        the grammar re-reads bytes the compaction policy already discarded;
        that raises a descriptive error asking for ``compact=False``, which
        disables discarding of already-consumed bytes entirely (see
        :class:`~repro.core.streaming.StreamingParse`).

        Both backends stream: the compiled engine re-enters its specialized
        closures against persistent per-rule memo tables; the interpreter
        serves as the reference implementation for differential testing.
        """
        from .errors import NotStreamableError
        from .streaming import StreamingParse

        if emit not in self.EMIT_MODES:
            raise ValueError(
                f"unknown emit mode {emit!r}; expected one of {self.EMIT_MODES}"
            )
        start_name = start or self.grammar.start
        self._validate_blackboxes(start_name)
        if not force:
            report = self.streamability_report()
            if not report.streamable:
                raise NotStreamableError(
                    f"grammar is not streamable: {report.summary()}; pass "
                    f"force=True to stream anyway (unbounded buffering)",
                    report=report,
                )
        return StreamingParse(self, start_name, compact=compact, emit=emit)

    def parse_stream(
        self,
        chunks,
        start: Optional[str] = None,
        *,
        force: bool = False,
        compact: bool = True,
        emit: Optional[str] = "tree",
    ):
        """Parse an iterable of byte chunks incrementally.

        Produces a tree identical to ``parse(b"".join(chunks))`` without
        ever requiring the whole input in memory, for any chunking of the
        input (including 1-byte chunks and empty chunks).  Raises
        :class:`~repro.core.errors.ParseFailure` when the input does not
        match and :class:`~repro.core.errors.NotStreamableError` when the
        grammar fails the §8 analysis (unless ``force=True``).

        A wrong tree is never produced.  The §8 analysis is necessary
        rather than sufficient for *compacted* streaming: an adversarial
        grammar can slip past it (its position checks are not a full
        symbolic reach analysis) and still revisit bytes that compaction
        already discarded — that is detected at runtime and stopped with a
        descriptive error naming ``compact=False``, under which the
        identical-tree guarantee is unconditional.
        """
        session = self.stream(start, force=force, compact=compact, emit=emit)
        for chunk in chunks:
            session.feed(chunk)
        return session.finish()


class _Run:
    """State for parsing a single input buffer (memo table, blackboxes).

    ``build_tree=False`` selects the tree-elision mode: the run keeps the
    complete attribute semantics (node environments, element lists for
    array references) but never appends children, so no ``Leaf`` or
    ``ArrayNode`` is allocated and builtin/blackbox payloads are dropped.
    ``dispatch`` holds the parser's first-byte jump tables (rule id ->
    ``(table, empty)``; see :meth:`Parser._interpreter_dispatch`).
    ``dispatch_cache=True`` (set by the streaming driver, whose runs
    persist across re-entries) memoizes each dispatch decision per
    ``(rule, lo)`` so re-entries never re-read already-dispatched bytes —
    the re-read of an in-flight spine rule's first byte on every attempt
    would pin the compaction watermark at its window start.
    """

    __slots__ = (
        "parser",
        "grammar",
        "data",
        "memo",
        "memoize",
        "build",
        "dispatch",
        "dispatch_cache",
        "shapes",
        "limits",
        "fuel",
        "fuel0",
        "wall",
        "stack",
        "max_depth",
        "memo_cap",
        "nodes",
        "span_rules",
        "spans",
    )

    def __init__(
        self,
        parser: Parser,
        data: bytes,
        build_tree: bool = True,
        dispatch_cache: bool = False,
        span_rules: Optional[frozenset] = None,
    ):
        self.parser = parser
        self.grammar = parser.grammar
        self.data = data
        self.memo: Dict[tuple, object] = {}
        # Span recording disables memoization and the decode fast paths:
        # the recorded trail is then exactly the committed derivation,
        # identical across engines by construction (see _VMRun).
        self.span_rules = span_rules
        self.spans: Optional[List[tuple]] = [] if span_rules is not None else None
        self.memoize = parser.memoize and span_rules is None
        self.build = build_tree
        self.dispatch = parser._interpreter_dispatch() or None
        self.dispatch_cache: Optional[dict] = (
            {} if dispatch_cache and self.dispatch else None
        )
        #: Fixed-shape one-shot decoders (rule name -> fn) or None.
        self.shapes = (
            None if span_rules is not None else parser._shape_decoders(build_tree)
        )
        # Resource budgets (None = every budget unlimited; see limits.py).
        # fuel/nodes are single-element cells so checks cost one list op;
        # the rule-name stack is popped on success only — a suspension
        # (NeedMoreInput) aborts the attempt, and the streaming driver
        # calls reset_budgets() before re-entering.
        limits = parser.limits
        self.limits = limits if limits is not None and limits.active else None
        if self.limits is not None:
            self.fuel0 = limits.fuel()
            self.fuel = [self.fuel0]
            # Wall budget: [tick countdown, monotonic deadline] — the
            # clock is read once per 256 rule entries, mirroring the
            # compiled backend's refill-point amortization.
            self.wall = (
                None if limits.max_wall_ms is None else [256, limits.deadline()]
            )
            self.stack: List[str] = []
            self.max_depth = (
                float("inf") if limits.max_depth is None else limits.max_depth
            )
            self.memo_cap = limits.max_memo_entries
            self.nodes = [
                float("inf") if limits.max_tree_nodes is None else limits.max_tree_nodes
            ]
        else:
            self.fuel0 = 0.0
            self.fuel = None
            self.wall = None
            self.stack = None
            self.max_depth = None
            self.memo_cap = None
            self.nodes = None

    def reset_budgets(self) -> None:
        """Restore per-attempt budgets (streaming re-entry).

        The step budget is per parse *attempt*: a stream re-enters from
        the start symbol after every suspension, replaying decided
        sub-parses as memo hits, so a cumulative budget would punish
        fine-grained chunking rather than adversarial input.  Each
        attempt is individually bounded, which is what rules out hangs.
        The rule stack is cleared because suspension unwinds without
        popping.
        """
        if self.limits is not None:
            self.fuel[0] = self.fuel0
            if self.wall is not None:
                self.wall[0] = 256
                self.wall[1] = self.limits.deadline()
            del self.stack[:]

    # -- nonterminal dispatch -------------------------------------------------
    def parse_nonterminal(
        self,
        name: str,
        lo: int,
        hi: int,
        outer_ctx: Optional[EvalContext],
        local_rules: Optional[_LocalRules],
    ):
        """``s[lo, hi] ⊢ name ⇓ R`` with scoping for local rules."""
        # 1. local (where) rules — never memoized, see the enclosing context.
        if local_rules is not None:
            local = local_rules.lookup(name)
            if local is not None:
                return self._parse_rule(local, lo, hi, outer_ctx, local_rules)
        # 2. top-level rules — memoizable, independent of the caller context.
        if self.grammar.has_rule(name):
            key = (name, lo, hi)
            if self.memoize and key in self.memo:
                return self.memo[key]
            decoder = None if self.shapes is None else self.shapes.get(name)
            if decoder is not None:
                # One-shot fixed-shape path: decode the whole rule through
                # its precompiled struct plan (observably identical).
                result = decoder(self.data, lo, hi)
            else:
                result = self._parse_rule(self.grammar.rule(name), lo, hi, None, None)
            if self.memoize:
                memo = self.memo
                memo[key] = result
                if self.memo_cap is not None and len(memo) > self.memo_cap:
                    raise LimitExceeded(
                        f"memo table exceeded max_memo_entries="
                        f"{self.memo_cap} while parsing {name!r}",
                        limit="max_memo_entries",
                        nonterminal=name,
                    )
            spans = self.spans
            if spans is not None and result is not FAIL and name in self.span_rules:
                spans.append(
                    (name, lo + result.env["start"], lo + result.env["end"])
                )
            return result
        # 3. builtin integer / raw parsers (the `btoi` specialization).
        if is_builtin(name):
            return self._parse_builtin(name, lo, hi)
        # 4. blackbox parsers.
        if name in self.grammar.blackboxes:
            return self._parse_blackbox(name, lo, hi)
        raise IPGError(f"no rule, builtin or blackbox for nonterminal {name!r}")

    def _parse_rule(
        self,
        rule: Rule,
        lo: int,
        hi: int,
        outer_ctx: Optional[EvalContext],
        local_rules: Optional[_LocalRules],
    ):
        """Budget-checked rule entry: fuel and recursion depth, then run.

        The stack is popped on *success only*: when a budget trips (or a
        stream suspends) the whole attempt aborts, so the un-popped names
        are exactly the active-rule stack the error should carry.
        """
        if self.limits is None:
            return self._run_rule(rule, lo, hi, outer_ctx, local_rules)
        fuel = self.fuel
        fuel[0] -= 1
        stack = self.stack
        stack.append(rule.name)
        if fuel[0] < 0:
            raise LimitExceeded(
                f"parse step budget exhausted (max_steps="
                f"{self.limits.max_steps}) while parsing {rule.name!r}",
                limit="max_steps",
                nonterminal=rule.name,
                rule_stack=tuple(stack),
            )
        wall = self.wall
        if wall is not None:
            wall[0] -= 1
            if wall[0] < 0:
                wall[0] = 256
                if _monotonic() > wall[1]:
                    raise LimitExceeded(
                        f"parse wall-clock budget exhausted (max_wall_ms="
                        f"{self.limits.max_wall_ms}) while parsing "
                        f"{rule.name!r}",
                        limit="wall",
                        nonterminal=rule.name,
                        rule_stack=tuple(stack),
                    )
        if len(stack) > self.max_depth:
            raise LimitExceeded(
                f"rule recursion exceeded max_depth={self.limits.max_depth} "
                f"while parsing {rule.name!r}",
                limit="max_depth",
                nonterminal=rule.name,
                rule_stack=tuple(stack),
            )
        result = self._run_rule(rule, lo, hi, outer_ctx, local_rules)
        stack.pop()
        return result

    def _run_rule(
        self,
        rule: Rule,
        lo: int,
        hi: int,
        outer_ctx: Optional[EvalContext],
        local_rules: Optional[_LocalRules],
    ):
        alternatives = rule.alternatives
        dispatch = self.dispatch
        entry = dispatch.get(id(rule)) if dispatch is not None else None
        if entry is not None:
            # First-byte dispatch: prune alternatives the window's first
            # byte (or two-byte prefix, where FIRST₂ refines) already rules
            # out (biased order preserved).  On a stream, reading the bytes
            # may suspend via NeedMoreInput — exactly as streaming-safe as
            # the pruned alternatives' own leading reads — and streaming
            # runs memoize the decision so re-entries never touch the
            # buffer again.
            if hi > lo:
                cache = self.dispatch_cache
                key = (id(rule), lo) if cache is not None else None
                alternatives = cache.get(key) if cache is not None else None
                if alternatives is None:
                    byte = self.data[lo]
                    pair_table = entry[2]
                    probe = pair_table.get(byte) if pair_table is not None else None
                    if probe is not None and lo + probe[0] < hi:
                        alternatives = probe[1][self.data[lo + probe[0]]]
                    else:
                        alternatives = entry[0][byte]
                    if cache is not None:
                        cache[key] = alternatives
            else:
                alternatives = entry[1]
        spans = self.spans
        checkpoint = len(spans) if spans is not None else 0
        for alternative in alternatives:
            result = self._parse_alternative(
                rule.name, alternative, lo, hi, outer_ctx, local_rules
            )
            if result is not FAIL:
                return result
            if spans is not None:
                # Discard spans recorded inside the failed alternative —
                # only the committed derivation is reported.
                del spans[checkpoint:]
        return FAIL

    def _parse_alternative(
        self,
        name: str,
        alternative: Alternative,
        lo: int,
        hi: int,
        outer_ctx: Optional[EvalContext],
        local_rules: Optional[_LocalRules],
    ):
        ctx = EvalContext(initial_env(hi - lo), outer=outer_ctx)
        children: List[ParseTree] = []
        if alternative.local_rules:
            local_rules = _LocalRules(
                {rule.name: rule for rule in alternative.local_rules}, local_rules
            )
        for term in alternative.terms:
            try:
                ok = self._exec_term(term, ctx, children, lo, hi, local_rules)
            except EvaluationError:
                # A failing interval/attribute computation (division by zero,
                # out-of-range array index, unbound attribute at runtime)
                # fails the alternative, like the invalid-interval case of the
                # binary-number example in section 2.
                return FAIL
            if not ok:
                return FAIL
        nodes = self.nodes
        if nodes is not None:
            nodes[0] -= 1
            if nodes[0] < 0:
                raise LimitExceeded(
                    f"parse tree exceeded max_tree_nodes="
                    f"{self.limits.max_tree_nodes} result nodes",
                    limit="max_tree_nodes",
                    nonterminal=name,
                )
        return Node(name, ctx.snapshot_env(), children)

    # -- term execution ---------------------------------------------------------
    def _exec_term(
        self,
        term: Term,
        ctx: EvalContext,
        children: List[ParseTree],
        lo: int,
        hi: int,
        local_rules: Optional[_LocalRules],
    ) -> bool:
        if isinstance(term, TermAttrDef):
            ctx.bind(term.name, term.expr.evaluate(ctx))
            return True
        if isinstance(term, TermGuard):
            return term.expr.evaluate(ctx) != 0
        if isinstance(term, TermTerminal):
            return self._exec_terminal(term, ctx, children, lo, hi)
        if isinstance(term, TermNonterminal):
            return self._exec_nonterminal(term, ctx, children, lo, hi, local_rules)
        if isinstance(term, TermArray):
            return self._exec_array(term, ctx, children, lo, hi, local_rules)
        if isinstance(term, TermSwitch):
            return self._exec_switch(term, ctx, children, lo, hi, local_rules)
        raise IPGError(f"unknown term kind {type(term).__name__}")  # pragma: no cover

    def _interval(self, term, ctx: EvalContext, length: int):
        """Evaluate a term's interval; returns ``(l, r)`` or ``None`` if invalid."""
        left = term.interval.left.evaluate(ctx)
        right = term.interval.right.evaluate(ctx)
        if not 0 <= left <= right <= length:
            return None
        return left, right

    def _exec_terminal(
        self,
        term: TermTerminal,
        ctx: EvalContext,
        children: List[ParseTree],
        lo: int,
        hi: int,
    ) -> bool:
        bounds = self._interval(term, ctx, hi - lo)
        if bounds is None:
            return False
        left, right = bounds
        literal = term.value
        if right - left < len(literal):
            return False
        absolute = lo + left
        if self.data[absolute : absolute + len(literal)] != literal:
            return False
        upd_start_end_in_place(ctx.env, left, left + len(literal), literal != b"")
        if self.build:
            children.append(Leaf(literal))
        return True

    def _exec_nonterminal(
        self,
        term: TermNonterminal,
        ctx: EvalContext,
        children: List[ParseTree],
        lo: int,
        hi: int,
        local_rules: Optional[_LocalRules],
    ) -> bool:
        bounds = self._interval(term, ctx, hi - lo)
        if bounds is None:
            return False
        left, right = bounds
        result = self.parse_nonterminal(term.name, lo + left, lo + right, ctx, local_rules)
        if result is FAIL:
            return False
        adjusted = _rebase(result, left)
        upd_start_end_in_place(
            ctx.env, adjusted.env["start"], adjusted.env["end"], result.env["end"] != 0
        )
        ctx.record_node(adjusted)
        if self.build:
            children.append(adjusted)
        return True

    def _exec_array(
        self,
        term: TermArray,
        ctx: EvalContext,
        children: List[ParseTree],
        lo: int,
        hi: int,
        local_rules: Optional[_LocalRules],
    ) -> bool:
        # The loop bounds are evaluated before the fresh element list becomes
        # visible, so they may still reference a previous same-named array.
        first = term.start.evaluate(ctx)
        stop = term.stop.evaluate(ctx)
        element_name = term.element.name
        elements: List[Node] = []
        had_binding = term.var in ctx.env
        saved = ctx.env.get(term.var)
        had_array = element_name in ctx.arrays
        saved_array = ctx.arrays.get(element_name)
        # Make the (initially empty) array visible so that element intervals
        # may reference earlier elements (e.g. `CDE(i - 1).end`).  Each array
        # term gets its own list: a second `for` term with the same element
        # name must not append into (or read from) the first term's elements,
        # and a partial parse must not leak into a previously bound array.
        ctx.arrays[element_name] = elements
        completed = False
        try:
            for index in range(first, stop):
                ctx.env[term.var] = index
                bounds = self._interval(term.element, ctx, hi - lo)
                if bounds is None:
                    return False
                left, right = bounds
                result = self.parse_nonterminal(
                    element_name, lo + left, lo + right, ctx, local_rules
                )
                if result is FAIL:
                    return False
                adjusted = _rebase(result, left)
                upd_start_end_in_place(
                    ctx.env,
                    adjusted.env["start"],
                    adjusted.env["end"],
                    result.env["end"] != 0,
                )
                elements.append(adjusted)
            completed = True
        finally:
            if had_binding:
                ctx.env[term.var] = saved
            else:
                ctx.env.pop(term.var, None)
            if not completed:
                if had_array:
                    ctx.arrays[element_name] = saved_array
                else:
                    ctx.arrays.pop(element_name, None)
        if self.build:
            children.append(ArrayNode(element_name, elements))
        return True

    def _exec_switch(
        self,
        term: TermSwitch,
        ctx: EvalContext,
        children: List[ParseTree],
        lo: int,
        hi: int,
        local_rules: Optional[_LocalRules],
    ) -> bool:
        for case in term.cases:
            if case.condition is None or case.condition.evaluate(ctx) != 0:
                return self._exec_nonterminal(
                    case.target, ctx, children, lo, hi, local_rules
                )
        return False

    # -- builtins / blackboxes -------------------------------------------------
    def _parse_builtin(self, name: str, lo: int, hi: int):
        spec = BUILTINS[name]
        outcome = spec.parse(self.data, lo, hi)
        if outcome is BUILTIN_FAIL:
            return FAIL
        attrs, end, payload = outcome
        env = {"EOI": hi - lo, "start": 0 if end else hi - lo, "end": end}
        env.update(attrs)
        children = [Leaf(payload)] if payload is not None and self.build else []
        return Node(name, env, children)

    def _parse_blackbox(self, name: str, lo: int, hi: int):
        implementation = self.parser.blackboxes.get(name)
        if implementation is None:
            raise BlackboxError(
                f"grammar declares blackbox {name!r} but no implementation was "
                f"registered with the Parser"
            )
        # The blackbox contract hands implementations real bytes; on a
        # memoryview-backed run this is the one place the window is
        # materialized (bytes(b) on an exact bytes slice is a no-op).
        window = bytes(self.data[lo:hi])
        try:
            raw = implementation(window)
        except Exception as exc:  # the blackbox itself failed
            raise BlackboxError(f"blackbox parser {name!r} raised: {exc}") from exc
        outcome = normalize_blackbox_result(raw, hi - lo)
        if outcome is BUILTIN_FAIL:
            return FAIL
        attrs, payload, end = outcome
        env = {"EOI": hi - lo, "start": 0 if end else hi - lo, "end": end}
        env.update(attrs)
        children: List[ParseTree] = []
        if payload is not None and self.build:
            children.append(Leaf(payload))
        return Node(name, env, children)


def _rebase(node: Node, offset: int) -> Node:
    """Re-base a callee node's ``start``/``end`` into the caller's coordinates.

    Rule T-NTSucc: ``Node(B, E_B[start ↦ l + E_B[start], end ↦ l + E_B[end]], ...)``.
    The original node is left untouched because it may be memoized.

    Lazy stubs (:class:`~repro.core.lazytree.LazyNode`) rebase through
    their own method — reading ``node.children`` here would force the
    stub to decode, defeating the point of its existence.
    """
    if type(node) is not Node:
        return node.rebased(offset)
    env = dict(node.env)
    env["start"] = offset + node.env.get("start", 0)
    env["end"] = offset + node.env.get("end", 0)
    rebased = Node(node.name, env, node.children)
    return rebased


def _reachable_blackboxes(grammar: Grammar, start: str) -> set:
    """Blackbox names reachable from ``start`` through the grammar's rules.

    Mirrors the interpreter's dynamic dispatch: local (``where``) rules are
    visible only inside the alternative that declares them (and nested
    deeper), and shadow same-named top-level rules, builtins and blackboxes.
    A blackbox declared but not reachable from ``start`` is not required to
    have an implementation.
    """
    found: set = set()
    seen: set = set()

    def visit_name(name: str, locals_chain: Dict[str, Rule]) -> None:
        local = locals_chain.get(name)
        if local is not None:
            visit_rule(local, locals_chain)
            return
        if grammar.has_rule(name):
            # Top-level rules never see the caller's local scope (the
            # interpreter passes local_rules=None for them).
            visit_rule(grammar.rule(name), {})
            return
        if is_builtin(name):
            return
        if name in grammar.blackboxes:
            found.add(name)

    def visit_rule(rule: Rule, locals_chain: Dict[str, Rule]) -> None:
        # Resolution depends on the locals chain, so the recursion guard
        # must too: the same rule reached under different chains can resolve
        # a name to different targets (e.g. a nested where-rule shadowing a
        # blackbox on one path but not another).
        key = (
            id(rule),
            tuple(sorted((name, id(local)) for name, local in locals_chain.items())),
        )
        if key in seen:
            return
        seen.add(key)
        for alternative in rule.alternatives:
            chain = locals_chain
            if alternative.local_rules:
                chain = dict(locals_chain)
                chain.update({local.name: local for local in alternative.local_rules})
            for term in alternative.terms:
                if isinstance(term, TermNonterminal):
                    visit_name(term.name, chain)
                elif isinstance(term, TermArray):
                    visit_name(term.element.name, chain)
                elif isinstance(term, TermSwitch):
                    for case in term.cases:
                        visit_name(case.target.name, chain)

    visit_name(start, {})
    return found


def parse(
    grammar: Union[Grammar, str],
    data: bytes,
    start: Optional[str] = None,
    blackboxes: Optional[Dict[str, BlackboxCallable]] = None,
    backend: str = "compiled",
) -> Node:
    """One-shot convenience: build a :class:`Parser` and parse ``data``."""
    return Parser(grammar, blackboxes=blackboxes, backend=backend).parse(data, start)
