"""Exception hierarchy for the IPG toolkit.

Every user-facing error raised by the library derives from :class:`IPGError`
so that applications can catch a single exception type.  The hierarchy
mirrors the pipeline stages of the paper: grammar-text parsing, attribute
checking, interval auto-completion, termination checking, and input parsing.
"""

from __future__ import annotations


class IPGError(Exception):
    """Base class for all errors raised by the IPG toolkit."""


class GrammarSyntaxError(IPGError):
    """The IPG surface syntax could not be parsed.

    Carries the line and column of the offending token when available.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AttributeCheckError(IPGError):
    """Attribute checking failed.

    Raised when an attribute reference does not refer to a defined attribute
    (property 1 of section 3.2) or when the per-alternative dependency graph
    is cyclic (property 2 of section 3.2).
    """


class AutoCompletionError(IPGError):
    """Implicit-interval completion could not infer a missing interval."""


class TerminationCheckError(IPGError):
    """Static termination checking rejected the grammar.

    The exception message names the elementary cycle whose intervals may be
    non-decreasing (i.e. may stay at ``[0, EOI]`` forever).
    """

    def __init__(self, message: str, cycle=None):
        self.cycle = list(cycle) if cycle is not None else []
        super().__init__(message)


class ParseFailure(IPGError):
    """Parsing an input according to an IPG produced ``Fail``.

    The interpreter and generated parsers raise this from the public
    ``parse`` entry points; the internal machinery uses a ``FAIL`` sentinel
    to implement biased choice without exception overhead.
    """

    def __init__(self, message: str, nonterminal: str = "", offset: int | None = None):
        self.nonterminal = nonterminal
        self.offset = offset
        super().__init__(message)


class EvaluationError(IPGError):
    """An interval or attribute expression could not be evaluated.

    Examples: reference to an attribute that is not bound at evaluation time,
    a division by zero, or an array reference with an out-of-range index.
    """


class BlackboxError(IPGError):
    """A blackbox parser was referenced but not supplied, or it failed."""


class GenerationError(IPGError):
    """The parser generator could not emit code for the grammar."""


class CompilationError(IPGError):
    """The staged compiler backend could not specialize the grammar.

    :class:`~repro.core.interpreter.Parser` catches this and falls back to
    the reference interpreter, so users only ever see it when calling
    :func:`repro.core.compiler.compile_grammar` directly.
    """


class SolverError(IPGError):
    """The constraint solver was given a formula outside its fragment."""
