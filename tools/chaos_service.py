#!/usr/bin/env python
"""Deterministic chaos harness for the fault-tolerant parse service.

Run from a checkout with ``repro`` importable::

    PYTHONPATH=src python tools/chaos_service.py --seed 0 --requests 120
    PYTHONPATH=src python tools/chaos_service.py --heavy      # CI's config

A seeded PRNG generates one interleaved schedule of parse requests
(valid, truncated, and corrupted inputs across the bundled formats,
spanning the inline and spooled payload paths) and fault injections
(worker ``os._exit``, SIGSEGV, simulated OOM kills, spool-file leaks,
sleeps and busy-spins that must be cut down by the deadline), submits
it against one :class:`repro.service.ParseService`, and then asserts
the convergence invariants the service guarantees:

1. **Every request is answered exactly once** — each future resolves
   with a ``ServiceResult``: a tree, a recovered document, a structured
   parse failure, or a structured ``ServiceError``.  No hangs, no
   stranded futures, no double replies.
2. **Verdicts are correct despite the chaos** — an input that parses
   in-process must come back as that exact tree (or a retried
   crash/deadline verdict, never a *wrong* tree), and a hostile input's
   failure class must match the in-process class.
3. **The pool repairs itself** — after the storm the service is back at
   full worker strength and still answers a fresh probe request.
4. **Nothing leaks** — no stray child processes, no spool files (the
   ``leak`` chaos mode deliberately strands some; the supervisor must
   reclaim them), and the parent's fd table returns to its pre-storm
   size.

Same seed, same schedule: a failure reported by CI reproduces locally
with the printed command line.  Exit code 0 = all invariants held.
"""

from __future__ import annotations

import argparse
import os
import sys
import random
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import samples  # noqa: E402
from repro.core.errors import (  # noqa: E402
    DeadlineExceeded,
    ParseFailure,
    ServiceError,
    ServiceOverloaded,
    WorkerCrashed,
)
from repro.core.parsetree import tree_to_jsonable  # noqa: E402
from repro.formats import registry  # noqa: E402
from repro.service import ParseService, ServiceConfig  # noqa: E402

#: Chaos directives and their weights in the schedule.
CHAOS_MODES = (
    ("exit", 4),
    ("segv", 3),
    ("oom", 2),
    ("leak", 2),
    ("hang", 3),
    ("spin", 2),
)

#: Formats exercised; dns/ipv4 are inline-sized, zip crosses the spool
#: threshold once padded (see _corpus).
FORMATS = ("dns", "ipv4", "zip")


def _corpus(rng: random.Random):
    """(format, data, expectation) triples covering the verdict space."""
    entries = []
    builders = {
        "dns": lambda: samples.build_dns_response(
            answer_count=rng.choice((1, 2, 4)), additional_count=1
        ),
        "ipv4": lambda: samples.build_ipv4_udp_packet(
            payload_size=rng.choice((16, 64, 256))
        ),
        "zip": lambda: samples.build_zip(
            member_count=rng.choice((2, 4)),
            member_size=rng.choice((300, 9000)),  # 9000*2 spools past 16KiB
        ),
    }
    parsers = {fmt: registry[fmt].build_parser() for fmt in FORMATS}
    for fmt in FORMATS:
        for _ in range(3):
            data = builders[fmt]()
            expected = tree_to_jsonable(parsers[fmt].parse(data))
            entries.append((fmt, data, ("tree", expected)))
            # A truncation of the same input: expect the in-process class.
            cut = data[: rng.randrange(1, len(data))]
            try:
                parsers[fmt].parse(cut)
                entries.append((fmt, cut, ("ok-any",)))
            except ParseFailure as exc:
                entries.append((fmt, cut, ("failure", type(exc).__name__)))
            # A bit-flipped corruption: any structured verdict is fine
            # (it may still parse), but it must *agree* with in-process.
            flipped = bytearray(data)
            flipped[rng.randrange(len(flipped))] ^= 1 << rng.randrange(8)
            flipped = bytes(flipped)
            try:
                expected_tree = tree_to_jsonable(parsers[fmt].parse(flipped))
                entries.append((fmt, flipped, ("tree", expected_tree)))
            except ParseFailure as exc:
                entries.append((fmt, flipped, ("failure", type(exc).__name__)))
    return entries


def _check_verdict(result, expectation, failures, label):
    kind = expectation[0]
    if result.error is not None and isinstance(
        result.error, (WorkerCrashed, DeadlineExceeded)
    ):
        return "degraded"  # chaos collateral: structured, allowed
    if isinstance(result.error, ServiceError):
        failures.append(f"{label}: unexpected service error {result.error!r}")
        return "bad"
    if kind == "tree":
        if result.error is not None:
            failures.append(
                f"{label}: expected a tree, got "
                f"{type(result.error).__name__}: {result.error}"
            )
            return "bad"
        if result.tree != expectation[1]:
            failures.append(f"{label}: tree differs from the in-process parse")
            return "bad"
    elif kind == "failure":
        if result.error is None:
            failures.append(f"{label}: expected {expectation[1]}, got success")
            return "bad"
        if type(result.error).__name__ != expectation[1]:
            failures.append(
                f"{label}: expected {expectation[1]}, got "
                f"{type(result.error).__name__}"
            )
            return "bad"
    return "ok"


def _fd_count() -> int:
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return -1


def _child_pids() -> set:
    """Direct children of this process, via /proc (forking ``ps`` would
    list the ``ps`` child itself)."""
    me = str(os.getpid())
    children = set()
    try:
        entries = os.listdir("/proc")
    except OSError:
        return children
    for name in entries:
        if not name.isdigit():
            continue
        try:
            with open(f"/proc/{name}/stat") as handle:
                stat = handle.read()
        except OSError:
            continue  # raced with process exit
        # Field 4 (after the parenthesized comm, which may hold spaces).
        ppid = stat.rpartition(")")[2].split()[1]
        if ppid == me:
            children.add(int(name))
    return children


def run_storm(
    seed: int,
    requests: int,
    workers: int,
    chaos_every: int,
    deadline_ms: int,
    hang_seconds: float,
) -> int:
    rng = random.Random(seed)
    corpus = _corpus(rng)
    failures: list = []
    fd_before = _fd_count()

    config = ServiceConfig(
        workers=workers,
        allow_chaos=True,
        seed=seed,
        default_deadline_ms=deadline_ms,
        max_pending=max(64, requests),
        spawn_backoff_base=0.02,
        spawn_backoff_cap=0.25,  # storms respawn fast; jitter still applies
    )
    submitted = []  # (label, expectation-or-None, future)
    begin = time.monotonic()
    with ParseService(config) as service:
        for index in range(requests):
            if chaos_every and index % chaos_every == chaos_every - 1:
                mode = rng.choices(
                    [m for m, _ in CHAOS_MODES],
                    weights=[w for _, w in CHAOS_MODES],
                )[0]
                seconds = (
                    rng.uniform(hang_seconds, hang_seconds * 4)
                    if mode in ("hang", "spin")
                    else 0.0
                )
                # Hangs must exceed their deadline so the SIGKILL path runs.
                chaos_deadline = (
                    max(50, int(hang_seconds * 500))
                    if mode in ("hang", "spin")
                    else deadline_ms
                )
                future = service.submit_chaos(
                    mode, seconds=seconds, deadline_ms=chaos_deadline
                )
                submitted.append((f"chaos-{index}-{mode}", None, future))
                continue
            fmt, data, expectation = rng.choice(corpus)
            while True:
                try:
                    future = service.submit(
                        data, format=fmt, deadline_ms=deadline_ms
                    )
                    break
                except ServiceOverloaded as exc:
                    time.sleep(min(exc.retry_after or 0.05, 0.2))
            submitted.append((f"req-{index}-{fmt}", expectation, future))

        # Invariant 1: every future resolves.  The bound is generous but
        # finite — a stranded future fails the harness rather than CI's
        # job timeout.
        wait_budget = 60 + requests * (deadline_ms / 1000.0)
        answered = degraded = 0
        for label, expectation, future in submitted:
            try:
                result = future.result(timeout=wait_budget)
            except Exception as exc:  # noqa: BLE001 - resolution is the contract
                failures.append(f"{label}: future did not resolve ({exc!r})")
                continue
            answered += 1
            if expectation is not None:
                verdict = _check_verdict(result, expectation, failures, label)
                if verdict == "degraded":
                    degraded += 1
            elif result.error is not None and not isinstance(
                result.error, ServiceError
            ):
                failures.append(
                    f"{label}: chaos directive got a non-service error "
                    f"{result.error!r}"
                )

        # Invariant 3: the pool repairs itself and still answers.
        settle = time.monotonic() + 30
        while time.monotonic() < settle:
            if service.stats()["workers_alive"] == workers:
                break
            time.sleep(0.05)
        audit = service.audit()
        if audit["alive_workers"] != workers:
            failures.append(
                f"pool not repaired: {audit['alive_workers']}/{workers} alive"
            )
        probe_fmt, probe_data, probe_expect = corpus[0]
        probe = service.submit(
            probe_data, format=probe_fmt, deadline_ms=deadline_ms
        ).result(timeout=60)
        if probe.tree != probe_expect[1]:
            failures.append("post-storm probe parse did not match in-process")

        # Invariant 4a: spool files reclaimed (leak chaos included).
        if audit["spool_files"] != 0:
            # Leak sweeps ride worker-death handling; give one respawn
            # cycle to finish before judging.
            time.sleep(1.0)
            audit = service.audit()
            if audit["spool_files"] != 0:
                failures.append(
                    f"{audit['spool_files']} spool files leaked in "
                    f"{audit['spool_dir']}"
                )
        spool_dir = audit["spool_dir"]
        stats = service.stats()

    # Invariant 4b: after close, nothing remains — no children, no spool
    # directory, fd table back to its pre-storm size.
    if os.path.isdir(spool_dir):
        failures.append(f"spool dir {spool_dir} survived close()")
    strays = _child_pids()
    if strays:
        failures.append(f"leaked child processes: {sorted(strays)}")
    fd_after = _fd_count()
    if fd_before >= 0 and fd_after > fd_before:
        failures.append(f"fd leak: {fd_before} before, {fd_after} after")

    elapsed = time.monotonic() - begin
    print(
        f"chaos: seed={seed} requests={requests} answered={answered} "
        f"degraded-by-chaos={degraded} elapsed={elapsed:.1f}s"
    )
    print(
        "stats: "
        + " ".join(f"{key}={value}" for key, value in sorted(stats.items()))
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        print(
            f"reproduce: PYTHONPATH=src python tools/chaos_service.py "
            f"--seed {seed} --requests {requests} --workers {workers} "
            f"--chaos-every {chaos_every} --deadline-ms {deadline_ms}",
            file=sys.stderr,
        )
        return 1
    print("all invariants held")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests", type=int, default=80, help="schedule length (default: 80)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool size (default: 2)"
    )
    parser.add_argument(
        "--chaos-every",
        type=int,
        default=5,
        help="inject a fault every Nth request (0 disables; default: 5)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=int,
        default=15_000,
        help="per-request deadline for parse requests (default: 15000)",
    )
    parser.add_argument(
        "--hang-seconds",
        type=float,
        default=0.3,
        help="base duration of hang/spin directives; their deadline is "
        "set below it so the kill path always runs (default: 0.3)",
    )
    parser.add_argument(
        "--heavy",
        action="store_true",
        help="CI configuration: more requests, denser chaos",
    )
    args = parser.parse_args(argv)
    if args.heavy:
        args.requests = max(args.requests, 150)
        args.chaos_every = 4
    return run_storm(
        args.seed,
        args.requests,
        args.workers,
        args.chaos_every,
        args.deadline_ms,
        args.hang_seconds,
    )


if __name__ == "__main__":
    sys.exit(main())
