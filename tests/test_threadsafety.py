"""Thread-safety regression test: one shared parser, many threads.

The parse service keeps exactly one :class:`~repro.Parser` per grammar
per worker *process*, but in-process embedders (and ``parse_many``
callers pre-dating the service) share a single parser across threads.
A parser's hot state — memo tables, staged-compilation namespaces, the
table VM's run state — must therefore be per-parse, never per-parser:
this test hammers one shared parser per backend with 8 threads over the
Figure 13 evaluation corpus and requires every concurrent tree to be
byte-identical to the serial one.

A failure here means parser state leaked across concurrent parses —
historically the kind of bug that surfaces as a *rare* wrong tree, so
the corpus is parsed repeatedly per thread.
"""

from __future__ import annotations

import threading

import pytest

from repro import Parser, samples
from repro.core.parsetree import tree_to_jsonable
from repro.formats import registry

THREADS = 8
ROUNDS = 3  # corpus passes per thread; rare races need repetition

BACKENDS = ("compiled", "interpreted", "tablevm")

#: The Figure 13 size sweep (quick tier), one entry per format family.
_FIG13_BUILDERS = {
    "zip": lambda: [
        samples.build_zip(member_count=c, member_size=512) for c in (2, 8, 32)
    ],
    "gif": lambda: [
        samples.build_gif(frame_count=c, bytes_per_frame=512) for c in (1, 4, 16)
    ],
    "dns": lambda: [
        samples.build_dns_response(answer_count=c) for c in (1, 8, 32)
    ],
    "ipv4": lambda: [
        samples.build_ipv4_udp_packet(payload_size=s) for s in (16, 256, 1400)
    ],
}


@pytest.fixture(scope="module")
def fig13_corpus():
    return {fmt: build() for fmt, build in _FIG13_BUILDERS.items()}


@pytest.mark.parametrize("backend", BACKENDS)
def test_shared_parser_is_thread_safe(backend, fig13_corpus):
    for fmt, corpus in fig13_corpus.items():
        spec = registry[fmt]
        parser = Parser(
            spec.grammar_text, blackboxes=dict(spec.blackboxes), backend=backend
        )
        expected = [tree_to_jsonable(parser.parse(data)) for data in corpus]

        failures = []
        barrier = threading.Barrier(THREADS)

        def hammer(thread_index: int) -> None:
            try:
                barrier.wait()  # maximize overlap: everyone starts together
                for _ in range(ROUNDS):
                    for index, data in enumerate(corpus):
                        got = tree_to_jsonable(parser.parse(data))
                        if got != expected[index]:
                            failures.append(
                                f"{fmt}/{backend}: thread {thread_index} got a "
                                f"different tree for corpus[{index}]"
                            )
                            return
            except Exception as exc:  # noqa: BLE001 - report, don't deadlock
                failures.append(
                    f"{fmt}/{backend}: thread {thread_index} raised "
                    f"{type(exc).__name__}: {exc}"
                )

        threads = [
            threading.Thread(target=hammer, args=(index,), daemon=True)
            for index in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads), (
            f"{fmt}/{backend}: threads still running (deadlock?)"
        )
        assert not failures, "\n".join(failures)


def test_shared_parser_concurrent_failures_are_stable(fig13_corpus):
    """Concurrent *failing* parses must also agree with serial ones."""
    spec = registry["dns"]
    parser = Parser(spec.grammar_text, blackboxes=dict(spec.blackboxes))
    corpus = [data[:n] for data in fig13_corpus["dns"] for n in (5, 9, 17)]

    def verdict(data):
        try:
            parser.parse(data)
            return ("ok",)
        except Exception as exc:  # noqa: BLE001 - class+offset is the verdict
            return (type(exc).__name__, getattr(exc, "offset", None))

    expected = [verdict(data) for data in corpus]
    failures = []
    barrier = threading.Barrier(THREADS)

    def hammer() -> None:
        barrier.wait()
        for _ in range(ROUNDS):
            got = [verdict(data) for data in corpus]
            if got != expected:
                failures.append(f"verdicts diverged: {got} != {expected}")
                return

    threads = [threading.Thread(target=hammer, daemon=True) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not failures, failures[0]
