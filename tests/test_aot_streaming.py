"""Streaming parity for ahead-of-time emitted modules.

``to_source()`` modules — closure- and table-backed — embed a vendored
streaming runtime plus a stream-specialized variant of the grammar
(re-compiled with the stream-safe pass set; second embedded plan for the
table flavor).  This module pins the parity contract: for streamable
grammars the emitted module's ``stream()`` / ``parse_stream()`` produce
the same trees as its own batch entry points and as the in-process
engines, across record-straddling chunk sizes, with bounded buffering
and an idempotent ``finish()``.  Non-streamable grammars must refuse
with the vendored ``NotStreamableError``.
"""

import pytest

from engine_matrix import format_sample, matrix_for
from repro.core.compiler import compile_grammar
from repro.formats import registry

STREAMABLE_FORMATS = ("dns", "ipv4")
CHUNK_SIZES = (1, 7, 23)

_SEQ = [0]


def _closure_module(fmt: str):
    spec = registry[fmt]
    _SEQ[0] += 1
    return compile_grammar(
        spec.grammar_text, blackboxes=dict(spec.blackboxes)
    ).load_module(f"_aot_stream_closure_{_SEQ[0]}")


def _table_module(fmt: str):
    spec = registry[fmt]
    _SEQ[0] += 1
    parser = spec.build_parser(backend="tablevm")
    return parser._tablevm.load_module(f"_aot_stream_table_{_SEQ[0]}")


MODULE_BUILDERS = {"closure": _closure_module, "table": _table_module}


@pytest.fixture(scope="module", params=sorted(MODULE_BUILDERS))
def flavor(request):
    return request.param


class TestEmittedModuleStreaming:
    @pytest.mark.parametrize("fmt", STREAMABLE_FORMATS)
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_parse_stream_matches_batch(self, flavor, fmt, chunk_size):
        module = MODULE_BUILDERS[flavor](fmt)
        assert module.STREAMABLE
        data = format_sample(fmt)
        expected = module.parse(data)
        spec = registry[fmt]
        matrix = matrix_for(spec.grammar_text, dict(spec.blackboxes))
        assert expected == matrix.run("interpreted-plain", data, None)[1]
        chunks = [data[i : i + chunk_size] for i in range(0, len(data), chunk_size)]
        assert module.parse_stream(chunks) == expected

    @pytest.mark.parametrize("fmt", STREAMABLE_FORMATS)
    def test_session_feed_finish_is_idempotent(self, flavor, fmt):
        module = MODULE_BUILDERS[flavor](fmt)
        data = format_sample(fmt)
        session = module.stream()
        for i in range(0, len(data), 7):
            session.feed(data[i : i + 7])
        tree = session.finish()
        assert tree == module.parse(data)
        assert session.finish() == tree

    @pytest.mark.parametrize("fmt", STREAMABLE_FORMATS)
    def test_compaction_bounds_the_buffer(self, flavor, fmt):
        module = MODULE_BUILDERS[flavor](fmt)
        data = format_sample(fmt)
        session = module.stream()
        peak = 0
        for i in range(len(data)):
            session.feed(data[i : i + 1])
            peak = max(peak, len(session.buffer._data))
        session.finish()
        # One chunk plus the largest suspended term — far below the input.
        assert peak < len(data)

    @pytest.mark.parametrize("fmt", STREAMABLE_FORMATS)
    def test_truncated_stream_fails_like_batch(self, flavor, fmt):
        module = MODULE_BUILDERS[flavor](fmt)
        data = format_sample(fmt)
        truncated = data[: len(data) // 2]
        try:
            module.parse(truncated)
            batch = ("tree",)
        except module.ParseFailure as exc:
            batch = (type(exc).__name__,)
        chunks = [truncated[i : i + 7] for i in range(0, len(truncated), 7)]
        try:
            module.parse_stream(chunks, compact=False)
            streamed = ("tree",)
        except module.ParseFailure as exc:
            streamed = (type(exc).__name__,)
        assert streamed == batch

    def test_non_streamable_module_refuses(self, flavor):
        module = MODULE_BUILDERS[flavor]("gif")
        assert not module.STREAMABLE
        with pytest.raises(module.NotStreamableError):
            module.stream()
        with pytest.raises(module.NotStreamableError):
            module.parse_stream([format_sample("gif")])

    def test_set_limits_reaches_the_stream_engine(self, flavor):
        # dns only: ipv4 has no recursive rules, so nothing consumes fuel
        # and a tiny max_steps budget can never trip.
        fmt = "dns"
        module = MODULE_BUILDERS[flavor](fmt)
        data = format_sample(fmt)
        module.set_limits(max_steps=2)
        try:
            with pytest.raises(module.LimitExceeded):
                module.parse_stream(
                    [data[i : i + 7] for i in range(0, len(data), 7)]
                )
        finally:
            module.set_limits(max_steps=10_000_000)
        assert module.parse_stream([data]) == module.parse(data)
