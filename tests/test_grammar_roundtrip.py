"""Round-trip and robustness tests over the bundled format grammars."""

import pytest

from repro import Parser, parse_grammar
from repro.core.errors import IPGError, ParseFailure
from repro.core.compiler import compile_grammar
from repro.formats import registry


@pytest.mark.parametrize("fmt", sorted(registry))
class TestFormatGrammarHygiene:
    def test_source_round_trips_through_the_ast(self, fmt):
        grammar = parse_grammar(registry[fmt].grammar_text)
        reparsed = parse_grammar(grammar.to_source())
        assert reparsed.nonterminals() == grammar.nonterminals()
        assert reparsed.to_source() == parse_grammar(reparsed.to_source()).to_source()

    def test_emitted_source_is_importable_python(self, fmt):
        source = compile_grammar(registry[fmt].grammar_text).to_source()
        compile(source, f"<emitted {fmt}>", "exec")
        # Every top-level nonterminal stays entry-callable.
        grammar = parse_grammar(registry[fmt].grammar_text)
        for nonterminal in grammar.nonterminals():
            assert f"{nonterminal!r}:" in source  # the _ENTRY table

    def test_empty_input_is_rejected_not_crashed(self, fmt):
        parser = registry[fmt].build_parser()
        assert parser.try_parse(b"") is None

    def test_random_bytes_are_rejected_not_crashed(self, fmt):
        parser = registry[fmt].build_parser()
        noise = bytes((i * 131 + 7) % 256 for i in range(512))
        assert parser.try_parse(noise) is None

    def test_parse_failure_exception_carries_the_start_symbol(self, fmt):
        parser = registry[fmt].build_parser()
        with pytest.raises(ParseFailure) as excinfo:
            parser.parse(b"\x00")
        assert excinfo.value.nonterminal == registry[fmt].grammar().start


class TestErrorTypes:
    def test_all_errors_derive_from_ipgerror(self):
        from repro.core import errors

        subclasses = [
            errors.GrammarSyntaxError,
            errors.AttributeCheckError,
            errors.AutoCompletionError,
            errors.TerminationCheckError,
            errors.ParseFailure,
            errors.EvaluationError,
            errors.BlackboxError,
            errors.GenerationError,
            errors.SolverError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, IPGError)

    def test_syntax_error_reports_position(self):
        from repro.core.errors import GrammarSyntaxError

        error = GrammarSyntaxError("unexpected token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.column == 7

    def test_unknown_start_symbol_rejected(self):
        with pytest.raises(IPGError):
            Parser('S -> "x" ;').parse(b"x", start="Nope")
