"""Shared fixtures for the test suite.

Heavyweight objects (format parsers, synthetic samples) are session-scoped:
building a parser runs the whole front-end pipeline and generating samples
is deterministic, so sharing them across tests is safe and keeps the suite
fast.
"""

from __future__ import annotations

import pytest

from repro import Parser, samples
from repro.formats import dns, elf, gif, ipv4, pdf, pe, toy, zipfmt


# ---------------------------------------------------------------------------
# Toy grammars (the paper's figures)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def figure1_parser() -> Parser:
    return Parser(toy.FIGURE_1)


@pytest.fixture(scope="session")
def figure2_parser() -> Parser:
    return Parser(toy.FIGURE_2)


@pytest.fixture(scope="session")
def figure3_parser() -> Parser:
    return Parser(toy.FIGURE_3)


@pytest.fixture(scope="session")
def figure4_parser() -> Parser:
    return Parser(toy.FIGURE_4)


@pytest.fixture(scope="session")
def figure6_parser() -> Parser:
    return Parser(toy.FIGURE_6)


@pytest.fixture(scope="session")
def anbncn_parser() -> Parser:
    return Parser(toy.ANBNCN)


# ---------------------------------------------------------------------------
# Synthetic samples
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def elf_sample() -> bytes:
    return samples.build_elf(section_count=4, symbol_count=8, dynamic_entries=4)


@pytest.fixture(scope="session")
def gif_sample() -> bytes:
    return samples.build_gif(frame_count=3, bytes_per_frame=300)


@pytest.fixture(scope="session")
def zip_sample() -> bytes:
    return samples.build_zip(member_count=3, member_size=600)


@pytest.fixture(scope="session")
def pe_sample() -> bytes:
    return samples.build_pe(section_count=3, section_size=256)


@pytest.fixture(scope="session")
def pdf_sample():
    return samples.build_pdf(object_count=5)


@pytest.fixture(scope="session")
def dns_query_sample() -> bytes:
    return samples.build_dns_query("www.example.com")


@pytest.fixture(scope="session")
def dns_response_sample() -> bytes:
    return samples.build_dns_response(answer_count=3, additional_count=1)


@pytest.fixture(scope="session")
def ipv4_sample() -> bytes:
    return samples.build_ipv4_udp_packet(payload_size=64, options_words=1)


# ---------------------------------------------------------------------------
# Format parsers (cached by the FormatSpec objects themselves)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def elf_parser() -> Parser:
    return elf.SPEC.parser()


@pytest.fixture(scope="session")
def gif_parser() -> Parser:
    return gif.SPEC.parser()


@pytest.fixture(scope="session")
def zip_parser() -> Parser:
    return zipfmt.SPEC.parser()


@pytest.fixture(scope="session")
def pe_parser() -> Parser:
    return pe.SPEC.parser()


@pytest.fixture(scope="session")
def pdf_parser() -> Parser:
    return pdf.SPEC.parser()


@pytest.fixture(scope="session")
def dns_parser() -> Parser:
    return dns.SPEC.parser()


@pytest.fixture(scope="session")
def ipv4_parser() -> Parser:
    return ipv4.SPEC.parser()
